//! End-to-end integration: generated scenario → workflows → evaluation,
//! spanning every crate of the workspace.

use std::sync::Arc;

use moma::core::matchers::{AttributeMatcher, MatchContext};
use moma::core::ops::merge::{MergeFn, MissingPolicy};
use moma::core::ops::select::Selection;
use moma::core::workflow::{CombineOp, Combiner, StepInput, Workflow, WorkflowStep};
use moma::core::MappingCache;
use moma::datagen::Scenario;
use moma::eval::MatchQuality;
use moma::simstring::SimFn;

#[test]
fn workflow_engine_reproduces_manual_pipeline() {
    let scenario = Scenario::small();
    let ctx = MatchContext::with_repository(&scenario.registry, &scenario.repository);
    let cache = MappingCache::new();

    // Declarative workflow: title + authors + year matchers merged with
    // Avg (missing = 0) and an 80% threshold — the Table 2 pipeline.
    let title: Arc<dyn moma::core::Matcher> = Arc::new(AttributeMatcher::new(
        "title",
        "title",
        SimFn::Trigram,
        0.45,
    ));
    let authors: Arc<dyn moma::core::Matcher> = Arc::new(AttributeMatcher::new(
        "authors",
        "authors",
        SimFn::Trigram,
        0.45,
    ));
    let year: Arc<dyn moma::core::Matcher> =
        Arc::new(AttributeMatcher::new("year", "year", SimFn::Year(0), 1.0));
    let wf = Workflow::new("PubMatch", "Publication@DBLP", "Publication@ACM").step(WorkflowStep {
        inputs: vec![
            StepInput::Matcher(Arc::clone(&title)),
            StepInput::Matcher(Arc::clone(&authors)),
            StepInput::Matcher(Arc::clone(&year)),
        ],
        combiner: Combiner {
            op: CombineOp::Merge {
                f: MergeFn::Avg,
                missing: MissingPolicy::Zero,
            },
            selections: vec![Selection::Threshold(0.8)],
        },
        publish: Some("wf.pub".into()),
    });
    let via_workflow = wf.run(&ctx, &cache).unwrap();

    // The same pipeline by hand.
    let d = scenario.ids.pub_dblp;
    let a = scenario.ids.pub_acm;
    let m_title = title.execute(&ctx, d, a).unwrap();
    let m_authors = authors.execute(&ctx, d, a).unwrap();
    let m_year = year.execute(&ctx, d, a).unwrap();
    let merged = moma::core::ops::merge::merge(
        &[&m_title, &m_authors, &m_year],
        MergeFn::Avg,
        MissingPolicy::Zero,
    )
    .unwrap();
    let manual = moma::core::ops::select::select(&merged, &Selection::Threshold(0.8));

    assert_eq!(via_workflow.table.pair_set(), manual.table.pair_set());
    assert!(cache.contains("wf.pub"));

    // And the result is good against the gold standard.
    let q = MatchQuality::evaluate(&via_workflow, &scenario.gold.pub_dblp_acm);
    assert!(q.f1() > 0.9, "workflow quality too low: {q}");
}

#[test]
fn matching_quality_holds_across_the_three_sources() {
    let ctx = moma::eval::EvalContext::small();
    let gold = &ctx.scenario.gold;

    let da = MatchQuality::evaluate(
        &moma::eval::experiments::table5::merged_mapping(&ctx),
        &gold.pub_dblp_acm,
    );
    let dg = MatchQuality::evaluate(
        &moma::eval::experiments::table7::merged_mapping(&ctx),
        &gold.pub_dblp_gs,
    );
    let ga = MatchQuality::evaluate(
        &moma::eval::experiments::table8::merged_mapping(&ctx),
        &gold.pub_gs_acm,
    );
    // The clean pair beats both dirty pairs (Table 10's shape).
    assert!(da.f1() > dg.f1());
    assert!(da.f1() > ga.f1());
    assert!(da.f1() > 0.9);
    assert!(dg.f1() > 0.6);
    assert!(ga.f1() > 0.6);
}

#[test]
fn repository_reuse_between_workflows() {
    // A second workflow can consume a mapping the first one published.
    let scenario = Scenario::small();
    let ctx = MatchContext::with_repository(&scenario.registry, &scenario.repository);
    let cache = MappingCache::new();

    let first = Workflow::new("First", "Publication@DBLP", "Publication@ACM").step(WorkflowStep {
        inputs: vec![StepInput::Matcher(Arc::new(AttributeMatcher::new(
            "title",
            "title",
            SimFn::Trigram,
            0.8,
        )))],
        combiner: Combiner::merge_avg(),
        publish: Some("shared.title".into()),
    });
    first.run(&ctx, &cache).unwrap();

    let second =
        Workflow::new("Second", "Publication@DBLP", "Publication@ACM").step(WorkflowStep {
            inputs: vec![StepInput::Existing("shared.title".into())],
            combiner: Combiner::merge_avg().with_selection(Selection::best1()),
            publish: None,
        });
    let refined = second.run(&ctx, &cache).unwrap();
    assert!(!refined.is_empty());
    for (_, count) in refined.table.domain_degrees() {
        assert_eq!(
            count, 1,
            "best-1 must leave one correspondence per instance"
        );
    }
}
