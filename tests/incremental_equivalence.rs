//! Incremental ≡ full recompute, property-tested across random worlds
//! and random delta sequences.
//!
//! The delta engine (`moma_core::delta`) promises that feeding applied
//! source deltas through `DeltaMatchState::apply` yields a mapping
//! **bit-for-bit identical** — pair set, similarity scores, row order —
//! to re-executing the matcher from scratch on the mutated registry.
//! These properties drive that promise across randomly generated datagen
//! scenarios, random delta streams (adds / removes / attribute updates,
//! deliberately including duplicate removals and no-op updates), both
//! supported blocking regimes, and thread counts 1 and 8 (the same
//! extremes CI's MOMA_THREADS matrix pins for the whole suite).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use moma::core::blocking::Blocking;
use moma::core::exec::Parallelism;
use moma::core::matchers::{AttributeMatcher, MatchContext, Matcher};
use moma::core::ops::compose::{PathAgg, PathCombine};
use moma::core::{MappingRepository, Recipe};
use moma::datagen::{DeltaStream, EvolveConfig, Scenario, WorldConfig};
use moma::model::SourceDelta;
use moma::simstring::SimFn;
use proptest::prelude::*;

/// Thread counts under test; 1 must hit the sequential path, 8 must
/// shard (min_shard_size is forced to 1).
const THREADS: [usize; 2] = [1, 8];

/// A micro random world (see tests/parallel_equivalence.rs for the
/// sizing rationale). Worlds are cached by seed and registries *cloned*
/// per case — delta application mutates them.
fn random_world(seed: u64) -> Arc<Scenario> {
    static CACHE: OnceLock<Mutex<HashMap<u64, Arc<Scenario>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut guard = cache.lock().unwrap();
    guard
        .entry(seed)
        .or_insert_with(|| {
            let mut cfg = WorldConfig::small();
            cfg.seed = seed;
            cfg.start_year = 2001;
            cfg.end_year = 2001;
            cfg.person_pool = 60;
            cfg.vldb_papers = (3, 5);
            cfg.sigmod_papers = (2, 4);
            cfg.tods = (1, (1, 2));
            cfg.vldbj = (1, (1, 2));
            cfg.record = (1, (1, 3));
            cfg.gs_noise_entries = 5 + (seed % 4) as usize * 5;
            Arc::new(Scenario::generate(cfg))
        })
        .clone()
}

fn par(threads: usize) -> Parallelism {
    Parallelism::new(threads).with_min_shard_size(1)
}

/// A churny delta stream with plenty of junk ops (duplicate removals,
/// no-op updates) — the robustness half of the property.
fn stream(seed: u64, churn: f64, lds: moma::model::LdsId) -> DeltaStream {
    let mut cfg = EvolveConfig::with_churn(churn);
    cfg.seed = seed;
    cfg.junk_prob = 0.3;
    cfg.burst_prob = 0.2;
    cfg.burst_factor = 4.0;
    DeltaStream::new(cfg, lds)
}

/// Drive `steps` delta batches (alternating between the domain and the
/// range source) through the incremental engine at every thread count,
/// asserting bit-identity with a full re-match after each batch.
fn assert_equivalence(
    matcher: &AttributeMatcher,
    seed: u64,
    stream_seed: u64,
    churn: f64,
    steps: usize,
) {
    let scenario = random_world(seed);
    let (dblp, gs) = (scenario.ids.pub_dblp, scenario.ids.pub_gs);
    for threads in THREADS {
        let mut reg = scenario.registry.clone();
        let ctx = MatchContext::new(&reg).with_parallelism(par(threads));
        let mut state = matcher.prime(&ctx, dblp, gs).unwrap();
        assert!(state.is_incremental());
        let mut dblp_stream = stream(stream_seed, churn, dblp);
        let mut gs_stream = stream(stream_seed.wrapping_add(1), churn, gs);
        for step in 0..steps {
            let delta = if step % 2 == 0 {
                gs_stream.next_delta(&reg)
            } else {
                dblp_stream.next_delta(&reg)
            };
            let applied = reg.apply_delta(&delta).unwrap();
            let ctx = MatchContext::new(&reg).with_parallelism(par(threads));
            let incremental = state.apply(&ctx, &[&applied]).unwrap();
            let full = matcher.execute(&ctx, dblp, gs).unwrap();
            assert_eq!(
                incremental.table.rows(),
                full.table.rows(),
                "seed={seed} stream={stream_seed} threads={threads} step={step}"
            );
        }
    }
}

proptest! {
    /// All-pairs blocking, trigram scoring.
    #[test]
    fn incremental_equals_full_allpairs(
        seed in 0u64..6,
        stream_seed in 0u64..1000,
        churn in 0.02f64..0.15,
        steps in 1usize..4,
    ) {
        let matcher = AttributeMatcher::new("title", "title", SimFn::Trigram, 0.7);
        assert_equivalence(&matcher, seed, stream_seed, churn, steps);
    }

    /// Prefix-filtered trigram blocking (both-side index maintenance,
    /// tombstones, inverse probes).
    #[test]
    fn incremental_equals_full_blocked(
        seed in 0u64..6,
        stream_seed in 0u64..1000,
        churn in 0.02f64..0.15,
        steps in 1usize..4,
    ) {
        let matcher = AttributeMatcher::new("title", "title", SimFn::Trigram, 0.6)
            .with_blocking(Blocking::TrigramPrefix);
        assert_equivalence(&matcher, seed, stream_seed, churn, steps);
    }

    /// A non-trigram measure under all-pairs blocking is also exactly
    /// incremental (the guarantee needs filter exactness, and all-pairs
    /// has no filter).
    #[test]
    fn incremental_equals_full_jaro_allpairs(
        seed in 0u64..4,
        stream_seed in 0u64..1000,
    ) {
        let matcher = AttributeMatcher::new("title", "title", SimFn::JaroWinkler, 0.9);
        assert_equivalence(&matcher, seed, stream_seed, 0.08, 2);
    }
}

/// Hand-written delta sequences covering the exact edge cases the issue
/// names: no-op updates, duplicate removals within and across batches,
/// clearing an attribute, and re-adding a removed id.
#[test]
fn explicit_edge_case_deltas() {
    let scenario = random_world(1);
    let (dblp, gs) = (scenario.ids.pub_dblp, scenario.ids.pub_gs);
    let matcher = AttributeMatcher::new("title", "title", SimFn::Trigram, 0.6)
        .with_blocking(Blocking::TrigramPrefix);
    for threads in THREADS {
        let mut reg = scenario.registry.clone();
        let victim = reg
            .lds(gs)
            .iter()
            .next()
            .map(|(_, i)| i.id.clone())
            .unwrap();
        let survivor = reg
            .lds(gs)
            .iter()
            .nth(1)
            .map(|(_, i)| i.id.clone())
            .unwrap();
        let survivor_title = reg
            .lds(gs)
            .by_id(&survivor)
            .and_then(|i| i.value(0).cloned());
        let ctx = MatchContext::new(&reg).with_parallelism(par(threads));
        let mut state = matcher.prime(&ctx, dblp, gs).unwrap();
        let deltas = vec![
            // Duplicate removal inside one batch + an unknown id.
            SourceDelta::new(gs)
                .remove(victim.clone())
                .remove(victim.clone())
                .remove("no-such-id"),
            // Removal of the same id again in a later batch.
            SourceDelta::new(gs).remove(victim.clone()),
            // No-op update: write the current title back; then clear it.
            SourceDelta::new(gs)
                .update(survivor.clone(), "title", survivor_title.clone())
                .update(survivor.clone(), "title", None),
            // Re-add the removed id as a brand-new instance.
            SourceDelta::new(gs).add(
                victim.clone(),
                vec![("title".into(), "A freshly re-added entry".into())],
            ),
            // Empty batch.
            SourceDelta::new(gs),
        ];
        for (i, delta) in deltas.into_iter().enumerate() {
            let applied = reg.apply_delta(&delta).unwrap();
            let ctx = MatchContext::new(&reg).with_parallelism(par(threads));
            let incremental = state.apply(&ctx, &[&applied]).unwrap();
            let full = matcher.execute(&ctx, dblp, gs).unwrap();
            assert_eq!(
                incremental.table.rows(),
                full.table.rows(),
                "threads={threads} delta #{i}"
            );
        }
    }
}

/// The default context (no explicit Parallelism) honors MOMA_THREADS —
/// this is the leg CI's MOMA_THREADS={1,8} matrix actually varies.
#[test]
fn equivalence_under_env_parallelism() {
    let scenario = random_world(2);
    let (dblp, gs) = (scenario.ids.pub_dblp, scenario.ids.pub_gs);
    let matcher = AttributeMatcher::new("title", "title", SimFn::Trigram, 0.6)
        .with_blocking(Blocking::TrigramPrefix);
    let mut reg = scenario.registry.clone();
    let ctx = MatchContext::new(&reg);
    let mut state = matcher.prime(&ctx, dblp, gs).unwrap();
    let mut s = stream(7, 0.1, gs);
    for _ in 0..3 {
        let delta = s.next_delta(&reg);
        let applied = reg.apply_delta(&delta).unwrap();
        let ctx = MatchContext::new(&reg);
        let incremental = state.apply(&ctx, &[&applied]).unwrap();
        let full = matcher.execute(&ctx, dblp, gs).unwrap();
        assert_eq!(incremental.table.rows(), full.table.rows());
    }
}

/// End-to-end workflow-layer invalidation: a matcher patch flows through
/// the repository into a derived compose result, which stays equal to
/// deriving from scratch.
#[test]
fn downstream_compose_refresh_matches_recompute() {
    let scenario = random_world(3);
    let (dblp, gs) = (scenario.ids.pub_dblp, scenario.ids.pub_gs);
    let matcher = AttributeMatcher::new("title", "title", SimFn::Trigram, 0.6)
        .with_blocking(Blocking::TrigramPrefix);
    for threads in THREADS {
        let p = par(threads);
        let mut reg = scenario.registry.clone();
        let repo = MappingRepository::new();
        let ctx = MatchContext::new(&reg).with_parallelism(p);
        let mut state = matcher.prime(&ctx, dblp, gs).unwrap();
        repo.store_as("TitleSame", state.mapping().clone());
        repo.store(moma::core::Mapping::identity(
            dblp,
            reg.lds(dblp).len() as u32,
        ));
        let recipe = Recipe::Compose {
            left: format!("Identity({})", dblp.0),
            right: "TitleSame".into(),
            f: PathCombine::Min,
            g: PathAgg::Max,
        };
        repo.store_derived("Composed", recipe.clone(), &p).unwrap();

        let mut s = stream(11, 0.1, gs);
        for _ in 0..3 {
            let delta = s.next_delta(&reg);
            let applied = reg.apply_delta(&delta).unwrap();
            let ctx = MatchContext::new(&reg).with_parallelism(p);
            let refreshed = state
                .patch_and_refresh(&ctx, &[&applied], &repo, "TitleSame")
                .unwrap();
            assert_eq!(refreshed, vec!["Composed".to_owned()]);
            // The refreshed derived entry equals a from-scratch derivation.
            let from_scratch = MappingRepository::new();
            from_scratch.store_as("TitleSame", state.mapping().clone());
            from_scratch.store(moma::core::Mapping::identity(
                dblp,
                reg.lds(dblp).len() as u32,
            ));
            let fresh = from_scratch
                .store_derived("Composed", recipe.clone(), &p)
                .unwrap();
            assert_eq!(
                repo.get("Composed").unwrap().table.rows(),
                fresh.table.rows(),
                "threads={threads}"
            );
        }
    }
}
