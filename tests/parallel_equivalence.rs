//! Parallel ≡ sequential, property-tested across random worlds.
//!
//! The exec layer (`moma_core::exec`) promises that every parallel path
//! — attribute-matcher sharding, multi-attribute sharding, workflow
//! matcher fan-out, parallel compose joins — produces results
//! *bit-identical* to sequential execution. These properties drive that
//! promise across randomly generated datagen scenarios and thread counts
//! 1 / 2 / 8 (far oversubscribing small inputs on purpose: shard
//! boundaries, not thread scheduling, are what could break equivalence).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use moma::core::blocking::Blocking;
use moma::core::exec::Parallelism;
use moma::core::matchers::{
    AttrPair, AttributeMatcher, MatchContext, Matcher, MultiAttributeMatcher,
};
use moma::core::ops::merge::{MergeFn, MissingPolicy};
use moma::core::ops::select::Selection;
use moma::core::workflow::{CombineOp, Combiner, StepInput, Workflow, WorkflowStep};
use moma::core::MappingCache;
use moma::datagen::{Scenario, WorldConfig};
use moma::simstring::SimFn;
use proptest::prelude::*;

/// Thread counts under test; 1 must hit the sequential path, 2 and 8
/// must shard (min_shard_size is forced to 1).
const THREADS: [usize; 3] = [1, 2, 8];

/// A micro random world: the structure of `WorldConfig::small` shrunk to
/// a few dozen publications (proptest cases × 4 runs each must stay
/// cheap in debug builds). The seed also varies the GS noise level.
/// Worlds are cached by seed — the proptest cases redraw seeds from a
/// small pool, and generation (not matching) dominates the cost.
fn random_world(seed: u64) -> Arc<Scenario> {
    static CACHE: OnceLock<Mutex<HashMap<u64, Arc<Scenario>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut guard = cache.lock().unwrap();
    guard
        .entry(seed)
        .or_insert_with(|| {
            let mut cfg = WorldConfig::small();
            cfg.seed = seed;
            cfg.start_year = 2001;
            cfg.end_year = 2001;
            cfg.person_pool = 60;
            cfg.vldb_papers = (3, 5);
            cfg.sigmod_papers = (2, 4);
            cfg.tods = (1, (1, 2));
            cfg.vldbj = (1, (1, 2));
            cfg.record = (1, (1, 3));
            cfg.gs_noise_entries = 5 + (seed % 4) as usize * 5;
            Arc::new(Scenario::generate(cfg))
        })
        .clone()
}

fn par(threads: usize) -> Parallelism {
    Parallelism::new(threads).with_min_shard_size(1)
}

proptest! {
    /// Parallel attribute matcher ≡ sequential attribute matcher: same
    /// mapping — same pairs, same similarities, same row order — on the
    /// dirty DBLP×GS pair with blocking, at every thread count.
    #[test]
    fn attribute_matcher_parallel_equals_sequential(seed in 0u64..12) {
        let s = random_world(seed);
        let matcher = AttributeMatcher::new("title", "title", SimFn::Trigram, 0.7)
            .with_blocking(Blocking::TrigramPrefix);
        let seq_ctx = MatchContext::with_repository(&s.registry, &s.repository)
            .with_parallelism(Parallelism::sequential());
        let reference = matcher.execute(&seq_ctx, s.ids.pub_dblp, s.ids.pub_gs).unwrap();
        for threads in THREADS {
            let ctx = MatchContext::with_repository(&s.registry, &s.repository)
                .with_parallelism(par(threads));
            let got = matcher.execute(&ctx, s.ids.pub_dblp, s.ids.pub_gs).unwrap();
            prop_assert_eq!(
                got.table.rows(), reference.table.rows(),
                "seed={} threads={}", seed, threads
            );
        }
    }

    /// Same property for the multi-attribute matcher (combined
    /// title+year similarity, blocking on the primary attribute).
    #[test]
    fn multi_attribute_matcher_parallel_equals_sequential(seed in 0u64..12) {
        let s = random_world(seed);
        let matcher = MultiAttributeMatcher::new(
            vec![
                AttrPair::new("title", "title", SimFn::Trigram, 2.0),
                AttrPair::new("year", "year", SimFn::Year(0), 1.0),
            ],
            0.7,
        )
        .with_blocking(Blocking::TrigramPrefix);
        let seq_ctx = MatchContext::with_repository(&s.registry, &s.repository)
            .with_parallelism(Parallelism::sequential());
        let reference = matcher.execute(&seq_ctx, s.ids.pub_dblp, s.ids.pub_acm).unwrap();
        for threads in THREADS {
            let ctx = MatchContext::with_repository(&s.registry, &s.repository)
                .with_parallelism(par(threads));
            let got = matcher.execute(&ctx, s.ids.pub_dblp, s.ids.pub_acm).unwrap();
            prop_assert_eq!(
                got.table.rows(), reference.table.rows(),
                "seed={} threads={}", seed, threads
            );
        }
    }

    /// A full workflow — concurrent matcher fan-out, merge, selection —
    /// returns the identical mapping at every thread count.
    #[test]
    fn workflow_parallel_equals_sequential(seed in 0u64..12) {
        let s = random_world(seed);
        let wf = Workflow::new("P", "Publication@DBLP", "Publication@ACM").step(WorkflowStep {
            inputs: vec![
                StepInput::Matcher(Arc::new(AttributeMatcher::new(
                    "title", "title", SimFn::Trigram, 0.45,
                ))),
                StepInput::Matcher(Arc::new(AttributeMatcher::new(
                    "authors", "authors", SimFn::Trigram, 0.45,
                ))),
                StepInput::Matcher(Arc::new(AttributeMatcher::new(
                    "year", "year", SimFn::Year(0), 1.0,
                ))),
            ],
            combiner: Combiner {
                op: CombineOp::Merge { f: MergeFn::Avg, missing: MissingPolicy::Zero },
                selections: vec![Selection::Threshold(0.8)],
            },
            publish: None,
        });
        let seq_ctx = MatchContext::with_repository(&s.registry, &s.repository)
            .with_parallelism(Parallelism::sequential());
        let reference = wf.run(&seq_ctx, &MappingCache::new()).unwrap();
        for threads in THREADS {
            let ctx = MatchContext::with_repository(&s.registry, &s.repository)
                .with_parallelism(par(threads));
            let got = wf.run(&ctx, &MappingCache::new()).unwrap();
            prop_assert_eq!(
                got.table.rows(), reference.table.rows(),
                "seed={} threads={}", seed, threads
            );
        }
    }
}
