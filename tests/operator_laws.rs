//! Cross-crate algebraic laws of the mapping operators, checked with
//! proptest over arbitrary mappings.

use moma::core::ops::compose::{compose, PathAgg, PathCombine};
use moma::core::ops::merge::{merge, MergeFn, MissingPolicy};
use moma::core::ops::select::{select, Selection};
use moma::core::ops::setops::{difference, intersection, union};
use moma::core::Mapping;
use moma::model::LdsId;
use moma::table::MappingTable;
use proptest::prelude::*;

fn arb_mapping(domain: u32, range: u32) -> impl Strategy<Value = Mapping> {
    prop::collection::vec((0u32..16, 0u32..16, 0.01f64..=1.0), 0..40).prop_map(move |rows| {
        Mapping::same(
            "m",
            LdsId(domain),
            LdsId(range),
            MappingTable::from_triples(rows),
        )
    })
}

proptest! {
    /// merge(Max) is associative on pair sets and sims.
    #[test]
    fn merge_max_associative(
        a in arb_mapping(0, 1),
        b in arb_mapping(0, 1),
        c in arb_mapping(0, 1),
    ) {
        let ab_c = merge(
            &[&merge(&[&a, &b], MergeFn::Max, MissingPolicy::Ignore).unwrap(), &c],
            MergeFn::Max,
            MissingPolicy::Ignore,
        ).unwrap();
        let a_bc = merge(
            &[&a, &merge(&[&b, &c], MergeFn::Max, MissingPolicy::Ignore).unwrap()],
            MergeFn::Max,
            MissingPolicy::Ignore,
        ).unwrap();
        prop_assert_eq!(ab_c.table.pair_set(), a_bc.table.pair_set());
        for corr in ab_c.table.iter() {
            let s = a_bc.table.sim_of(corr.domain, corr.range).unwrap();
            prop_assert!((s - corr.sim).abs() < 1e-12);
        }
    }

    /// Set algebra: |A| = |A ∩ B| + |A \ B| and union ⊇ both.
    #[test]
    fn set_partition_law(a in arb_mapping(0, 1), b in arb_mapping(0, 1)) {
        let i = intersection(&a, &b).unwrap();
        let d = difference(&a, &b).unwrap();
        prop_assert_eq!(a.len(), i.len() + d.len());
        let u = union(&a, &b).unwrap();
        prop_assert!(u.len() >= a.len().max(b.len()));
        let up = u.table.pair_set();
        for c in a.table.iter().chain(b.table.iter()) {
            prop_assert!(up.contains(&(c.domain, c.range)));
        }
    }

    /// Composing with a complete identity mapping preserves pairs (for
    /// Max aggregation, which ignores path counts).
    #[test]
    fn compose_identity_right(a in arb_mapping(0, 1)) {
        let id = Mapping::identity(LdsId(1), 16);
        let composed = compose(&a, &id, PathCombine::Min, PathAgg::Max).unwrap();
        prop_assert_eq!(composed.table.pair_set(), a.table.pair_set());
        for c in a.table.iter() {
            let s = composed.table.sim_of(c.domain, c.range).unwrap();
            prop_assert!((s - c.sim).abs() < 1e-12);
        }
    }

    /// Inverse distributes over compose: (m1 ∘ m2)⁻¹ = m2⁻¹ ∘ m1⁻¹.
    #[test]
    fn compose_inverse_duality(m1 in arb_mapping(0, 1), m2 in arb_mapping(1, 2)) {
        let lhs = compose(&m1, &m2, PathCombine::Min, PathAgg::Relative).unwrap().inverse();
        let rhs = compose(&m2.inverse(), &m1.inverse(), PathCombine::Min, PathAgg::Relative)
            .unwrap();
        prop_assert_eq!(lhs.table.pair_set(), rhs.table.pair_set());
    }

    /// Selections commute with each other when they filter independently:
    /// threshold ∘ best1 == best1 ∘ threshold whenever the best survivor
    /// clears the threshold.
    #[test]
    fn threshold_after_best1_is_subset(m in arb_mapping(0, 1), t in 0.0f64..=1.0) {
        let b_then_t = select(&select(&m, &Selection::best1()), &Selection::Threshold(t));
        let t_then_b = select(&select(&m, &Selection::Threshold(t)), &Selection::best1());
        // best1-then-threshold is a subset of threshold-then-best1 (the
        // latter may promote a second-best pair that clears t).
        let sup = t_then_b.table.pair_set();
        for c in b_then_t.table.iter() {
            prop_assert!(sup.contains(&(c.domain, c.range)));
        }
    }

    /// Merging with an empty mapping under Ignore is identity.
    #[test]
    fn merge_with_empty_identity(a in arb_mapping(0, 1)) {
        let empty = Mapping::same("e", LdsId(0), LdsId(1), MappingTable::new());
        for f in [MergeFn::Avg, MergeFn::Min, MergeFn::Max] {
            let r = merge(&[&a, &empty], f, MissingPolicy::Ignore).unwrap();
            prop_assert_eq!(r.table.pair_set(), a.table.pair_set());
            for c in a.table.iter() {
                let s = r.table.sim_of(c.domain, c.range).unwrap();
                prop_assert!((s - c.sim).abs() < 1e-12);
            }
        }
        // Under Min-Zero (intersection), the empty mapping annihilates.
        let r = merge(&[&a, &empty], MergeFn::Min, MissingPolicy::Zero).unwrap();
        prop_assert!(r.is_empty());
    }
}
