//! Blocking ≡ AllPairs, property-tested across every candidate
//! generator.
//!
//! The candidate engines in `moma_core::blocking` promise that an
//! attribute matcher produces **the exact same mapping** — pair set,
//! similarity scores, row order — whether candidates are pruned or not:
//!
//! * [`Blocking::Threshold`] for *every* q-gram measure (trigram Dice,
//!   q-gram Dice/Jaccard/cosine/overlap) at any positive threshold —
//!   the T-occurrence bounds are exact,
//! * [`Blocking::Threshold`] for TF-IDF cosine — the weighted
//!   (max-weight prefix) bounds are exact over the frozen match corpus,
//!   and both plans score through the same cached vectors, so equality
//!   is bit-for-bit,
//! * [`Blocking::TrigramPrefix`] for trigram-Dice scoring at the
//!   matcher threshold (the prefix-filter guarantee),
//! * both falling back transparently (non-q-gram fixed measures under
//!   `Threshold` score all pairs).
//!
//! These properties drive that promise across randomly generated
//! datagen scenarios, thresholds {0.5, 0.7, 0.9}, hostile value shapes
//! (empty, punctuation-only, sub-trigram-length, repeat-heavy strings)
//! and thread counts 1 and 8 — the same extremes CI's MOMA_THREADS
//! matrix pins for the whole suite.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use moma::core::blocking::Blocking;
use moma::core::exec::Parallelism;
use moma::core::matchers::multi_attribute::{AttrPair, MultiAttributeMatcher};
use moma::core::matchers::{AttributeMatcher, MatchContext, Matcher};
use moma::datagen::{Scenario, WorldConfig};
use moma::model::{AttrDef, LogicalSource, ObjectType, SourceRegistry};
use moma::simstring::SimFn;
use proptest::prelude::*;

/// Thread counts under test; 1 must hit the sequential path, 8 must
/// shard (min_shard_size is forced to 1).
const THREADS: [usize; 2] = [1, 8];

/// The satellite thresholds every equivalence leg sweeps.
const THRESHOLDS: [f64; 3] = [0.5, 0.7, 0.9];

/// Every similarity function the threshold engine is exact for.
fn qgram_family() -> Vec<SimFn> {
    vec![
        SimFn::Trigram,
        SimFn::QgramDice(2),
        SimFn::QgramJaccard(3),
        SimFn::QgramCosine(3),
        SimFn::QgramOverlap(2),
    ]
}

/// A micro random world (see tests/parallel_equivalence.rs for the
/// sizing rationale), cached by seed.
fn random_world(seed: u64) -> Arc<Scenario> {
    static CACHE: OnceLock<Mutex<HashMap<u64, Arc<Scenario>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut guard = cache.lock().unwrap();
    guard
        .entry(seed)
        .or_insert_with(|| {
            let mut cfg = WorldConfig::small();
            cfg.seed = seed;
            cfg.start_year = 2001;
            cfg.end_year = 2001;
            cfg.person_pool = 60;
            cfg.vldb_papers = (3, 5);
            cfg.sigmod_papers = (2, 4);
            cfg.tods = (1, (1, 2));
            cfg.vldbj = (1, (1, 2));
            cfg.record = (1, (1, 3));
            cfg.gs_noise_entries = 5 + (seed % 4) as usize * 5;
            Arc::new(Scenario::generate(cfg))
        })
        .clone()
}

fn par(threads: usize) -> Parallelism {
    Parallelism::new(threads).with_min_shard_size(1)
}

/// Assert `blocking` produces row-for-row the reference (all-pairs)
/// mapping for this matcher configuration, at every thread count.
fn assert_matches_allpairs(
    reg: &SourceRegistry,
    domain: moma::model::LdsId,
    range: moma::model::LdsId,
    sim: SimFn,
    threshold: f64,
    blocking: Blocking,
) {
    let reference = AttributeMatcher::new("title", "title", sim.clone(), threshold)
        .with_blocking(Blocking::AllPairs)
        .execute(
            &MatchContext::new(reg).with_parallelism(Parallelism::sequential()),
            domain,
            range,
        )
        .unwrap();
    for threads in THREADS {
        let ctx = MatchContext::new(reg).with_parallelism(par(threads));
        let blocked = AttributeMatcher::new("title", "title", sim.clone(), threshold)
            .with_blocking(blocking)
            .execute(&ctx, domain, range)
            .unwrap();
        assert_eq!(
            reference.table.rows(),
            blocked.table.rows(),
            "sim={} t={threshold} blocking={blocking:?} threads={threads}",
            sim.name()
        );
    }
}

/// As [`assert_matches_allpairs`] for the TF-IDF matcher (the corpus is
/// rebuilt from both columns inside every execution, so pruned and
/// unpruned runs see identical weights).
fn assert_tfidf_matches_allpairs(
    reg: &SourceRegistry,
    domain: moma::model::LdsId,
    range: moma::model::LdsId,
    threshold: f64,
) {
    let reference = AttributeMatcher::tfidf("title", "title", threshold)
        .with_blocking(Blocking::AllPairs)
        .execute(
            &MatchContext::new(reg).with_parallelism(Parallelism::sequential()),
            domain,
            range,
        )
        .unwrap();
    for threads in THREADS {
        let ctx = MatchContext::new(reg).with_parallelism(par(threads));
        let pruned = AttributeMatcher::tfidf("title", "title", threshold)
            .with_blocking(Blocking::Threshold)
            .execute(&ctx, domain, range)
            .unwrap();
        assert_eq!(
            reference.table.rows(),
            pruned.table.rows(),
            "tfidf t={threshold} threads={threads}"
        );
    }
}

/// A source of hostile values: empties, punctuation-only (normalizes to
/// nothing), sub-trigram-length and repeat-heavy strings, plus a few
/// plausible titles. Exercises the gramless edge (empty ↔ empty pairs
/// score 1.0 and must be matched), padded short grams and the
/// multiset/set distinction.
fn hostile_world() -> (SourceRegistry, moma::model::LdsId, moma::model::LdsId) {
    let values = [
        "",
        "!!",
        "?!?",
        "a",
        "ab",
        "aaa",
        "aaaa",
        "ab ab ab",
        "aa bb aa",
        "data cleaning",
        "data cleaning!",
        "Data  Cleaning",
        "schema matching",
        "a b a b",
        "bbbb aaaa",
        "...",
    ];
    let mut reg = SourceRegistry::new();
    let mk = |name: &str, skip: usize| {
        let mut src =
            LogicalSource::new(name, ObjectType::new("Thing"), vec![AttrDef::text("title")]);
        for (i, v) in values.iter().enumerate().skip(skip) {
            src.insert_record(format!("{name}{i}"), vec![("title", (*v).into())])
                .unwrap();
        }
        src
    };
    let a = mk("A", 0);
    let b = mk("B", 1); // offset so the sides differ
    let a = reg.register(a).unwrap();
    let b = reg.register(b).unwrap();
    (reg, a, b)
}

/// Threshold blocking ≡ all-pairs on the hostile world, for every
/// q-gram measure × satellite threshold × thread count. Deterministic
/// (no proptest): this is the edge-case grid the issue pins.
#[test]
fn threshold_exact_on_hostile_values() {
    let (reg, a, b) = hostile_world();
    for sim in qgram_family() {
        for t in THRESHOLDS {
            assert_matches_allpairs(&reg, a, b, sim.clone(), t, Blocking::Threshold);
        }
    }
}

/// TF-IDF threshold blocking ≡ all-pairs on the hostile world — the
/// token-free values (empty, punctuation-only) must still pair up at
/// cosine 1.0 through the empty-vector edge of the weighted index.
#[test]
fn tfidf_threshold_exact_on_hostile_values() {
    let (reg, a, b) = hostile_world();
    for t in THRESHOLDS {
        assert_tfidf_matches_allpairs(&reg, a, b, t);
    }
}

/// The prefix filter is exact for trigram-Dice scoring — including the
/// gramless edge (empty ↔ punctuation-only pairs) it historically
/// missed.
#[test]
fn trigram_prefix_exact_on_hostile_values() {
    let (reg, a, b) = hostile_world();
    for t in THRESHOLDS {
        assert_matches_allpairs(&reg, a, b, SimFn::Trigram, t, Blocking::TrigramPrefix);
    }
}

/// Non-q-gram measures under Threshold blocking transparently score all
/// pairs — still exactly equal to AllPairs, hostile values included.
#[test]
fn threshold_fallback_exact_for_non_qgram_measures() {
    let (reg, a, b) = hostile_world();
    for sim in [SimFn::Jaro, SimFn::Levenshtein, SimFn::TokenJaccard] {
        assert_matches_allpairs(&reg, a, b, sim, 0.7, Blocking::Threshold);
    }
}

/// Multi-attribute: per-attribute threshold indexes (derived bounds,
/// intersection, missing-value handling) ≡ all-pairs on random
/// scenarios with genuinely missing values.
///
/// Two configurations stress complementary paths:
/// - DBLP ↔ GS adds a `pages` q-gram attribute that Google Scholar
///   records never carry, so that index's range side is entirely
///   unconditional and must prune nothing;
/// - DBLP ↔ ACM pairs two indexable q-gram attributes (`title`,
///   `pages`) so candidates really are the intersection of two
///   independently pruned sets.
#[test]
fn multi_attribute_threshold_exact() {
    for seed in 0..3u64 {
        let scenario = random_world(seed);
        let reg = &scenario.registry;
        let configs = [
            (
                scenario.ids.pub_dblp,
                scenario.ids.pub_gs,
                vec![
                    AttrPair::new("title", "title", SimFn::Trigram, 2.0),
                    AttrPair::new("year", "year", SimFn::Year(1), 1.0),
                    AttrPair::new("pages", "pages", SimFn::QgramDice(2), 1.0),
                ],
            ),
            (
                scenario.ids.pub_dblp,
                scenario.ids.pub_acm,
                vec![
                    AttrPair::new("title", "title", SimFn::Trigram, 2.0),
                    AttrPair::new("pages", "pages", SimFn::QgramDice(2), 1.0),
                ],
            ),
        ];
        for (domain, range, attrs) in configs {
            for t in THRESHOLDS {
                let base = MultiAttributeMatcher::new(attrs.clone(), t);
                let reference = base
                    .clone()
                    .with_blocking(Blocking::AllPairs)
                    .execute(
                        &MatchContext::new(reg).with_parallelism(Parallelism::sequential()),
                        domain,
                        range,
                    )
                    .unwrap();
                for threads in THREADS {
                    let ctx = MatchContext::new(reg).with_parallelism(par(threads));
                    let blocked = base
                        .clone()
                        .with_blocking(Blocking::Threshold)
                        .execute(&ctx, domain, range)
                        .unwrap();
                    assert_eq!(
                        reference.table.rows(),
                        blocked.table.rows(),
                        "seed={seed} t={t} threads={threads}"
                    );
                }
            }
        }
    }
}

proptest! {
    /// Threshold blocking ≡ all-pairs on random datagen worlds for a
    /// randomly drawn q-gram measure and satellite threshold.
    #[test]
    fn threshold_equals_allpairs_random_scenarios(
        seed in 0u64..6,
        sim_ix in 0usize..5,
        t_ix in 0usize..3,
    ) {
        let scenario = random_world(seed);
        let sim = qgram_family()[sim_ix].clone();
        assert_matches_allpairs(
            &scenario.registry,
            scenario.ids.pub_dblp,
            scenario.ids.pub_gs,
            sim,
            THRESHOLDS[t_ix],
            Blocking::Threshold,
        );
    }

    /// TF-IDF under Threshold blocking (weighted-prefix pruning over
    /// cached vectors) is bit-identical to all-pairs on random datagen
    /// worlds at every satellite threshold and thread count.
    #[test]
    fn tfidf_threshold_equals_allpairs_random_scenarios(
        seed in 0u64..6,
        t_ix in 0usize..3,
    ) {
        let scenario = random_world(seed);
        assert_tfidf_matches_allpairs(
            &scenario.registry,
            scenario.ids.pub_dblp,
            scenario.ids.pub_gs,
            THRESHOLDS[t_ix],
        );
    }

    /// The prefix filter stays exact for trigram scoring on random
    /// scenarios (its historical guarantee, now including gramless
    /// values).
    #[test]
    fn trigram_prefix_equals_allpairs_random_scenarios(
        seed in 0u64..6,
        t_ix in 0usize..3,
    ) {
        let scenario = random_world(seed);
        assert_matches_allpairs(
            &scenario.registry,
            scenario.ids.pub_dblp,
            scenario.ids.pub_gs,
            SimFn::Trigram,
            THRESHOLDS[t_ix],
            Blocking::TrigramPrefix,
        );
    }

    /// Threshold blocking ≡ all-pairs on fully random hostile strings
    /// over a tiny alphabet (maximal gram collisions and repeats),
    /// self-match configuration.
    #[test]
    fn threshold_equals_allpairs_random_strings(
        // A tiny alphabet with punctuation and spaces: length 0 gives
        // empty strings, pure punctuation normalizes to gramless, and
        // the a–c letters collide constantly (repeat-heavy multisets).
        values in prop::collection::vec("[a-c!?. ]{0,8}", 2..16),
        sim_ix in 0usize..5,
        t_ix in 0usize..3,
    ) {
        let mut reg = SourceRegistry::new();
        let mut src = LogicalSource::new(
            "R",
            ObjectType::new("Thing"),
            vec![AttrDef::text("title")],
        );
        for (i, v) in values.iter().enumerate() {
            src.insert_record(format!("r{i}"), vec![("title", v.clone().into())])
                .unwrap();
        }
        let r = reg.register(src).unwrap();
        let sim = qgram_family()[sim_ix].clone();
        let t = THRESHOLDS[t_ix];
        let reference = AttributeMatcher::new("title", "title", sim.clone(), t)
            .with_blocking(Blocking::AllPairs)
            .execute(&MatchContext::new(&reg), r, r)
            .unwrap();
        for threads in THREADS {
            let ctx = MatchContext::new(&reg).with_parallelism(par(threads));
            let blocked = AttributeMatcher::new("title", "title", sim.clone(), t)
                .with_blocking(Blocking::Threshold)
                .execute(&ctx, r, r)
                .unwrap();
            prop_assert_eq!(
                reference.table.rows(),
                blocked.table.rows(),
                "sim={} t={} threads={}", sim.name(), t, threads
            );
        }
    }
}
