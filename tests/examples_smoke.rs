//! Workspace smoke test: every example in `examples/` must compile and run
//! to completion. Examples are the documented entry points to the system;
//! a broken one is a broken front door, and nothing else executes them.

use std::path::Path;
use std::process::Command;

/// Run `cargo run --release --example <name>` in the workspace root.
///
/// Each example is a separate release-build subprocess, so re-running
/// them under a single-threaded libtest harness cannot expose any
/// in-process ordering issue — `MOMA_SKIP_EXAMPLE_TESTS=1` lets such
/// re-run legs (CI's serial-harness step) skip the subprocess cost.
fn run_example(name: &str) {
    if std::env::var_os("MOMA_SKIP_EXAMPLE_TESTS").is_some() {
        eprintln!("MOMA_SKIP_EXAMPLE_TESTS set; skipping example {name}");
        return;
    }
    let cargo = env!("CARGO");
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    assert!(
        Path::new(manifest_dir)
            .join("examples")
            .join(format!("{name}.rs"))
            .exists(),
        "example source examples/{name}.rs is missing"
    );
    let output = Command::new(cargo)
        .args(["run", "--release", "--quiet", "--example", name])
        .current_dir(manifest_dir)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
    assert!(
        output.status.success(),
        "example {name} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}

#[test]
fn quickstart() {
    run_example("quickstart");
}

#[test]
fn duplicate_detection() {
    run_example("duplicate_detection");
}

#[test]
fn bibliographic_integration() {
    run_example("bibliographic_integration");
}

#[test]
fn parallel_matching() {
    run_example("parallel_matching");
}

#[test]
fn hub_integration() {
    run_example("hub_integration");
}

#[test]
fn self_tuning() {
    run_example("self_tuning");
}

#[test]
fn incremental_matching() {
    run_example("incremental_matching");
}

#[test]
fn workflow_script() {
    run_example("workflow_script");
}

#[test]
fn all_examples_are_covered() {
    // If a new example lands without a smoke test above, fail loudly.
    let covered = [
        "quickstart",
        "duplicate_detection",
        "bibliographic_integration",
        "parallel_matching",
        "incremental_matching",
        "hub_integration",
        "self_tuning",
        "workflow_script",
    ];
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut missing = Vec::new();
    for entry in std::fs::read_dir(dir).expect("examples/ directory") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "rs") {
            let stem = path
                .file_stem()
                .expect("file stem")
                .to_string_lossy()
                .into_owned();
            if !covered.contains(&stem.as_str()) {
                missing.push(stem);
            }
        }
    }
    assert!(
        missing.is_empty(),
        "examples without a smoke test: {missing:?}"
    );
}
