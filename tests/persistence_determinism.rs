//! Cross-crate persistence and determinism guarantees.

use moma::core::matchers::{AttributeMatcher, MatchContext, Matcher};
use moma::core::MappingRepository;
use moma::datagen::{Scenario, WorldConfig};
use moma::simstring::SimFn;

#[test]
fn repository_roundtrip_through_disk() {
    let scenario = Scenario::small();
    let ctx = MatchContext::with_repository(&scenario.registry, &scenario.repository);
    let mapping = AttributeMatcher::new("title", "title", SimFn::Trigram, 0.8)
        .execute(&ctx, scenario.ids.pub_dblp, scenario.ids.pub_acm)
        .unwrap();
    let repo = MappingRepository::new();
    repo.store_as("roundtrip.title", mapping.clone());
    // Persist a real association mapping too (different kind).
    repo.store_as(
        "roundtrip.assoc",
        (*scenario.repository.require("DBLP.VenuePub").unwrap()).clone(),
    );

    let dir = std::env::temp_dir().join("moma_integration_persist");
    let _ = std::fs::remove_dir_all(&dir);
    repo.persist_dir(&dir, &scenario.registry).unwrap();

    let restored = MappingRepository::new();
    let loaded = restored.load_dir(&dir, &scenario.registry).unwrap();
    assert_eq!(loaded, 2);
    let back = restored.require("roundtrip.title").unwrap();
    assert_eq!(back.table.pair_set(), mapping.table.pair_set());
    for c in mapping.table.iter() {
        let s = back.table.sim_of(c.domain, c.range).unwrap();
        assert!((s - c.sim).abs() < 1e-9);
    }
    let assoc = restored.require("roundtrip.assoc").unwrap();
    assert!(matches!(
        assoc.kind,
        moma::core::MappingKind::Association(_)
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn full_pipeline_is_deterministic() {
    let run_once = || {
        let ctx = moma::eval::EvalContext::small();
        let report = moma::eval::experiments::table2::run(&ctx);
        report.render()
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn different_seeds_give_different_worlds_same_shapes() {
    let mut cfg_a = WorldConfig::small();
    cfg_a.seed = 1;
    let mut cfg_b = WorldConfig::small();
    cfg_b.seed = 2;
    let ctx_a = moma::eval::EvalContext::with_config(cfg_a);
    let ctx_b = moma::eval::EvalContext::with_config(cfg_b);

    // Worlds differ...
    let title_a = ctx_a
        .scenario
        .registry
        .lds(ctx_a.scenario.ids.pub_dblp)
        .get(0)
        .unwrap()
        .value(0)
        .unwrap()
        .to_match_string();
    let title_b = ctx_b
        .scenario
        .registry
        .lds(ctx_b.scenario.ids.pub_dblp)
        .get(0)
        .unwrap()
        .value(0)
        .unwrap()
        .to_match_string();
    assert_ne!(title_a, title_b);

    // ...but the evaluation shape is seed-independent: merge beats title
    // matching on precision in both worlds (the Table 2 claim).
    for ctx in [&ctx_a, &ctx_b] {
        let r = moma::eval::experiments::table2::run(ctx);
        let p_merge = r.cell_pct("Precision", "Merge").unwrap();
        let p_title = r.cell_pct("Precision", "Title").unwrap();
        assert!(
            p_merge > p_title,
            "seed-dependent shape: merge {p_merge} vs title {p_title}"
        );
    }
}

#[test]
fn gold_standards_are_internally_consistent() {
    let s = Scenario::small();
    // Venue gold pairs only reference venues that exist.
    let n_venues_d = s.registry.lds(s.ids.venue_dblp).len() as u32;
    let n_venues_a = s.registry.lds(s.ids.venue_acm).len() as u32;
    for (d, a) in s.gold.venue_dblp_acm.iter() {
        assert!(d < n_venues_d);
        assert!(a < n_venues_a);
    }
    // Publication golds: DBLP-GS ∘ GS-ACM ⊆ DBLP-ACM (transitivity).
    let dg = &s.gold.pub_dblp_gs;
    let ga = &s.gold.pub_gs_acm;
    let da = &s.gold.pub_dblp_acm;
    for (d, g) in dg.iter() {
        for (g2, a) in ga.iter() {
            if g == g2 {
                assert!(
                    da.contains(d, a),
                    "gold transitivity violated: ({d},{g}) + ({g},{a})"
                );
            }
        }
    }
}
