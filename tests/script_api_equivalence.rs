//! The iFuice script language and the direct Rust API must agree.

use moma::core::matchers::neighborhood::nh_match;
use moma::core::matchers::{AttributeMatcher, MatchContext, Matcher};
use moma::core::ops::compose::PathAgg;
use moma::core::ops::merge::{merge, MergeFn, MissingPolicy};
use moma::core::ops::select::select_constraint;
use moma::datagen::Scenario;
use moma::ifuice::script::run_script;

fn assert_same_mapping(a: &moma::core::Mapping, b: &moma::core::Mapping) {
    assert_eq!(a.table.pair_set(), b.table.pair_set());
    for c in a.table.iter() {
        let s = b.table.sim_of(c.domain, c.range).unwrap();
        assert!(
            (s - c.sim).abs() < 1e-9,
            "pair ({},{}): {} vs {}",
            c.domain,
            c.range,
            c.sim,
            s
        );
    }
}

#[test]
fn section_4_3_script_equals_api() {
    let scenario = Scenario::small();

    // Script execution.
    let script_result = run_script(
        r#"
        $CoAuthSim = nhMatch(DBLP.CoAuthor, DBLP.AuthorAuthor, DBLP.CoAuthor);
        $NameSim = attrMatch(DBLP.Author, DBLP.Author, Trigram, 0.5, "[name]", "[name]");
        $Merged = merge($CoAuthSim, $NameSim, Average, Zero);
        $Result = select($Merged, "[domain.id]<>[range.id]");
        RETURN $Result;
        "#,
        &scenario.registry,
        &scenario.repository,
    )
    .unwrap();
    let via_script = script_result.as_mapping().unwrap();

    // The same pipeline through the Rust API.
    let coauthor = scenario.repository.require("DBLP.CoAuthor").unwrap();
    let identity = scenario.repository.require("DBLP.AuthorAuthor").unwrap();
    let coauth_sim = nh_match(&coauthor, &identity, &coauthor, PathAgg::Relative).unwrap();
    let ctx = MatchContext::with_repository(&scenario.registry, &scenario.repository);
    let name_sim = AttributeMatcher::new("name", "name", moma::simstring::SimFn::Trigram, 0.5)
        .execute(&ctx, scenario.ids.author_dblp, scenario.ids.author_dblp)
        .unwrap();
    let merged = merge(&[&coauth_sim, &name_sim], MergeFn::Avg, MissingPolicy::Zero).unwrap();
    let via_api = select_constraint(&merged, |d, r, _| d != r);

    assert_same_mapping(via_script, &via_api);
}

#[test]
fn script_compose_equals_api_compose() {
    let scenario = Scenario::small();
    let script_result = run_script(
        "RETURN compose(get(\"DBLP.VenuePub\"), get(\"DBLP.PubAuthor\"), Min, Relative);",
        &scenario.registry,
        &scenario.repository,
    )
    .unwrap();
    let via_script = script_result.as_mapping().unwrap();

    let venue_pub = scenario.repository.require("DBLP.VenuePub").unwrap();
    let pub_author = scenario.repository.require("DBLP.PubAuthor").unwrap();
    let via_api = moma::core::ops::compose::compose(
        &venue_pub,
        &pub_author,
        moma::core::ops::compose::PathCombine::Min,
        PathAgg::Relative,
    )
    .unwrap();
    assert_same_mapping(via_script, &via_api);
    // Semantic check: venue -> authors publishing there.
    assert!(!via_api.is_empty());
}

#[test]
fn script_selection_builders_equal_api() {
    let scenario = Scenario::small();
    let ctx = MatchContext::with_repository(&scenario.registry, &scenario.repository);
    let mapping = AttributeMatcher::new("title", "title", moma::simstring::SimFn::Trigram, 0.4)
        .execute(&ctx, scenario.ids.pub_dblp, scenario.ids.pub_acm)
        .unwrap();
    scenario.repository.store_as("test.m", mapping.clone());

    for (script_sel, api_sel) in [
        (
            "threshold(0.8)",
            moma::core::ops::select::Selection::Threshold(0.8),
        ),
        (
            "bestN(1, domain)",
            moma::core::ops::select::Selection::best1(),
        ),
        (
            "best1delta(0.05, abs, range)",
            moma::core::ops::select::Selection::Best1Delta {
                delta: 0.05,
                relative: false,
                side: moma::core::ops::select::Side::Range,
            },
        ),
    ] {
        let src = format!("RETURN select(get(\"test.m\"), {script_sel});");
        let via_script = run_script(&src, &scenario.registry, &scenario.repository).unwrap();
        let via_api = moma::core::ops::select::select(&mapping, &api_sel);
        assert_same_mapping(via_script.as_mapping().unwrap(), &via_api);
    }
}
