//! Self-tuning a matcher configuration (paper Section 2.2).
//!
//! ```text
//! cargo run --release --example self_tuning
//! ```
//!
//! Builds labeled training data from the gold standard, grid-searches
//! (similarity function × threshold), trains a CART decision tree over
//! the multi-feature similarity vectors, and compares both against a
//! hand-picked default configuration.

use moma::datagen::Scenario;
use moma::simstring::SimFn;
use moma::tune::{
    build_dataset, candidate_pairs, train_test_split, DecisionTree, FeatureSpec, GridSearch,
    TreeConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::small();
    let (d, r) = (scenario.ids.pub_dblp, scenario.ids.pub_acm);
    let gold = &scenario.gold.pub_dblp_acm;

    // Feature space: what the tuner may choose from.
    let specs = vec![
        FeatureSpec::new("title", "title", SimFn::Trigram),
        FeatureSpec::new("title", "title", SimFn::Levenshtein),
        FeatureSpec::new("title", "title", SimFn::TokenJaccard),
        FeatureSpec::new("authors", "authors", SimFn::Trigram),
        FeatureSpec::new("year", "year", SimFn::Year(0)),
    ];
    let feature_names: Vec<&str> = vec![
        "title:trigram",
        "title:levenshtein",
        "title:jaccard",
        "authors:trigram",
        "year",
    ];

    let candidates = candidate_pairs(&scenario.registry, d, r, "title", gold);
    let data = build_dataset(&scenario.registry, d, r, &specs, &candidates, gold);
    println!(
        "training data: {} candidate pairs ({} positive)",
        data.len(),
        data.iter().filter(|p| p.label).count()
    );
    let (train, test) = train_test_split(data, 0.7, 42);

    // --- grid search -----------------------------------------------------
    let grid = GridSearch::default()
        .search(&train, &test)
        .expect("non-empty data");
    println!(
        "\ngrid search winner: {} >= {:.2}  (train F {:.1}%, test F {:.1}%)",
        feature_names[grid.feature],
        grid.threshold,
        grid.train_f1 * 100.0,
        grid.test_f1 * 100.0
    );

    // --- decision tree -----------------------------------------------------
    let tree = DecisionTree::fit(&train, TreeConfig::default());
    let tree_f1 = moma::tune::dataset::f1_of(&test, |p| tree.classify(&p.features));
    println!(
        "\ndecision tree ({} nodes, depth {}):",
        tree.node_count(),
        tree.depth()
    );
    print!("{}", tree.render_rules(&feature_names));
    println!("tree test F: {:.1}%", tree_f1 * 100.0);

    // --- untuned baseline ---------------------------------------------------
    let default_f1 =
        moma::tune::dataset::f1_of(&test, |p| p.features[1] >= 0.5 /* levenshtein@0.5 */);
    println!(
        "\nuntuned baseline (levenshtein >= 0.5): F {:.1}%",
        default_f1 * 100.0
    );
    assert!(
        grid.test_f1 >= default_f1,
        "tuning should not underperform the baseline"
    );
    assert!(tree_f1 > 0.5);
    Ok(())
}
