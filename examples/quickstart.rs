//! Quickstart: match two small publication sources with MOMA.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Demonstrates the core loop: register sources → run attribute matchers
//! → merge their same-mappings → select → inspect correspondences.

use moma::core::matchers::{AttributeMatcher, MatchContext, Matcher};
use moma::core::ops::{merge, select, MergeFn, MissingPolicy, Selection};
use moma::model::{AttrDef, LogicalSource, ObjectType, SourceRegistry};
use moma::simstring::SimFn;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Two sources with overlapping, dirty data -------------------
    let mut registry = SourceRegistry::new();

    let mut dblp = LogicalSource::new(
        "DBLP",
        ObjectType::new("Publication"),
        vec![AttrDef::text("title"), AttrDef::year("year")],
    );
    for (id, title, year) in [
        (
            "conf/vldb/MadhavanBR01",
            "Generic Schema Matching with Cupid",
            2001u16,
        ),
        (
            "conf/vldb/ChirkovaHS01",
            "A formal perspective on the view selection problem",
            2001,
        ),
        ("journals/tods/Editorial02", "Editor's Notes", 2002),
        (
            "conf/sigmod/RamanH01",
            "Potter's Wheel: An Interactive Data Cleaning System",
            2001,
        ),
    ] {
        dblp.insert_record(id, vec![("title", title.into()), ("year", year.into())])?;
    }

    let mut acm = LogicalSource::new(
        "ACM",
        ObjectType::new("Publication"),
        vec![AttrDef::text("title"), AttrDef::year("year")],
    );
    for (id, title, year) in [
        ("P-672191", "Generic schema matching with CUPID", 2001u16),
        (
            "P-672216",
            "A formal perspective on the view selection problem.",
            2001,
        ),
        ("P-100001", "Editor's Notes", 1999), // recurring newsletter title!
        (
            "P-100002",
            "Robust and Efficient Fuzzy Match for Online Data Cleaning",
            2003,
        ),
    ] {
        acm.insert_record(id, vec![("title", title.into()), ("year", year.into())])?;
    }

    let dblp_id = registry.register(dblp)?;
    let acm_id = registry.register(acm)?;

    // --- 2. Two independent attribute matchers -------------------------
    let ctx = MatchContext::new(&registry);
    let by_title = AttributeMatcher::new("title", "title", SimFn::Trigram, 0.5)
        .execute(&ctx, dblp_id, acm_id)?;
    let by_year = AttributeMatcher::new("year", "year", SimFn::Year(0), 1.0)
        .execute(&ctx, dblp_id, acm_id)?;
    println!("title matcher:  {} correspondences", by_title.len());
    println!("year matcher:   {} correspondences", by_year.len());

    // --- 3. Merge with Avg (missing = 0) and select at 80% -------------
    // The recurring "Editor's Notes" pair has title sim 1.0 but different
    // years, so the merge pushes it below the threshold — the Table 2
    // mechanism of the paper.
    let combined = merge(&[&by_title, &by_year], MergeFn::Avg, MissingPolicy::Zero)?;
    let result = select(&combined, &Selection::Threshold(0.8));

    println!("\nfinal same-mapping ({} correspondences):", result.len());
    let d = registry.lds(dblp_id);
    let a = registry.lds(acm_id);
    for c in result.table.iter() {
        println!(
            "  {}  ~  {}   (sim {:.2})",
            d.get(c.domain).unwrap().id,
            a.get(c.range).unwrap().id,
            c.sim
        );
    }
    assert_eq!(result.len(), 2, "exactly the two true pairs survive");
    Ok(())
}
