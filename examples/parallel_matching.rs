//! Parallel matching: the `Parallelism` knob end to end.
//!
//! MOMA's hot paths — attribute-matcher probing, mapping-table joins,
//! trigram-index construction — shard their input across threads and
//! merge per-shard results in a fixed order, so the output is
//! bit-identical to a sequential run at every thread count. This example
//! demonstrates exactly that on a generated bibliographic world and
//! prints the wall-clock times (speedup appears on multi-core hardware;
//! determinism holds everywhere).
//!
//! ```bash
//! cargo run --release --example parallel_matching
//! MOMA_THREADS=8 cargo run --release --example parallel_matching
//! ```

use std::time::Instant;

use moma::core::blocking::Blocking;
use moma::core::exec::Parallelism;
use moma::core::matchers::{AttributeMatcher, MatchContext, Matcher};
use moma::datagen::{Scenario, WorldConfig};
use moma::simstring::SimFn;
use moma::table::join::{collect_multiset, hash_join, par_hash_join, par_sort_merge_join};

fn main() {
    // A mid-size world: enough rows for sharding to engage.
    let mut cfg = WorldConfig::small();
    cfg.gs_noise_entries = 1_500;
    let scenario = Scenario::generate(cfg);

    // --- attribute matching: sequential vs parallel -------------------
    let matcher = AttributeMatcher::new("title", "title", SimFn::Trigram, 0.75)
        .with_blocking(Blocking::TrigramPrefix);

    let seq_ctx = MatchContext::with_repository(&scenario.registry, &scenario.repository)
        .with_parallelism(Parallelism::sequential());
    let t0 = Instant::now();
    let sequential = matcher
        .execute(&seq_ctx, scenario.ids.pub_dblp, scenario.ids.pub_gs)
        .expect("sequential match");
    let seq_time = t0.elapsed();

    // `Parallelism::from_env` honors MOMA_THREADS (the CLI's --threads
    // flag passes an explicit `Parallelism` the same way this example
    // does); default is one thread per CPU.
    let par = Parallelism::from_env();
    let par_ctx = MatchContext::with_repository(&scenario.registry, &scenario.repository)
        .with_parallelism(par);
    let t0 = Instant::now();
    let parallel = matcher
        .execute(&par_ctx, scenario.ids.pub_dblp, scenario.ids.pub_gs)
        .expect("parallel match");
    let par_time = t0.elapsed();

    assert_eq!(
        sequential.table.rows(),
        parallel.table.rows(),
        "parallel matching must be bit-identical"
    );
    println!(
        "attribute match DBLP×GS: {} correspondences | sequential {seq_time:?}, \
         {} threads {par_time:?}",
        sequential.len(),
        par.threads
    );

    // --- joins: every strategy, every thread count, one multiset ------
    let left = scenario
        .repository
        .require("DBLP.VenuePub")
        .expect("association")
        .table
        .clone();
    let right = left.inverted();
    let reference = collect_multiset(|l, r, s| hash_join(l, r, s), &left, &right);
    for threads in [1usize, 2, 4, 8] {
        let p = Parallelism::new(threads).with_min_shard_size(1);
        let ph = collect_multiset(|l, r, s| par_hash_join(l, r, &p, s), &left, &right);
        let psm = collect_multiset(|l, r, s| par_sort_merge_join(l, r, &p, s), &left, &right);
        assert_eq!(ph, reference);
        assert_eq!(psm, reference);
        println!(
            "join VenuePub ∘ VenuePub⁻¹ at {threads} thread(s): {} paths (identical)",
            ph.len()
        );
    }

    println!("deterministic at every thread count ✓");
}
