//! Incremental matching: patching a materialized mapping under source
//! deltas instead of re-matching from scratch.
//!
//! The example generates the synthetic bibliographic world, matches
//! `Publication@DBLP` × `Publication@GS` once (priming a
//! `DeltaMatchState`), then streams seeded deltas — adds, removals,
//! attribute updates — through the incremental engine. Every step checks
//! the patched mapping is **bit-identical** to a full re-match and
//! prints both costs. Finally, a compose result derived in the mapping
//! repository is refreshed through version-stamp invalidation.
//!
//! ```bash
//! cargo run --release --example incremental_matching
//! MOMA_THREADS=8 cargo run --release --example incremental_matching
//! ```

use std::time::Instant;

use moma::core::blocking::Blocking;
use moma::core::matchers::{AttributeMatcher, MatchContext, Matcher};
use moma::core::ops::compose::{PathAgg, PathCombine};
use moma::core::{MappingRepository, Recipe};
use moma::datagen::{DeltaStream, EvolveConfig, Scenario, WorldConfig};
use moma::simstring::SimFn;

fn main() {
    // A mid-size world: enough GS rows for incremental savings to show.
    let mut cfg = WorldConfig::small();
    cfg.gs_noise_entries = 1_500;
    let scenario = Scenario::generate(cfg);
    let mut registry = scenario.registry;
    let (dblp, gs) = (scenario.ids.pub_dblp, scenario.ids.pub_gs);

    // --- prime: one full match captures the incremental state ---------
    let matcher = AttributeMatcher::new("title", "title", SimFn::Trigram, 0.75)
        .with_blocking(Blocking::TrigramPrefix);
    let ctx = MatchContext::new(&registry);
    let t0 = Instant::now();
    let mut state = matcher.prime(&ctx, dblp, gs).expect("prime");
    println!(
        "primed with {} correspondences in {:?} (incremental mode: {})",
        state.mapping().len(),
        t0.elapsed(),
        state.is_incremental(),
    );
    assert!(state.is_incremental());

    // Materialize the mapping and derive a compose result from it: the
    // repository's version stamps keep the derived entry fresh below.
    // (The identity leaf sits on the DBLP side, which this example never
    // mutates — a leaf whose source churns would have to be re-stored by
    // its owner, like "TitleSame" is.)
    let repository = MappingRepository::new();
    repository.store_as("TitleSame", state.mapping().clone());
    repository.store(moma::core::Mapping::identity(
        dblp,
        registry.lds(dblp).len() as u32,
    ));
    repository
        .store_derived(
            "DblpToGs",
            Recipe::Compose {
                left: format!("Identity({})", dblp.0),
                right: "TitleSame".into(),
                f: PathCombine::Min,
                g: PathAgg::Max,
            },
            &moma::core::Parallelism::from_env(),
        )
        .expect("derive compose");

    // --- stream deltas through the incremental engine -----------------
    let mut stream = DeltaStream::new(EvolveConfig::with_churn(0.02), gs);
    let (mut incr_total, mut full_total) = (0.0f64, 0.0f64);
    for step in 1..=5 {
        let delta = stream.next_delta(&registry);
        let applied = registry.apply_delta(&delta).expect("apply delta");
        let ctx = MatchContext::new(&registry);

        let t = Instant::now();
        let refreshed = state
            .patch_and_refresh(&ctx, &[&applied], &repository, "TitleSame")
            .expect("incremental apply");
        let incr_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let full = matcher.execute(&ctx, dblp, gs).expect("full re-match");
        let full_ms = t.elapsed().as_secs_f64() * 1e3;

        assert_eq!(
            state.mapping().table.rows(),
            full.table.rows(),
            "incremental result must be bit-identical to a full re-match"
        );
        assert_eq!(refreshed, vec!["DblpToGs".to_owned()]);
        assert!(!repository.is_stale("DblpToGs"));
        println!(
            "step {step}: |delta| {:>3}, re-scored {:>3} values, \
             incremental {incr_ms:>7.2} ms vs full {full_ms:>7.2} ms",
            delta.len(),
            state.last_rescored,
        );
        incr_total += incr_ms;
        full_total += full_ms;
    }
    // The downstream compose tracked every patch.
    let composed = repository.get("DblpToGs").expect("derived entry");
    assert_eq!(composed.table.pair_set(), state.mapping().table.pair_set());
    println!(
        "all steps bit-identical; incremental total {incr_total:.1} ms vs \
         full total {full_total:.1} ms ({:.0}x)",
        full_total / incr_total.max(1e-9)
    );
}
