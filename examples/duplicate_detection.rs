//! Duplicate-author detection within DBLP (paper Section 4.3 / Table 9),
//! driven end-to-end by the iFuice script language.
//!
//! ```text
//! cargo run --release --example duplicate_detection
//! ```

use moma::core::cluster;
use moma::datagen::Scenario;
use moma::ifuice::script::run_script;

const SCRIPT: &str = r#"
# Neighborhood matching on the co-authorship mapping: two authors are
# similar if they share co-authors. The identity mapping plays the role
# of the trivial same-mapping within one source.
$CoAuthSim = nhMatch(DBLP.CoAuthor, DBLP.AuthorAuthor, DBLP.CoAuthor);

# Trigram name similarity.
$NameSim = attrMatch(DBLP.Author, DBLP.Author, Trigram, 0.5, "[name]", "[name]");

# Candidates need both kinds of evidence (missing similarity counts 0).
$Merged = merge($CoAuthSim, $NameSim, Average, Zero);

# Drop the trivial self-correspondences.
$Result = select($Merged, "[domain.id]<>[range.id]");
RETURN $Result;
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::small();
    let lds = scenario.registry.lds(scenario.ids.author_dblp);
    println!(
        "DBLP authors: {} (with {} injected duplicate identities)",
        lds.len(),
        scenario.world.duplicates.len()
    );

    let value = run_script(SCRIPT, &scenario.registry, &scenario.repository)?;
    let merged = value.as_mapping().expect("script returns a mapping");

    // Rank unordered candidate pairs by merged similarity.
    let mut seen = std::collections::HashSet::new();
    let mut ranked: Vec<(f64, u32, u32)> = merged
        .table
        .iter()
        .filter_map(|c| {
            let key = (c.domain.min(c.range), c.domain.max(c.range));
            seen.insert(key).then_some((c.sim, key.0, key.1))
        })
        .collect();
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());

    println!("\ntop duplicate candidates:");
    let gold = &scenario.gold.author_dup_dblp;
    let mut hits = 0;
    for (sim, a, b) in ranked.iter().take(8) {
        let name = |i: u32| lds.get(i).unwrap().value(0).unwrap().to_match_string();
        let truth = if gold.contains(*a, *b) {
            hits += 1;
            "TRUE DUPLICATE"
        } else {
            "candidate"
        };
        println!("  {:.2}  {}  ~  {}   [{truth}]", sim, name(*a), name(*b));
    }
    println!("\n{hits}/8 of the top-ranked pairs are injected gold duplicates");

    // Threshold + transitive closure yields duplicate clusters.
    let thresholded = moma::core::ops::select::select(
        merged,
        &moma::core::ops::select::Selection::Threshold(0.6),
    );
    let clusters = cluster::clusters(&thresholded, lds.len() as u32)?;
    println!("duplicate clusters at threshold 0.6: {}", clusters.len());
    for c in clusters.iter().take(5) {
        let names: Vec<String> = c
            .iter()
            .map(|&i| lds.get(i).unwrap().value(0).unwrap().to_match_string())
            .collect();
        println!("  {{ {} }}", names.join(", "));
    }
    assert!(
        hits >= 3,
        "expected the script to surface the injected duplicates"
    );
    Ok(())
}
