//! Bibliographic P2P integration: the paper's motivating scenario.
//!
//! ```text
//! cargo run --release --example bibliographic_integration
//! ```
//!
//! Generates the synthetic DBLP / ACM / Google Scholar scenario, derives
//! publication same-mappings (attribute + neighborhood matching), and
//! then *fuses* information across the mappings: each DBLP publication is
//! enriched with citation counts aggregated over its matched Google
//! Scholar duplicate entries — the iFuice-style citation analysis
//! ([29] in the paper) that motivated MOMA.

use moma::core::blocking::Blocking;
use moma::core::matchers::neighborhood::nh_match;
use moma::core::matchers::{AttributeMatcher, MatchContext, Matcher};
use moma::core::ops::compose::PathAgg;
use moma::core::ops::select::{select, Selection};
use moma::core::ops::setops::{intersection, union};
use moma::datagen::{Scenario, WorldConfig};
use moma::ifuice::fusion::{fuse_attribute, FuseCombine};
use moma::simstring::SimFn;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = WorldConfig::small();
    cfg.gs_noise_entries = 1_000;
    let scenario = Scenario::generate(cfg);
    let ctx = MatchContext::with_repository(&scenario.registry, &scenario.repository);
    println!(
        "sources: DBLP {} pubs, ACM {} pubs, GS {} entries",
        scenario.registry.lds(scenario.ids.pub_dblp).len(),
        scenario.registry.lds(scenario.ids.pub_acm).len(),
        scenario.registry.lds(scenario.ids.pub_gs).len(),
    );

    // --- publication same-mapping DBLP -> GS ---------------------------
    // Strict title matching, then author-neighborhood confirmation for
    // extraction-noisy titles (the Table 7 workflow).
    let title = AttributeMatcher::new("title", "title", SimFn::Trigram, 0.75)
        .with_blocking(Blocking::TrigramPrefix)
        .execute(&ctx, scenario.ids.pub_dblp, scenario.ids.pub_gs)?;
    let title_low = AttributeMatcher::new("title", "title", SimFn::Trigram, 0.45)
        .with_blocking(Blocking::TrigramPrefix)
        .execute(&ctx, scenario.ids.pub_dblp, scenario.ids.pub_gs)?;
    let author_same = AttributeMatcher::new("name", "name", SimFn::PersonName, 0.85)
        .with_blocking(Blocking::TrigramPrefix)
        .execute(&ctx, scenario.ids.author_dblp, scenario.ids.author_gs)?;
    let pub_author = scenario.repository.require("DBLP.PubAuthor")?;
    let author_pub = scenario.repository.require("GS.AuthorPub")?;
    let nh = nh_match(
        &pub_author,
        &author_same,
        &author_pub,
        PathAgg::RelativeLeft,
    )?;
    let confirmed = intersection(&title_low, &select(&nh, &Selection::Threshold(0.4)))?;
    let same_dg = union(&title, &confirmed)?;
    println!("DBLP-GS same-mapping: {} correspondences", same_dg.len());

    // --- fusion: citation analysis --------------------------------------
    let citations = fuse_attribute(&scenario.registry, &same_dg, "citations", FuseCombine::Sum)?;
    let dblp = scenario.registry.lds(scenario.ids.pub_dblp);
    let mut ranked: Vec<(u32, i64)> = citations
        .iter()
        .map(|(&d, v)| (d, v.as_int().unwrap_or(0)))
        .collect();
    ranked.sort_by_key(|&(d, c)| (std::cmp::Reverse(c), d));

    println!("\ntop cited DBLP publications (GS citations fused over duplicates):");
    for (d, cites) in ranked.iter().take(8) {
        let inst = dblp.get(*d).unwrap();
        let title = inst
            .value(0)
            .map(|v| v.to_match_string())
            .unwrap_or_default();
        println!("  {cites:>5}  {title}");
    }
    assert!(!ranked.is_empty());
    assert!(ranked[0].1 >= ranked.last().unwrap().1);
    Ok(())
}
