//! Hub-based P2P integration (paper Figure 8): five bibliographic
//! sources, all matched through one curated hub.
//!
//! ```text
//! cargo run --example hub_integration
//! ```
//!
//! Instead of maintaining n·(n-1)/2 = 10 pairwise same-mappings, each
//! peripheral source keeps exactly one same-mapping to the hub; any
//! source pair is then matched by composing two hub mappings.

use moma::core::matchers::{AttributeMatcher, MatchContext, Matcher};
use moma::core::ops::compose::{compose, PathAgg, PathCombine};
use moma::core::MappingRepository;
use moma::model::{AttrDef, LdsId, LogicalSource, ObjectType, SourceRegistry};
use moma::simstring::SimFn;

/// Titles of the shared publication universe.
const TITLES: &[&str] = &[
    "Generic Schema Matching with Cupid",
    "A formal perspective on the view selection problem",
    "Potter's Wheel: An Interactive Data Cleaning System",
    "Robust and Efficient Fuzzy Match for Online Data Cleaning",
    "Reference Reconciliation in Complex Information Spaces",
    "Eliminating Fuzzy Duplicates in Data Warehouses",
    "Adaptive duplicate detection using learnable string similarity measures",
    "The Merge/Purge Problem for Large Databases",
];

/// Build one source covering a subset of the universe with mild noise.
fn build_source(name: &str, skip: usize, noisy: bool) -> LogicalSource {
    let mut lds = LogicalSource::new(
        name,
        ObjectType::new("Publication"),
        vec![AttrDef::text("title")],
    );
    for (i, t) in TITLES.iter().enumerate() {
        if i % 4 == skip {
            continue; // each source misses a quarter of the universe
        }
        let title = if noisy {
            t.to_lowercase().replace('-', " ")
        } else {
            (*t).to_owned()
        };
        lds.insert_record(format!("{name}-{i}"), vec![("title", title.into())])
            .unwrap();
    }
    lds
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut registry = SourceRegistry::new();
    // Source 0 is the curated hub (complete, clean) — the role DBLP plays
    // in the paper.
    let mut hub = LogicalSource::new(
        "Hub",
        ObjectType::new("Publication"),
        vec![AttrDef::text("title")],
    );
    for (i, t) in TITLES.iter().enumerate() {
        hub.insert_record(format!("hub-{i}"), vec![("title", (*t).into())])?;
    }
    let hub_id = registry.register(hub)?;
    let peripheral: Vec<LdsId> = (1..5)
        .map(|s| {
            registry
                .register(build_source(&format!("Source{s}"), s % 4, s % 2 == 0))
                .expect("register")
        })
        .collect();

    // One same-mapping per peripheral source: hub -> source.
    let ctx = MatchContext::new(&registry);
    let repo = MappingRepository::new();
    for (s, &lds) in peripheral.iter().enumerate() {
        let m = AttributeMatcher::new("title", "title", SimFn::Trigram, 0.7)
            .execute(&ctx, hub_id, lds)?;
        println!("hub -> Source{}: {} correspondences", s + 1, m.len());
        repo.store_as(format!("hub{}", s + 1), m);
    }
    println!(
        "mappings maintained: {} (full mesh would need {})",
        peripheral.len(),
        10
    );

    // Match Source1 with Source4 by composing via the hub.
    let s1 = repo.require("hub1")?;
    let s4 = repo.require("hub4")?;
    let composed = compose(&s1.inverse(), &s4, PathCombine::Min, PathAgg::Max)?;
    println!(
        "\nSource1 ~ Source4 via hub: {} correspondences",
        composed.len()
    );
    let l1 = registry.lds(peripheral[0]);
    let l4 = registry.lds(peripheral[3]);
    for c in composed.table.iter() {
        println!(
            "  {}  ~  {}   ({:.2})",
            l1.get(c.domain).unwrap().id,
            l4.get(c.range).unwrap().id,
            c.sim
        );
    }
    // Every composed pair refers to the same universe publication: ids
    // end with the same index.
    for c in composed.table.iter() {
        let a = &l1.get(c.domain).unwrap().id;
        let b = &l4.get(c.range).unwrap().id;
        assert_eq!(
            a.rsplit('-').next().unwrap(),
            b.rsplit('-').next().unwrap(),
            "wrong hub composition: {a} vs {b}"
        );
    }
    Ok(())
}
