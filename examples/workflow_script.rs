//! Authoring match workflows in the iFuice script language.
//!
//! ```text
//! cargo run --example workflow_script
//! ```
//!
//! Shows the script surface: user-defined procedures (the paper's
//! `nhMatch` listing), qualified source/mapping references, selection
//! builders, constraint strings, and repository interaction.

use moma::datagen::Scenario;
use moma::ifuice::script::run_script;

const SCRIPT: &str = r#"
# The paper's Section 4.2 neighborhood-matcher procedure, verbatim.
PROCEDURE nhMatch ( $Asso1, $Same, $Asso2 )
   $Temp = compose ( $Asso1 , $Same , Min, Average )
   $Result = compose ( $Temp , $Asso2 , Min, Relative )
   RETURN $Result
END

# Derive a venue same-mapping from the publication same-mapping
# (1:n neighborhood matching, Section 5.4.1).
$PubSame = attrMatch(DBLP.Publication, ACM.Publication, Trigram, 0.8, "[title]", "[title]");
$VenueNh = nhMatch(DBLP.VenuePub, $PubSame, ACM.PubVenue);
$VenueSame = select($VenueNh, bestN(1, domain));
store($VenueSame, "script.VenueSame");

# Refine the publication mapping with a year constraint
# ("publication years must not differ by more than one year").
$Refined = select($PubSame, "|[domain.year]-[range.year]|<=1");
store($Refined, "script.PubSame");
RETURN $VenueSame;
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::small();
    let value = run_script(SCRIPT, &scenario.registry, &scenario.repository)?;
    let venue_same = value.as_mapping().expect("mapping");

    let d = scenario.registry.lds(scenario.ids.venue_dblp);
    let a = scenario.registry.lds(scenario.ids.venue_acm);
    println!(
        "venue same-mapping from script ({} correspondences):",
        venue_same.len()
    );
    let mut rows: Vec<_> = venue_same.table.iter().collect();
    rows.sort_by_key(|x| x.domain);
    for c in rows.iter().take(10) {
        println!(
            "  {:<28} ~ {:<55} ({:.2})",
            d.get(c.domain).unwrap().value(0).unwrap().to_match_string(),
            a.get(c.range).unwrap().value(0).unwrap().to_match_string(),
            c.sim
        );
    }

    // The script stored both mappings in the repository for reuse.
    assert!(scenario.repository.contains("script.VenueSame"));
    assert!(scenario.repository.contains("script.PubSame"));
    let gold = &scenario.gold.venue_dblp_acm;
    let correct = venue_same
        .table
        .iter()
        .filter(|c| gold.contains(c.domain, c.range))
        .count();
    println!(
        "\n{correct}/{} correspondences agree with the gold standard",
        venue_same.len()
    );
    assert!(
        correct * 10 >= venue_same.len() * 8,
        "venue matching should be mostly correct"
    );
    Ok(())
}
