//! The extensible matcher library (paper Section 2.2).
//!
//! "There is an extensible library of matcher algorithms that can be used
//! for a specific match task. Matchers conform to the same interfaces as
//! a match process, in particular they generate a same-mapping."

pub mod attribute;
pub mod multi_attribute;
pub mod neighborhood;

use moma_model::{LdsId, SourceRegistry};

use crate::error::Result;
use crate::exec::Parallelism;
use crate::mapping::Mapping;
use crate::repository::MappingRepository;

pub use attribute::{AttributeMatcher, MatcherSim};
pub use multi_attribute::{AttrPair, MultiAttributeMatcher};
pub use neighborhood::{nh_match, nh_match_threshold, NeighborhoodMatcher};

/// Context a matcher executes in: the source registry (instance data),
/// optionally the mapping repository (existing mappings to reuse), and
/// the parallel-execution configuration.
pub struct MatchContext<'a> {
    /// Instance data of all logical sources.
    pub registry: &'a SourceRegistry,
    /// Existing mappings available for reuse.
    pub repository: Option<&'a MappingRepository>,
    /// Parallel execution of matchers, workflow steps and composes.
    /// Defaults to [`Parallelism::from_env`] (`MOMA_THREADS` or one
    /// thread per CPU); results are identical at every thread count.
    pub parallelism: Parallelism,
}

impl<'a> MatchContext<'a> {
    /// Context without a repository.
    pub fn new(registry: &'a SourceRegistry) -> Self {
        Self {
            registry,
            repository: None,
            parallelism: Parallelism::from_env(),
        }
    }

    /// Context with a repository.
    pub fn with_repository(registry: &'a SourceRegistry, repo: &'a MappingRepository) -> Self {
        Self {
            registry,
            repository: Some(repo),
            parallelism: Parallelism::from_env(),
        }
    }

    /// Override the parallel-execution configuration (builder style).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }
}

/// A matcher: executes against two logical sources and produces a
/// same-mapping.
pub trait Matcher: Send + Sync {
    /// Matcher name (for workflow traces and the matcher library).
    fn name(&self) -> String;

    /// Run the matcher for `domain` × `range`.
    fn execute(&self, ctx: &MatchContext<'_>, domain: LdsId, range: LdsId) -> Result<Mapping>;
}
