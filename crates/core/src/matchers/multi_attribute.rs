//! Multi-attribute matcher (paper Section 2.2).
//!
//! "A multi-attribute matcher is also supported which directly evaluates
//! and combines the similarity for multiple attribute pairs, e.g., for
//! publication title and publication year."

use moma_model::LdsId;
use moma_simstring::bounds::qgram_measure_of;
use moma_simstring::SimFn;
use moma_table::MappingTable;

use crate::blocking::{Blocking, ThresholdIndex, TrigramIndex};
use crate::error::{CoreError, Result};
use crate::mapping::Mapping;
use crate::matchers::{MatchContext, Matcher};
use crate::ops::merge::MissingPolicy;

/// One attribute pair with its similarity function and weight.
#[derive(Debug, Clone)]
pub struct AttrPair {
    /// Attribute on the domain LDS.
    pub domain_attr: String,
    /// Attribute on the range LDS.
    pub range_attr: String,
    /// Similarity function for this pair.
    pub sim: SimFn,
    /// Relative weight in the combined similarity.
    pub weight: f64,
}

impl AttrPair {
    /// Convenience constructor.
    pub fn new(
        domain_attr: impl Into<String>,
        range_attr: impl Into<String>,
        sim: SimFn,
        weight: f64,
    ) -> Self {
        Self {
            domain_attr: domain_attr.into(),
            range_attr: range_attr.into(),
            sim,
            weight,
        }
    }
}

/// Matcher combining several attribute similarities per candidate pair.
#[derive(Debug, Clone)]
pub struct MultiAttributeMatcher {
    /// The attribute pairs; the first is the *primary* (used for
    /// blocking).
    pub attrs: Vec<AttrPair>,
    /// Threshold on the combined similarity.
    pub threshold: f64,
    /// Missing-value treatment: ignore (renormalize weights over present
    /// attributes) or zero.
    pub missing: MissingPolicy,
    /// Candidate-generation strategy. [`Blocking::TrigramPrefix`] blocks
    /// on the primary attribute only; [`Blocking::Threshold`] prunes
    /// through *every* attribute that admits a sound derived bound and
    /// intersects the per-attribute candidate sets.
    pub blocking: Blocking,
}

impl MultiAttributeMatcher {
    /// Create a matcher with the default threshold-exact blocking
    /// ([`Blocking::Threshold`]): every attribute with a q-gram measure
    /// and a sound *derived* threshold (see
    /// [`MultiAttributeMatcher::derived_threshold`]) prunes candidates
    /// through its own T-occurrence index and the per-attribute sets are
    /// intersected; with no boundable attribute the matcher scores
    /// all-pairs — results are always identical to
    /// [`Blocking::AllPairs`]. `attrs` must be non-empty.
    pub fn new(attrs: Vec<AttrPair>, threshold: f64) -> Self {
        Self {
            attrs,
            threshold,
            missing: MissingPolicy::Ignore,
            blocking: Blocking::Threshold,
        }
    }

    /// Set the missing policy (builder style).
    pub fn with_missing(mut self, missing: MissingPolicy) -> Self {
        self.missing = missing;
        self
    }

    /// Set the blocking strategy (builder style).
    pub fn with_blocking(mut self, blocking: Blocking) -> Self {
        self.blocking = blocking;
        self
    }

    /// The attribute-`k` threshold a combined-similarity threshold `t`
    /// implies: with attribute weight `w_k` and total weight `W`, a pair
    /// whose attribute-`k` values are both present can only reach
    /// combined similarity `t` if that attribute's similarity reaches
    /// `1 − W·(1 − t)/w_k` — every other attribute contributes at most
    /// its full weight, and the divisor never exceeds `W` under either
    /// missing policy. `None` when the bound is vacuous (≤ 0), unsound
    /// (a negative weight anywhere, or `w_k ≤ 0`), or `k` out of range.
    pub fn derived_threshold(&self, k: usize) -> Option<f64> {
        let w = self.attrs.get(k)?.weight;
        if w <= 0.0 || self.attrs.iter().any(|p| p.weight < 0.0) {
            return None;
        }
        let total: f64 = self.attrs.iter().map(|p| p.weight).sum();
        let t_k = 1.0 - total * (1.0 - self.threshold) / w;
        (t_k > 0.0).then_some(t_k)
    }

    /// [`MultiAttributeMatcher::derived_threshold`] of the primary
    /// (first) attribute — the bound the prefix filter blocks on.
    pub fn primary_threshold(&self) -> Option<f64> {
        self.derived_threshold(0)
    }

    fn combined_sim(&self, d_vals: &[Option<String>], r_vals: &[Option<String>]) -> Option<f64> {
        let mut num = 0.0;
        let mut den = 0.0;
        let mut any = false;
        for (k, pair) in self.attrs.iter().enumerate() {
            match (&d_vals[k], &r_vals[k]) {
                (Some(a), Some(b)) => {
                    num += pair.weight * pair.sim.eval(a, b);
                    den += pair.weight;
                    any = true;
                }
                _ => {
                    if self.missing == MissingPolicy::Zero {
                        den += pair.weight;
                    }
                }
            }
        }
        if !any || den <= 0.0 {
            None
        } else {
            Some(num / den)
        }
    }
}

impl Matcher for MultiAttributeMatcher {
    fn name(&self) -> String {
        let attrs: Vec<String> = self
            .attrs
            .iter()
            .map(|p| format!("{}~{}:{}", p.domain_attr, p.range_attr, p.sim.name()))
            .collect();
        format!("multiAttrMatch([{}], {})", attrs.join(", "), self.threshold)
    }

    fn execute(&self, ctx: &MatchContext<'_>, domain: LdsId, range: LdsId) -> Result<Mapping> {
        if self.attrs.is_empty() {
            return Err(CoreError::InvalidConfig(
                "multi-attribute matcher needs attributes".into(),
            ));
        }
        let d_lds = ctx.registry.lds(domain);
        let r_lds = ctx.registry.lds(range);

        // Per-instance value rows aligned to `attrs`.
        let project = |lds: &moma_model::LogicalSource,
                       side_domain: bool|
         -> Result<Vec<(u32, Vec<Option<String>>)>> {
            let slots: Vec<usize> = self
                .attrs
                .iter()
                .map(|p| {
                    lds.attr_slot(if side_domain {
                        &p.domain_attr
                    } else {
                        &p.range_attr
                    })
                    .map_err(CoreError::from)
                })
                .collect::<Result<_>>()?;
            Ok(lds
                .iter()
                .map(|(i, inst)| {
                    let row = slots
                        .iter()
                        .map(|&s| inst.value(s).map(|v| v.to_match_string()))
                        .collect();
                    (i, row)
                })
                .collect())
        };
        let d_rows = project(d_lds, true)?;
        let r_rows = project(r_lds, false)?;

        // Blocking (indexes built sharded, probed read-only by every
        // scoring thread).
        //
        // * `TrigramPrefix` indexes the *primary* attribute and probes
        //   at the *combined* threshold — fast and historically lossy: a
        //   pair whose primary similarity is below it can still clear
        //   the combined threshold through the other attributes, and
        //   rows with a missing primary are skipped entirely.
        // * `Threshold` is exact and *multi-index*: every attribute
        //   whose measure is q-gram-boundable and whose derived bound
        //   (see `derived_threshold`) is sound gets its own
        //   T-occurrence index at that bound, and a pair must survive
        //   **all** of them — the per-attribute candidate sets are
        //   intersected. Range rows missing an attribute's value stay
        //   unconditional candidates for that attribute (they can pass
        //   through the others), and a domain row missing the value
        //   makes that attribute prune nothing for it. When no
        //   attribute admits a sound bound it falls back to the
        //   all-pairs scan — results always match `AllPairs`.
        enum BlockingIndex {
            Prefix(TrigramIndex),
            /// One exact index per boundable attribute (non-empty).
            Threshold(Vec<AttrIndex>),
        }
        struct AttrIndex {
            /// Position in `attrs` (and the projected value rows).
            k: usize,
            index: ThresholdIndex,
            /// Positions of range rows with a missing attribute-`k`
            /// value (always candidates for this attribute).
            unindexed: Vec<usize>,
        }
        // Per-attribute value projections are only collected for the
        // attributes that get an index — all-pairs modes (explicit or
        // fallback) skip the O(|range|) allocations entirely.
        let indexed_values = |k: usize| -> Vec<(u32, &str)> {
            r_rows
                .iter()
                .filter_map(|(i, row)| row[k].as_deref().map(|v| (*i, v)))
                .collect()
        };
        let index = match self.blocking {
            Blocking::AllPairs => None,
            Blocking::TrigramPrefix => Some(BlockingIndex::Prefix(TrigramIndex::build_par(
                &indexed_values(0),
                &ctx.parallelism,
            ))),
            Blocking::Threshold => {
                let indexes: Vec<AttrIndex> = (0..self.attrs.len())
                    .filter_map(|k| {
                        let t_k = self.derived_threshold(k)?;
                        let (measure, q) = qgram_measure_of(&self.attrs[k].sim)?;
                        Some(AttrIndex {
                            k,
                            index: ThresholdIndex::build_par(
                                measure,
                                q,
                                t_k,
                                &indexed_values(k),
                                &ctx.parallelism,
                            ),
                            unindexed: r_rows
                                .iter()
                                .enumerate()
                                .filter(|(_, (_, row))| row[k].is_none())
                                .map(|(p, _)| p)
                                .collect(),
                        })
                    })
                    .collect();
                // No boundable attribute = all-pairs fallback.
                (!indexes.is_empty()).then_some(BlockingIndex::Threshold(indexes))
            }
        };
        let pos_of: moma_table::FxHashMap<u32, usize> = r_rows
            .iter()
            .enumerate()
            .map(|(p, (i, _))| (*i, p))
            .collect();

        // Shard the domain rows; per-shard outputs concatenate in input
        // order, so the table matches the sequential scan exactly.
        let shard_rows = ctx.parallelism.run_sharded(&d_rows, |shard| {
            let mut rows: Vec<(u32, u32, f64)> = Vec::new();
            for (d_idx, d_row) in shard {
                let candidates: Vec<usize> = match (&index, &d_row[0]) {
                    (Some(BlockingIndex::Prefix(idx)), Some(primary)) => idx
                        .candidates(primary, self.threshold)
                        .into_iter()
                        .map(|c| pos_of[&c])
                        .collect(),
                    (Some(BlockingIndex::Prefix(_)), None) => Vec::new(),
                    (Some(BlockingIndex::Threshold(indexes)), _) => {
                        // Intersect the per-attribute candidate sets;
                        // an attribute whose domain value is missing
                        // prunes nothing (the pair can still clear the
                        // combined threshold through the others).
                        let mut surviving: Option<moma_table::FxHashSet<usize>> = None;
                        for ai in indexes {
                            let Some(dv) = &d_row[ai.k] else { continue };
                            let mut set: moma_table::FxHashSet<usize> = ai
                                .index
                                .candidates(dv)
                                .into_iter()
                                .map(|c| pos_of[&c])
                                .collect();
                            set.extend(ai.unindexed.iter().copied());
                            surviving = Some(match surviving {
                                None => set,
                                Some(prev) => prev.intersection(&set).copied().collect(),
                            });
                            if surviving.as_ref().is_some_and(|s| s.is_empty()) {
                                break;
                            }
                        }
                        match surviving {
                            Some(s) => s.into_iter().collect(),
                            // Every indexed attribute missing on the
                            // domain side: nothing can be pruned.
                            None => (0..r_rows.len()).collect(),
                        }
                    }
                    (None, _) => (0..r_rows.len()).collect(),
                };
                for p in candidates {
                    let (r_idx, r_row) = &r_rows[p];
                    if let Some(s) = self.combined_sim(d_row, r_row) {
                        if s >= self.threshold {
                            rows.push((*d_idx, *r_idx, s));
                        }
                    }
                }
            }
            rows
        });
        let mut table = MappingTable::new();
        for rows in shard_rows {
            for (d, r, s) in rows {
                table.push(d, r, s);
            }
        }
        table.dedup_max();
        Ok(Mapping::same(self.name(), domain, range, table))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_model::{AttrDef, LogicalSource, ObjectType, SourceRegistry};

    fn setup() -> (SourceRegistry, LdsId, LdsId) {
        let mut reg = SourceRegistry::new();
        let mut dblp = LogicalSource::new(
            "DBLP",
            ObjectType::new("Publication"),
            vec![AttrDef::text("title"), AttrDef::year("year")],
        );
        // Same title twice with different years — the conference/journal
        // version problem from paper Fig. 7.
        dblp.insert_record(
            "d0",
            vec![
                (
                    "title",
                    "A formal perspective on the view selection problem".into(),
                ),
                ("year", 2001u16.into()),
            ],
        )
        .unwrap();
        dblp.insert_record(
            "d1",
            vec![
                (
                    "title",
                    "A formal perspective on the view selection problem".into(),
                ),
                ("year", 2002u16.into()),
            ],
        )
        .unwrap();
        dblp.insert_record("d2", vec![("title", "No year record".into())])
            .unwrap();
        let mut acm = LogicalSource::new(
            "ACM",
            ObjectType::new("Publication"),
            vec![AttrDef::text("title"), AttrDef::year("year")],
        );
        acm.insert_record(
            "a0",
            vec![
                (
                    "title",
                    "A formal perspective on the view selection problem".into(),
                ),
                ("year", 2001u16.into()),
            ],
        )
        .unwrap();
        acm.insert_record("a1", vec![("title", "No year record".into())])
            .unwrap();
        let d = reg.register(dblp).unwrap();
        let a = reg.register(acm).unwrap();
        (reg, d, a)
    }

    fn matcher() -> MultiAttributeMatcher {
        MultiAttributeMatcher::new(
            vec![
                AttrPair::new("title", "title", SimFn::Trigram, 2.0),
                AttrPair::new("year", "year", SimFn::Year(0), 1.0),
            ],
            0.8,
        )
    }

    #[test]
    fn year_disambiguates_same_title() {
        let (reg, d, a) = setup();
        let ctx = MatchContext::new(&reg);
        let r = matcher().execute(&ctx, d, a).unwrap();
        // d0 (2001) combined = (2*1 + 1*1)/3 = 1; d1 (2002) = (2*1 + 0)/3 ≈ 0.67 < 0.8.
        assert_eq!(r.table.sim_of(0, 0), Some(1.0));
        assert_eq!(r.table.sim_of(1, 0), None);
    }

    #[test]
    fn missing_ignore_renormalizes() {
        let (reg, d, a) = setup();
        let ctx = MatchContext::new(&reg);
        let r = matcher().execute(&ctx, d, a).unwrap();
        // d2/a1 have no year; Ignore policy: title alone = 1.0.
        assert_eq!(r.table.sim_of(2, 1), Some(1.0));
    }

    #[test]
    fn missing_zero_penalizes() {
        let (reg, d, a) = setup();
        let ctx = MatchContext::new(&reg);
        let r = matcher()
            .with_missing(MissingPolicy::Zero)
            .execute(&ctx, d, a)
            .unwrap();
        // d2/a1: (2*1 + 0)/3 ≈ 0.67 < 0.8 -> dropped.
        assert_eq!(r.table.sim_of(2, 1), None);
    }

    #[test]
    fn parallel_equivalent() {
        use crate::exec::Parallelism;
        let (reg, d, a) = setup();
        let seq = matcher()
            .execute(
                &MatchContext::new(&reg).with_parallelism(Parallelism::sequential()),
                d,
                a,
            )
            .unwrap();
        for threads in [2usize, 8] {
            for blocking in [Blocking::AllPairs, Blocking::TrigramPrefix] {
                let ctx = MatchContext::new(&reg)
                    .with_parallelism(Parallelism::new(threads).with_min_shard_size(1));
                let par = matcher()
                    .with_blocking(blocking)
                    .execute(&ctx, d, a)
                    .unwrap();
                assert_eq!(
                    seq.table.rows(),
                    par.table.rows(),
                    "threads={threads} blocking={blocking:?}"
                );
            }
        }
    }

    #[test]
    fn blocking_equivalent() {
        let (reg, d, a) = setup();
        let ctx = MatchContext::new(&reg);
        let all = matcher().execute(&ctx, d, a).unwrap();
        let blocked = matcher()
            .with_blocking(Blocking::TrigramPrefix)
            .execute(&ctx, d, a)
            .unwrap();
        assert_eq!(all.table.pair_set(), blocked.table.pair_set());
    }

    #[test]
    fn primary_threshold_derivation() {
        // weights 2 (primary) + 1, t = 0.8: t_p = 1 − 3·0.2/2 = 0.7.
        let m = matcher();
        assert!((m.primary_threshold().unwrap() - 0.7).abs() < 1e-12);
        // Single attribute degenerates to the matcher threshold.
        let single =
            MultiAttributeMatcher::new(vec![AttrPair::new("t", "t", SimFn::Trigram, 1.0)], 0.6);
        assert!((single.primary_threshold().unwrap() - 0.6).abs() < 1e-12);
        // Vacuous bound: a low-weight primary cannot be bounded.
        let weak = MultiAttributeMatcher::new(
            vec![
                AttrPair::new("t", "t", SimFn::Trigram, 1.0),
                AttrPair::new("y", "y", SimFn::Year(0), 9.0),
            ],
            0.8,
        );
        assert_eq!(weak.primary_threshold(), None);
        // Non-positive weights are unsound for the bound.
        let zero =
            MultiAttributeMatcher::new(vec![AttrPair::new("t", "t", SimFn::Trigram, 0.0)], 0.8);
        assert_eq!(zero.primary_threshold(), None);
    }

    #[test]
    fn threshold_blocking_exact_with_missing_primaries() {
        // A range row with a *missing primary* can still clear the
        // combined threshold (Ignore renormalizes onto the year) — the
        // prefix filter drops such pairs, the exact engine must not.
        let mut reg = SourceRegistry::new();
        let mut dblp = LogicalSource::new(
            "DBLP",
            ObjectType::new("Publication"),
            vec![AttrDef::text("title"), AttrDef::year("year")],
        );
        dblp.insert_record(
            "d0",
            vec![
                ("title", "Data Cleaning Survey".into()),
                ("year", 2001u16.into()),
            ],
        )
        .unwrap();
        dblp.insert_record("d1", vec![("year", 2002u16.into())])
            .unwrap();
        let mut acm = LogicalSource::new(
            "ACM",
            ObjectType::new("Publication"),
            vec![AttrDef::text("title"), AttrDef::year("year")],
        );
        // a0: no title at all; a1: title present.
        acm.insert_record("a0", vec![("year", 2001u16.into())])
            .unwrap();
        acm.insert_record(
            "a1",
            vec![
                ("title", "Data Cleaning Survey!".into()),
                ("year", 2002u16.into()),
            ],
        )
        .unwrap();
        let d = reg.register(dblp).unwrap();
        let a = reg.register(acm).unwrap();
        let ctx = MatchContext::new(&reg);
        let m = MultiAttributeMatcher::new(
            vec![
                AttrPair::new("title", "title", SimFn::Trigram, 2.0),
                AttrPair::new("year", "year", SimFn::Year(0), 1.0),
            ],
            0.8,
        );
        let all = m
            .clone()
            .with_blocking(Blocking::AllPairs)
            .execute(&ctx, d, a)
            .unwrap();
        let exact = m.execute(&ctx, d, a).unwrap(); // default = Threshold
        assert_eq!(all.table.rows(), exact.table.rows());
        // The missing-primary pairs really are in the result (year-only
        // renormalized similarity 1.0): d0×a0 and d1×a1.
        assert_eq!(exact.table.sim_of(0, 0), Some(1.0));
        assert_eq!(exact.table.sim_of(1, 1), Some(1.0));
        // ...and the prefix filter would have lost them (documented
        // lossiness, pinned so the decision table stays honest).
        let prefix = m
            .clone()
            .with_blocking(Blocking::TrigramPrefix)
            .execute(&ctx, d, a)
            .unwrap();
        assert_eq!(prefix.table.sim_of(0, 0), None);
    }

    #[test]
    fn threshold_blocking_matches_allpairs_on_standard_data() {
        let (reg, d, a) = setup();
        let ctx = MatchContext::new(&reg);
        for t in [0.5, 0.8] {
            for missing in [MissingPolicy::Ignore, MissingPolicy::Zero] {
                let base = MultiAttributeMatcher::new(
                    vec![
                        AttrPair::new("title", "title", SimFn::Trigram, 2.0),
                        AttrPair::new("year", "year", SimFn::Year(0), 1.0),
                    ],
                    t,
                )
                .with_missing(missing);
                let all = base
                    .clone()
                    .with_blocking(Blocking::AllPairs)
                    .execute(&ctx, d, a)
                    .unwrap();
                let exact = base
                    .clone()
                    .with_blocking(Blocking::Threshold)
                    .execute(&ctx, d, a)
                    .unwrap();
                assert_eq!(all.table.rows(), exact.table.rows(), "t={t} {missing:?}");
            }
        }
        // Non-q-gram primary: Threshold transparently scores all pairs.
        let jaro = MultiAttributeMatcher::new(
            vec![AttrPair::new("title", "title", SimFn::Jaro, 1.0)],
            0.9,
        );
        let all = jaro
            .clone()
            .with_blocking(Blocking::AllPairs)
            .execute(&ctx, d, a)
            .unwrap();
        let fallback = jaro.execute(&ctx, d, a).unwrap();
        assert_eq!(all.table.rows(), fallback.table.rows());
    }

    #[test]
    fn multi_index_intersection_is_exact() {
        // Two q-gram attributes → two exact indexes, candidates
        // intersected. The result must still match all-pairs exactly,
        // including rows where one attribute is missing on either side.
        let mut reg = SourceRegistry::new();
        let mut dblp = LogicalSource::new(
            "DBLP",
            ObjectType::new("Publication"),
            vec![AttrDef::text("title"), AttrDef::text("venue")],
        );
        let d_recs: [(&str, Option<&str>, Option<&str>); 4] = [
            ("d0", Some("Data Cleaning Survey"), Some("VLDB Journal")),
            ("d1", Some("Schema Matching with Cupid"), Some("VLDB")),
            ("d2", Some("Potter's Wheel"), None),
            ("d3", None, Some("SIGMOD Record")),
        ];
        for (key, title, venue) in d_recs {
            let mut vals: Vec<(&str, moma_model::AttrValue)> = Vec::new();
            if let Some(t) = title {
                vals.push(("title", t.into()));
            }
            if let Some(v) = venue {
                vals.push(("venue", v.into()));
            }
            dblp.insert_record(key, vals).unwrap();
        }
        let mut acm = LogicalSource::new(
            "ACM",
            ObjectType::new("Publication"),
            vec![AttrDef::text("title"), AttrDef::text("venue")],
        );
        let a_recs: [(&str, Option<&str>, Option<&str>); 4] = [
            (
                "a0",
                Some("Data Cleaning Survey!"),
                Some("The VLDB Journal"),
            ),
            ("a1", Some("Schema Matching with Cupid"), None),
            ("a2", None, Some("VLDB")),
            ("a3", Some("Unrelated Title"), Some("Unrelated Venue")),
        ];
        for (key, title, venue) in a_recs {
            let mut vals: Vec<(&str, moma_model::AttrValue)> = Vec::new();
            if let Some(t) = title {
                vals.push(("title", t.into()));
            }
            if let Some(v) = venue {
                vals.push(("venue", v.into()));
            }
            acm.insert_record(key, vals).unwrap();
        }
        let d = reg.register(dblp).unwrap();
        let a = reg.register(acm).unwrap();
        let ctx = MatchContext::new(&reg);
        for t in [0.5, 0.7, 0.9] {
            for missing in [MissingPolicy::Ignore, MissingPolicy::Zero] {
                let m = MultiAttributeMatcher::new(
                    vec![
                        AttrPair::new("title", "title", SimFn::Trigram, 2.0),
                        AttrPair::new("venue", "venue", SimFn::QgramJaccard(2), 1.0),
                    ],
                    t,
                )
                .with_missing(missing);
                // Both attributes really are boundable at these
                // thresholds or not — either way results must agree.
                let all = m
                    .clone()
                    .with_blocking(Blocking::AllPairs)
                    .execute(&ctx, d, a)
                    .unwrap();
                let exact = m.execute(&ctx, d, a).unwrap(); // default Threshold
                assert_eq!(all.table.rows(), exact.table.rows(), "t={t} {missing:?}");
            }
        }
        // At t = 0.9 both derived bounds are sound (t_k > 0 for both
        // weights): pin that the secondary index actually prunes — the
        // unrelated range row never survives a selective probe pair.
        let m = MultiAttributeMatcher::new(
            vec![
                AttrPair::new("title", "title", SimFn::Trigram, 2.0),
                AttrPair::new("venue", "venue", SimFn::QgramJaccard(2), 1.0),
            ],
            0.9,
        );
        assert!(m.derived_threshold(0).is_some());
        assert!(m.derived_threshold(1).is_some());
        let r = m.execute(&ctx, d, a).unwrap();
        assert!(r.table.iter().all(|c| c.range != 3));
    }

    #[test]
    fn derived_threshold_per_attribute() {
        // weights 2 (primary) + 1, t = 0.8: t_0 = 1 − 3·0.2/2 = 0.7,
        // t_1 = 1 − 3·0.2/1 = 0.4.
        let m = matcher();
        assert!((m.derived_threshold(0).unwrap() - 0.7).abs() < 1e-12);
        assert!((m.derived_threshold(1).unwrap() - 0.4).abs() < 1e-12);
        assert_eq!(m.derived_threshold(2), None); // out of range
                                                  // Low-weight attributes get vacuous (None) bounds.
        let skewed = MultiAttributeMatcher::new(
            vec![
                AttrPair::new("t", "t", SimFn::Trigram, 9.0),
                AttrPair::new("v", "v", SimFn::Trigram, 1.0),
            ],
            0.8,
        );
        assert!(skewed.derived_threshold(0).is_some());
        assert_eq!(skewed.derived_threshold(1), None);
    }

    #[test]
    fn empty_config_rejected() {
        let (reg, d, a) = setup();
        let ctx = MatchContext::new(&reg);
        let m = MultiAttributeMatcher::new(vec![], 0.5);
        assert!(matches!(
            m.execute(&ctx, d, a),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn name_lists_attrs() {
        let n = matcher().name();
        assert!(n.contains("title~title:trigram"));
        assert!(n.contains("year~year:year:0"));
    }
}
