//! Multi-attribute matcher (paper Section 2.2).
//!
//! "A multi-attribute matcher is also supported which directly evaluates
//! and combines the similarity for multiple attribute pairs, e.g., for
//! publication title and publication year."

use moma_model::LdsId;
use moma_simstring::SimFn;
use moma_table::MappingTable;

use crate::blocking::{Blocking, TrigramIndex};
use crate::error::{CoreError, Result};
use crate::mapping::Mapping;
use crate::matchers::{MatchContext, Matcher};
use crate::ops::merge::MissingPolicy;

/// One attribute pair with its similarity function and weight.
#[derive(Debug, Clone)]
pub struct AttrPair {
    /// Attribute on the domain LDS.
    pub domain_attr: String,
    /// Attribute on the range LDS.
    pub range_attr: String,
    /// Similarity function for this pair.
    pub sim: SimFn,
    /// Relative weight in the combined similarity.
    pub weight: f64,
}

impl AttrPair {
    /// Convenience constructor.
    pub fn new(
        domain_attr: impl Into<String>,
        range_attr: impl Into<String>,
        sim: SimFn,
        weight: f64,
    ) -> Self {
        Self {
            domain_attr: domain_attr.into(),
            range_attr: range_attr.into(),
            sim,
            weight,
        }
    }
}

/// Matcher combining several attribute similarities per candidate pair.
#[derive(Debug, Clone)]
pub struct MultiAttributeMatcher {
    /// The attribute pairs; the first is the *primary* (used for
    /// blocking).
    pub attrs: Vec<AttrPair>,
    /// Threshold on the combined similarity.
    pub threshold: f64,
    /// Missing-value treatment: ignore (renormalize weights over present
    /// attributes) or zero.
    pub missing: MissingPolicy,
    /// Candidate-generation strategy (on the primary attribute).
    pub blocking: Blocking,
}

impl MultiAttributeMatcher {
    /// Create a matcher; `attrs` must be non-empty.
    pub fn new(attrs: Vec<AttrPair>, threshold: f64) -> Self {
        Self {
            attrs,
            threshold,
            missing: MissingPolicy::Ignore,
            blocking: Blocking::AllPairs,
        }
    }

    /// Set the missing policy (builder style).
    pub fn with_missing(mut self, missing: MissingPolicy) -> Self {
        self.missing = missing;
        self
    }

    /// Set the blocking strategy (builder style).
    pub fn with_blocking(mut self, blocking: Blocking) -> Self {
        self.blocking = blocking;
        self
    }

    fn combined_sim(&self, d_vals: &[Option<String>], r_vals: &[Option<String>]) -> Option<f64> {
        let mut num = 0.0;
        let mut den = 0.0;
        let mut any = false;
        for (k, pair) in self.attrs.iter().enumerate() {
            match (&d_vals[k], &r_vals[k]) {
                (Some(a), Some(b)) => {
                    num += pair.weight * pair.sim.eval(a, b);
                    den += pair.weight;
                    any = true;
                }
                _ => {
                    if self.missing == MissingPolicy::Zero {
                        den += pair.weight;
                    }
                }
            }
        }
        if !any || den <= 0.0 {
            None
        } else {
            Some(num / den)
        }
    }
}

impl Matcher for MultiAttributeMatcher {
    fn name(&self) -> String {
        let attrs: Vec<String> = self
            .attrs
            .iter()
            .map(|p| format!("{}~{}:{}", p.domain_attr, p.range_attr, p.sim.name()))
            .collect();
        format!("multiAttrMatch([{}], {})", attrs.join(", "), self.threshold)
    }

    fn execute(&self, ctx: &MatchContext<'_>, domain: LdsId, range: LdsId) -> Result<Mapping> {
        if self.attrs.is_empty() {
            return Err(CoreError::InvalidConfig(
                "multi-attribute matcher needs attributes".into(),
            ));
        }
        let d_lds = ctx.registry.lds(domain);
        let r_lds = ctx.registry.lds(range);

        // Per-instance value rows aligned to `attrs`.
        let project = |lds: &moma_model::LogicalSource,
                       side_domain: bool|
         -> Result<Vec<(u32, Vec<Option<String>>)>> {
            let slots: Vec<usize> = self
                .attrs
                .iter()
                .map(|p| {
                    lds.attr_slot(if side_domain {
                        &p.domain_attr
                    } else {
                        &p.range_attr
                    })
                    .map_err(CoreError::from)
                })
                .collect::<Result<_>>()?;
            Ok(lds
                .iter()
                .map(|(i, inst)| {
                    let row = slots
                        .iter()
                        .map(|&s| inst.value(s).map(|v| v.to_match_string()))
                        .collect();
                    (i, row)
                })
                .collect())
        };
        let d_rows = project(d_lds, true)?;
        let r_rows = project(r_lds, false)?;

        // Blocking on the primary attribute (index built sharded, probed
        // read-only by every scoring thread).
        let index = match self.blocking {
            Blocking::AllPairs => None,
            Blocking::TrigramPrefix => {
                let primary_vals: Vec<(u32, &str)> = r_rows
                    .iter()
                    .filter_map(|(i, row)| row[0].as_deref().map(|v| (*i, v)))
                    .collect();
                Some(TrigramIndex::build_par(&primary_vals, &ctx.parallelism))
            }
        };
        let pos_of: moma_table::FxHashMap<u32, usize> = r_rows
            .iter()
            .enumerate()
            .map(|(p, (i, _))| (*i, p))
            .collect();

        // Shard the domain rows; per-shard outputs concatenate in input
        // order, so the table matches the sequential scan exactly.
        let shard_rows = ctx.parallelism.run_sharded(&d_rows, |shard| {
            let mut rows: Vec<(u32, u32, f64)> = Vec::new();
            for (d_idx, d_row) in shard {
                let candidates: Vec<usize> = match (&index, &d_row[0]) {
                    (Some(idx), Some(primary)) => idx
                        .candidates(primary, self.threshold)
                        .into_iter()
                        .map(|c| pos_of[&c])
                        .collect(),
                    (Some(_), None) => Vec::new(),
                    (None, _) => (0..r_rows.len()).collect(),
                };
                for p in candidates {
                    let (r_idx, r_row) = &r_rows[p];
                    if let Some(s) = self.combined_sim(d_row, r_row) {
                        if s >= self.threshold {
                            rows.push((*d_idx, *r_idx, s));
                        }
                    }
                }
            }
            rows
        });
        let mut table = MappingTable::new();
        for rows in shard_rows {
            for (d, r, s) in rows {
                table.push(d, r, s);
            }
        }
        table.dedup_max();
        Ok(Mapping::same(self.name(), domain, range, table))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_model::{AttrDef, LogicalSource, ObjectType, SourceRegistry};

    fn setup() -> (SourceRegistry, LdsId, LdsId) {
        let mut reg = SourceRegistry::new();
        let mut dblp = LogicalSource::new(
            "DBLP",
            ObjectType::new("Publication"),
            vec![AttrDef::text("title"), AttrDef::year("year")],
        );
        // Same title twice with different years — the conference/journal
        // version problem from paper Fig. 7.
        dblp.insert_record(
            "d0",
            vec![
                (
                    "title",
                    "A formal perspective on the view selection problem".into(),
                ),
                ("year", 2001u16.into()),
            ],
        )
        .unwrap();
        dblp.insert_record(
            "d1",
            vec![
                (
                    "title",
                    "A formal perspective on the view selection problem".into(),
                ),
                ("year", 2002u16.into()),
            ],
        )
        .unwrap();
        dblp.insert_record("d2", vec![("title", "No year record".into())])
            .unwrap();
        let mut acm = LogicalSource::new(
            "ACM",
            ObjectType::new("Publication"),
            vec![AttrDef::text("title"), AttrDef::year("year")],
        );
        acm.insert_record(
            "a0",
            vec![
                (
                    "title",
                    "A formal perspective on the view selection problem".into(),
                ),
                ("year", 2001u16.into()),
            ],
        )
        .unwrap();
        acm.insert_record("a1", vec![("title", "No year record".into())])
            .unwrap();
        let d = reg.register(dblp).unwrap();
        let a = reg.register(acm).unwrap();
        (reg, d, a)
    }

    fn matcher() -> MultiAttributeMatcher {
        MultiAttributeMatcher::new(
            vec![
                AttrPair::new("title", "title", SimFn::Trigram, 2.0),
                AttrPair::new("year", "year", SimFn::Year(0), 1.0),
            ],
            0.8,
        )
    }

    #[test]
    fn year_disambiguates_same_title() {
        let (reg, d, a) = setup();
        let ctx = MatchContext::new(&reg);
        let r = matcher().execute(&ctx, d, a).unwrap();
        // d0 (2001) combined = (2*1 + 1*1)/3 = 1; d1 (2002) = (2*1 + 0)/3 ≈ 0.67 < 0.8.
        assert_eq!(r.table.sim_of(0, 0), Some(1.0));
        assert_eq!(r.table.sim_of(1, 0), None);
    }

    #[test]
    fn missing_ignore_renormalizes() {
        let (reg, d, a) = setup();
        let ctx = MatchContext::new(&reg);
        let r = matcher().execute(&ctx, d, a).unwrap();
        // d2/a1 have no year; Ignore policy: title alone = 1.0.
        assert_eq!(r.table.sim_of(2, 1), Some(1.0));
    }

    #[test]
    fn missing_zero_penalizes() {
        let (reg, d, a) = setup();
        let ctx = MatchContext::new(&reg);
        let r = matcher()
            .with_missing(MissingPolicy::Zero)
            .execute(&ctx, d, a)
            .unwrap();
        // d2/a1: (2*1 + 0)/3 ≈ 0.67 < 0.8 -> dropped.
        assert_eq!(r.table.sim_of(2, 1), None);
    }

    #[test]
    fn parallel_equivalent() {
        use crate::exec::Parallelism;
        let (reg, d, a) = setup();
        let seq = matcher()
            .execute(
                &MatchContext::new(&reg).with_parallelism(Parallelism::sequential()),
                d,
                a,
            )
            .unwrap();
        for threads in [2usize, 8] {
            for blocking in [Blocking::AllPairs, Blocking::TrigramPrefix] {
                let ctx = MatchContext::new(&reg)
                    .with_parallelism(Parallelism::new(threads).with_min_shard_size(1));
                let par = matcher()
                    .with_blocking(blocking)
                    .execute(&ctx, d, a)
                    .unwrap();
                assert_eq!(
                    seq.table.rows(),
                    par.table.rows(),
                    "threads={threads} blocking={blocking:?}"
                );
            }
        }
    }

    #[test]
    fn blocking_equivalent() {
        let (reg, d, a) = setup();
        let ctx = MatchContext::new(&reg);
        let all = matcher().execute(&ctx, d, a).unwrap();
        let blocked = matcher()
            .with_blocking(Blocking::TrigramPrefix)
            .execute(&ctx, d, a)
            .unwrap();
        assert_eq!(all.table.pair_set(), blocked.table.pair_set());
    }

    #[test]
    fn empty_config_rejected() {
        let (reg, d, a) = setup();
        let ctx = MatchContext::new(&reg);
        let m = MultiAttributeMatcher::new(vec![], 0.5);
        assert!(matches!(
            m.execute(&ctx, d, a),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn name_lists_attrs() {
        let n = matcher().name();
        assert!(n.contains("title~title:trigram"));
        assert!(n.contains("year~year:year:0"));
    }
}
