//! Multi-attribute matcher (paper Section 2.2).
//!
//! "A multi-attribute matcher is also supported which directly evaluates
//! and combines the similarity for multiple attribute pairs, e.g., for
//! publication title and publication year."

use moma_model::LdsId;
use moma_simstring::bounds::qgram_measure_of;
use moma_simstring::SimFn;
use moma_table::MappingTable;

use crate::blocking::{Blocking, ThresholdIndex, TrigramIndex};
use crate::error::{CoreError, Result};
use crate::mapping::Mapping;
use crate::matchers::{MatchContext, Matcher};
use crate::ops::merge::MissingPolicy;

/// One attribute pair with its similarity function and weight.
#[derive(Debug, Clone)]
pub struct AttrPair {
    /// Attribute on the domain LDS.
    pub domain_attr: String,
    /// Attribute on the range LDS.
    pub range_attr: String,
    /// Similarity function for this pair.
    pub sim: SimFn,
    /// Relative weight in the combined similarity.
    pub weight: f64,
}

impl AttrPair {
    /// Convenience constructor.
    pub fn new(
        domain_attr: impl Into<String>,
        range_attr: impl Into<String>,
        sim: SimFn,
        weight: f64,
    ) -> Self {
        Self {
            domain_attr: domain_attr.into(),
            range_attr: range_attr.into(),
            sim,
            weight,
        }
    }
}

/// Matcher combining several attribute similarities per candidate pair.
#[derive(Debug, Clone)]
pub struct MultiAttributeMatcher {
    /// The attribute pairs; the first is the *primary* (used for
    /// blocking).
    pub attrs: Vec<AttrPair>,
    /// Threshold on the combined similarity.
    pub threshold: f64,
    /// Missing-value treatment: ignore (renormalize weights over present
    /// attributes) or zero.
    pub missing: MissingPolicy,
    /// Candidate-generation strategy (on the primary attribute).
    pub blocking: Blocking,
}

impl MultiAttributeMatcher {
    /// Create a matcher with the default threshold-exact blocking
    /// ([`Blocking::Threshold`]): candidates are pruned on the primary
    /// attribute through a *derived* primary threshold (see
    /// [`MultiAttributeMatcher::primary_threshold`]) whenever a sound
    /// bound exists, and scored all-pairs otherwise — results are always
    /// identical to [`Blocking::AllPairs`]. `attrs` must be non-empty.
    pub fn new(attrs: Vec<AttrPair>, threshold: f64) -> Self {
        Self {
            attrs,
            threshold,
            missing: MissingPolicy::Ignore,
            blocking: Blocking::Threshold,
        }
    }

    /// Set the missing policy (builder style).
    pub fn with_missing(mut self, missing: MissingPolicy) -> Self {
        self.missing = missing;
        self
    }

    /// Set the blocking strategy (builder style).
    pub fn with_blocking(mut self, blocking: Blocking) -> Self {
        self.blocking = blocking;
        self
    }

    /// The primary-attribute threshold a combined-similarity threshold
    /// `t` implies: with primary weight `w` and total weight `W`, a pair
    /// whose *primary* values are both present can only reach combined
    /// similarity `t` if the primary similarity reaches
    /// `1 − W·(1 − t)/w` (every other attribute contributes at most its
    /// full weight, under either missing policy). `None` when the bound
    /// is vacuous (≤ 0) or unsound (a non-positive weight).
    pub fn primary_threshold(&self) -> Option<f64> {
        let w = self.attrs.first()?.weight;
        if w <= 0.0 || self.attrs.iter().any(|p| p.weight < 0.0) {
            return None;
        }
        let total: f64 = self.attrs.iter().map(|p| p.weight).sum();
        let t_p = 1.0 - total * (1.0 - self.threshold) / w;
        (t_p > 0.0).then_some(t_p)
    }

    fn combined_sim(&self, d_vals: &[Option<String>], r_vals: &[Option<String>]) -> Option<f64> {
        let mut num = 0.0;
        let mut den = 0.0;
        let mut any = false;
        for (k, pair) in self.attrs.iter().enumerate() {
            match (&d_vals[k], &r_vals[k]) {
                (Some(a), Some(b)) => {
                    num += pair.weight * pair.sim.eval(a, b);
                    den += pair.weight;
                    any = true;
                }
                _ => {
                    if self.missing == MissingPolicy::Zero {
                        den += pair.weight;
                    }
                }
            }
        }
        if !any || den <= 0.0 {
            None
        } else {
            Some(num / den)
        }
    }
}

impl Matcher for MultiAttributeMatcher {
    fn name(&self) -> String {
        let attrs: Vec<String> = self
            .attrs
            .iter()
            .map(|p| format!("{}~{}:{}", p.domain_attr, p.range_attr, p.sim.name()))
            .collect();
        format!("multiAttrMatch([{}], {})", attrs.join(", "), self.threshold)
    }

    fn execute(&self, ctx: &MatchContext<'_>, domain: LdsId, range: LdsId) -> Result<Mapping> {
        if self.attrs.is_empty() {
            return Err(CoreError::InvalidConfig(
                "multi-attribute matcher needs attributes".into(),
            ));
        }
        let d_lds = ctx.registry.lds(domain);
        let r_lds = ctx.registry.lds(range);

        // Per-instance value rows aligned to `attrs`.
        let project = |lds: &moma_model::LogicalSource,
                       side_domain: bool|
         -> Result<Vec<(u32, Vec<Option<String>>)>> {
            let slots: Vec<usize> = self
                .attrs
                .iter()
                .map(|p| {
                    lds.attr_slot(if side_domain {
                        &p.domain_attr
                    } else {
                        &p.range_attr
                    })
                    .map_err(CoreError::from)
                })
                .collect::<Result<_>>()?;
            Ok(lds
                .iter()
                .map(|(i, inst)| {
                    let row = slots
                        .iter()
                        .map(|&s| inst.value(s).map(|v| v.to_match_string()))
                        .collect();
                    (i, row)
                })
                .collect())
        };
        let d_rows = project(d_lds, true)?;
        let r_rows = project(r_lds, false)?;

        // Blocking on the primary attribute (index built sharded, probed
        // read-only by every scoring thread).
        //
        // * `TrigramPrefix` probes at the *combined* threshold — fast
        //   and historically lossy: a pair whose primary similarity is
        //   below it can still clear the combined threshold through the
        //   other attributes, and rows with a missing primary are
        //   skipped entirely.
        // * `Threshold` is exact: the probe threshold is the *derived*
        //   primary bound (see `primary_threshold`), range rows with a
        //   missing primary are kept as unconditional candidates, and
        //   domain rows with a missing primary scan the whole range
        //   side. When no sound bound exists (non-q-gram primary
        //   measure, vacuous bound) it falls back to the all-pairs
        //   scan — results always match `AllPairs`.
        enum PrimaryIndex {
            Prefix(TrigramIndex),
            Threshold {
                index: ThresholdIndex,
                /// Positions of range rows with a missing primary value
                /// (always candidates — they can pass through the other
                /// attributes).
                unindexed: Vec<usize>,
            },
        }
        // The primary-value projection is only collected in the arms
        // that index it — all-pairs modes (explicit or fallback) skip
        // the O(|range|) allocation entirely.
        let indexed_primary = || -> Vec<(u32, &str)> {
            r_rows
                .iter()
                .filter_map(|(i, row)| row[0].as_deref().map(|v| (*i, v)))
                .collect()
        };
        let index = match self.blocking {
            Blocking::AllPairs => None,
            Blocking::TrigramPrefix => Some(PrimaryIndex::Prefix(TrigramIndex::build_par(
                &indexed_primary(),
                &ctx.parallelism,
            ))),
            Blocking::Threshold => self
                .primary_threshold()
                .and_then(|t_p| qgram_measure_of(&self.attrs[0].sim).map(|(m, q)| (m, q, t_p)))
                // `None` = all-pairs fallback: no sound bound exists.
                .map(|(measure, q, t_p)| PrimaryIndex::Threshold {
                    index: ThresholdIndex::build_par(
                        measure,
                        q,
                        t_p,
                        &indexed_primary(),
                        &ctx.parallelism,
                    ),
                    unindexed: r_rows
                        .iter()
                        .enumerate()
                        .filter(|(_, (_, row))| row[0].is_none())
                        .map(|(p, _)| p)
                        .collect(),
                }),
        };
        let pos_of: moma_table::FxHashMap<u32, usize> = r_rows
            .iter()
            .enumerate()
            .map(|(p, (i, _))| (*i, p))
            .collect();

        // Shard the domain rows; per-shard outputs concatenate in input
        // order, so the table matches the sequential scan exactly.
        let shard_rows = ctx.parallelism.run_sharded(&d_rows, |shard| {
            let mut rows: Vec<(u32, u32, f64)> = Vec::new();
            for (d_idx, d_row) in shard {
                let candidates: Vec<usize> = match (&index, &d_row[0]) {
                    (Some(PrimaryIndex::Prefix(idx)), Some(primary)) => idx
                        .candidates(primary, self.threshold)
                        .into_iter()
                        .map(|c| pos_of[&c])
                        .collect(),
                    (Some(PrimaryIndex::Prefix(_)), None) => Vec::new(),
                    (Some(PrimaryIndex::Threshold { index, unindexed }), Some(primary)) => index
                        .candidates(primary)
                        .into_iter()
                        .map(|c| pos_of[&c])
                        .chain(unindexed.iter().copied())
                        .collect(),
                    // A missing domain primary can still pass the
                    // combined threshold: nothing can be pruned.
                    (Some(PrimaryIndex::Threshold { .. }), None) => (0..r_rows.len()).collect(),
                    (None, _) => (0..r_rows.len()).collect(),
                };
                for p in candidates {
                    let (r_idx, r_row) = &r_rows[p];
                    if let Some(s) = self.combined_sim(d_row, r_row) {
                        if s >= self.threshold {
                            rows.push((*d_idx, *r_idx, s));
                        }
                    }
                }
            }
            rows
        });
        let mut table = MappingTable::new();
        for rows in shard_rows {
            for (d, r, s) in rows {
                table.push(d, r, s);
            }
        }
        table.dedup_max();
        Ok(Mapping::same(self.name(), domain, range, table))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_model::{AttrDef, LogicalSource, ObjectType, SourceRegistry};

    fn setup() -> (SourceRegistry, LdsId, LdsId) {
        let mut reg = SourceRegistry::new();
        let mut dblp = LogicalSource::new(
            "DBLP",
            ObjectType::new("Publication"),
            vec![AttrDef::text("title"), AttrDef::year("year")],
        );
        // Same title twice with different years — the conference/journal
        // version problem from paper Fig. 7.
        dblp.insert_record(
            "d0",
            vec![
                (
                    "title",
                    "A formal perspective on the view selection problem".into(),
                ),
                ("year", 2001u16.into()),
            ],
        )
        .unwrap();
        dblp.insert_record(
            "d1",
            vec![
                (
                    "title",
                    "A formal perspective on the view selection problem".into(),
                ),
                ("year", 2002u16.into()),
            ],
        )
        .unwrap();
        dblp.insert_record("d2", vec![("title", "No year record".into())])
            .unwrap();
        let mut acm = LogicalSource::new(
            "ACM",
            ObjectType::new("Publication"),
            vec![AttrDef::text("title"), AttrDef::year("year")],
        );
        acm.insert_record(
            "a0",
            vec![
                (
                    "title",
                    "A formal perspective on the view selection problem".into(),
                ),
                ("year", 2001u16.into()),
            ],
        )
        .unwrap();
        acm.insert_record("a1", vec![("title", "No year record".into())])
            .unwrap();
        let d = reg.register(dblp).unwrap();
        let a = reg.register(acm).unwrap();
        (reg, d, a)
    }

    fn matcher() -> MultiAttributeMatcher {
        MultiAttributeMatcher::new(
            vec![
                AttrPair::new("title", "title", SimFn::Trigram, 2.0),
                AttrPair::new("year", "year", SimFn::Year(0), 1.0),
            ],
            0.8,
        )
    }

    #[test]
    fn year_disambiguates_same_title() {
        let (reg, d, a) = setup();
        let ctx = MatchContext::new(&reg);
        let r = matcher().execute(&ctx, d, a).unwrap();
        // d0 (2001) combined = (2*1 + 1*1)/3 = 1; d1 (2002) = (2*1 + 0)/3 ≈ 0.67 < 0.8.
        assert_eq!(r.table.sim_of(0, 0), Some(1.0));
        assert_eq!(r.table.sim_of(1, 0), None);
    }

    #[test]
    fn missing_ignore_renormalizes() {
        let (reg, d, a) = setup();
        let ctx = MatchContext::new(&reg);
        let r = matcher().execute(&ctx, d, a).unwrap();
        // d2/a1 have no year; Ignore policy: title alone = 1.0.
        assert_eq!(r.table.sim_of(2, 1), Some(1.0));
    }

    #[test]
    fn missing_zero_penalizes() {
        let (reg, d, a) = setup();
        let ctx = MatchContext::new(&reg);
        let r = matcher()
            .with_missing(MissingPolicy::Zero)
            .execute(&ctx, d, a)
            .unwrap();
        // d2/a1: (2*1 + 0)/3 ≈ 0.67 < 0.8 -> dropped.
        assert_eq!(r.table.sim_of(2, 1), None);
    }

    #[test]
    fn parallel_equivalent() {
        use crate::exec::Parallelism;
        let (reg, d, a) = setup();
        let seq = matcher()
            .execute(
                &MatchContext::new(&reg).with_parallelism(Parallelism::sequential()),
                d,
                a,
            )
            .unwrap();
        for threads in [2usize, 8] {
            for blocking in [Blocking::AllPairs, Blocking::TrigramPrefix] {
                let ctx = MatchContext::new(&reg)
                    .with_parallelism(Parallelism::new(threads).with_min_shard_size(1));
                let par = matcher()
                    .with_blocking(blocking)
                    .execute(&ctx, d, a)
                    .unwrap();
                assert_eq!(
                    seq.table.rows(),
                    par.table.rows(),
                    "threads={threads} blocking={blocking:?}"
                );
            }
        }
    }

    #[test]
    fn blocking_equivalent() {
        let (reg, d, a) = setup();
        let ctx = MatchContext::new(&reg);
        let all = matcher().execute(&ctx, d, a).unwrap();
        let blocked = matcher()
            .with_blocking(Blocking::TrigramPrefix)
            .execute(&ctx, d, a)
            .unwrap();
        assert_eq!(all.table.pair_set(), blocked.table.pair_set());
    }

    #[test]
    fn primary_threshold_derivation() {
        // weights 2 (primary) + 1, t = 0.8: t_p = 1 − 3·0.2/2 = 0.7.
        let m = matcher();
        assert!((m.primary_threshold().unwrap() - 0.7).abs() < 1e-12);
        // Single attribute degenerates to the matcher threshold.
        let single =
            MultiAttributeMatcher::new(vec![AttrPair::new("t", "t", SimFn::Trigram, 1.0)], 0.6);
        assert!((single.primary_threshold().unwrap() - 0.6).abs() < 1e-12);
        // Vacuous bound: a low-weight primary cannot be bounded.
        let weak = MultiAttributeMatcher::new(
            vec![
                AttrPair::new("t", "t", SimFn::Trigram, 1.0),
                AttrPair::new("y", "y", SimFn::Year(0), 9.0),
            ],
            0.8,
        );
        assert_eq!(weak.primary_threshold(), None);
        // Non-positive weights are unsound for the bound.
        let zero =
            MultiAttributeMatcher::new(vec![AttrPair::new("t", "t", SimFn::Trigram, 0.0)], 0.8);
        assert_eq!(zero.primary_threshold(), None);
    }

    #[test]
    fn threshold_blocking_exact_with_missing_primaries() {
        // A range row with a *missing primary* can still clear the
        // combined threshold (Ignore renormalizes onto the year) — the
        // prefix filter drops such pairs, the exact engine must not.
        let mut reg = SourceRegistry::new();
        let mut dblp = LogicalSource::new(
            "DBLP",
            ObjectType::new("Publication"),
            vec![AttrDef::text("title"), AttrDef::year("year")],
        );
        dblp.insert_record(
            "d0",
            vec![
                ("title", "Data Cleaning Survey".into()),
                ("year", 2001u16.into()),
            ],
        )
        .unwrap();
        dblp.insert_record("d1", vec![("year", 2002u16.into())])
            .unwrap();
        let mut acm = LogicalSource::new(
            "ACM",
            ObjectType::new("Publication"),
            vec![AttrDef::text("title"), AttrDef::year("year")],
        );
        // a0: no title at all; a1: title present.
        acm.insert_record("a0", vec![("year", 2001u16.into())])
            .unwrap();
        acm.insert_record(
            "a1",
            vec![
                ("title", "Data Cleaning Survey!".into()),
                ("year", 2002u16.into()),
            ],
        )
        .unwrap();
        let d = reg.register(dblp).unwrap();
        let a = reg.register(acm).unwrap();
        let ctx = MatchContext::new(&reg);
        let m = MultiAttributeMatcher::new(
            vec![
                AttrPair::new("title", "title", SimFn::Trigram, 2.0),
                AttrPair::new("year", "year", SimFn::Year(0), 1.0),
            ],
            0.8,
        );
        let all = m
            .clone()
            .with_blocking(Blocking::AllPairs)
            .execute(&ctx, d, a)
            .unwrap();
        let exact = m.execute(&ctx, d, a).unwrap(); // default = Threshold
        assert_eq!(all.table.rows(), exact.table.rows());
        // The missing-primary pairs really are in the result (year-only
        // renormalized similarity 1.0): d0×a0 and d1×a1.
        assert_eq!(exact.table.sim_of(0, 0), Some(1.0));
        assert_eq!(exact.table.sim_of(1, 1), Some(1.0));
        // ...and the prefix filter would have lost them (documented
        // lossiness, pinned so the decision table stays honest).
        let prefix = m
            .clone()
            .with_blocking(Blocking::TrigramPrefix)
            .execute(&ctx, d, a)
            .unwrap();
        assert_eq!(prefix.table.sim_of(0, 0), None);
    }

    #[test]
    fn threshold_blocking_matches_allpairs_on_standard_data() {
        let (reg, d, a) = setup();
        let ctx = MatchContext::new(&reg);
        for t in [0.5, 0.8] {
            for missing in [MissingPolicy::Ignore, MissingPolicy::Zero] {
                let base = MultiAttributeMatcher::new(
                    vec![
                        AttrPair::new("title", "title", SimFn::Trigram, 2.0),
                        AttrPair::new("year", "year", SimFn::Year(0), 1.0),
                    ],
                    t,
                )
                .with_missing(missing);
                let all = base
                    .clone()
                    .with_blocking(Blocking::AllPairs)
                    .execute(&ctx, d, a)
                    .unwrap();
                let exact = base
                    .clone()
                    .with_blocking(Blocking::Threshold)
                    .execute(&ctx, d, a)
                    .unwrap();
                assert_eq!(all.table.rows(), exact.table.rows(), "t={t} {missing:?}");
            }
        }
        // Non-q-gram primary: Threshold transparently scores all pairs.
        let jaro = MultiAttributeMatcher::new(
            vec![AttrPair::new("title", "title", SimFn::Jaro, 1.0)],
            0.9,
        );
        let all = jaro
            .clone()
            .with_blocking(Blocking::AllPairs)
            .execute(&ctx, d, a)
            .unwrap();
        let fallback = jaro.execute(&ctx, d, a).unwrap();
        assert_eq!(all.table.rows(), fallback.table.rows());
    }

    #[test]
    fn empty_config_rejected() {
        let (reg, d, a) = setup();
        let ctx = MatchContext::new(&reg);
        let m = MultiAttributeMatcher::new(vec![], 0.5);
        assert!(matches!(
            m.execute(&ctx, d, a),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn name_lists_attrs() {
        let n = matcher().name();
        assert!(n.contains("title~title:trigram"));
        assert!(n.contains("year~year:year:0"));
    }
}
