//! The neighborhood matcher (paper Section 4.2).
//!
//! ```text
//! PROCEDURE nhMatch ( $Asso1, $Same, $Asso2 )
//!    $Temp   = compose ( $Asso1, $Same,  Min, Average )
//!    $Result = compose ( $Temp,  $Asso2, Min, Relative )
//!    RETURN $Result
//! END
//! ```
//!
//! Two objects become similar when their *neighborhoods* (publications of
//! a venue, co-authors of an author, …) match under an existing
//! same-mapping. The second compose uses a Relative aggregation so that
//! correspondences reached via multiple compose paths score higher.

use std::collections::{HashMap, HashSet};

use moma_model::LdsId;

use crate::error::{CoreError, Result};
use crate::mapping::Mapping;
use crate::matchers::{MatchContext, Matcher};
use crate::ops::compose::{compose, PathAgg, PathCombine};
use crate::ops::select::{select, Selection};

/// Run the neighborhood matcher on explicit mappings.
///
/// * `asso1: A → N_A` — association from the domain objects to their
///   neighborhood (e.g. venue → publications),
/// * `same: N_A → N_B` — same-mapping between the neighborhoods,
/// * `asso2: N_B → B` — association from the range neighborhood back to
///   the range objects (inverse semantic type of `asso1`),
/// * `g` — aggregation for the second compose; the paper uses
///   [`PathAgg::Relative`] by default and [`PathAgg::RelativeLeft`] when
///   the right-hand association is known to be incomplete (Section
///   5.4.3's truncated Google Scholar author lists).
pub fn nh_match(asso1: &Mapping, same: &Mapping, asso2: &Mapping, g: PathAgg) -> Result<Mapping> {
    let temp = compose(asso1, same, PathCombine::Min, PathAgg::Avg)?;
    let mut result = compose(&temp, asso2, PathCombine::Min, g)?;
    result.name = format!("nhMatch({}, {}, {})", asso1.name, same.name, asso2.name);
    result.kind = crate::mapping::MappingKind::Same;
    Ok(result)
}

/// Per-group similarity statistics used by the threshold pruner.
#[derive(Clone, Copy, Default)]
struct GroupStats {
    max: f64,
    sum: f64,
    count: u32,
}

impl GroupStats {
    fn add(&mut self, sim: f64) {
        self.max = self.max.max(sim);
        self.sum += sim;
        self.count += 1;
    }
}

/// Upper bound on the final similarity any pair with domain object `a`
/// can reach in `compose(temp, asso2, Min, g)`, from the *unpruned*
/// stats of `a`'s rows in `temp`.
///
/// Soundness (both tables hold unique `(domain, range)` pairs, so each
/// compose path of a pair `(a, b)` uses a distinct `temp` row of `a` and
/// a distinct `asso2` row of `b`): with `PathCombine::Min` every path
/// similarity `f ≤ s_temp ≤ max(a)`, so `Avg`/`Min`/`Max` are bounded by
/// `max(a)`; the Relative family divides a path sum `≤ sum(a)` (resp.
/// `≤ #paths·max(a)` with `#paths ≤ min(n(a), n(b))`) by `n(a)`, `n(b)`
/// or their mean, giving the bounds below.
fn domain_bound(g: PathAgg, st: &GroupStats) -> f64 {
    match g {
        PathAgg::Avg | PathAgg::Min | PathAgg::Max | PathAgg::RelativeRight => st.max,
        PathAgg::RelativeLeft => st.sum / st.count as f64,
        PathAgg::Relative => st.max.min(2.0 * st.sum / (st.count as f64 + 1.0)),
    }
}

/// Mirror of [`domain_bound`] for a range object `b`, from the unpruned
/// stats of `b`'s rows in `asso2`.
fn range_bound(g: PathAgg, st: &GroupStats) -> f64 {
    match g {
        PathAgg::Avg | PathAgg::Min | PathAgg::Max | PathAgg::RelativeLeft => st.max,
        PathAgg::RelativeRight => st.sum / st.count as f64,
        PathAgg::Relative => st.max.min(2.0 * st.sum / (st.count as f64 + 1.0)),
    }
}

/// [`nh_match`] followed by a `threshold` selection, with exact
/// search-space pruning: bit-identical to
/// `select(nh_match(asso1, same, asso2, g), Threshold(threshold))`
/// (same rows, same order, same name) but the second compose never
/// visits a domain or range object whose similarity upper bound already
/// rules it out.
///
/// The pruner only ever drops *whole* domain groups of the intermediate
/// mapping / whole range groups of `asso2`, with bounds computed from
/// the unpruned tables — so for every surviving pair the compose sees
/// the same paths in the same order with the same `n(a)`/`n(b)`
/// degrees, and the floating-point result is identical bit for bit.
/// The prune condition `bound < threshold − 1e-9` leaves a safety
/// margin: a group is only dropped when no pair in it could survive the
/// selection.
pub fn nh_match_threshold(
    asso1: &Mapping,
    same: &Mapping,
    asso2: &Mapping,
    g: PathAgg,
    threshold: f64,
) -> Result<Mapping> {
    let temp = compose(asso1, same, PathCombine::Min, PathAgg::Avg)?;

    // The bound arguments assume unique (domain, range) pairs. `temp`
    // is a compose output (always deduplicated); `asso2` is caller
    // input — if it does carry duplicates, skip pruning rather than
    // risk an unsound bound.
    let mut seen = HashSet::with_capacity(asso2.table.len());
    let asso2_unique = asso2.table.iter().all(|c| seen.insert((c.domain, c.range)));

    let mut result = if asso2_unique {
        let mut domain_stats: HashMap<u32, GroupStats> = HashMap::new();
        for c in temp.table.iter() {
            domain_stats.entry(c.domain).or_default().add(c.sim);
        }
        let mut range_stats: HashMap<u32, GroupStats> = HashMap::new();
        for c in asso2.table.iter() {
            range_stats.entry(c.range).or_default().add(c.sim);
        }
        let cut = threshold - 1e-9;
        let pruned_temp = Mapping {
            name: temp.name.clone(),
            kind: temp.kind.clone(),
            domain: temp.domain,
            range: temp.range,
            table: temp
                .table
                .filtered(|c| domain_bound(g, &domain_stats[&c.domain]) >= cut),
        };
        let pruned_asso2 = Mapping {
            name: asso2.name.clone(),
            kind: asso2.kind.clone(),
            domain: asso2.domain,
            range: asso2.range,
            table: asso2
                .table
                .filtered(|c| range_bound(g, &range_stats[&c.range]) >= cut),
        };
        compose(&pruned_temp, &pruned_asso2, PathCombine::Min, g)?
    } else {
        compose(&temp, asso2, PathCombine::Min, g)?
    };
    result.name = format!("nhMatch({}, {}, {})", asso1.name, same.name, asso2.name);
    result.kind = crate::mapping::MappingKind::Same;
    Ok(select(&result, &Selection::Threshold(threshold)))
}

/// [`Matcher`] wrapper resolving its inputs from the mapping repository.
#[derive(Debug, Clone)]
pub struct NeighborhoodMatcher {
    /// Repository name of the first association mapping.
    pub asso1: String,
    /// Repository name of the same-mapping over the neighborhoods.
    pub same: String,
    /// Repository name of the second association mapping.
    pub asso2: String,
    /// Aggregation for the second compose.
    pub g: PathAgg,
    /// Optional selection threshold; when set the matcher runs
    /// [`nh_match_threshold`], pruning the compose search space.
    pub threshold: Option<f64>,
}

impl NeighborhoodMatcher {
    /// Matcher with the paper's default `g = Relative`.
    pub fn new(
        asso1: impl Into<String>,
        same: impl Into<String>,
        asso2: impl Into<String>,
    ) -> Self {
        Self {
            asso1: asso1.into(),
            same: same.into(),
            asso2: asso2.into(),
            g: PathAgg::Relative,
            threshold: None,
        }
    }

    /// Override the aggregation function (builder style).
    pub fn with_agg(mut self, g: PathAgg) -> Self {
        self.g = g;
        self
    }

    /// Apply a threshold selection to the result (builder style) —
    /// executes via the pruning [`nh_match_threshold`] path.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = Some(threshold);
        self
    }
}

impl Matcher for NeighborhoodMatcher {
    fn name(&self) -> String {
        format!("nhMatch({}, {}, {})", self.asso1, self.same, self.asso2)
    }

    fn execute(&self, ctx: &MatchContext<'_>, domain: LdsId, range: LdsId) -> Result<Mapping> {
        let repo = ctx.repository.ok_or_else(|| {
            CoreError::InvalidConfig("neighborhood matcher needs a repository".into())
        })?;
        let get = |name: &str| {
            repo.get(name)
                .ok_or_else(|| CoreError::UnknownMapping(name.to_owned()))
        };
        let asso1 = get(&self.asso1)?;
        let same = get(&self.same)?;
        let asso2 = get(&self.asso2)?;
        if asso1.domain != domain || asso2.range != range {
            return Err(CoreError::Incompatible(format!(
                "nhMatch endpoints ({}, {}) do not align with requested ({}, {})",
                asso1.domain.0, asso2.range.0, domain.0, range.0
            )));
        }
        match self.threshold {
            Some(t) => nh_match_threshold(&asso1, &same, &asso2, self.g, t),
            None => nh_match(&asso1, &same, &asso2, self.g),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::MappingRepository;
    use moma_table::MappingTable;

    /// The Figure 9 scenario: derive a venue same-mapping from the
    /// Figure 1 publication same-mapping and venue-publication
    /// associations.
    ///
    /// DBLP venues: conf/VLDB/2001 = 0, journals/VLDB/2002 = 1.
    /// DBLP pubs: MadhavanBR01 = 0, ChirkovaHS01 = 1, ChirkovaHS02 = 2.
    /// ACM pubs: P-672191 = 0, P-672216 = 1, P-641272 = 2.
    /// ACM venues: V-645927 = 0, V-641268 = 1.
    fn fig9() -> (Mapping, Mapping, Mapping) {
        let asso1 = Mapping::association(
            "VenuePub@DBLP",
            "publications of venue",
            LdsId(0),
            LdsId(1),
            MappingTable::from_triples([(0, 0, 1.0), (0, 1, 1.0), (1, 2, 1.0)]),
        );
        // Figure 1 same-mapping incl. the two 0.6 cross correspondences.
        let same = Mapping::same(
            "PubSame(DBLP,ACM)",
            LdsId(1),
            LdsId(2),
            MappingTable::from_triples([
                (0, 0, 1.0),
                (1, 1, 1.0),
                (1, 2, 0.6),
                (2, 1, 0.6),
                (2, 2, 1.0),
            ]),
        );
        let asso2 = Mapping::association(
            "PubVenue@ACM",
            "venue of publication",
            LdsId(2),
            LdsId(3),
            MappingTable::from_triples([(0, 0, 1.0), (1, 0, 1.0), (2, 1, 1.0)]),
        );
        (asso1, same, asso2)
    }

    #[test]
    fn fig9_venue_matching() {
        let (asso1, same, asso2) = fig9();
        let r = nh_match(&asso1, &same, &asso2, PathAgg::Relative).unwrap();
        // Paper Figure 9 results:
        // (conf/VLDB/2001, V-645927)      = 2*(1+1)/(3+2) = 0.8
        // (conf/VLDB/2001, V-641268)      = 2*0.6/(3+1)   = 0.3
        // (journals/VLDB/2002, V-645927)  = 2*0.6/(2+2)   = 0.3
        // (journals/VLDB/2002, V-641268)  = 2*1/(2+1)     = 0.67
        assert!((r.table.sim_of(0, 0).unwrap() - 0.8).abs() < 1e-12);
        assert!((r.table.sim_of(0, 1).unwrap() - 0.3).abs() < 1e-12);
        assert!((r.table.sim_of(1, 0).unwrap() - 0.3).abs() < 1e-12);
        assert!((r.table.sim_of(1, 1).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!(r.kind.is_same());
        // A threshold selection at 0.5 yields the correct 1:1 venue mapping.
        let sel = crate::ops::select::select(&r, &crate::ops::select::Selection::Threshold(0.5));
        assert_eq!(sel.len(), 2);
        assert!(sel.table.sim_of(0, 0).is_some());
        assert!(sel.table.sim_of(1, 1).is_some());
    }

    #[test]
    fn matcher_wrapper_resolves_repository() {
        let (asso1, same, asso2) = fig9();
        let repo = MappingRepository::new();
        repo.store(asso1.clone());
        repo.store(same.clone());
        repo.store(asso2.clone());
        let reg = moma_model::SourceRegistry::new();
        let ctx = MatchContext::with_repository(&reg, &repo);
        let m = NeighborhoodMatcher::new("VenuePub@DBLP", "PubSame(DBLP,ACM)", "PubVenue@ACM");
        let r = m.execute(&ctx, LdsId(0), LdsId(3)).unwrap();
        assert!((r.table.sim_of(0, 0).unwrap() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn matcher_without_repository_errors() {
        let reg = moma_model::SourceRegistry::new();
        let ctx = MatchContext::new(&reg);
        let m = NeighborhoodMatcher::new("a", "b", "c");
        assert!(matches!(
            m.execute(&ctx, LdsId(0), LdsId(3)),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn matcher_unknown_mapping_errors() {
        let repo = MappingRepository::new();
        let reg = moma_model::SourceRegistry::new();
        let ctx = MatchContext::with_repository(&reg, &repo);
        let m = NeighborhoodMatcher::new("missing1", "missing2", "missing3");
        assert!(matches!(
            m.execute(&ctx, LdsId(0), LdsId(3)),
            Err(CoreError::UnknownMapping(_))
        ));
    }

    #[test]
    fn misaligned_endpoints_error() {
        let (asso1, same, asso2) = fig9();
        let repo = MappingRepository::new();
        repo.store(asso1);
        repo.store(same);
        repo.store(asso2);
        let reg = moma_model::SourceRegistry::new();
        let ctx = MatchContext::with_repository(&reg, &repo);
        let m = NeighborhoodMatcher::new("VenuePub@DBLP", "PubSame(DBLP,ACM)", "PubVenue@ACM");
        assert!(matches!(
            m.execute(&ctx, LdsId(9), LdsId(3)),
            Err(CoreError::Incompatible(_))
        ));
    }

    #[test]
    fn relative_left_variant() {
        let (asso1, same, asso2) = fig9();
        let r = nh_match(&asso1, &same, &asso2, PathAgg::RelativeLeft).unwrap();
        // (v0, v'0): sum = 2, n(v0) = 3 in the intermediate... RelativeLeft
        // divides by the left degree of the *composed-temp* mapping: the
        // temp mapping has v0 -> {a_p0:1, a_p1:1, a_p2:0.6} so n = 3.
        assert!((r.table.sim_of(0, 0).unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    /// Both fixture pipelines, every aggregation, a spread of
    /// thresholds: `nh_match_threshold` must be *bit-identical* to the
    /// unpruned `select(nh_match(...), Threshold(t))` — same rows in
    /// the same order with the same similarity bits, same name, same
    /// kind.
    #[test]
    fn threshold_pruning_is_bit_identical_to_unpruned() {
        let coauthor = Mapping::association(
            "CoAuthor",
            "co-authors",
            LdsId(0),
            LdsId(0),
            MappingTable::from_triples([
                (0, 2, 1.0),
                (0, 3, 1.0),
                (1, 2, 1.0),
                (1, 3, 1.0),
                (2, 0, 1.0),
                (2, 1, 1.0),
                (3, 0, 1.0),
                (3, 1, 1.0),
                (4, 2, 1.0),
                (2, 4, 1.0),
            ]),
        );
        let identity = Mapping::identity(LdsId(0), 5);
        let (asso1, same, asso2) = fig9();
        let fixtures: Vec<(Mapping, Mapping, Mapping)> =
            vec![(asso1, same, asso2), (coauthor.clone(), identity, coauthor)];
        let aggs = [
            PathAgg::Avg,
            PathAgg::Min,
            PathAgg::Max,
            PathAgg::RelativeLeft,
            PathAgg::RelativeRight,
            PathAgg::Relative,
        ];
        let thresholds = [0.0, 0.25, 0.5, 2.0 / 3.0, 0.75, 0.9];
        for (asso1, same, asso2) in &fixtures {
            for g in aggs {
                for t in thresholds {
                    let unpruned = nh_match(asso1, same, asso2, g).unwrap();
                    let expected = crate::ops::select::select(
                        &unpruned,
                        &crate::ops::select::Selection::Threshold(t),
                    );
                    let pruned = nh_match_threshold(asso1, same, asso2, g, t).unwrap();
                    assert_eq!(pruned.name, expected.name, "g={g:?} t={t}");
                    assert_eq!(pruned.kind, expected.kind, "g={g:?} t={t}");
                    assert_eq!(
                        pruned.table.len(),
                        expected.table.len(),
                        "row count, g={g:?} t={t}"
                    );
                    for (p, e) in pruned.table.iter().zip(expected.table.iter()) {
                        assert_eq!(
                            (p.domain, p.range, p.sim.to_bits()),
                            (e.domain, e.range, e.sim.to_bits()),
                            "g={g:?} t={t}"
                        );
                    }
                }
            }
        }
    }

    /// At a high threshold on Figure 9 the pruner must actually shrink
    /// the compose inputs (that is, it is a pruner, not a no-op): every
    /// venue's upper bound except the two 1:1 matches falls below the
    /// cut.
    #[test]
    fn threshold_pruning_matches_fig9_selection() {
        let (asso1, same, asso2) = fig9();
        let r = nh_match_threshold(&asso1, &same, &asso2, PathAgg::Relative, 0.5).unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.table.sim_of(0, 0).is_some());
        assert!(r.table.sim_of(1, 1).is_some());
        assert_eq!(
            r.name,
            "select(nhMatch(VenuePub@DBLP, PubSame(DBLP,ACM), PubVenue@ACM))"
        );
    }

    /// Matcher wrapper with a threshold routes through the pruning path.
    #[test]
    fn matcher_with_threshold() {
        let (asso1, same, asso2) = fig9();
        let repo = MappingRepository::new();
        repo.store(asso1);
        repo.store(same);
        repo.store(asso2);
        let reg = moma_model::SourceRegistry::new();
        let ctx = MatchContext::with_repository(&reg, &repo);
        let m = NeighborhoodMatcher::new("VenuePub@DBLP", "PubSame(DBLP,ACM)", "PubVenue@ACM")
            .with_threshold(0.5);
        let r = m.execute(&ctx, LdsId(0), LdsId(3)).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn coauthor_duplicate_detection_shape() {
        // Section 4.3: author self-matching via co-author neighborhoods
        // with an identity same-mapping. Authors 0 and 1 share both
        // co-authors {2, 3}; author 4 is unrelated.
        let coauthor = Mapping::association(
            "CoAuthor",
            "co-authors",
            LdsId(0),
            LdsId(0),
            MappingTable::from_triples([
                (0, 2, 1.0),
                (0, 3, 1.0),
                (1, 2, 1.0),
                (1, 3, 1.0),
                (2, 0, 1.0),
                (2, 1, 1.0),
                (3, 0, 1.0),
                (3, 1, 1.0),
                (4, 2, 1.0),
                (2, 4, 1.0),
            ]),
        );
        let identity = Mapping::identity(LdsId(0), 5);
        let r = nh_match(&coauthor, &identity, &coauthor, PathAgg::Relative).unwrap();
        // (0,1) share 2 of 2 co-authors -> 2*2/(2+2) = 1.0.
        assert!((r.table.sim_of(0, 1).unwrap() - 1.0).abs() < 1e-12);
        // (0,4): share co-author 2 only -> 2*1/(2+1) ≈ 0.67 — less than (0,1).
        assert!(r.table.sim_of(0, 4).unwrap() < r.table.sim_of(0, 1).unwrap());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::ops::select::{select, Selection};
    use moma_table::MappingTable;
    use proptest::prelude::*;

    fn arb_mapping(
        d: LdsId,
        r: LdsId,
        max_key: u32,
        max_rows: usize,
    ) -> impl Strategy<Value = Mapping> {
        prop::collection::vec((0..max_key, 0..max_key, 0.01f64..=1.0), 0..max_rows)
            .prop_map(move |rows| Mapping::same("m", d, r, MappingTable::from_triples(rows)))
    }

    proptest! {
        /// Random inputs, every aggregation: the pruning pipeline is
        /// row-for-row identical to the unpruned select.
        #[test]
        fn threshold_pruning_equivalent_on_random_inputs(
            a1 in arb_mapping(LdsId(0), LdsId(1), 10, 25),
            sm in arb_mapping(LdsId(1), LdsId(2), 10, 25),
            a2 in arb_mapping(LdsId(2), LdsId(3), 10, 25),
            t in 0.0f64..=1.0,
        ) {
            for g in [PathAgg::Avg, PathAgg::Min, PathAgg::Max,
                      PathAgg::RelativeLeft, PathAgg::RelativeRight, PathAgg::Relative] {
                let unpruned = nh_match(&a1, &sm, &a2, g).unwrap();
                let expected = select(&unpruned, &Selection::Threshold(t));
                let pruned = nh_match_threshold(&a1, &sm, &a2, g, t).unwrap();
                prop_assert_eq!(pruned.table.rows(), expected.table.rows(), "g={:?} t={}", g, t);
            }
        }
    }
}
