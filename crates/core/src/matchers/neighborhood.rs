//! The neighborhood matcher (paper Section 4.2).
//!
//! ```text
//! PROCEDURE nhMatch ( $Asso1, $Same, $Asso2 )
//!    $Temp   = compose ( $Asso1, $Same,  Min, Average )
//!    $Result = compose ( $Temp,  $Asso2, Min, Relative )
//!    RETURN $Result
//! END
//! ```
//!
//! Two objects become similar when their *neighborhoods* (publications of
//! a venue, co-authors of an author, …) match under an existing
//! same-mapping. The second compose uses a Relative aggregation so that
//! correspondences reached via multiple compose paths score higher.

use moma_model::LdsId;

use crate::error::{CoreError, Result};
use crate::mapping::Mapping;
use crate::matchers::{MatchContext, Matcher};
use crate::ops::compose::{compose, PathAgg, PathCombine};

/// Run the neighborhood matcher on explicit mappings.
///
/// * `asso1: A → N_A` — association from the domain objects to their
///   neighborhood (e.g. venue → publications),
/// * `same: N_A → N_B` — same-mapping between the neighborhoods,
/// * `asso2: N_B → B` — association from the range neighborhood back to
///   the range objects (inverse semantic type of `asso1`),
/// * `g` — aggregation for the second compose; the paper uses
///   [`PathAgg::Relative`] by default and [`PathAgg::RelativeLeft`] when
///   the right-hand association is known to be incomplete (Section
///   5.4.3's truncated Google Scholar author lists).
pub fn nh_match(asso1: &Mapping, same: &Mapping, asso2: &Mapping, g: PathAgg) -> Result<Mapping> {
    let temp = compose(asso1, same, PathCombine::Min, PathAgg::Avg)?;
    let mut result = compose(&temp, asso2, PathCombine::Min, g)?;
    result.name = format!("nhMatch({}, {}, {})", asso1.name, same.name, asso2.name);
    result.kind = crate::mapping::MappingKind::Same;
    Ok(result)
}

/// [`Matcher`] wrapper resolving its inputs from the mapping repository.
#[derive(Debug, Clone)]
pub struct NeighborhoodMatcher {
    /// Repository name of the first association mapping.
    pub asso1: String,
    /// Repository name of the same-mapping over the neighborhoods.
    pub same: String,
    /// Repository name of the second association mapping.
    pub asso2: String,
    /// Aggregation for the second compose.
    pub g: PathAgg,
}

impl NeighborhoodMatcher {
    /// Matcher with the paper's default `g = Relative`.
    pub fn new(
        asso1: impl Into<String>,
        same: impl Into<String>,
        asso2: impl Into<String>,
    ) -> Self {
        Self {
            asso1: asso1.into(),
            same: same.into(),
            asso2: asso2.into(),
            g: PathAgg::Relative,
        }
    }

    /// Override the aggregation function (builder style).
    pub fn with_agg(mut self, g: PathAgg) -> Self {
        self.g = g;
        self
    }
}

impl Matcher for NeighborhoodMatcher {
    fn name(&self) -> String {
        format!("nhMatch({}, {}, {})", self.asso1, self.same, self.asso2)
    }

    fn execute(&self, ctx: &MatchContext<'_>, domain: LdsId, range: LdsId) -> Result<Mapping> {
        let repo = ctx.repository.ok_or_else(|| {
            CoreError::InvalidConfig("neighborhood matcher needs a repository".into())
        })?;
        let get = |name: &str| {
            repo.get(name)
                .ok_or_else(|| CoreError::UnknownMapping(name.to_owned()))
        };
        let asso1 = get(&self.asso1)?;
        let same = get(&self.same)?;
        let asso2 = get(&self.asso2)?;
        if asso1.domain != domain || asso2.range != range {
            return Err(CoreError::Incompatible(format!(
                "nhMatch endpoints ({}, {}) do not align with requested ({}, {})",
                asso1.domain.0, asso2.range.0, domain.0, range.0
            )));
        }
        nh_match(&asso1, &same, &asso2, self.g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::MappingRepository;
    use moma_table::MappingTable;

    /// The Figure 9 scenario: derive a venue same-mapping from the
    /// Figure 1 publication same-mapping and venue-publication
    /// associations.
    ///
    /// DBLP venues: conf/VLDB/2001 = 0, journals/VLDB/2002 = 1.
    /// DBLP pubs: MadhavanBR01 = 0, ChirkovaHS01 = 1, ChirkovaHS02 = 2.
    /// ACM pubs: P-672191 = 0, P-672216 = 1, P-641272 = 2.
    /// ACM venues: V-645927 = 0, V-641268 = 1.
    fn fig9() -> (Mapping, Mapping, Mapping) {
        let asso1 = Mapping::association(
            "VenuePub@DBLP",
            "publications of venue",
            LdsId(0),
            LdsId(1),
            MappingTable::from_triples([(0, 0, 1.0), (0, 1, 1.0), (1, 2, 1.0)]),
        );
        // Figure 1 same-mapping incl. the two 0.6 cross correspondences.
        let same = Mapping::same(
            "PubSame(DBLP,ACM)",
            LdsId(1),
            LdsId(2),
            MappingTable::from_triples([
                (0, 0, 1.0),
                (1, 1, 1.0),
                (1, 2, 0.6),
                (2, 1, 0.6),
                (2, 2, 1.0),
            ]),
        );
        let asso2 = Mapping::association(
            "PubVenue@ACM",
            "venue of publication",
            LdsId(2),
            LdsId(3),
            MappingTable::from_triples([(0, 0, 1.0), (1, 0, 1.0), (2, 1, 1.0)]),
        );
        (asso1, same, asso2)
    }

    #[test]
    fn fig9_venue_matching() {
        let (asso1, same, asso2) = fig9();
        let r = nh_match(&asso1, &same, &asso2, PathAgg::Relative).unwrap();
        // Paper Figure 9 results:
        // (conf/VLDB/2001, V-645927)      = 2*(1+1)/(3+2) = 0.8
        // (conf/VLDB/2001, V-641268)      = 2*0.6/(3+1)   = 0.3
        // (journals/VLDB/2002, V-645927)  = 2*0.6/(2+2)   = 0.3
        // (journals/VLDB/2002, V-641268)  = 2*1/(2+1)     = 0.67
        assert!((r.table.sim_of(0, 0).unwrap() - 0.8).abs() < 1e-12);
        assert!((r.table.sim_of(0, 1).unwrap() - 0.3).abs() < 1e-12);
        assert!((r.table.sim_of(1, 0).unwrap() - 0.3).abs() < 1e-12);
        assert!((r.table.sim_of(1, 1).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!(r.kind.is_same());
        // A threshold selection at 0.5 yields the correct 1:1 venue mapping.
        let sel = crate::ops::select::select(&r, &crate::ops::select::Selection::Threshold(0.5));
        assert_eq!(sel.len(), 2);
        assert!(sel.table.sim_of(0, 0).is_some());
        assert!(sel.table.sim_of(1, 1).is_some());
    }

    #[test]
    fn matcher_wrapper_resolves_repository() {
        let (asso1, same, asso2) = fig9();
        let repo = MappingRepository::new();
        repo.store(asso1.clone());
        repo.store(same.clone());
        repo.store(asso2.clone());
        let reg = moma_model::SourceRegistry::new();
        let ctx = MatchContext::with_repository(&reg, &repo);
        let m = NeighborhoodMatcher::new("VenuePub@DBLP", "PubSame(DBLP,ACM)", "PubVenue@ACM");
        let r = m.execute(&ctx, LdsId(0), LdsId(3)).unwrap();
        assert!((r.table.sim_of(0, 0).unwrap() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn matcher_without_repository_errors() {
        let reg = moma_model::SourceRegistry::new();
        let ctx = MatchContext::new(&reg);
        let m = NeighborhoodMatcher::new("a", "b", "c");
        assert!(matches!(
            m.execute(&ctx, LdsId(0), LdsId(3)),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn matcher_unknown_mapping_errors() {
        let repo = MappingRepository::new();
        let reg = moma_model::SourceRegistry::new();
        let ctx = MatchContext::with_repository(&reg, &repo);
        let m = NeighborhoodMatcher::new("missing1", "missing2", "missing3");
        assert!(matches!(
            m.execute(&ctx, LdsId(0), LdsId(3)),
            Err(CoreError::UnknownMapping(_))
        ));
    }

    #[test]
    fn misaligned_endpoints_error() {
        let (asso1, same, asso2) = fig9();
        let repo = MappingRepository::new();
        repo.store(asso1);
        repo.store(same);
        repo.store(asso2);
        let reg = moma_model::SourceRegistry::new();
        let ctx = MatchContext::with_repository(&reg, &repo);
        let m = NeighborhoodMatcher::new("VenuePub@DBLP", "PubSame(DBLP,ACM)", "PubVenue@ACM");
        assert!(matches!(
            m.execute(&ctx, LdsId(9), LdsId(3)),
            Err(CoreError::Incompatible(_))
        ));
    }

    #[test]
    fn relative_left_variant() {
        let (asso1, same, asso2) = fig9();
        let r = nh_match(&asso1, &same, &asso2, PathAgg::RelativeLeft).unwrap();
        // (v0, v'0): sum = 2, n(v0) = 3 in the intermediate... RelativeLeft
        // divides by the left degree of the *composed-temp* mapping: the
        // temp mapping has v0 -> {a_p0:1, a_p1:1, a_p2:0.6} so n = 3.
        assert!((r.table.sim_of(0, 0).unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn coauthor_duplicate_detection_shape() {
        // Section 4.3: author self-matching via co-author neighborhoods
        // with an identity same-mapping. Authors 0 and 1 share both
        // co-authors {2, 3}; author 4 is unrelated.
        let coauthor = Mapping::association(
            "CoAuthor",
            "co-authors",
            LdsId(0),
            LdsId(0),
            MappingTable::from_triples([
                (0, 2, 1.0),
                (0, 3, 1.0),
                (1, 2, 1.0),
                (1, 3, 1.0),
                (2, 0, 1.0),
                (2, 1, 1.0),
                (3, 0, 1.0),
                (3, 1, 1.0),
                (4, 2, 1.0),
                (2, 4, 1.0),
            ]),
        );
        let identity = Mapping::identity(LdsId(0), 5);
        let r = nh_match(&coauthor, &identity, &coauthor, PathAgg::Relative).unwrap();
        // (0,1) share 2 of 2 co-authors -> 2*2/(2+2) = 1.0.
        assert!((r.table.sim_of(0, 1).unwrap() - 1.0).abs() < 1e-12);
        // (0,4): share co-author 2 only -> 2*1/(2+1) ≈ 0.67 — less than (0,1).
        assert!(r.table.sim_of(0, 4).unwrap() < r.table.sim_of(0, 1).unwrap());
    }
}
