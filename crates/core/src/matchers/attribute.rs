//! The generic attribute matcher (paper Section 2.2).
//!
//! "In our current implementation, we use a generic attribute matcher
//! that is provided with a pair of attributes to be matched, a similarity
//! function to be evaluated (e.g. n-gram, TF/IDF or affix) and a
//! similarity threshold to be exceeded by result correspondences."

use moma_model::LdsId;
use moma_simstring::bounds::{qgram_measure_of, QgramMeasure};
use moma_simstring::tfidf::cosine_vectors;
use moma_simstring::{SimFn, TfIdfCorpus};
use moma_table::{Correspondence, MappingTable};

use crate::blocking::{Blocking, CandidateIndex, TfIdfIndex, ThresholdIndex, TrigramIndex};
use crate::error::Result;
use crate::exec::Parallelism;
use crate::mapping::Mapping;
use crate::matchers::{MatchContext, Matcher};

/// Similarity configuration of an attribute matcher.
#[derive(Debug, Clone, PartialEq)]
pub enum MatcherSim {
    /// A fixed similarity function.
    Fixed(SimFn),
    /// TF-IDF cosine with the corpus built from both attribute columns at
    /// execution time.
    TfIdf,
}

/// The concrete candidate-generation plan a [`Blocking`] choice
/// resolves to for a given matcher configuration (see
/// [`AttributeMatcher::candidate_plan`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum CandidatePlan {
    /// Score every pair.
    AllPairs,
    /// Prefix-filtered trigram index probed at a fixed Dice bound.
    Prefix {
        /// Dice bound of every probe (matcher threshold or custom floor).
        dice_bound: f64,
    },
    /// Threshold-exact T-occurrence index (matcher threshold baked in).
    Threshold {
        /// The q-gram measure the matcher scores with.
        measure: QgramMeasure,
        /// Gram length.
        q: usize,
    },
    /// Threshold-exact weighted-prefix index over cached TF-IDF vectors
    /// (see [`TfIdfIndex`]); the corpus is built from both columns at
    /// execution time and frozen for the match.
    TfIdf,
}

/// Generic single-attribute matcher.
#[derive(Debug, Clone)]
pub struct AttributeMatcher {
    /// Attribute name on the domain LDS.
    pub domain_attr: String,
    /// Attribute name on the range LDS.
    pub range_attr: String,
    /// Similarity function.
    pub sim: MatcherSim,
    /// Result correspondences must reach this similarity.
    pub threshold: f64,
    /// Candidate-generation strategy.
    pub blocking: Blocking,
    /// Per-matcher parallelism override; `None` (the default) inherits
    /// the [`MatchContext`]'s configuration.
    pub parallelism: Option<Parallelism>,
    /// Dice bound used for prefix-filtered candidate generation. The
    /// prefix-filter guarantee only holds when the scoring measure *is*
    /// trigram Dice; for any other measure a conservative floor is used
    /// (default 0.3) so near-matches under e.g. person-name similarity
    /// still surface as candidates.
    ///
    /// Setting a floor is an **explicit opt-in to lossy pruning**: under
    /// both blocked modes — [`Blocking::TrigramPrefix`] *and* the
    /// default [`Blocking::Threshold`] — a `Some` floor routes candidate
    /// generation through the prefix filter at that bound, dropping
    /// pairs whose trigram Dice falls below it even if the scoring
    /// measure would clear the matcher threshold.
    pub candidate_floor: Option<f64>,
}

impl AttributeMatcher {
    /// Matcher with the default threshold-exact candidate generation
    /// ([`Blocking::Threshold`]): results are always identical to
    /// all-pairs scoring, but for q-gram measures the threshold prunes
    /// candidates before any similarity is computed. Use
    /// [`AttributeMatcher::with_blocking`] to pin a different strategy.
    pub fn new(
        domain_attr: impl Into<String>,
        range_attr: impl Into<String>,
        sim: SimFn,
        threshold: f64,
    ) -> Self {
        Self {
            domain_attr: domain_attr.into(),
            range_attr: range_attr.into(),
            sim: MatcherSim::Fixed(sim),
            threshold,
            blocking: Blocking::Threshold,
            parallelism: None,
            candidate_floor: None,
        }
    }

    /// TF-IDF matcher (corpus from both columns).
    pub fn tfidf(
        domain_attr: impl Into<String>,
        range_attr: impl Into<String>,
        threshold: f64,
    ) -> Self {
        Self {
            domain_attr: domain_attr.into(),
            range_attr: range_attr.into(),
            sim: MatcherSim::TfIdf,
            threshold,
            blocking: Blocking::Threshold,
            parallelism: None,
            candidate_floor: None,
        }
    }

    /// Enable prefix-filtered trigram blocking (builder style).
    pub fn with_blocking(mut self, blocking: Blocking) -> Self {
        self.blocking = blocking;
        self
    }

    /// Enable or force-disable parallel scoring (builder style):
    /// `true` pins one thread per CPU, `false` pins sequential scoring.
    /// Either value *overrides* the [`MatchContext`] configuration and
    /// with it the `MOMA_THREADS` environment variable — prefer leaving
    /// the matcher untouched and configuring the context instead.
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallelism = Some(if parallel {
            Parallelism::auto()
        } else {
            Parallelism::sequential()
        });
        self
    }

    /// Pin an explicit parallelism configuration (builder style).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = Some(parallelism);
        self
    }

    /// Override the candidate-generation Dice floor (builder style).
    /// This opts the matcher into **lossy** prefix-filtered pruning at
    /// `floor` under both blocked modes, including the default
    /// [`Blocking::Threshold`] (which is otherwise exact) — see
    /// [`AttributeMatcher::candidate_floor`]. Pin
    /// [`Blocking::AllPairs`] explicitly if you need exact results with
    /// a floor configured.
    pub fn with_candidate_floor(mut self, floor: f64) -> Self {
        self.candidate_floor = Some(floor);
        self
    }

    /// Dice bound handed to the trigram prefix filter: the matcher
    /// threshold itself when scoring with trigram Dice (exact), otherwise
    /// the configured floor (conservative default 0.3).
    pub(crate) fn effective_candidate_threshold(&self) -> f64 {
        match (&self.sim, self.candidate_floor) {
            (_, Some(floor)) => floor,
            (MatcherSim::Fixed(SimFn::Trigram), None)
            | (MatcherSim::Fixed(SimFn::QgramDice(3)), None) => self.threshold,
            _ => 0.3,
        }
    }

    /// Resolve the configured [`Blocking`] against the similarity
    /// function into the concrete candidate-generation plan. This is
    /// where [`Blocking::Threshold`]'s transparent fallback lives:
    ///
    /// * a custom candidate floor explicitly opts into lossy prefix
    ///   filtering (same as under [`Blocking::TrigramPrefix`]),
    /// * a fixed q-gram measure with a positive threshold gets the exact
    ///   T-occurrence engine,
    /// * TF-IDF with a positive threshold gets the exact weighted-prefix
    ///   engine over cached vectors,
    /// * everything else (non-q-gram fixed measures, `t ≤ 0`) scores
    ///   all pairs — exactly what [`Blocking::AllPairs`] would do.
    pub(crate) fn candidate_plan(&self) -> CandidatePlan {
        match self.blocking {
            Blocking::AllPairs => CandidatePlan::AllPairs,
            Blocking::TrigramPrefix => CandidatePlan::Prefix {
                dice_bound: self.effective_candidate_threshold(),
            },
            Blocking::Threshold => {
                if let Some(floor) = self.candidate_floor {
                    return CandidatePlan::Prefix { dice_bound: floor };
                }
                if self.threshold > 0.0 {
                    match &self.sim {
                        MatcherSim::Fixed(sim) => {
                            if let Some((measure, q)) = qgram_measure_of(sim) {
                                return CandidatePlan::Threshold { measure, q };
                            }
                        }
                        MatcherSim::TfIdf => return CandidatePlan::TfIdf,
                    }
                }
                CandidatePlan::AllPairs
            }
        }
    }

    /// Build the candidate index the plan calls for over one side's
    /// `(instance index, match string)` projection (sharded through
    /// `par`); `None` means score all pairs.
    pub(crate) fn build_candidate_index<V: AsRef<str> + Sync>(
        &self,
        values: &[(u32, V)],
        par: &Parallelism,
    ) -> Option<CandidateIndex> {
        match self.candidate_plan() {
            CandidatePlan::AllPairs => None,
            CandidatePlan::Prefix { dice_bound } => Some(CandidateIndex::Prefix {
                index: TrigramIndex::build_par(values, par),
                dice_bound,
            }),
            CandidatePlan::Threshold { measure, q } => Some(CandidateIndex::Threshold(
                ThresholdIndex::build_par(measure, q, self.threshold, values, par),
            )),
            // The TF-IDF engine indexes cached vectors, not strings — it
            // lives inside the scoring path (see `score_tfidf`), and the
            // delta engine never asks for it (TF-IDF matchers are
            // non-incremental: the corpus shifts under every delta).
            CandidatePlan::TfIdf => None,
        }
    }

    /// Score a prepared candidate list. `domain_vals` / `range_vals` are
    /// `(instance index, match string)` projections. The domain values
    /// are sharded across `par` worker threads; every shard probes the
    /// shared read-only index, and shard outputs are concatenated in
    /// input order, so the result is identical at every thread count.
    fn score(
        &self,
        par: Parallelism,
        domain_vals: &[(u32, String)],
        range_vals: &[(u32, String)],
    ) -> MappingTable {
        let MatcherSim::Fixed(simfn) = &self.sim else {
            return self.score_tfidf(par, domain_vals, range_vals);
        };
        let score_one = |a: &str, b: &str| -> f64 { simfn.eval(a, b) };

        // Candidate index (per the resolved plan), built sharded.
        let index = self.build_candidate_index(range_vals, &par);
        // Position lookup for blocked mode: instance index -> slice pos.
        let pos_of: moma_table::FxHashMap<u32, usize> = match index {
            Some(_) => range_vals
                .iter()
                .enumerate()
                .map(|(p, (i, _))| (*i, p))
                .collect(),
            None => Default::default(),
        };

        let score_chunk = |chunk: &[(u32, String)]| -> Vec<Correspondence> {
            let mut out = Vec::new();
            for (d_idx, d_val) in chunk {
                match &index {
                    None => {
                        for (r_idx, r_val) in range_vals {
                            let s = score_one(d_val, r_val);
                            if s >= self.threshold {
                                out.push(Correspondence::new(*d_idx, *r_idx, s));
                            }
                        }
                    }
                    Some(idx) => {
                        for cand in idx.candidates(d_val) {
                            let (r_idx, r_val) = &range_vals[pos_of[&cand]];
                            let s = score_one(d_val, r_val);
                            if s >= self.threshold {
                                out.push(Correspondence::new(*d_idx, *r_idx, s));
                            }
                        }
                    }
                }
            }
            out
        };

        let mut rows = Vec::new();
        for shard in par.run_sharded(domain_vals, score_chunk) {
            rows.extend(shard);
        }
        MappingTable::from_rows(rows)
    }

    /// TF-IDF scoring over cached vectors. The corpus is built from both
    /// columns, every value's unit vector is computed once (sharded
    /// across `par`), and *all* scoring — pruned or not — runs through
    /// [`cosine_vectors`] on those cached vectors, so the pruned plan is
    /// bit-identical to all-pairs by construction. Under
    /// [`CandidatePlan::TfIdf`] the range vectors are additionally
    /// indexed in a [`TfIdfIndex`] keyed by range *position*, and each
    /// domain vector scores only its weighted-prefix candidates.
    fn score_tfidf(
        &self,
        par: Parallelism,
        domain_vals: &[(u32, String)],
        range_vals: &[(u32, String)],
    ) -> MappingTable {
        let mut corpus = TfIdfCorpus::new();
        for (_, v) in domain_vals.iter().chain(range_vals.iter()) {
            corpus.add_document(v);
        }
        // Cache every value's unit vector (the expensive tokenization +
        // weighting pass), preserving input order across shards.
        let vectorize = |vals: &[(u32, String)]| -> Vec<(u32, Vec<(u32, f64)>)> {
            let mut out = Vec::with_capacity(vals.len());
            for shard in par.run_sharded(vals, |chunk| {
                chunk
                    .iter()
                    .map(|(i, v)| (*i, corpus.vector(v)))
                    .collect::<Vec<_>>()
            }) {
                out.extend(shard);
            }
            out
        };
        let d_items = vectorize(domain_vals);
        let r_items = vectorize(range_vals);

        let index = match self.candidate_plan() {
            CandidatePlan::TfIdf => Some(TfIdfIndex::build(
                self.threshold,
                r_items
                    .iter()
                    .enumerate()
                    .map(|(p, (_, v))| (p as u32, v.as_slice())),
            )),
            _ => None,
        };

        let score_chunk = |chunk: &[(u32, Vec<(u32, f64)>)]| -> Vec<Correspondence> {
            let mut out = Vec::new();
            for (d_idx, d_vec) in chunk {
                match &index {
                    None => {
                        for (r_idx, r_vec) in &r_items {
                            let s = cosine_vectors(d_vec, r_vec);
                            if s >= self.threshold {
                                out.push(Correspondence::new(*d_idx, *r_idx, s));
                            }
                        }
                    }
                    Some(idx) => {
                        for p in idx.candidates(d_vec) {
                            let (r_idx, r_vec) = &r_items[p as usize];
                            let s = cosine_vectors(d_vec, r_vec);
                            if s >= self.threshold {
                                out.push(Correspondence::new(*d_idx, *r_idx, s));
                            }
                        }
                    }
                }
            }
            out
        };

        let mut rows = Vec::new();
        for shard in par.run_sharded(&d_items, score_chunk) {
            rows.extend(shard);
        }
        MappingTable::from_rows(rows)
    }
}

impl Matcher for AttributeMatcher {
    fn name(&self) -> String {
        let sim = match &self.sim {
            MatcherSim::Fixed(f) => f.name(),
            MatcherSim::TfIdf => "tfidf".into(),
        };
        format!(
            "attrMatch({}, {}, {sim}, {})",
            self.domain_attr, self.range_attr, self.threshold
        )
    }

    fn execute(&self, ctx: &MatchContext<'_>, domain: LdsId, range: LdsId) -> Result<Mapping> {
        let d_lds = ctx.registry.lds(domain);
        let r_lds = ctx.registry.lds(range);
        let d_vals: Vec<(u32, String)> = d_lds
            .project(&self.domain_attr)?
            .into_iter()
            .map(|(i, v)| (i, v.to_match_string()))
            .collect();
        let r_vals: Vec<(u32, String)> = r_lds
            .project(&self.range_attr)?
            .into_iter()
            .map(|(i, v)| (i, v.to_match_string()))
            .collect();
        let par = self.parallelism.unwrap_or(ctx.parallelism);
        let table = self.score(par, &d_vals, &r_vals);
        Ok(Mapping::same(self.name(), domain, range, table))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_model::{AttrDef, LogicalSource, ObjectType, SourceRegistry};

    fn setup() -> (SourceRegistry, LdsId, LdsId) {
        let mut reg = SourceRegistry::new();
        let mut dblp = LogicalSource::new(
            "DBLP",
            ObjectType::new("Publication"),
            vec![AttrDef::text("title"), AttrDef::year("year")],
        );
        dblp.insert_record(
            "d0",
            vec![
                (
                    "title",
                    "A formal perspective on the view selection problem".into(),
                ),
                ("year", 2001u16.into()),
            ],
        )
        .unwrap();
        dblp.insert_record(
            "d1",
            vec![
                ("title", "Generic Schema Matching with Cupid".into()),
                ("year", 2001u16.into()),
            ],
        )
        .unwrap();
        dblp.insert_record("d2", vec![("title", "Potter's Wheel".into())])
            .unwrap();
        let mut acm = LogicalSource::new(
            "ACM",
            ObjectType::new("Publication"),
            vec![AttrDef::text("name"), AttrDef::year("year")],
        );
        acm.insert_record(
            "a0",
            vec![
                (
                    "name",
                    "A formal perspective on the view selection problem.".into(),
                ),
                ("year", 2001u16.into()),
            ],
        )
        .unwrap();
        acm.insert_record(
            "a1",
            vec![
                ("name", "Generic schema matching with CUPID".into()),
                ("year", 2002u16.into()),
            ],
        )
        .unwrap();
        acm.insert_record("a2", vec![("name", "Reference Reconciliation".into())])
            .unwrap();
        let d = reg.register(dblp).unwrap();
        let a = reg.register(acm).unwrap();
        (reg, d, a)
    }

    #[test]
    fn trigram_title_matching() {
        let (reg, d, a) = setup();
        let m = AttributeMatcher::new("title", "name", SimFn::Trigram, 0.8);
        let ctx = MatchContext::new(&reg);
        let result = m.execute(&ctx, d, a).unwrap();
        assert_eq!(result.len(), 2);
        assert!(result.table.sim_of(0, 0).unwrap() >= 0.95);
        assert!(result.table.sim_of(1, 1).unwrap() >= 0.95);
        assert_eq!(result.table.sim_of(2, 2), None);
        assert!(result.kind.is_same());
    }

    #[test]
    fn blocking_matches_allpairs() {
        let (reg, d, a) = setup();
        let ctx = MatchContext::new(&reg);
        let all = AttributeMatcher::new("title", "name", SimFn::Trigram, 0.6)
            .with_blocking(Blocking::AllPairs)
            .execute(&ctx, d, a)
            .unwrap();
        for blocking in [Blocking::TrigramPrefix, Blocking::Threshold] {
            let blocked = AttributeMatcher::new("title", "name", SimFn::Trigram, 0.6)
                .with_blocking(blocking)
                .execute(&ctx, d, a)
                .unwrap();
            assert_eq!(
                all.table.rows(),
                blocked.table.rows(),
                "blocking={blocking:?}"
            );
        }
    }

    #[test]
    fn threshold_blocking_is_default_and_exact_per_measure() {
        let (reg, d, a) = setup();
        let ctx = MatchContext::new(&reg);
        for sim in [
            SimFn::Trigram,
            SimFn::QgramDice(2),
            SimFn::QgramJaccard(3),
            SimFn::QgramCosine(3),
            SimFn::QgramOverlap(2),
        ] {
            for t in [0.5, 0.8] {
                let default = AttributeMatcher::new("title", "name", sim.clone(), t);
                assert_eq!(default.blocking, Blocking::Threshold);
                assert!(matches!(
                    default.candidate_plan(),
                    CandidatePlan::Threshold { .. }
                ));
                let exact = default.execute(&ctx, d, a).unwrap();
                let all = AttributeMatcher::new("title", "name", sim.clone(), t)
                    .with_blocking(Blocking::AllPairs)
                    .execute(&ctx, d, a)
                    .unwrap();
                assert_eq!(
                    exact.table.rows(),
                    all.table.rows(),
                    "sim={} t={t}",
                    sim.name()
                );
            }
        }
    }

    #[test]
    fn threshold_blocking_falls_back_transparently() {
        let (reg, d, a) = setup();
        let ctx = MatchContext::new(&reg);
        // Non-q-gram measure: plan degrades to all-pairs — identical
        // results, no pruning.
        let jaro = AttributeMatcher::new("title", "name", SimFn::Jaro, 0.9);
        assert_eq!(jaro.candidate_plan(), CandidatePlan::AllPairs);
        let got = jaro.execute(&ctx, d, a).unwrap();
        let want = jaro
            .clone()
            .with_blocking(Blocking::AllPairs)
            .execute(&ctx, d, a)
            .unwrap();
        assert_eq!(got.table.rows(), want.table.rows());
        // TF-IDF: the weighted-prefix bounds are exact — pruned plan.
        assert_eq!(
            AttributeMatcher::tfidf("title", "name", 0.6).candidate_plan(),
            CandidatePlan::TfIdf
        );
        // ...but a TF-IDF threshold of 0 can prune nothing.
        assert_eq!(
            AttributeMatcher::tfidf("title", "name", 0.0).candidate_plan(),
            CandidatePlan::AllPairs
        );
        // Threshold 0 can prune nothing.
        assert_eq!(
            AttributeMatcher::new("title", "name", SimFn::Trigram, 0.0).candidate_plan(),
            CandidatePlan::AllPairs
        );
        // A custom candidate floor opts into lossy prefix filtering.
        assert_eq!(
            AttributeMatcher::new("title", "name", SimFn::Jaro, 0.9)
                .with_candidate_floor(0.2)
                .candidate_plan(),
            CandidatePlan::Prefix { dice_bound: 0.2 }
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let (reg, d, a) = setup();
        let seq = AttributeMatcher::new("title", "name", SimFn::Trigram, 0.5)
            .execute(
                &MatchContext::new(&reg).with_parallelism(Parallelism::sequential()),
                d,
                a,
            )
            .unwrap();
        for threads in [1usize, 2, 8] {
            // min_shard_size 1 forces real sharding even on 3 values.
            let ctx = MatchContext::new(&reg)
                .with_parallelism(Parallelism::new(threads).with_min_shard_size(1));
            let par = AttributeMatcher::new("title", "name", SimFn::Trigram, 0.5)
                .execute(&ctx, d, a)
                .unwrap();
            assert_eq!(seq.table.rows(), par.table.rows(), "threads={threads}");
        }
        // The legacy builder toggle still routes through the same engine.
        let via_builder = AttributeMatcher::new("title", "name", SimFn::Trigram, 0.5)
            .with_parallel(true)
            .execute(&MatchContext::new(&reg), d, a)
            .unwrap();
        assert_eq!(seq.table.rows(), via_builder.table.rows());
    }

    #[test]
    fn year_matcher_is_low_precision() {
        let (reg, d, a) = setup();
        let ctx = MatchContext::new(&reg);
        let m = AttributeMatcher::new("year", "year", SimFn::Year(0), 1.0);
        let result = m.execute(&ctx, d, a).unwrap();
        // Both 2001 DBLP records match the single 2001 ACM record —
        // year matching alone over-matches (the Table 2 phenomenon).
        assert_eq!(result.len(), 2);
        assert_eq!(result.table.sim_of(0, 0), Some(1.0));
        assert_eq!(result.table.sim_of(1, 0), Some(1.0));
    }

    #[test]
    fn tfidf_matcher() {
        let (reg, d, a) = setup();
        let ctx = MatchContext::new(&reg);
        let m = AttributeMatcher::tfidf("title", "name", 0.6);
        let result = m.execute(&ctx, d, a).unwrap();
        assert!(result.table.sim_of(0, 0).unwrap() > 0.9);
        assert!(result.table.sim_of(1, 1).unwrap() > 0.9);
        assert!(result.table.sim_of(2, 2).is_none());
    }

    #[test]
    fn tfidf_threshold_blocking_matches_allpairs() {
        let (reg, d, a) = setup();
        for t in [0.3, 0.6, 0.9] {
            for threads in [1usize, 8] {
                let ctx = MatchContext::new(&reg)
                    .with_parallelism(Parallelism::new(threads).with_min_shard_size(1));
                let pruned = AttributeMatcher::tfidf("title", "name", t);
                assert_eq!(pruned.candidate_plan(), CandidatePlan::TfIdf);
                let pruned = pruned.execute(&ctx, d, a).unwrap();
                let all = AttributeMatcher::tfidf("title", "name", t)
                    .with_blocking(Blocking::AllPairs)
                    .execute(&ctx, d, a)
                    .unwrap();
                // Bit-identical, not approximately equal: both plans
                // score through the same cached vectors.
                assert_eq!(pruned.table.rows(), all.table.rows(), "t={t}");
            }
        }
    }

    #[test]
    fn missing_attribute_errors() {
        let (reg, d, a) = setup();
        let ctx = MatchContext::new(&reg);
        let m = AttributeMatcher::new("venue", "name", SimFn::Trigram, 0.5);
        assert!(m.execute(&ctx, d, a).is_err());
    }

    #[test]
    fn missing_values_skipped() {
        let (reg, d, a) = setup();
        let ctx = MatchContext::new(&reg);
        // d2 has no year: the year matcher sees only d0, d1.
        let m = AttributeMatcher::new("year", "year", SimFn::Year(1), 0.1);
        let result = m.execute(&ctx, d, a).unwrap();
        assert!(result.table.iter().all(|c| c.domain != 2));
    }

    #[test]
    fn name_mentions_config() {
        let m = AttributeMatcher::new("title", "name", SimFn::Trigram, 0.8);
        assert_eq!(m.name(), "attrMatch(title, name, trigram, 0.8)");
    }

    #[test]
    fn self_matching_for_duplicates() {
        let (reg, d, _) = setup();
        let ctx = MatchContext::new(&reg);
        let m = AttributeMatcher::new("title", "title", SimFn::Trigram, 0.9);
        let result = m.execute(&ctx, d, d).unwrap();
        // Every instance matches itself.
        for i in 0..3u32 {
            assert_eq!(result.table.sim_of(i, i), Some(1.0));
        }
    }
}
