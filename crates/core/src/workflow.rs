//! Match workflows (paper Section 2.2, Figure 3).
//!
//! "The MOMA match process is a workflow consisting of a sequence of
//! steps. Each such step generates a same-mapping that can be refined by
//! additional steps. … Each workflow step consists of two parts: matcher
//! execution and mapping combination. The execution of selected matchers
//! is actually optional, i.e., a step may only combine existing or
//! previously computed mappings."

use std::sync::Arc;

use moma_model::LdsId;

use crate::error::{CoreError, Result};
use crate::mapping::Mapping;
use crate::matchers::{MatchContext, Matcher};
use crate::ops::compose::{compose_with, PathAgg, PathCombine};
use crate::ops::merge::{merge, MergeFn, MissingPolicy};
use crate::ops::select::{select, Selection};
use crate::repository::MappingCache;

/// One input of a workflow step.
#[derive(Clone)]
pub enum StepInput {
    /// Execute a matcher on the workflow's (domain, range) sources.
    Matcher(Arc<dyn Matcher>),
    /// Use a mapping from the cache (first) or repository (fallback).
    Existing(String),
    /// The result of the previous step.
    Previous,
}

impl std::fmt::Debug for StepInput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StepInput::Matcher(m) => write!(f, "Matcher({})", m.name()),
            StepInput::Existing(n) => write!(f, "Existing({n})"),
            StepInput::Previous => write!(f, "Previous"),
        }
    }
}

/// The mapping operator of a combiner.
#[derive(Debug, Clone)]
pub enum CombineOp {
    /// Merge all step inputs.
    Merge {
        /// Combination function.
        f: MergeFn,
        /// Missing-correspondence policy.
        missing: MissingPolicy,
    },
    /// Compose the step inputs left-to-right (fold).
    Compose {
        /// Per-path combination function.
        f: PathCombine,
        /// Path aggregation function.
        g: PathAgg,
    },
}

/// A mapping combiner: operator followed by optional selections
/// (paper: "a combiner is specified by a mapping operator followed by an
/// optional selection").
#[derive(Debug, Clone)]
pub struct Combiner {
    /// The operator.
    pub op: CombineOp,
    /// Selections applied in order to the operator result.
    pub selections: Vec<Selection>,
}

impl Combiner {
    /// Merge with Avg over available values and no selection.
    pub fn merge_avg() -> Self {
        Self {
            op: CombineOp::Merge {
                f: MergeFn::Avg,
                missing: MissingPolicy::Ignore,
            },
            selections: vec![],
        }
    }

    /// Add a selection (builder style).
    pub fn with_selection(mut self, sel: Selection) -> Self {
        self.selections.push(sel);
        self
    }
}

/// One step: gather inputs, combine, select, optionally publish to the
/// cache under a name.
#[derive(Debug, Clone)]
pub struct WorkflowStep {
    /// Step inputs (matchers / existing mappings / previous result).
    pub inputs: Vec<StepInput>,
    /// The combiner.
    pub combiner: Combiner,
    /// Cache name to publish the step result under.
    pub publish: Option<String>,
}

/// A match workflow for one (domain, range) source pair.
#[derive(Debug, Clone)]
pub struct Workflow {
    /// Workflow name (for the matcher library).
    pub name: String,
    /// Display name of the domain LDS, e.g. `Publication@DBLP`.
    pub domain: String,
    /// Display name of the range LDS.
    pub range: String,
    /// The steps, applied in order.
    pub steps: Vec<WorkflowStep>,
}

impl Workflow {
    /// Empty workflow.
    pub fn new(
        name: impl Into<String>,
        domain: impl Into<String>,
        range: impl Into<String>,
    ) -> Self {
        Self {
            name: name.into(),
            domain: domain.into(),
            range: range.into(),
            steps: vec![],
        }
    }

    /// Append a step (builder style).
    pub fn step(mut self, step: WorkflowStep) -> Self {
        self.steps.push(step);
        self
    }

    /// Run the workflow. Intermediate results live in `cache`; the final
    /// same-mapping is returned (and also published if the last step
    /// names a target).
    ///
    /// The matcher inputs of one step are independent of each other, so
    /// when the context's [`Parallelism`](crate::exec::Parallelism)
    /// allows it they execute concurrently (each may additionally shard
    /// its own scoring). Results are gathered back in declaration order
    /// — and on failure the first error in declaration order is reported
    /// — so the returned mapping (or error) is identical to sequential
    /// execution. One caveat: under fan-out the later matchers of a
    /// failing step still run to completion before the error is
    /// reported; only `threads == 1` short-circuits them entirely.
    pub fn run(&self, ctx: &MatchContext<'_>, cache: &MappingCache) -> Result<Mapping> {
        if self.steps.is_empty() {
            return Err(CoreError::InvalidConfig(format!(
                "workflow `{}` has no steps",
                self.name
            )));
        }
        let domain = ctx.registry.resolve(&self.domain)?;
        let range = ctx.registry.resolve(&self.range)?;
        let mut previous: Option<Mapping> = None;
        for (i, step) in self.steps.iter().enumerate() {
            // Execute the matcher inputs of this step concurrently when
            // there are several and the context allows it. The fan-out
            // workers split the context's thread budget between them
            // (each matcher shards its own scoring with the remainder),
            // so the configured cap bounds total workers, not workers
            // per level — unless a matcher pins its own parallelism
            // (e.g. `with_parallel(true)`), which overrides the split
            // budget and can oversubscribe. With one matcher or one
            // thread, matchers run lazily inside the input loop below —
            // preserving the sequential semantics that an earlier
            // failing input stops later matchers from executing at all.
            let matchers: Vec<&Arc<dyn Matcher>> = step
                .inputs
                .iter()
                .filter_map(|input| match input {
                    StepInput::Matcher(m) => Some(m),
                    _ => None,
                })
                .collect();
            let fan_out = ctx.parallelism.threads > 1 && matchers.len() > 1;
            let mut matcher_results = if fan_out {
                let workers = ctx.parallelism.threads.min(matchers.len());
                let inner_ctx = MatchContext {
                    registry: ctx.registry,
                    repository: ctx.repository,
                    parallelism: crate::exec::Parallelism {
                        threads: (ctx.parallelism.threads / workers).max(1),
                        ..ctx.parallelism
                    },
                };
                Some(
                    ctx.parallelism
                        .run_tasks(matchers.len(), |t| {
                            matchers[t].execute(&inner_ctx, domain, range)
                        })
                        .into_iter(),
                )
            } else {
                None
            };

            let mut inputs: Vec<Mapping> = Vec::with_capacity(step.inputs.len());
            for input in &step.inputs {
                match input {
                    StepInput::Matcher(m) => inputs.push(match matcher_results.as_mut() {
                        Some(results) => results.next().expect("one result per matcher")?,
                        None => m.execute(ctx, domain, range)?,
                    }),
                    StepInput::Existing(name) => {
                        let found = cache
                            .get(name)
                            .or_else(|| ctx.repository.and_then(|r| r.get(name)))
                            .ok_or_else(|| CoreError::UnknownMapping(name.clone()))?;
                        inputs.push((*found).clone());
                    }
                    StepInput::Previous => {
                        let prev = previous.clone().ok_or_else(|| {
                            CoreError::InvalidConfig(format!(
                                "step {i} of `{}` uses Previous but no prior step exists",
                                self.name
                            ))
                        })?;
                        inputs.push(prev);
                    }
                }
            }
            if inputs.is_empty() {
                return Err(CoreError::EmptyInput(format!("workflow step {i}")));
            }
            let mut result = match &step.combiner.op {
                CombineOp::Merge { f, missing } => {
                    let refs: Vec<&Mapping> = inputs.iter().collect();
                    merge(&refs, f.clone(), *missing)?
                }
                CombineOp::Compose { f, g } => {
                    let mut iter = inputs.iter();
                    let first = iter.next().expect("non-empty inputs");
                    let mut acc = first.clone();
                    for next in iter {
                        acc = compose_with(&acc, next, *f, *g, &ctx.parallelism)?;
                    }
                    acc
                }
            };
            for sel in &step.combiner.selections {
                result = select(&result, sel);
            }
            if let Some(name) = &step.publish {
                cache.store_as(name.clone(), result.clone());
            }
            previous = Some(result);
        }
        let mut final_mapping = previous.expect("at least one step ran");
        final_mapping.name = self.name.clone();
        Ok(final_mapping)
    }
}

/// A workflow wrapped as a [`Matcher`] — "selected workflows can be added
/// to the matcher library for use in other match tasks".
pub struct WorkflowMatcher(pub Workflow);

impl Matcher for WorkflowMatcher {
    fn name(&self) -> String {
        format!("workflow({})", self.0.name)
    }

    fn execute(&self, ctx: &MatchContext<'_>, domain: LdsId, range: LdsId) -> Result<Mapping> {
        // The wrapped workflow declares its own sources; verify they
        // agree with the requested pair.
        let d = ctx.registry.resolve(&self.0.domain)?;
        let r = ctx.registry.resolve(&self.0.range)?;
        if d != domain || r != range {
            return Err(CoreError::Incompatible(format!(
                "workflow `{}` is defined for ({}, {})",
                self.0.name, self.0.domain, self.0.range
            )));
        }
        let cache = MappingCache::new();
        self.0.run(ctx, &cache)
    }
}

/// Named matcher and workflow library (paper Figure 3, "Matcher Library").
#[derive(Default)]
pub struct MatcherLibrary {
    matchers: moma_table::FxHashMap<String, Arc<dyn Matcher>>,
}

impl MatcherLibrary {
    /// Empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a matcher under a name.
    pub fn register(&mut self, name: impl Into<String>, matcher: Arc<dyn Matcher>) {
        self.matchers.insert(name.into(), matcher);
    }

    /// Register a workflow as a matcher.
    pub fn register_workflow(&mut self, workflow: Workflow) {
        let name = workflow.name.clone();
        self.matchers
            .insert(name, Arc::new(WorkflowMatcher(workflow)));
    }

    /// Fetch a matcher.
    pub fn get(&self, name: &str) -> Option<Arc<dyn Matcher>> {
        self.matchers.get(name).cloned()
    }

    /// All names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.matchers.keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of registered matchers.
    pub fn len(&self) -> usize {
        self.matchers.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.matchers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matchers::AttributeMatcher;
    use crate::ops::select::Side;
    use crate::repository::MappingRepository;
    use moma_model::{AttrDef, LogicalSource, ObjectType, SourceRegistry};
    use moma_simstring::SimFn;
    use moma_table::MappingTable;

    fn setup() -> SourceRegistry {
        let mut reg = SourceRegistry::new();
        let mut dblp = LogicalSource::new(
            "DBLP",
            ObjectType::new("Publication"),
            vec![AttrDef::text("title"), AttrDef::year("year")],
        );
        dblp.insert_record(
            "d0",
            vec![
                ("title", "View Selection Problem".into()),
                ("year", 2001u16.into()),
            ],
        )
        .unwrap();
        dblp.insert_record(
            "d1",
            vec![
                ("title", "Schema Matching with Cupid".into()),
                ("year", 2001u16.into()),
            ],
        )
        .unwrap();
        dblp.insert_record(
            "d2",
            vec![("title", "Potter's Wheel".into()), ("year", 2000u16.into())],
        )
        .unwrap();
        let mut acm = LogicalSource::new(
            "ACM",
            ObjectType::new("Publication"),
            vec![AttrDef::text("title"), AttrDef::year("year")],
        );
        acm.insert_record(
            "a0",
            vec![
                ("title", "View Selection Problem".into()),
                ("year", 2001u16.into()),
            ],
        )
        .unwrap();
        acm.insert_record(
            "a1",
            vec![
                ("title", "Schema Matching w. Cupid".into()),
                ("year", 2001u16.into()),
            ],
        )
        .unwrap();
        acm.insert_record(
            "a2",
            vec![
                ("title", "Unrelated Paper".into()),
                ("year", 1999u16.into()),
            ],
        )
        .unwrap();
        reg.register(dblp).unwrap();
        reg.register(acm).unwrap();
        reg
    }

    fn title_matcher() -> Arc<dyn Matcher> {
        Arc::new(AttributeMatcher::new("title", "title", SimFn::Trigram, 0.5))
    }

    fn year_matcher() -> Arc<dyn Matcher> {
        Arc::new(AttributeMatcher::new("year", "year", SimFn::Year(0), 1.0))
    }

    #[test]
    fn single_step_merge_workflow() {
        let reg = setup();
        let ctx = MatchContext::new(&reg);
        let cache = MappingCache::new();
        let wf =
            Workflow::new("PubMatch", "Publication@DBLP", "Publication@ACM").step(WorkflowStep {
                inputs: vec![
                    StepInput::Matcher(title_matcher()),
                    StepInput::Matcher(year_matcher()),
                ],
                combiner: Combiner {
                    op: CombineOp::Merge {
                        f: MergeFn::Avg,
                        missing: MissingPolicy::Ignore,
                    },
                    selections: vec![Selection::Threshold(0.8)],
                },
                publish: Some("step1".into()),
            });
        let r = wf.run(&ctx, &cache).unwrap();
        assert_eq!(r.name, "PubMatch");
        assert!(r.table.sim_of(0, 0).is_some());
        assert!(r.table.sim_of(1, 1).is_some());
        assert!(r.table.sim_of(2, 2).is_none());
        assert!(cache.contains("step1"));
    }

    #[test]
    fn multi_step_refinement_uses_previous() {
        let reg = setup();
        let ctx = MatchContext::new(&reg);
        let cache = MappingCache::new();
        let wf = Workflow::new("Refined", "Publication@DBLP", "Publication@ACM")
            .step(WorkflowStep {
                inputs: vec![StepInput::Matcher(title_matcher())],
                combiner: Combiner::merge_avg(),
                publish: None,
            })
            .step(WorkflowStep {
                inputs: vec![StepInput::Previous, StepInput::Matcher(year_matcher())],
                combiner: Combiner {
                    op: CombineOp::Merge {
                        f: MergeFn::Min,
                        missing: MissingPolicy::Zero,
                    },
                    selections: vec![Selection::BestN {
                        n: 1,
                        side: Side::Domain,
                    }],
                },
                publish: None,
            });
        let r = wf.run(&ctx, &cache).unwrap();
        // Min-0 intersects title and year agreement; best-1 keeps top.
        assert!(r.table.sim_of(0, 0).is_some());
        assert!(r.table.sim_of(2, 2).is_none());
    }

    #[test]
    fn existing_inputs_resolve_cache_then_repo() {
        let reg = setup();
        let repo = MappingRepository::new();
        repo.store(Mapping::same(
            "FromRepo",
            reg.resolve("Publication@DBLP").unwrap(),
            reg.resolve("Publication@ACM").unwrap(),
            MappingTable::from_triples([(2, 2, 1.0)]),
        ));
        let ctx = MatchContext::with_repository(&reg, &repo);
        let cache = MappingCache::new();
        let wf = Workflow::new("UseExisting", "Publication@DBLP", "Publication@ACM").step(
            WorkflowStep {
                inputs: vec![
                    StepInput::Matcher(title_matcher()),
                    StepInput::Existing("FromRepo".into()),
                ],
                combiner: Combiner {
                    op: CombineOp::Merge {
                        f: MergeFn::Max,
                        missing: MissingPolicy::Ignore,
                    },
                    selections: vec![],
                },
                publish: None,
            },
        );
        let r = wf.run(&ctx, &cache).unwrap();
        // The repo mapping contributed the otherwise unmatched pair.
        assert_eq!(r.table.sim_of(2, 2), Some(1.0));
    }

    #[test]
    fn compose_step_folds() {
        let reg = setup();
        let repo = MappingRepository::new();
        let d = reg.resolve("Publication@DBLP").unwrap();
        let a = reg.resolve("Publication@ACM").unwrap();
        // d -> a and a -> a (an ACM self-mapping to fold through).
        repo.store(Mapping::same(
            "DA",
            d,
            a,
            MappingTable::from_triples([(0, 0, 1.0), (1, 1, 0.8)]),
        ));
        repo.store(Mapping::same(
            "AA",
            a,
            a,
            MappingTable::from_triples([(0, 0, 1.0), (1, 1, 1.0)]),
        ));
        let ctx = MatchContext::with_repository(&reg, &repo);
        let cache = MappingCache::new();
        let wf =
            Workflow::new("Composed", "Publication@DBLP", "Publication@ACM").step(WorkflowStep {
                inputs: vec![
                    StepInput::Existing("DA".into()),
                    StepInput::Existing("AA".into()),
                ],
                combiner: Combiner {
                    op: CombineOp::Compose {
                        f: PathCombine::Min,
                        g: PathAgg::Max,
                    },
                    selections: vec![],
                },
                publish: None,
            });
        let r = wf.run(&ctx, &cache).unwrap();
        assert_eq!(r.table.sim_of(0, 0), Some(1.0));
        assert_eq!(r.table.sim_of(1, 1), Some(0.8));
    }

    #[test]
    fn error_cases() {
        let reg = setup();
        let ctx = MatchContext::new(&reg);
        let cache = MappingCache::new();
        // No steps.
        assert!(matches!(
            Workflow::new("Empty", "Publication@DBLP", "Publication@ACM").run(&ctx, &cache),
            Err(CoreError::InvalidConfig(_))
        ));
        // Previous in first step.
        let wf =
            Workflow::new("BadPrev", "Publication@DBLP", "Publication@ACM").step(WorkflowStep {
                inputs: vec![StepInput::Previous],
                combiner: Combiner::merge_avg(),
                publish: None,
            });
        assert!(matches!(
            wf.run(&ctx, &cache),
            Err(CoreError::InvalidConfig(_))
        ));
        // Unknown existing mapping.
        let wf =
            Workflow::new("BadName", "Publication@DBLP", "Publication@ACM").step(WorkflowStep {
                inputs: vec![StepInput::Existing("ghost".into())],
                combiner: Combiner::merge_avg(),
                publish: None,
            });
        assert!(matches!(
            wf.run(&ctx, &cache),
            Err(CoreError::UnknownMapping(_))
        ));
        // Unknown source.
        let wf = Workflow::new("BadSrc", "Nope@X", "Publication@ACM");
        assert!(wf.run(&ctx, &cache).is_err());
    }

    #[test]
    fn workflow_as_matcher_in_library() {
        let reg = setup();
        let ctx = MatchContext::new(&reg);
        let wf =
            Workflow::new("TitleOnly", "Publication@DBLP", "Publication@ACM").step(WorkflowStep {
                inputs: vec![StepInput::Matcher(title_matcher())],
                combiner: Combiner::merge_avg().with_selection(Selection::Threshold(0.8)),
                publish: None,
            });
        let mut lib = MatcherLibrary::new();
        lib.register("plainTitle", title_matcher());
        lib.register_workflow(wf);
        assert_eq!(lib.len(), 2);
        assert_eq!(
            lib.names(),
            vec!["TitleOnly".to_owned(), "plainTitle".to_owned()]
        );
        let m = lib.get("TitleOnly").unwrap();
        let d = reg.resolve("Publication@DBLP").unwrap();
        let a = reg.resolve("Publication@ACM").unwrap();
        let r = m.execute(&ctx, d, a).unwrap();
        assert!(r.len() >= 2);
        // Executing against the wrong pair is rejected.
        assert!(m.execute(&ctx, a, d).is_err());
    }

    #[test]
    fn parallel_fanout_matches_sequential() {
        use crate::exec::Parallelism;
        let reg = setup();
        let cache = MappingCache::new();
        let wf = Workflow::new("Fan", "Publication@DBLP", "Publication@ACM").step(WorkflowStep {
            inputs: vec![
                StepInput::Matcher(title_matcher()),
                StepInput::Matcher(year_matcher()),
            ],
            combiner: Combiner::merge_avg(),
            publish: None,
        });
        let seq = wf
            .run(
                &MatchContext::new(&reg).with_parallelism(Parallelism::sequential()),
                &cache,
            )
            .unwrap();
        for threads in [2usize, 8] {
            let ctx = MatchContext::new(&reg)
                .with_parallelism(Parallelism::new(threads).with_min_shard_size(1));
            let par = wf.run(&ctx, &cache).unwrap();
            assert_eq!(seq.table.rows(), par.table.rows(), "threads={threads}");
        }
    }

    #[test]
    fn sequential_step_short_circuits_on_error() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        /// Counts executions; fails if `fail` is set.
        struct Probe {
            calls: Arc<AtomicUsize>,
            fail: bool,
        }
        impl Matcher for Probe {
            fn name(&self) -> String {
                "probe".into()
            }
            fn execute(&self, _: &MatchContext<'_>, _: LdsId, _: LdsId) -> Result<Mapping> {
                self.calls.fetch_add(1, Ordering::SeqCst);
                if self.fail {
                    Err(CoreError::EmptyInput("probe".into()))
                } else {
                    unreachable!("later matcher must not run after an error")
                }
            }
        }
        let reg = setup();
        let calls = Arc::new(AtomicUsize::new(0));
        let wf = Workflow::new("SC", "Publication@DBLP", "Publication@ACM").step(WorkflowStep {
            inputs: vec![
                StepInput::Matcher(Arc::new(Probe {
                    calls: Arc::clone(&calls),
                    fail: true,
                })),
                StepInput::Matcher(Arc::new(Probe {
                    calls: Arc::clone(&calls),
                    fail: false,
                })),
            ],
            combiner: Combiner::merge_avg(),
            publish: None,
        });
        // At threads=1 the first failing matcher stops the step before
        // the second matcher ever executes.
        let ctx = MatchContext::new(&reg).with_parallelism(crate::exec::Parallelism::sequential());
        assert!(wf.run(&ctx, &MappingCache::new()).is_err());
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn step_input_debug() {
        let dbg = format!("{:?}", StepInput::Existing("X".into()));
        assert_eq!(dbg, "Existing(X)");
        assert_eq!(format!("{:?}", StepInput::Previous), "Previous");
    }
}
