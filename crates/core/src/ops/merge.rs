//! The n-ary merge operator (paper Section 3.1).
//!
//! Merge unifies the correspondences of `n` mappings between the same two
//! sources. A combination function determines the output similarity from
//! the per-input similarities; missing correspondences are either ignored
//! (default — lets incomplete mappings contribute recall without dragging
//! down others) or treated as similarity 0 (precision-oriented; `Min`
//! with zero-fill is exactly mapping intersection).

use moma_table::{FxHashMap, MappingTable};

use crate::error::{CoreError, Result};
use crate::mapping::{Mapping, MappingKind};

/// Combination function for merge (paper: Avg / Min / Max / Weighted /
/// PreferMap).
#[derive(Debug, Clone, PartialEq)]
pub enum MergeFn {
    /// Arithmetic mean of input similarities.
    Avg,
    /// Minimum of input similarities.
    Min,
    /// Maximum of input similarities.
    Max,
    /// Weighted average; one weight per input mapping.
    Weighted(Vec<f64>),
    /// Prefer input `i`: keep all its correspondences, add others only
    /// for domain objects it does not cover.
    Prefer(usize),
}

/// Treatment of correspondences missing from some inputs
/// (paper Section 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissingPolicy {
    /// Ignore missing inputs: combine only available similarity values.
    Ignore,
    /// Assume similarity 0 for missing inputs (`Min-0`, `Avg-0`, …).
    Zero,
}

/// Merge `inputs` with combination function `f` under `missing` policy.
///
/// All inputs must connect the same domain and range LDS. The output kind
/// is `Same` iff all inputs are same-mappings.
pub fn merge(inputs: &[&Mapping], f: MergeFn, missing: MissingPolicy) -> Result<Mapping> {
    if inputs.is_empty() {
        return Err(CoreError::EmptyInput("merge".into()));
    }
    let (domain, range) = (inputs[0].domain, inputs[0].range);
    for m in inputs {
        if m.domain != domain || m.range != range {
            return Err(CoreError::Incompatible(format!(
                "merge inputs must share sources; `{}` connects ({}, {}) not ({}, {})",
                m.name, m.domain.0, m.range.0, domain.0, range.0
            )));
        }
    }
    if let MergeFn::Weighted(w) = &f {
        if w.len() != inputs.len() {
            return Err(CoreError::InvalidConfig(format!(
                "weighted merge needs {} weights, got {}",
                inputs.len(),
                w.len()
            )));
        }
        if w.iter().any(|x| *x < 0.0) || w.iter().sum::<f64>() <= 0.0 {
            return Err(CoreError::InvalidConfig(
                "weighted merge weights must be non-negative with positive sum".into(),
            ));
        }
    }
    if let MergeFn::Prefer(i) = f {
        if i >= inputs.len() {
            return Err(CoreError::InvalidConfig(format!(
                "prefer index {i} out of range for {} inputs",
                inputs.len()
            )));
        }
        return Ok(finish(inputs, prefer(inputs, i)));
    }

    // Gather per-pair similarity vectors (one slot per input).
    let n = inputs.len();
    let mut pairs: FxHashMap<(u32, u32), Vec<Option<f64>>> = FxHashMap::default();
    for (i, m) in inputs.iter().enumerate() {
        for c in m.table.iter() {
            pairs
                .entry((c.domain, c.range))
                .or_insert_with(|| vec![None; n])[i] = Some(c.sim);
        }
    }

    let mut table = MappingTable::with_capacity(pairs.len());
    for ((a, b), sims) in pairs {
        if let Some(s) = combine(&f, missing, &sims) {
            table.push(a, b, s);
        }
    }
    table.dedup_max();
    Ok(finish(inputs, table))
}

/// Combine one pair's per-input similarities; `None` drops the pair.
fn combine(f: &MergeFn, missing: MissingPolicy, sims: &[Option<f64>]) -> Option<f64> {
    let present = sims.iter().flatten().count();
    debug_assert!(present > 0, "pair gathered without any similarity");
    match (f, missing) {
        (MergeFn::Avg, MissingPolicy::Ignore) => {
            Some(sims.iter().flatten().sum::<f64>() / present as f64)
        }
        (MergeFn::Avg, MissingPolicy::Zero) => {
            Some(sims.iter().flatten().sum::<f64>() / sims.len() as f64)
        }
        (MergeFn::Min, MissingPolicy::Ignore) => sims
            .iter()
            .flatten()
            .copied()
            .fold(None, |acc: Option<f64>, s| {
                Some(acc.map_or(s, |a| a.min(s)))
            }),
        (MergeFn::Min, MissingPolicy::Zero) => {
            // Intersection semantics: pairs absent from any input vanish.
            if present < sims.len() {
                None
            } else {
                sims.iter().flatten().copied().reduce(f64::min)
            }
        }
        (MergeFn::Max, _) => sims.iter().flatten().copied().reduce(f64::max),
        (MergeFn::Weighted(w), MissingPolicy::Ignore) => {
            let mut num = 0.0;
            let mut den = 0.0;
            for (s, wi) in sims.iter().zip(w) {
                if let Some(s) = s {
                    num += s * wi;
                    den += wi;
                }
            }
            if den > 0.0 {
                Some(num / den)
            } else {
                None
            }
        }
        (MergeFn::Weighted(w), MissingPolicy::Zero) => {
            let den: f64 = w.iter().sum();
            let num: f64 = sims
                .iter()
                .zip(w)
                .map(|(s, wi)| s.unwrap_or(0.0) * wi)
                .sum();
            Some(num / den)
        }
        (MergeFn::Prefer(_), _) => unreachable!("prefer handled separately"),
    }
}

/// PreferMap merge: all correspondences of the preferred input, plus
/// correspondences from other inputs for uncovered domain objects.
fn prefer(inputs: &[&Mapping], idx: usize) -> MappingTable {
    let preferred = inputs[idx];
    let covered = preferred.table.domain_degrees();
    let mut table = MappingTable::with_capacity(preferred.len());
    for c in preferred.table.iter() {
        table.push(c.domain, c.range, c.sim);
    }
    for (i, m) in inputs.iter().enumerate() {
        if i == idx {
            continue;
        }
        for c in m.table.iter() {
            if !covered.contains_key(&c.domain) {
                table.push(c.domain, c.range, c.sim);
            }
        }
    }
    table.dedup_max();
    table
}

fn finish(inputs: &[&Mapping], table: MappingTable) -> Mapping {
    let kind = if inputs.iter().all(|m| m.kind.is_same()) {
        MappingKind::Same
    } else {
        MappingKind::Association("merged".into())
    };
    let names: Vec<&str> = inputs.iter().map(|m| m.name.as_str()).collect();
    Mapping {
        name: format!("merge({})", names.join(", ")),
        kind,
        domain: inputs[0].domain,
        range: inputs[0].range,
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_model::LdsId;

    /// The exact inputs of paper Figure 4. Objects: a1=1, a2=2, a3=3;
    /// b1=11, b2=12, b3=13, b5=15.
    fn fig4() -> (Mapping, Mapping) {
        let map1 = Mapping::same(
            "map1",
            LdsId(0),
            LdsId(1),
            MappingTable::from_triples([(1, 11, 1.0), (2, 12, 0.8)]),
        );
        let map2 = Mapping::same(
            "map2",
            LdsId(0),
            LdsId(1),
            MappingTable::from_triples([(1, 11, 0.6), (1, 15, 1.0), (3, 13, 0.9)]),
        );
        (map1, map2)
    }

    #[test]
    fn fig4_min_zero_is_intersection() {
        let (m1, m2) = fig4();
        let r = merge(&[&m1, &m2], MergeFn::Min, MissingPolicy::Zero).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.table.sim_of(1, 11), Some(0.6));
    }

    #[test]
    fn fig4_avg_ignore() {
        let (m1, m2) = fig4();
        let r = merge(&[&m1, &m2], MergeFn::Avg, MissingPolicy::Ignore).unwrap();
        assert_eq!(r.len(), 4);
        assert_eq!(r.table.sim_of(1, 11), Some(0.8));
        assert_eq!(r.table.sim_of(2, 12), Some(0.8));
        assert_eq!(r.table.sim_of(1, 15), Some(1.0));
        assert_eq!(r.table.sim_of(3, 13), Some(0.9));
    }

    #[test]
    fn fig4_avg_zero() {
        let (m1, m2) = fig4();
        let r = merge(&[&m1, &m2], MergeFn::Avg, MissingPolicy::Zero).unwrap();
        assert_eq!(r.len(), 4);
        assert_eq!(r.table.sim_of(1, 11), Some(0.8));
        assert_eq!(r.table.sim_of(2, 12), Some(0.4));
        assert_eq!(r.table.sim_of(1, 15), Some(0.5));
        assert_eq!(r.table.sim_of(3, 13), Some(0.45));
    }

    #[test]
    fn fig4_prefer_map1() {
        let (m1, m2) = fig4();
        let r = merge(&[&m1, &m2], MergeFn::Prefer(0), MissingPolicy::Ignore).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.table.sim_of(1, 11), Some(1.0));
        assert_eq!(r.table.sim_of(2, 12), Some(0.8));
        assert_eq!(r.table.sim_of(3, 13), Some(0.9));
        // (a1, b5) must NOT appear: a1 is covered by the preferred map.
        assert_eq!(r.table.sim_of(1, 15), None);
    }

    #[test]
    fn prefer_second_map() {
        let (m1, m2) = fig4();
        let r = merge(&[&m1, &m2], MergeFn::Prefer(1), MissingPolicy::Ignore).unwrap();
        // All of map2, plus map1's (a2, b2) since a2 is uncovered in map2.
        assert_eq!(r.len(), 4);
        assert_eq!(r.table.sim_of(1, 11), Some(0.6));
        assert_eq!(r.table.sim_of(2, 12), Some(0.8));
    }

    #[test]
    fn max_takes_larger() {
        let (m1, m2) = fig4();
        let r = merge(&[&m1, &m2], MergeFn::Max, MissingPolicy::Ignore).unwrap();
        assert_eq!(r.table.sim_of(1, 11), Some(1.0));
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn min_ignore_keeps_singletons() {
        let (m1, m2) = fig4();
        let r = merge(&[&m1, &m2], MergeFn::Min, MissingPolicy::Ignore).unwrap();
        assert_eq!(r.len(), 4);
        assert_eq!(r.table.sim_of(1, 11), Some(0.6));
        assert_eq!(r.table.sim_of(2, 12), Some(0.8));
    }

    #[test]
    fn weighted_average() {
        let (m1, m2) = fig4();
        let r = merge(
            &[&m1, &m2],
            MergeFn::Weighted(vec![3.0, 1.0]),
            MissingPolicy::Ignore,
        )
        .unwrap();
        // (1,11): (3*1.0 + 1*0.6)/4 = 0.9
        assert!((r.table.sim_of(1, 11).unwrap() - 0.9).abs() < 1e-12);
        // (2,12): only map1 -> weight renormalizes to map1 alone = 0.8.
        assert!((r.table.sim_of(2, 12).unwrap() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn weighted_zero_fill() {
        let (m1, m2) = fig4();
        let r = merge(
            &[&m1, &m2],
            MergeFn::Weighted(vec![3.0, 1.0]),
            MissingPolicy::Zero,
        )
        .unwrap();
        // (2,12): (3*0.8 + 1*0)/4 = 0.6
        assert!((r.table.sim_of(2, 12).unwrap() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn single_input_merge_is_identityish() {
        let (m1, _) = fig4();
        let r = merge(&[&m1], MergeFn::Avg, MissingPolicy::Ignore).unwrap();
        assert_eq!(r.table, {
            let mut t = m1.table.clone();
            t.dedup_max();
            t
        });
    }

    #[test]
    fn three_way_merge() {
        let (m1, m2) = fig4();
        let m3 = Mapping::same(
            "map3",
            LdsId(0),
            LdsId(1),
            MappingTable::from_triples([(1, 11, 0.2)]),
        );
        let r = merge(&[&m1, &m2, &m3], MergeFn::Avg, MissingPolicy::Ignore).unwrap();
        let s = r.table.sim_of(1, 11).unwrap();
        assert!((s - (1.0 + 0.6 + 0.2) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_errors() {
        let (m1, _) = fig4();
        assert!(matches!(
            merge(&[], MergeFn::Avg, MissingPolicy::Ignore),
            Err(CoreError::EmptyInput(_))
        ));
        let other = Mapping::same("x", LdsId(5), LdsId(1), MappingTable::new());
        assert!(matches!(
            merge(&[&m1, &other], MergeFn::Avg, MissingPolicy::Ignore),
            Err(CoreError::Incompatible(_))
        ));
        assert!(matches!(
            merge(
                &[&m1],
                MergeFn::Weighted(vec![1.0, 2.0]),
                MissingPolicy::Ignore
            ),
            Err(CoreError::InvalidConfig(_))
        ));
        assert!(matches!(
            merge(&[&m1], MergeFn::Prefer(3), MissingPolicy::Ignore),
            Err(CoreError::InvalidConfig(_))
        ));
        assert!(matches!(
            merge(&[&m1], MergeFn::Weighted(vec![0.0]), MissingPolicy::Ignore),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn kind_propagation() {
        let (m1, m2) = fig4();
        let r = merge(&[&m1, &m2], MergeFn::Avg, MissingPolicy::Ignore).unwrap();
        assert!(r.kind.is_same());
        let assoc = Mapping::association("a", "t", LdsId(0), LdsId(1), MappingTable::new());
        let r2 = merge(&[&m1, &assoc], MergeFn::Max, MissingPolicy::Ignore).unwrap();
        assert!(!r2.kind.is_same());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use moma_model::LdsId;
    use proptest::prelude::*;

    fn arb_mapping(max_key: u32, max_rows: usize) -> impl Strategy<Value = Mapping> {
        prop::collection::vec((0..max_key, 0..max_key, 0.0f64..=1.0), 0..max_rows).prop_map(
            |rows| Mapping::same("m", LdsId(0), LdsId(1), MappingTable::from_triples(rows)),
        )
    }

    proptest! {
        #[test]
        fn merge_commutative_for_symmetric_fns(
            a in arb_mapping(16, 30),
            b in arb_mapping(16, 30),
        ) {
            for f in [MergeFn::Avg, MergeFn::Min, MergeFn::Max] {
                for pol in [MissingPolicy::Ignore, MissingPolicy::Zero] {
                    if a.is_empty() && b.is_empty() { continue; }
                    let mut r1 = merge(&[&a, &b], f.clone(), pol).unwrap().table;
                    let mut r2 = merge(&[&b, &a], f.clone(), pol).unwrap().table;
                    r1.sort_by_domain();
                    r2.sort_by_domain();
                    prop_assert_eq!(r1.len(), r2.len());
                    for (x, y) in r1.iter().zip(r2.iter()) {
                        prop_assert_eq!(x.domain, y.domain);
                        prop_assert_eq!(x.range, y.range);
                        prop_assert!((x.sim - y.sim).abs() < 1e-12);
                    }
                }
            }
        }

        #[test]
        fn merge_idempotent(a in arb_mapping(16, 30)) {
            for f in [MergeFn::Avg, MergeFn::Min, MergeFn::Max] {
                let r = merge(&[&a, &a], f, MissingPolicy::Zero).unwrap();
                prop_assert_eq!(r.len(), a.len());
                for c in a.table.iter() {
                    let s = r.table.sim_of(c.domain, c.range).unwrap();
                    prop_assert!((s - c.sim).abs() < 1e-12);
                }
            }
        }

        #[test]
        fn min_zero_subset_of_all_inputs(
            a in arb_mapping(12, 25),
            b in arb_mapping(12, 25),
        ) {
            let r = merge(&[&a, &b], MergeFn::Min, MissingPolicy::Zero).unwrap();
            let pa = a.table.pair_set();
            let pb = b.table.pair_set();
            for c in r.table.iter() {
                prop_assert!(pa.contains(&(c.domain, c.range)));
                prop_assert!(pb.contains(&(c.domain, c.range)));
            }
        }

        #[test]
        fn max_is_union(a in arb_mapping(12, 25), b in arb_mapping(12, 25)) {
            let r = merge(&[&a, &b], MergeFn::Max, MissingPolicy::Ignore).unwrap();
            let mut expected = a.table.pair_set();
            expected.extend(b.table.pair_set());
            prop_assert_eq!(r.table.pair_set(), expected);
        }

        #[test]
        fn sims_stay_in_range(a in arb_mapping(12, 25), b in arb_mapping(12, 25)) {
            for f in [MergeFn::Avg, MergeFn::Min, MergeFn::Max,
                      MergeFn::Weighted(vec![1.0, 2.0]), MergeFn::Prefer(0)] {
                for pol in [MissingPolicy::Ignore, MissingPolicy::Zero] {
                    let r = merge(&[&a, &b], f.clone(), pol).unwrap();
                    prop_assert!(r.sims_valid(), "{:?}/{:?}", f, pol);
                }
            }
        }

        #[test]
        fn prefer_contains_all_preferred_pairs(
            a in arb_mapping(12, 25),
            b in arb_mapping(12, 25),
        ) {
            let r = merge(&[&a, &b], MergeFn::Prefer(0), MissingPolicy::Ignore).unwrap();
            let rp = r.table.pair_set();
            for c in a.table.iter() {
                prop_assert!(rp.contains(&(c.domain, c.range)));
                prop_assert!((r.table.sim_of(c.domain, c.range).unwrap() - c.sim).abs() < 1e-12);
            }
        }
    }
}
