//! The compose operator (paper Section 3.2).
//!
//! Given `map1 : LDS_A → LDS_C` and `map2 : LDS_C → LDS_B`, the composed
//! mapping relates `LDS_A` and `LDS_B`. Each compose path `(a, c_i, b)`
//! contributes `f(s_i1, s_i2)`; the similarities of all paths reaching the
//! same `(a, b)` are reduced by an aggregation function `g`. The Relative
//! family divides the path-similarity sum `s(a,b)` by correspondence
//! counts `n(a)` (left), `n(b)` (right), or their combination (Figure 5):
//!
//! ```text
//! RelativeLeft  = s(a,b) / n(a)
//! RelativeRight = s(a,b) / n(b)
//! Relative      = 2·s(a,b) / (n(a) + n(b))
//! ```
//!
//! rewarding correspondences supported by many compose paths — the key to
//! the neighborhood matcher.

use moma_table::agg::PairAggregator;
use moma_table::join::par_hash_join;
use moma_table::MappingTable;

use crate::error::{CoreError, Result};
use crate::exec::Parallelism;
use crate::mapping::{Mapping, MappingKind};

/// Per-path combination function `f` over `(s1, s2)` (same menu as merge).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PathCombine {
    /// Mean of the two path similarities.
    Avg,
    /// Minimum — the paper's default in all workflows.
    Min,
    /// Maximum.
    Max,
    /// Product (useful as a "both steps must hold" semantics).
    Product,
    /// Weighted mean with weight `w` on the first similarity.
    Weighted(f64),
}

impl PathCombine {
    fn apply(self, s1: f64, s2: f64) -> f64 {
        match self {
            PathCombine::Avg => (s1 + s2) / 2.0,
            PathCombine::Min => s1.min(s2),
            PathCombine::Max => s1.max(s2),
            PathCombine::Product => s1 * s2,
            PathCombine::Weighted(w) => w * s1 + (1.0 - w) * s2,
        }
    }
}

/// Aggregation function `g` over all compose paths of a pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathAgg {
    /// Mean path similarity.
    Avg,
    /// Minimum path similarity.
    Min,
    /// Maximum path similarity.
    Max,
    /// `s(a,b) / n(a)` — robust when the *right* mapping is incomplete
    /// (used for DBLP→GS matching where GS author lists are truncated,
    /// paper Section 5.4.3).
    RelativeLeft,
    /// `s(a,b) / n(b)`.
    RelativeRight,
    /// `2·s(a,b) / (n(a)+n(b))` — harmonic mean of left and right.
    Relative,
}

/// Compose `map1 : A → C` with `map2 : C → B` sequentially — see
/// [`compose_with`] for the parallel variant used by workflows.
///
/// The output is a same-mapping iff both inputs are same-mappings;
/// otherwise an association mapping labelled with both type names.
pub fn compose(map1: &Mapping, map2: &Mapping, f: PathCombine, g: PathAgg) -> Result<Mapping> {
    compose_with(map1, map2, f, g, &Parallelism::sequential())
}

/// Compose with an explicit [`Parallelism`]: the underlying hash join
/// shards `map1`'s table across threads ([`par_hash_join`]), feeding the
/// path aggregator in an order bit-identical to the sequential join —
/// the composed mapping is the same at every thread count.
///
/// Memory note: when sharding actually kicks in, the parallel join
/// buffers its `O(paths)` output before aggregation (see
/// [`par_hash_join`]). For heavily skewed joins whose path count vastly
/// exceeds the distinct-pair count, pass `Parallelism::sequential()`
/// (or set `MOMA_THREADS=1`) to get the streaming join's `O(pairs)`
/// footprint back.
pub fn compose_with(
    map1: &Mapping,
    map2: &Mapping,
    f: PathCombine,
    g: PathAgg,
    par: &Parallelism,
) -> Result<Mapping> {
    if map1.range != map2.domain {
        return Err(CoreError::Incompatible(format!(
            "compose requires map1.range == map2.domain; `{}` ends at {} but `{}` starts at {}",
            map1.name, map1.range.0, map2.name, map2.domain.0
        )));
    }
    if let PathCombine::Weighted(w) = f {
        if !(0.0..=1.0).contains(&w) {
            return Err(CoreError::InvalidConfig(format!(
                "weighted path combine weight {w} outside [0,1]"
            )));
        }
    }

    // n(a): correspondences per domain object in map1;
    // n(b): correspondences per range object in map2 (Figure 5).
    let n_a = map1.table.domain_degrees();
    let n_b = map2.table.range_degrees();

    let mut agg = PairAggregator::new();
    par_hash_join(&map1.table, &map2.table, par, |p| {
        agg.add(p.a, p.b, f.apply(p.s1, p.s2));
    });

    let mut table = MappingTable::with_capacity(agg.len());
    for (&(a, b), st) in agg.iter() {
        let s = match g {
            PathAgg::Avg => st.avg(),
            PathAgg::Min => st.min,
            PathAgg::Max => st.max,
            PathAgg::RelativeLeft => st.sum / n_a[&a] as f64,
            PathAgg::RelativeRight => st.sum / n_b[&b] as f64,
            PathAgg::Relative => 2.0 * st.sum / (n_a[&a] + n_b[&b]) as f64,
        };
        table.push(a, b, s.clamp(0.0, 1.0));
    }
    table.dedup_max();

    let kind = match (&map1.kind, &map2.kind) {
        (MappingKind::Same, MappingKind::Same) => MappingKind::Same,
        (k1, k2) => {
            let t1 = match k1 {
                MappingKind::Same => "same",
                MappingKind::Association(t) => t.as_str(),
            };
            let t2 = match k2 {
                MappingKind::Same => "same",
                MappingKind::Association(t) => t.as_str(),
            };
            MappingKind::Association(format!("{t1} ∘ {t2}"))
        }
    };

    Ok(Mapping {
        name: format!("compose({}, {})", map1.name, map2.name),
        kind,
        domain: map1.domain,
        range: map2.range,
        table,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_model::LdsId;

    /// The exact inputs of paper Figure 6. Venues v1=1, v2=2; publications
    /// p1=101, p2=102, p3=103; target venues v'1=11, v'2=12.
    fn fig6() -> (Mapping, Mapping) {
        let map1 = Mapping::association(
            "map1",
            "publications of venue",
            LdsId(0),
            LdsId(1),
            MappingTable::from_triples([
                (1, 101, 1.0),
                (1, 102, 1.0),
                (1, 103, 0.6),
                (2, 102, 0.6),
                (2, 103, 1.0),
            ]),
        );
        let map2 = Mapping::association(
            "map2",
            "venue of publication",
            LdsId(1),
            LdsId(2),
            MappingTable::from_triples([(101, 11, 1.0), (102, 11, 1.0), (103, 12, 1.0)]),
        );
        (map1, map2)
    }

    #[test]
    fn fig6_min_relative() {
        let (m1, m2) = fig6();
        let r = compose(&m1, &m2, PathCombine::Min, PathAgg::Relative).unwrap();
        assert_eq!(r.len(), 4);
        // Paper results: (v1,v'1)=0.8, (v1,v'2)=0.3, (v2,v'1)=0.3, (v2,v'2)=0.67.
        assert!((r.table.sim_of(1, 11).unwrap() - 0.8).abs() < 1e-12);
        assert!((r.table.sim_of(1, 12).unwrap() - 0.3).abs() < 1e-12);
        assert!((r.table.sim_of(2, 11).unwrap() - 0.3).abs() < 1e-12);
        assert!((r.table.sim_of(2, 12).unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fig6_relative_prefers_multi_path() {
        let (m1, m2) = fig6();
        let r = compose(&m1, &m2, PathCombine::Min, PathAgg::Relative).unwrap();
        // (v1,v'1) supported by 2 paths beats (v1,v'2) with 1 path.
        assert!(r.table.sim_of(1, 11).unwrap() > r.table.sim_of(1, 12).unwrap());
    }

    #[test]
    fn relative_left_and_right() {
        let (m1, m2) = fig6();
        let rl = compose(&m1, &m2, PathCombine::Min, PathAgg::RelativeLeft).unwrap();
        // (v1,v'1): sum=2, n(v1)=3 -> 2/3.
        assert!((rl.table.sim_of(1, 11).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        let rr = compose(&m1, &m2, PathCombine::Min, PathAgg::RelativeRight).unwrap();
        // (v1,v'1): sum=2, n(v'1)=2 -> 1.0.
        assert!((rr.table.sim_of(1, 11).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relative_is_harmonic_mean_of_left_right() {
        let (m1, m2) = fig6();
        let rl = compose(&m1, &m2, PathCombine::Min, PathAgg::RelativeLeft).unwrap();
        let rr = compose(&m1, &m2, PathCombine::Min, PathAgg::RelativeRight).unwrap();
        let re = compose(&m1, &m2, PathCombine::Min, PathAgg::Relative).unwrap();
        for c in re.table.iter() {
            let l = rl.table.sim_of(c.domain, c.range).unwrap();
            let r = rr.table.sim_of(c.domain, c.range).unwrap();
            let harmonic = 2.0 * l * r / (l + r);
            assert!(
                (c.sim - harmonic).abs() < 1e-9,
                "pair ({},{})",
                c.domain,
                c.range
            );
        }
    }

    #[test]
    fn min_max_avg_aggregation() {
        let (m1, m2) = fig6();
        let rmin = compose(&m1, &m2, PathCombine::Min, PathAgg::Min).unwrap();
        let rmax = compose(&m1, &m2, PathCombine::Min, PathAgg::Max).unwrap();
        let ravg = compose(&m1, &m2, PathCombine::Min, PathAgg::Avg).unwrap();
        // (v1, v'1) has two paths both with sim 1.
        assert_eq!(rmin.table.sim_of(1, 11), Some(1.0));
        assert_eq!(rmax.table.sim_of(1, 11), Some(1.0));
        assert_eq!(ravg.table.sim_of(1, 11), Some(1.0));
        for c in rmin.table.iter() {
            assert!(c.sim <= rmax.table.sim_of(c.domain, c.range).unwrap() + 1e-12);
        }
    }

    #[test]
    fn path_combine_functions() {
        assert_eq!(PathCombine::Avg.apply(0.4, 0.8), 0.6000000000000001);
        assert_eq!(PathCombine::Min.apply(0.4, 0.8), 0.4);
        assert_eq!(PathCombine::Max.apply(0.4, 0.8), 0.8);
        assert!((PathCombine::Product.apply(0.5, 0.5) - 0.25).abs() < 1e-12);
        assert!((PathCombine::Weighted(0.75).apply(1.0, 0.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn compose_with_identity_preserves_pairs() {
        let (m1, _) = fig6();
        // Identity over the publication LDS (ids up to 103).
        let id = Mapping::identity(LdsId(1), 104);
        let r = compose(&m1, &id, PathCombine::Min, PathAgg::Max).unwrap();
        assert_eq!(r.table.pair_set(), m1.table.pair_set());
        for c in m1.table.iter() {
            assert!((r.table.sim_of(c.domain, c.range).unwrap() - c.sim).abs() < 1e-12);
        }
    }

    #[test]
    fn incompatible_sources_rejected() {
        let (m1, _) = fig6();
        let wrong = Mapping::same("w", LdsId(5), LdsId(6), MappingTable::new());
        assert!(matches!(
            compose(&m1, &wrong, PathCombine::Min, PathAgg::Relative),
            Err(CoreError::Incompatible(_))
        ));
    }

    #[test]
    fn invalid_weight_rejected() {
        let (m1, m2) = fig6();
        assert!(matches!(
            compose(&m1, &m2, PathCombine::Weighted(1.5), PathAgg::Avg),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn same_kind_propagation() {
        let s1 = Mapping::same(
            "s1",
            LdsId(0),
            LdsId(1),
            MappingTable::from_triples([(0, 0, 1.0)]),
        );
        let s2 = Mapping::same(
            "s2",
            LdsId(1),
            LdsId(2),
            MappingTable::from_triples([(0, 0, 1.0)]),
        );
        let r = compose(&s1, &s2, PathCombine::Min, PathAgg::Max).unwrap();
        assert!(r.kind.is_same());
        let (a1, a2) = fig6();
        let r2 = compose(&a1, &a2, PathCombine::Min, PathAgg::Relative).unwrap();
        assert!(!r2.kind.is_same());
    }

    #[test]
    fn empty_compose() {
        let e1 = Mapping::same("e1", LdsId(0), LdsId(1), MappingTable::new());
        let e2 = Mapping::same("e2", LdsId(1), LdsId(2), MappingTable::new());
        let r = compose(&e1, &e2, PathCombine::Min, PathAgg::Relative).unwrap();
        assert!(r.is_empty());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use moma_model::LdsId;
    use proptest::prelude::*;

    fn arb_mapping(
        d: LdsId,
        r: LdsId,
        max_key: u32,
        max_rows: usize,
    ) -> impl Strategy<Value = Mapping> {
        prop::collection::vec((0..max_key, 0..max_key, 0.01f64..=1.0), 0..max_rows)
            .prop_map(move |rows| Mapping::same("m", d, r, MappingTable::from_triples(rows)))
    }

    proptest! {
        #[test]
        fn compose_sims_in_range(
            m1 in arb_mapping(LdsId(0), LdsId(1), 16, 40),
            m2 in arb_mapping(LdsId(1), LdsId(2), 16, 40),
        ) {
            for f in [PathCombine::Avg, PathCombine::Min, PathCombine::Max, PathCombine::Product] {
                for g in [PathAgg::Avg, PathAgg::Min, PathAgg::Max,
                          PathAgg::RelativeLeft, PathAgg::RelativeRight, PathAgg::Relative] {
                    let r = compose(&m1, &m2, f, g).unwrap();
                    prop_assert!(r.sims_valid(), "f={f:?} g={g:?}");
                }
            }
        }

        #[test]
        fn output_pairs_have_witnesses(
            m1 in arb_mapping(LdsId(0), LdsId(1), 12, 30),
            m2 in arb_mapping(LdsId(1), LdsId(2), 12, 30),
        ) {
            let r = compose(&m1, &m2, PathCombine::Min, PathAgg::Relative).unwrap();
            for c in r.table.iter() {
                let has_witness = m1.table.iter().any(|x| {
                    x.domain == c.domain
                        && m2.table.iter().any(|y| y.domain == x.range && y.range == c.range)
                });
                prop_assert!(has_witness);
            }
        }

        #[test]
        fn relative_bounded_by_max_agg(
            m1 in arb_mapping(LdsId(0), LdsId(1), 12, 30),
            m2 in arb_mapping(LdsId(1), LdsId(2), 12, 30),
        ) {
            // Relative <= 1 always and RelativeLeft*n(a) == sum == avg*count.
            let rel = compose(&m1, &m2, PathCombine::Min, PathAgg::Relative).unwrap();
            for c in rel.table.iter() {
                prop_assert!(c.sim <= 1.0 + 1e-12);
            }
        }

        /// The parallel compose is bit-identical to the sequential one at
        /// every thread count.
        #[test]
        fn parallel_compose_identical(
            m1 in arb_mapping(LdsId(0), LdsId(1), 16, 40),
            m2 in arb_mapping(LdsId(1), LdsId(2), 16, 40),
        ) {
            use crate::exec::Parallelism;
            let seq = compose(&m1, &m2, PathCombine::Min, PathAgg::Relative).unwrap();
            for threads in [2usize, 8] {
                let par = Parallelism::new(threads).with_min_shard_size(1);
                let p = compose_with(&m1, &m2, PathCombine::Min, PathAgg::Relative, &par)
                    .unwrap();
                prop_assert_eq!(p.table.rows(), seq.table.rows(), "threads={}", threads);
            }
        }

        #[test]
        fn compose_inverse_duality(
            m1 in arb_mapping(LdsId(0), LdsId(1), 12, 30),
            m2 in arb_mapping(LdsId(1), LdsId(2), 12, 30),
        ) {
            // (m1 ∘ m2)⁻¹ == m2⁻¹ ∘ m1⁻¹ for symmetric f and g.
            let lhs = compose(&m1, &m2, PathCombine::Min, PathAgg::Relative).unwrap().inverse();
            let rhs = compose(&m2.inverse(), &m1.inverse(), PathCombine::Min, PathAgg::Relative)
                .unwrap();
            prop_assert_eq!(lhs.table.pair_set(), rhs.table.pair_set());
            for c in lhs.table.iter() {
                let s = rhs.table.sim_of(c.domain, c.range).unwrap();
                prop_assert!((s - c.sim).abs() < 1e-9);
            }
        }
    }
}
