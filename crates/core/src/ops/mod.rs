//! Mapping combination operators (paper Section 3).
//!
//! * [`merge`](merge()) — n-ary merge of mappings between the same pair of sources,
//! * [`compose`](compose()) — composition via an intermediate source,
//! * [`select`](select()) — selection of correspondences,
//! * [`setops`] — set-algebraic helpers (union / intersection /
//!   difference / closure).

pub mod compose;
pub mod merge;
pub mod select;
pub mod setops;

pub use compose::{compose, PathAgg, PathCombine};
pub use merge::{merge, MergeFn, MissingPolicy};
pub use select::{select, select_constraint, Selection, Side};
pub use setops::{difference, intersection, union};
