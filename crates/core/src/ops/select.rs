//! Selection of correspondences (paper Section 3.3).
//!
//! Selection is the second part of every mapping combiner: it eliminates
//! less likely correspondences from a same-mapping. Supported techniques
//! mirror the paper exactly — Threshold, Best-n, Best-1+Delta (absolute or
//! relative) and object-value constraints.

use moma_table::{Adjacency, MappingTable};

use crate::mapping::Mapping;

/// Which side Best-n / Best-1+Delta operates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Per domain instance.
    Domain,
    /// Per range instance.
    Range,
    /// Both: a correspondence must survive the domain-side *and* the
    /// range-side selection.
    Both,
}

/// A selection technique.
#[derive(Debug, Clone, PartialEq)]
pub enum Selection {
    /// Keep correspondences with `sim >= threshold`.
    Threshold(f64),
    /// Keep the `n` highest-similarity correspondences per instance.
    BestN {
        /// How many correspondences to keep.
        n: usize,
        /// Which side the per-instance grouping uses.
        side: Side,
    },
    /// Keep the best correspondence per instance plus all within `delta`
    /// of it (absolute: `sim >= best - delta`; relative:
    /// `sim >= best * (1 - delta)`).
    Best1Delta {
        /// Tolerance below the best similarity.
        delta: f64,
        /// Interpret `delta` relative to the best value.
        relative: bool,
        /// Which side the per-instance grouping uses.
        side: Side,
    },
}

impl Selection {
    /// Convenience: plain Best-1 per domain instance.
    pub fn best1() -> Self {
        Selection::BestN {
            n: 1,
            side: Side::Domain,
        }
    }
}

/// Apply a selection to a mapping.
pub fn select(mapping: &Mapping, sel: &Selection) -> Mapping {
    let table = match sel {
        Selection::Threshold(t) => mapping.table.filtered(|c| c.sim >= *t),
        Selection::BestN { n, side } => apply_sided(&mapping.table, *side, |keep, adj, key| {
            best_n_keys(keep, adj, key, *n);
        }),
        Selection::Best1Delta {
            delta,
            relative,
            side,
        } => apply_sided(&mapping.table, *side, |keep, adj, key| {
            best1_delta_keys(keep, adj, key, *delta, *relative);
        }),
    };
    Mapping {
        name: format!("select({})", mapping.name),
        kind: mapping.kind.clone(),
        domain: mapping.domain,
        range: mapping.range,
        table,
    }
}

/// Keep only correspondences satisfying an object-value predicate.
///
/// The predicate receives `(domain index, range index, sim)`; callers
/// capture whatever instance context they need (e.g. a registry for the
/// paper's "publication years must not differ by more than one year"
/// constraint, or `[domain.id]<>[range.id]` for non-identity in duplicate
/// detection).
pub fn select_constraint(
    mapping: &Mapping,
    mut pred: impl FnMut(u32, u32, f64) -> bool,
) -> Mapping {
    Mapping {
        name: format!("select({})", mapping.name),
        kind: mapping.kind.clone(),
        domain: mapping.domain,
        range: mapping.range,
        table: mapping.table.filtered(|c| pred(c.domain, c.range, c.sim)),
    }
}

/// Run a per-key selection over domain side, range side, or both
/// (intersection).
fn apply_sided(
    table: &MappingTable,
    side: Side,
    per_key: impl Fn(&mut Vec<(u32, u32)>, &Adjacency, u32),
) -> MappingTable {
    let run_side = |domain_side: bool| -> Vec<(u32, u32)> {
        let adj = if domain_side {
            Adjacency::over_domain(table)
        } else {
            Adjacency::over_range(table)
        };
        let mut kept = Vec::new();
        for key in adj.keys() {
            let mut local = Vec::new();
            per_key(&mut local, &adj, key);
            for (key_obj, other) in local {
                // Normalize back to (domain, range) orientation.
                if domain_side {
                    kept.push((key_obj, other));
                } else {
                    kept.push((other, key_obj));
                }
            }
        }
        kept
    };
    let keep_pairs: moma_table::FxHashSet<(u32, u32)> = match side {
        Side::Domain => run_side(true).into_iter().collect(),
        Side::Range => run_side(false).into_iter().collect(),
        Side::Both => {
            let d: moma_table::FxHashSet<(u32, u32)> = run_side(true).into_iter().collect();
            run_side(false)
                .into_iter()
                .filter(|p| d.contains(p))
                .collect()
        }
    };
    table.filtered(|c| keep_pairs.contains(&(c.domain, c.range)))
}

fn best_n_keys(keep: &mut Vec<(u32, u32)>, adj: &Adjacency, key: u32, n: usize) {
    let mut neighbors: Vec<(u32, f64)> = adj.neighbors(key).to_vec();
    // Sort by similarity descending, tie-break on the other id for
    // determinism.
    neighbors.sort_by(|(o1, s1), (o2, s2)| {
        s2.partial_cmp(s1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(o1.cmp(o2))
    });
    for (other, _) in neighbors.into_iter().take(n) {
        keep.push((key, other));
    }
}

fn best1_delta_keys(
    keep: &mut Vec<(u32, u32)>,
    adj: &Adjacency,
    key: u32,
    delta: f64,
    relative: bool,
) {
    let neighbors = adj.neighbors(key);
    let best = neighbors
        .iter()
        .map(|(_, s)| *s)
        .fold(f64::NEG_INFINITY, f64::max);
    if !best.is_finite() {
        return;
    }
    let cutoff = if relative {
        best * (1.0 - delta)
    } else {
        best - delta
    };
    for &(other, s) in neighbors {
        if s >= cutoff {
            keep.push((key, other));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::Mapping;
    use moma_model::LdsId;

    fn mapping() -> Mapping {
        Mapping::same(
            "m",
            LdsId(0),
            LdsId(1),
            MappingTable::from_triples([
                (1, 10, 0.9),
                (1, 11, 0.85),
                (1, 12, 0.3),
                (2, 10, 0.7),
                (2, 13, 0.6),
                (3, 14, 0.95),
            ]),
        )
    }

    #[test]
    fn threshold() {
        let r = select(&mapping(), &Selection::Threshold(0.8));
        assert_eq!(r.len(), 3);
        assert!(r.table.iter().all(|c| c.sim >= 0.8));
    }

    #[test]
    fn threshold_keeps_equal() {
        let r = select(&mapping(), &Selection::Threshold(0.95));
        assert_eq!(r.len(), 1);
        assert_eq!(r.table.sim_of(3, 14), Some(0.95));
    }

    #[test]
    fn best1_per_domain() {
        let r = select(&mapping(), &Selection::best1());
        assert_eq!(r.len(), 3);
        assert_eq!(r.table.sim_of(1, 10), Some(0.9));
        assert_eq!(r.table.sim_of(2, 10), Some(0.7));
        assert_eq!(r.table.sim_of(3, 14), Some(0.95));
    }

    #[test]
    fn best2_per_domain() {
        let r = select(
            &mapping(),
            &Selection::BestN {
                n: 2,
                side: Side::Domain,
            },
        );
        assert_eq!(r.len(), 5);
        assert_eq!(r.table.sim_of(1, 12), None);
    }

    #[test]
    fn best1_per_range() {
        let r = select(
            &mapping(),
            &Selection::BestN {
                n: 1,
                side: Side::Range,
            },
        );
        // Range 10 is claimed by domain 1 (0.9 > 0.7).
        assert_eq!(r.table.sim_of(1, 10), Some(0.9));
        assert_eq!(r.table.sim_of(2, 10), None);
        // Ranges 11..14 keep their single correspondence.
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn best1_both_is_stable_marriage_like() {
        let r = select(
            &mapping(),
            &Selection::BestN {
                n: 1,
                side: Side::Both,
            },
        );
        // (1,10) best for both sides; (2,10) loses range competition;
        // (2,13) is 2's second choice so not in domain top-1.
        assert_eq!(r.table.sim_of(1, 10), Some(0.9));
        assert_eq!(r.table.sim_of(2, 10), None);
        assert_eq!(r.table.sim_of(3, 14), Some(0.95));
        // (2,13): domain top-1 of 2 is (2,10), so excluded.
        assert_eq!(r.table.sim_of(2, 13), None);
    }

    #[test]
    fn best1_delta_absolute() {
        let r = select(
            &mapping(),
            &Selection::Best1Delta {
                delta: 0.05,
                relative: false,
                side: Side::Domain,
            },
        );
        // Domain 1: best 0.9, cutoff 0.85 -> keeps (1,10) and (1,11).
        assert_eq!(r.table.sim_of(1, 10), Some(0.9));
        assert_eq!(r.table.sim_of(1, 11), Some(0.85));
        assert_eq!(r.table.sim_of(1, 12), None);
        // Domain 2: best 0.7, cutoff 0.65 -> only (2,10).
        assert_eq!(r.table.sim_of(2, 13), None);
    }

    #[test]
    fn best1_delta_relative() {
        let r = select(
            &mapping(),
            &Selection::Best1Delta {
                delta: 0.2,
                relative: true,
                side: Side::Domain,
            },
        );
        // Domain 2: best 0.7, cutoff 0.56 -> keeps both (2,10) and (2,13).
        assert_eq!(r.table.sim_of(2, 10), Some(0.7));
        assert_eq!(r.table.sim_of(2, 13), Some(0.6));
    }

    #[test]
    fn constraint_selection() {
        // The Section 4.3 non-identity constraint `[domain.id]<>[range.id]`.
        let m = Mapping::same(
            "self",
            LdsId(0),
            LdsId(0),
            MappingTable::from_triples([(1, 1, 1.0), (1, 2, 0.8), (2, 1, 0.8)]),
        );
        let r = select_constraint(&m, |d, rng, _| d != rng);
        assert_eq!(r.len(), 2);
        assert_eq!(r.table.sim_of(1, 1), None);
    }

    #[test]
    fn empty_mapping_selects_empty() {
        let m = Mapping::same("e", LdsId(0), LdsId(1), MappingTable::new());
        for sel in [
            Selection::Threshold(0.5),
            Selection::best1(),
            Selection::Best1Delta {
                delta: 0.1,
                relative: false,
                side: Side::Range,
            },
        ] {
            assert!(select(&m, &sel).is_empty());
        }
    }

    #[test]
    fn best_n_tie_break_deterministic() {
        let m = Mapping::same(
            "t",
            LdsId(0),
            LdsId(1),
            MappingTable::from_triples([(1, 5, 0.8), (1, 4, 0.8), (1, 6, 0.8)]),
        );
        let r = select(&m, &Selection::best1());
        assert_eq!(r.len(), 1);
        // Lowest range id wins the tie.
        assert_eq!(r.table.sim_of(1, 4), Some(0.8));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::mapping::Mapping;
    use moma_model::LdsId;
    use proptest::prelude::*;

    fn arb_mapping() -> impl Strategy<Value = Mapping> {
        prop::collection::vec((0u32..12, 0u32..12, 0.0f64..=1.0), 0..50).prop_map(|rows| {
            Mapping::same("m", LdsId(0), LdsId(1), MappingTable::from_triples(rows))
        })
    }

    proptest! {
        #[test]
        fn selection_yields_subset(m in arb_mapping(), t in 0.0f64..=1.0, n in 1usize..4) {
            let pairs = m.table.pair_set();
            for sel in [
                Selection::Threshold(t),
                Selection::BestN { n, side: Side::Domain },
                Selection::BestN { n, side: Side::Range },
                Selection::BestN { n, side: Side::Both },
                Selection::Best1Delta { delta: t / 2.0, relative: false, side: Side::Domain },
                Selection::Best1Delta { delta: t / 2.0, relative: true, side: Side::Range },
            ] {
                let r = select(&m, &sel);
                for c in r.table.iter() {
                    prop_assert!(pairs.contains(&(c.domain, c.range)));
                    let orig = m.table.sim_of(c.domain, c.range).unwrap();
                    prop_assert!((orig - c.sim).abs() < 1e-12);
                }
            }
        }

        #[test]
        fn threshold_monotone(m in arb_mapping(), t1 in 0.0f64..=1.0, t2 in 0.0f64..=1.0) {
            let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
            let r_lo = select(&m, &Selection::Threshold(lo));
            let r_hi = select(&m, &Selection::Threshold(hi));
            prop_assert!(r_hi.len() <= r_lo.len());
            let lo_pairs = r_lo.table.pair_set();
            for c in r_hi.table.iter() {
                prop_assert!(lo_pairs.contains(&(c.domain, c.range)));
            }
        }

        #[test]
        fn best_n_respects_limit(m in arb_mapping(), n in 1usize..4) {
            let r = select(&m, &Selection::BestN { n, side: Side::Domain });
            for (_, deg) in r.table.domain_degrees() {
                prop_assert!(deg as usize <= n);
            }
            let r2 = select(&m, &Selection::BestN { n, side: Side::Range });
            for (_, deg) in r2.table.range_degrees() {
                prop_assert!(deg as usize <= n);
            }
        }

        #[test]
        fn best_n_covers_every_instance(m in arb_mapping()) {
            // Best-n never removes *all* correspondences of an instance.
            let r = select(&m, &Selection::best1());
            prop_assert_eq!(r.table.distinct_domains(), m.table.distinct_domains());
        }

        #[test]
        fn best1_delta_includes_best(m in arb_mapping(), d in 0.0f64..0.5) {
            let r = select(&m, &Selection::Best1Delta { delta: d, relative: false, side: Side::Domain });
            // Every domain instance retains its top correspondence.
            let before = m.table.domain_degrees();
            prop_assert_eq!(r.table.domain_degrees().len(), before.len());
        }

        #[test]
        fn selection_idempotent(m in arb_mapping(), n in 1usize..4) {
            let sel = Selection::BestN { n, side: Side::Domain };
            let once = select(&m, &sel);
            let twice = select(&once, &sel);
            prop_assert_eq!(once.table.pair_set(), twice.table.pair_set());
        }
    }
}
