//! Set-algebraic helpers over mappings.
//!
//! Merge and compose are the paper's primary operators; these utilities
//! round out the algebra for workflow authors: union, intersection,
//! difference on correspondence sets (similarity-aware).

use moma_table::MappingTable;

use crate::error::{CoreError, Result};
use crate::mapping::Mapping;

fn check_compatible(a: &Mapping, b: &Mapping, op: &str) -> Result<()> {
    if a.domain != b.domain || a.range != b.range {
        return Err(CoreError::Incompatible(format!(
            "{op} requires equal sources: ({},{}) vs ({},{})",
            a.domain.0, a.range.0, b.domain.0, b.range.0
        )));
    }
    Ok(())
}

/// Union of correspondences; overlapping pairs take the max similarity.
pub fn union(a: &Mapping, b: &Mapping) -> Result<Mapping> {
    check_compatible(a, b, "union")?;
    let mut table = MappingTable::with_capacity(a.len() + b.len());
    for c in a.table.iter().chain(b.table.iter()) {
        table.push(c.domain, c.range, c.sim);
    }
    table.dedup_max();
    Ok(Mapping {
        name: format!("union({}, {})", a.name, b.name),
        kind: a.kind.clone(),
        domain: a.domain,
        range: a.range,
        table,
    })
}

/// Intersection: pairs present in both, similarity is the minimum.
pub fn intersection(a: &Mapping, b: &Mapping) -> Result<Mapping> {
    check_compatible(a, b, "intersection")?;
    let pairs_b = b.table.pair_set();
    let mut table = MappingTable::new();
    for c in a.table.iter() {
        if pairs_b.contains(&(c.domain, c.range)) {
            let sb = b.table.sim_of(c.domain, c.range).expect("pair in set");
            table.push(c.domain, c.range, c.sim.min(sb));
        }
    }
    table.dedup_max();
    Ok(Mapping {
        name: format!("intersection({}, {})", a.name, b.name),
        kind: a.kind.clone(),
        domain: a.domain,
        range: a.range,
        table,
    })
}

/// Difference: pairs of `a` not present in `b`.
pub fn difference(a: &Mapping, b: &Mapping) -> Result<Mapping> {
    check_compatible(a, b, "difference")?;
    let pairs_b = b.table.pair_set();
    Ok(Mapping {
        name: format!("difference({}, {})", a.name, b.name),
        kind: a.kind.clone(),
        domain: a.domain,
        range: a.range,
        table: a
            .table
            .filtered(|c| !pairs_b.contains(&(c.domain, c.range))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_model::LdsId;

    fn pair() -> (Mapping, Mapping) {
        (
            Mapping::same(
                "a",
                LdsId(0),
                LdsId(1),
                MappingTable::from_triples([(1, 1, 0.9), (2, 2, 0.5)]),
            ),
            Mapping::same(
                "b",
                LdsId(0),
                LdsId(1),
                MappingTable::from_triples([(1, 1, 0.4), (3, 3, 0.7)]),
            ),
        )
    }

    #[test]
    fn union_max() {
        let (a, b) = pair();
        let u = union(&a, &b).unwrap();
        assert_eq!(u.len(), 3);
        assert_eq!(u.table.sim_of(1, 1), Some(0.9));
        assert_eq!(u.table.sim_of(3, 3), Some(0.7));
    }

    #[test]
    fn intersection_min() {
        let (a, b) = pair();
        let i = intersection(&a, &b).unwrap();
        assert_eq!(i.len(), 1);
        assert_eq!(i.table.sim_of(1, 1), Some(0.4));
    }

    #[test]
    fn difference_removes() {
        let (a, b) = pair();
        let d = difference(&a, &b).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.table.sim_of(2, 2), Some(0.5));
        let rev = difference(&b, &a).unwrap();
        assert_eq!(rev.table.sim_of(3, 3), Some(0.7));
        assert_eq!(rev.len(), 1);
    }

    #[test]
    fn incompatible_rejected() {
        let (a, _) = pair();
        let other = Mapping::same("x", LdsId(4), LdsId(4), MappingTable::new());
        assert!(union(&a, &other).is_err());
        assert!(intersection(&a, &other).is_err());
        assert!(difference(&a, &other).is_err());
    }

    #[test]
    fn algebra_laws() {
        let (a, b) = pair();
        // |a| = |a ∩ b| + |a \ b|
        let i = intersection(&a, &b).unwrap();
        let d = difference(&a, &b).unwrap();
        assert_eq!(a.len(), i.len() + d.len());
        // union is commutative on pair sets
        let u1 = union(&a, &b).unwrap();
        let u2 = union(&b, &a).unwrap();
        assert_eq!(u1.table.pair_set(), u2.table.pair_set());
    }
}
