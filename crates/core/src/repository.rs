//! Mapping repository and cache (paper Section 2.2, Figure 3).
//!
//! "A mapping repository is used to materialize both association and
//! same-mappings. … MOMA also maintains a mapping cache for storing
//! intermediate same-mappings derived during a match workflow."
//!
//! The repository is concurrency-safe (matchers may run in parallel) and
//! persists to a directory of TSV mapping tables keyed by *instance
//! string ids*, so files survive regeneration of the in-memory arenas.
//!
//! ## Version stamps and dependency-based invalidation
//!
//! Materialized mappings exist to be *reused* — including mappings
//! derived from other mappings (compose / union / intersect / diff /
//! merge results). When an upstream mapping is patched (e.g. by the
//! incremental matcher in [`crate::delta`]), its derived downstream
//! results are stale. The repository therefore stamps every entry with a
//! monotonically increasing **version**, and a derived entry stored via
//! [`MappingRepository::store_derived`] records its [`Recipe`] plus the
//! versions of its inputs at derivation time. [`MappingRepository::is_stale`]
//! detects drift, and [`MappingRepository::refresh_stale`] recomputes
//! exactly the stale entries, in dependency order, routing compose joins
//! through the given [`Parallelism`] so refreshes stay
//! parallel-deterministic. Entries stored without a recipe are *leaves*
//! and are never recomputed (storing over a derived name turns it back
//! into a leaf).

use std::fs;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use std::sync::RwLock;

use moma_model::SourceRegistry;
use moma_table::tsv::{escape_field, unescape_field};
use moma_table::{FxHashMap, MappingTable, Parallelism};

use crate::error::{CoreError, Result};
use crate::mapping::{Mapping, MappingKind};
use crate::ops::compose::{compose_with, PathAgg, PathCombine};
use crate::ops::merge::{merge, MergeFn, MissingPolicy};
use crate::ops::setops;

/// How a derived repository entry is recomputed from other entries.
#[derive(Debug, Clone, PartialEq)]
pub enum Recipe {
    /// `compose(left, right, f, g)`.
    Compose {
        /// Name of the left input mapping.
        left: String,
        /// Name of the right input mapping.
        right: String,
        /// Per-path combination function.
        f: PathCombine,
        /// Path-aggregation function.
        g: PathAgg,
    },
    /// `union(left, right)`.
    Union {
        /// Left input name.
        left: String,
        /// Right input name.
        right: String,
    },
    /// `intersect(left, right)`.
    Intersect {
        /// Left input name.
        left: String,
        /// Right input name.
        right: String,
    },
    /// `diff(left, right)`.
    Difference {
        /// Left input name.
        left: String,
        /// Right input name.
        right: String,
    },
    /// `merge(inputs, f, missing)`.
    Merge {
        /// Input names, in order.
        inputs: Vec<String>,
        /// Combination function.
        f: MergeFn,
        /// Missing-correspondence policy.
        missing: MissingPolicy,
    },
}

impl Recipe {
    /// Names of the entries this recipe reads.
    pub fn inputs(&self) -> Vec<&str> {
        match self {
            Recipe::Compose { left, right, .. }
            | Recipe::Union { left, right }
            | Recipe::Intersect { left, right }
            | Recipe::Difference { left, right } => vec![left, right],
            Recipe::Merge { inputs, .. } => inputs.iter().map(String::as_str).collect(),
        }
    }

    /// Recompute the derived mapping from the repository's current
    /// entries.
    fn recompute(&self, repo: &MappingRepository, par: &Parallelism) -> Result<Mapping> {
        let binary = |l: &str, r: &str| -> Result<(Arc<Mapping>, Arc<Mapping>)> {
            Ok((repo.require(l)?, repo.require(r)?))
        };
        match self {
            Recipe::Compose { left, right, f, g } => {
                let (a, b) = binary(left, right)?;
                compose_with(a.as_ref(), b.as_ref(), *f, *g, par)
            }
            Recipe::Union { left, right } => {
                let (a, b) = binary(left, right)?;
                setops::union(a.as_ref(), b.as_ref())
            }
            Recipe::Intersect { left, right } => {
                let (a, b) = binary(left, right)?;
                setops::intersection(a.as_ref(), b.as_ref())
            }
            Recipe::Difference { left, right } => {
                let (a, b) = binary(left, right)?;
                setops::difference(a.as_ref(), b.as_ref())
            }
            Recipe::Merge { inputs, f, missing } => {
                let maps: Vec<Arc<Mapping>> = inputs
                    .iter()
                    .map(|n| repo.require(n))
                    .collect::<Result<_>>()?;
                let refs: Vec<&Mapping> = maps.iter().map(Arc::as_ref).collect();
                merge(&refs, f.clone(), *missing)
            }
        }
    }
}

/// One repository slot: the mapping, its version stamp, and — for
/// derived entries — the recipe plus the input versions it was computed
/// from.
#[derive(Debug, Clone)]
struct Entry {
    mapping: Arc<Mapping>,
    version: u64,
    recipe: Option<Recipe>,
    /// `(input name, input version at derivation time)`.
    dep_versions: Vec<(String, u64)>,
}

/// One entry of a [`MappingRepository::snapshot`]: an immutable view of
/// a repository slot at capture time.
///
/// The mapping itself is shared via [`Arc`], so a snapshot stays valid
/// (and bit-identical) no matter how many deltas are applied to the
/// repository afterwards — this is the read side of the serving layer's
/// snapshot isolation (`moma-server`).
#[derive(Debug, Clone)]
pub struct SnapshotEntry {
    /// Entry name.
    pub name: String,
    /// Version stamp at capture time.
    pub version: u64,
    /// The mapping contents at capture time.
    pub mapping: Arc<Mapping>,
    /// For derived entries: `(input name, input version at derivation
    /// time)`. Empty for leaves.
    pub dep_versions: Vec<(String, u64)>,
    /// Whether the entry was derived (has a recipe).
    pub derived: bool,
}

/// Thread-safe named store of mappings.
#[derive(Debug, Default)]
pub struct MappingRepository {
    inner: RwLock<FxHashMap<String, Entry>>,
    /// Source of version stamps; the first store gets version 1.
    next_version: AtomicU64,
}

/// The mapping cache holds intermediate workflow results; structurally it
/// is a second repository instance.
pub type MappingCache = MappingRepository;

impl MappingRepository {
    /// Empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    fn bump(&self) -> u64 {
        self.next_version.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn store_entry(&self, name: String, mapping: Mapping, recipe: Option<Recipe>) -> Arc<Mapping> {
        let dep_versions = match &recipe {
            Some(r) => r
                .inputs()
                .iter()
                .map(|n| ((*n).to_owned(), self.version(n).unwrap_or(0)))
                .collect(),
            None => Vec::new(),
        };
        let arc = Arc::new(mapping);
        let entry = Entry {
            mapping: Arc::clone(&arc),
            version: self.bump(),
            recipe,
            dep_versions,
        };
        self.inner
            .write()
            .expect("repository lock poisoned")
            .insert(name, entry);
        arc
    }

    /// Store a mapping under its own name, replacing any previous entry
    /// (the entry becomes a *leaf*: any recorded recipe is dropped).
    pub fn store(&self, mapping: Mapping) -> Arc<Mapping> {
        self.store_entry(mapping.name.clone(), mapping, None)
    }

    /// Store a mapping under an explicit name (leaf, like
    /// [`MappingRepository::store`]).
    pub fn store_as(&self, name: impl Into<String>, mapping: Mapping) -> Arc<Mapping> {
        let name = name.into();
        self.store_entry(name.clone(), mapping.named(name.clone()), None)
    }

    /// Replace a leaf mapping in place — the entry point used by
    /// incremental matching when a source delta patches a materialized
    /// mapping. Identical to [`MappingRepository::store_as`] (the new
    /// version stamp is what marks downstream derived entries stale).
    pub fn patch(&self, name: impl Into<String>, mapping: Mapping) -> Arc<Mapping> {
        self.store_as(name, mapping)
    }

    /// Restore an entry verbatim — exact version stamp, recipe and
    /// recorded input versions — without consuming a new version number.
    /// This is the checkpoint-recovery entry point (`moma-server`):
    /// rebuilding state from a checkpoint must reproduce the pre-crash
    /// stamps bit-identically, which `store_*` (which always bumps)
    /// cannot do. Pair with [`MappingRepository::restore_version_counter`]
    /// so post-restore stores continue the original numbering.
    pub fn restore_entry(
        &self,
        name: impl Into<String>,
        mapping: Mapping,
        version: u64,
        recipe: Option<Recipe>,
        dep_versions: Vec<(String, u64)>,
    ) {
        self.inner
            .write()
            .expect("repository lock poisoned")
            .insert(
                name.into(),
                Entry {
                    mapping: Arc::new(mapping),
                    version,
                    recipe,
                    dep_versions,
                },
            );
    }

    /// The highest version stamp handed out so far.
    pub fn version_counter(&self) -> u64 {
        self.next_version.load(Ordering::Relaxed)
    }

    /// Advance the version counter to at least `value` (checkpoint
    /// recovery; never moves it backwards).
    pub fn restore_version_counter(&self, value: u64) {
        self.next_version.fetch_max(value, Ordering::Relaxed);
    }

    /// Compute a derived mapping from current entries via `recipe` and
    /// store it under `name`, recording the recipe and the input
    /// versions for later staleness checks. Compose recipes join through
    /// `par`, so derivation is parallel-deterministic.
    pub fn store_derived(
        &self,
        name: impl Into<String>,
        recipe: Recipe,
        par: &Parallelism,
    ) -> Result<Arc<Mapping>> {
        let name = name.into();
        let mapping = recipe.recompute(self, par)?.named(name.clone());
        Ok(self.store_entry(name, mapping, Some(recipe)))
    }

    /// Fetch a mapping by name.
    pub fn get(&self, name: &str) -> Option<Arc<Mapping>> {
        self.inner
            .read()
            .expect("repository lock poisoned")
            .get(name)
            .map(|e| Arc::clone(&e.mapping))
    }

    /// Fetch or error.
    pub fn require(&self, name: &str) -> Result<Arc<Mapping>> {
        self.get(name)
            .ok_or_else(|| CoreError::UnknownMapping(name.into()))
    }

    /// Current version stamp of an entry.
    pub fn version(&self, name: &str) -> Option<u64> {
        self.inner
            .read()
            .expect("repository lock poisoned")
            .get(name)
            .map(|e| e.version)
    }

    /// The recipe of a derived entry (`None` for leaves and unknown
    /// names).
    pub fn recipe(&self, name: &str) -> Option<Recipe> {
        self.inner
            .read()
            .expect("repository lock poisoned")
            .get(name)
            .and_then(|e| e.recipe.clone())
    }

    /// Whether a derived entry's inputs have moved since it was computed
    /// (a missing input also counts as stale). Leaves are never stale.
    pub fn is_stale(&self, name: &str) -> bool {
        let guard = self.inner.read().expect("repository lock poisoned");
        let Some(entry) = guard.get(name) else {
            return false;
        };
        if entry.recipe.is_none() {
            return false;
        }
        entry
            .dep_versions
            .iter()
            .any(|(dep, v)| guard.get(dep).map(|e| e.version) != Some(*v))
    }

    /// Names of all currently stale derived entries, sorted.
    pub fn stale_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .names()
            .into_iter()
            .filter(|n| self.is_stale(n))
            .collect();
        v.sort();
        v
    }

    /// Recompute every stale derived entry, in dependency order, so that
    /// afterwards no entry is stale. Returns the refreshed names in
    /// recomputation order. Staleness cascades: refreshing an entry
    /// bumps its version, which marks *its* dependents stale in turn.
    ///
    /// Compose recipes join through `par` — identical results at every
    /// thread count. Errors if a recipe input is missing or if derived
    /// entries form a dependency cycle.
    pub fn refresh_stale(&self, par: &Parallelism) -> Result<Vec<String>> {
        let mut refreshed = Vec::new();
        loop {
            let stale = self.stale_names();
            if stale.is_empty() {
                return Ok(refreshed);
            }
            // Refresh entries none of whose inputs are themselves stale;
            // at least one must exist unless the graph has a cycle.
            let mut progressed = false;
            for name in &stale {
                let Some(recipe) = self.recipe(name) else {
                    continue; // raced away; next loop iteration re-checks
                };
                if recipe.inputs().iter().any(|i| self.is_stale(i)) {
                    continue;
                }
                let mapping = recipe.recompute(self, par)?.named(name.clone());
                self.store_entry(name.clone(), mapping, Some(recipe));
                refreshed.push(name.clone());
                progressed = true;
            }
            if !progressed {
                return Err(CoreError::InvalidConfig(format!(
                    "derived mappings form a dependency cycle: {stale:?}"
                )));
            }
        }
    }

    /// Capture a consistent snapshot of every entry — name, version,
    /// mapping contents and (for derived entries) recorded input
    /// versions — under a **single** lock acquisition, sorted by name.
    ///
    /// Because all entries are read under one read-lock guard, a
    /// snapshot can never observe a half-applied multi-entry update
    /// (e.g. a patched leaf whose derived dependents have not been
    /// refreshed yet, when patch and refresh happen under one writer
    /// critical section). Entry mappings are `Arc`-shared: later stores
    /// replace the repository's slots but never mutate a snapshot's
    /// contents.
    pub fn snapshot(&self) -> Vec<SnapshotEntry> {
        let guard = self.inner.read().expect("repository lock poisoned");
        let mut out: Vec<SnapshotEntry> = guard
            .iter()
            .map(|(name, e)| SnapshotEntry {
                name: name.clone(),
                version: e.version,
                mapping: Arc::clone(&e.mapping),
                dep_versions: e.dep_versions.clone(),
                derived: e.recipe.is_some(),
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Whether a name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.inner
            .read()
            .expect("repository lock poisoned")
            .contains_key(name)
    }

    /// Remove an entry; returns whether it existed.
    pub fn remove(&self, name: &str) -> bool {
        self.inner
            .write()
            .expect("repository lock poisoned")
            .remove(name)
            .is_some()
    }

    /// All stored names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .inner
            .read()
            .expect("repository lock poisoned")
            .keys()
            .cloned()
            .collect();
        v.sort();
        v
    }

    /// Number of stored mappings.
    pub fn len(&self) -> usize {
        self.inner.read().expect("repository lock poisoned").len()
    }

    /// Whether the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.inner
            .read()
            .expect("repository lock poisoned")
            .is_empty()
    }

    /// Remove everything.
    pub fn clear(&self) {
        self.inner
            .write()
            .expect("repository lock poisoned")
            .clear();
    }

    /// Persist all mappings into `dir`, one TSV file per mapping, rows
    /// keyed by instance string ids resolved through `registry`. Names
    /// and ids are escaped ([`moma_table::tsv::escape_field`]) so values
    /// containing tabs or newlines round-trip instead of corrupting the
    /// file. Rows referencing tombstoned (removed) instances are
    /// skipped.
    pub fn persist_dir(&self, dir: impl AsRef<Path>, registry: &SourceRegistry) -> Result<()> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        for (i, name) in self.names().iter().enumerate() {
            let mapping = self.get(name).expect("name listed");
            let d_lds = registry.lds(mapping.domain);
            let r_lds = registry.lds(mapping.range);
            let kind = match &mapping.kind {
                MappingKind::Same => "same".to_owned(),
                MappingKind::Association(t) => format!("assoc:{t}"),
            };
            let mut text = String::new();
            text.push_str(&format!("#name\t{}\n", escape_field(&mapping.name)));
            text.push_str(&format!("#kind\t{}\n", escape_field(&kind)));
            text.push_str(&format!("#domain\t{}\n", escape_field(&d_lds.name())));
            text.push_str(&format!("#range\t{}\n", escape_field(&r_lds.name())));
            for c in mapping.table.iter() {
                if !d_lds.is_live(c.domain) || !r_lds.is_live(c.range) {
                    continue;
                }
                let (Some(d), Some(r)) = (
                    d_lds.get(c.domain).map(|i| &i.id),
                    r_lds.get(c.range).map(|i| &i.id),
                ) else {
                    continue;
                };
                text.push_str(&format!(
                    "{}\t{}\t{}\n",
                    escape_field(d),
                    escape_field(r),
                    c.sim
                ));
            }
            fs::write(dir.join(format!("mapping_{i:04}.tsv")), text)?;
        }
        Ok(())
    }

    /// Load every `mapping_*.tsv` in `dir` into the repository, resolving
    /// instance ids through `registry`. Rows whose ids are unknown are
    /// skipped; files whose sources are unknown raise an error.
    pub fn load_dir(&self, dir: impl AsRef<Path>, registry: &SourceRegistry) -> Result<usize> {
        let mut loaded = 0usize;
        let mut paths: Vec<_> = fs::read_dir(dir.as_ref())?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .map(|n| n.starts_with("mapping_") && n.ends_with(".tsv"))
                    .unwrap_or(false)
            })
            .collect();
        paths.sort();
        for path in paths {
            let text = fs::read_to_string(&path)?;
            let mut name = String::new();
            let mut kind = MappingKind::Same;
            let mut domain = None;
            let mut range = None;
            let mut table = MappingTable::new();
            for line in text.lines() {
                if let Some(rest) = line.strip_prefix('#') {
                    let mut parts = rest.split('\t');
                    match (parts.next(), parts.next()) {
                        (Some("name"), Some(v)) => name = unescape_field(v),
                        (Some("kind"), Some(v)) => {
                            kind = match unescape_field(v).strip_prefix("assoc:") {
                                Some(t) => MappingKind::Association(t.to_owned()),
                                None => MappingKind::Same,
                            }
                        }
                        (Some("domain"), Some(v)) => {
                            domain = Some(registry.resolve(&unescape_field(v))?)
                        }
                        (Some("range"), Some(v)) => {
                            range = Some(registry.resolve(&unescape_field(v))?)
                        }
                        _ => {}
                    }
                    continue;
                }
                if line.is_empty() {
                    continue;
                }
                let mut parts = line.split('\t');
                let (Some(d), Some(r), Some(s)) = (parts.next(), parts.next(), parts.next()) else {
                    continue;
                };
                let (Some(domain), Some(range)) = (domain, range) else {
                    continue;
                };
                let (d_lds, r_lds) = (registry.lds(domain), registry.lds(range));
                if let (Some(di), Some(ri), Ok(sim)) = (
                    d_lds.index_of(&unescape_field(d)),
                    r_lds.index_of(&unescape_field(r)),
                    s.parse::<f64>(),
                ) {
                    table.push(di, ri, sim);
                }
            }
            let (Some(domain), Some(range)) = (domain, range) else {
                return Err(CoreError::InvalidConfig(format!(
                    "mapping file {} lacks #domain/#range headers",
                    path.display()
                )));
            };
            table.dedup_max();
            self.store(Mapping {
                name,
                kind,
                domain,
                range,
                table,
            });
            loaded += 1;
        }
        Ok(loaded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_model::{AttrDef, LdsId, LogicalSource, ObjectType};

    fn mapping(name: &str) -> Mapping {
        Mapping::same(
            name,
            LdsId(0),
            LdsId(1),
            MappingTable::from_triples([(0, 0, 1.0)]),
        )
    }

    #[test]
    fn store_get_remove() {
        let repo = MappingRepository::new();
        assert!(repo.is_empty());
        repo.store(mapping("a"));
        repo.store_as("b", mapping("ignored"));
        assert_eq!(repo.len(), 2);
        assert!(repo.contains("a"));
        assert_eq!(repo.get("b").unwrap().name, "b");
        assert!(repo.require("c").is_err());
        assert!(repo.remove("a"));
        assert!(!repo.remove("a"));
        assert_eq!(repo.names(), vec!["b".to_owned()]);
        repo.clear();
        assert!(repo.is_empty());
    }

    #[test]
    fn restore_entry_preserves_stamps_and_counter() {
        let repo = MappingRepository::new();
        repo.restore_entry("a", mapping("a"), 7, None, vec![("upstream".into(), 3)]);
        repo.restore_version_counter(7);
        assert_eq!(repo.version("a"), Some(7));
        assert_eq!(repo.version_counter(), 7);
        // The next store continues the restored numbering.
        repo.store(mapping("b"));
        assert_eq!(repo.version("b"), Some(8));
        // And the counter never moves backwards.
        repo.restore_version_counter(2);
        assert_eq!(repo.version_counter(), 8);
    }

    #[test]
    fn store_replaces() {
        let repo = MappingRepository::new();
        repo.store(mapping("a"));
        let mut m2 = mapping("a");
        m2.table = MappingTable::from_triples([(5, 5, 0.5)]);
        repo.store(m2);
        assert_eq!(repo.len(), 1);
        assert_eq!(repo.get("a").unwrap().table.sim_of(5, 5), Some(0.5));
    }

    #[test]
    fn versions_increase_on_store() {
        let repo = MappingRepository::new();
        repo.store(mapping("a"));
        let v1 = repo.version("a").unwrap();
        repo.patch("a", mapping("a"));
        let v2 = repo.version("a").unwrap();
        assert!(v2 > v1);
        assert_eq!(repo.version("ghost"), None);
        // Leaves are never stale.
        assert!(!repo.is_stale("a"));
        assert!(!repo.is_stale("ghost"));
    }

    #[test]
    fn derived_entries_track_staleness() {
        let par = Parallelism::sequential();
        let repo = MappingRepository::new();
        repo.store(Mapping::same(
            "A",
            LdsId(0),
            LdsId(1),
            MappingTable::from_triples([(0, 0, 1.0), (1, 1, 0.8)]),
        ));
        repo.store(Mapping::same(
            "B",
            LdsId(0),
            LdsId(1),
            MappingTable::from_triples([(2, 2, 0.9)]),
        ));
        let u = repo
            .store_derived(
                "U",
                Recipe::Union {
                    left: "A".into(),
                    right: "B".into(),
                },
                &par,
            )
            .unwrap();
        assert_eq!(u.len(), 3);
        assert_eq!(u.name, "U");
        assert!(!repo.is_stale("U"));
        assert!(repo.recipe("U").is_some());
        assert!(repo.recipe("A").is_none());

        // Patch a leaf: the derived entry goes stale; refresh fixes it.
        repo.patch(
            "B",
            Mapping::same(
                "B",
                LdsId(0),
                LdsId(1),
                MappingTable::from_triples([(2, 2, 0.9), (3, 3, 0.7)]),
            ),
        );
        assert!(repo.is_stale("U"));
        assert_eq!(repo.stale_names(), vec!["U".to_owned()]);
        let refreshed = repo.refresh_stale(&par).unwrap();
        assert_eq!(refreshed, vec!["U".to_owned()]);
        assert!(!repo.is_stale("U"));
        assert_eq!(repo.get("U").unwrap().len(), 4);
    }

    #[test]
    fn refresh_cascades_through_chains() {
        let par = Parallelism::sequential();
        let repo = MappingRepository::new();
        repo.store(Mapping::same(
            "A",
            LdsId(0),
            LdsId(1),
            MappingTable::from_triples([(0, 0, 1.0)]),
        ));
        repo.store(Mapping::same(
            "B",
            LdsId(0),
            LdsId(1),
            MappingTable::from_triples([(1, 1, 1.0)]),
        ));
        repo.store_derived(
            "U",
            Recipe::Union {
                left: "A".into(),
                right: "B".into(),
            },
            &par,
        )
        .unwrap();
        repo.store_derived(
            "I",
            Recipe::Intersect {
                left: "U".into(),
                right: "A".into(),
            },
            &par,
        )
        .unwrap();
        repo.patch(
            "A",
            Mapping::same(
                "A",
                LdsId(0),
                LdsId(1),
                MappingTable::from_triples([(0, 0, 1.0), (5, 5, 1.0)]),
            ),
        );
        // Both derived entries are stale; refresh handles U before I.
        assert_eq!(repo.stale_names().len(), 2);
        let order = repo.refresh_stale(&par).unwrap();
        assert_eq!(order, vec!["U".to_owned(), "I".to_owned()]);
        assert_eq!(repo.get("I").unwrap().len(), 2);
        assert!(repo.stale_names().is_empty());
    }

    #[test]
    fn refresh_errors_on_missing_input_and_cycles() {
        let par = Parallelism::sequential();
        let repo = MappingRepository::new();
        repo.store(mapping("A"));
        repo.store(mapping("B"));
        repo.store_derived(
            "U",
            Recipe::Union {
                left: "A".into(),
                right: "B".into(),
            },
            &par,
        )
        .unwrap();
        repo.remove("B");
        assert!(repo.is_stale("U")); // missing input counts as stale
        assert!(repo.refresh_stale(&par).is_err());
        // Unknown-input derivation errors up front too.
        assert!(matches!(
            repo.store_derived(
                "X",
                Recipe::Union {
                    left: "A".into(),
                    right: "ghost".into()
                },
                &par
            ),
            Err(CoreError::UnknownMapping(_))
        ));
    }

    #[test]
    fn compose_recipe_derives_and_refreshes() {
        let par = Parallelism::sequential();
        let repo = MappingRepository::new();
        // A: 0 -> 0, 1 -> 1 ; B: LDS1 self-identity.
        repo.store(Mapping::same(
            "A",
            LdsId(0),
            LdsId(1),
            MappingTable::from_triples([(0, 0, 1.0), (1, 1, 0.8)]),
        ));
        repo.store(Mapping::same(
            "B",
            LdsId(1),
            LdsId(1),
            MappingTable::from_triples([(0, 0, 1.0), (1, 1, 1.0)]),
        ));
        let c = repo
            .store_derived(
                "C",
                Recipe::Compose {
                    left: "A".into(),
                    right: "B".into(),
                    f: PathCombine::Min,
                    g: PathAgg::Max,
                },
                &par,
            )
            .unwrap();
        assert_eq!(c.table.sim_of(1, 1), Some(0.8));
        repo.patch(
            "A",
            Mapping::same(
                "A",
                LdsId(0),
                LdsId(1),
                MappingTable::from_triples([(1, 1, 0.5)]),
            ),
        );
        repo.refresh_stale(&par).unwrap();
        let c = repo.get("C").unwrap();
        assert_eq!(c.table.sim_of(1, 1), Some(0.5));
        assert_eq!(c.table.sim_of(0, 0), None);
    }

    #[test]
    fn merge_recipe_refreshes() {
        let par = Parallelism::sequential();
        let repo = MappingRepository::new();
        repo.store(Mapping::same(
            "A",
            LdsId(0),
            LdsId(1),
            MappingTable::from_triples([(0, 0, 1.0)]),
        ));
        repo.store(Mapping::same(
            "B",
            LdsId(0),
            LdsId(1),
            MappingTable::from_triples([(0, 0, 0.5)]),
        ));
        repo.store_derived(
            "M",
            Recipe::Merge {
                inputs: vec!["A".into(), "B".into()],
                f: MergeFn::Avg,
                missing: MissingPolicy::Ignore,
            },
            &par,
        )
        .unwrap();
        assert_eq!(repo.get("M").unwrap().table.sim_of(0, 0), Some(0.75));
        repo.patch(
            "B",
            Mapping::same(
                "B",
                LdsId(0),
                LdsId(1),
                MappingTable::from_triples([(0, 0, 1.0)]),
            ),
        );
        repo.refresh_stale(&par).unwrap();
        assert_eq!(repo.get("M").unwrap().table.sim_of(0, 0), Some(1.0));
    }

    #[test]
    fn snapshot_is_immutable_and_dep_consistent() {
        let par = Parallelism::sequential();
        let repo = MappingRepository::new();
        repo.store(Mapping::same(
            "A",
            LdsId(0),
            LdsId(1),
            MappingTable::from_triples([(0, 0, 1.0)]),
        ));
        repo.store(mapping("B"));
        repo.store_derived(
            "U",
            Recipe::Union {
                left: "A".into(),
                right: "B".into(),
            },
            &par,
        )
        .unwrap();

        let snap = repo.snapshot();
        assert_eq!(
            snap.iter().map(|e| e.name.as_str()).collect::<Vec<_>>(),
            vec!["A", "B", "U"],
            "snapshot entries are sorted by name"
        );
        let a_version = snap[0].version;
        let u = &snap[2];
        assert!(u.derived && !snap[0].derived);
        // The derived entry's recorded input versions agree with the
        // versions captured in the same snapshot: no half-applied state.
        for (dep, v) in &u.dep_versions {
            let got = snap.iter().find(|e| &e.name == dep).map(|e| e.version);
            assert_eq!(got, Some(*v), "dep {dep} inconsistent in snapshot");
        }

        // Patch A and refresh; the old snapshot must not move.
        repo.patch(
            "A",
            Mapping::same(
                "A",
                LdsId(0),
                LdsId(1),
                MappingTable::from_triples([(0, 0, 1.0), (7, 7, 0.9)]),
            ),
        );
        repo.refresh_stale(&par).unwrap();
        assert_eq!(snap[0].version, a_version);
        assert_eq!(snap[0].mapping.len(), 1, "snapshot kept pre-delta rows");
        assert!(repo.version("A").unwrap() > a_version);
        // A fresh snapshot is again dep-consistent after the refresh.
        let snap2 = repo.snapshot();
        let u2 = snap2.iter().find(|e| e.name == "U").unwrap();
        for (dep, v) in &u2.dep_versions {
            let got = snap2.iter().find(|e| &e.name == dep).map(|e| e.version);
            assert_eq!(got, Some(*v));
        }
    }

    #[test]
    fn concurrent_access() {
        let repo = Arc::new(MappingRepository::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let r = Arc::clone(&repo);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    r.store(mapping(&format!("m{t}_{i}")));
                    let _ = r.get(&format!("m{t}_{}", i / 2));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(repo.len(), 400);
    }

    fn registry_with_sources() -> SourceRegistry {
        let mut reg = SourceRegistry::new();
        let mut a = LogicalSource::new(
            "DBLP",
            ObjectType::new("Publication"),
            vec![AttrDef::text("title")],
        );
        a.insert_record("d0", vec![]).unwrap();
        a.insert_record("d1", vec![]).unwrap();
        let mut b = LogicalSource::new(
            "ACM",
            ObjectType::new("Publication"),
            vec![AttrDef::text("title")],
        );
        b.insert_record("p0", vec![]).unwrap();
        b.insert_record("p1", vec![]).unwrap();
        reg.register(a).unwrap();
        reg.register(b).unwrap();
        reg
    }

    #[test]
    fn persistence_roundtrip() {
        let reg = registry_with_sources();
        let repo = MappingRepository::new();
        repo.store(Mapping::same(
            "PubSame",
            LdsId(0),
            LdsId(1),
            MappingTable::from_triples([(0, 1, 0.9), (1, 0, 0.4)]),
        ));
        repo.store(Mapping::association(
            "SomeAssoc",
            "pubs of venue",
            LdsId(0),
            LdsId(1),
            MappingTable::from_triples([(1, 1, 1.0)]),
        ));
        let dir = std::env::temp_dir().join("moma_repo_roundtrip");
        let _ = fs::remove_dir_all(&dir);
        repo.persist_dir(&dir, &reg).unwrap();

        let repo2 = MappingRepository::new();
        let loaded = repo2.load_dir(&dir, &reg).unwrap();
        assert_eq!(loaded, 2);
        let m = repo2.get("PubSame").unwrap();
        assert_eq!(m.table.sim_of(0, 1), Some(0.9));
        assert_eq!(m.table.sim_of(1, 0), Some(0.4));
        assert!(m.kind.is_same());
        let a = repo2.get("SomeAssoc").unwrap();
        assert_eq!(a.kind, MappingKind::Association("pubs of venue".into()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistence_roundtrip_with_hostile_ids_and_names() {
        let mut reg = SourceRegistry::new();
        let mut a = LogicalSource::new(
            "DBLP",
            ObjectType::new("Publication"),
            vec![AttrDef::text("title")],
        );
        a.insert_record("tab\tid", vec![]).unwrap();
        a.insert_record("nl\nid", vec![]).unwrap();
        let mut b = LogicalSource::new(
            "ACM",
            ObjectType::new("Publication"),
            vec![AttrDef::text("title")],
        );
        b.insert_record("\"quoted\" — é", vec![]).unwrap();
        b.insert_record("back\\slash", vec![]).unwrap();
        reg.register(a).unwrap();
        reg.register(b).unwrap();

        let repo = MappingRepository::new();
        repo.store(Mapping::same(
            "name with\ttab and\nnewline",
            LdsId(0),
            LdsId(1),
            MappingTable::from_triples([(0, 0, 0.9), (1, 1, 0.4)]),
        ));
        let dir = std::env::temp_dir().join("moma_repo_hostile_ids");
        let _ = fs::remove_dir_all(&dir);
        repo.persist_dir(&dir, &reg).unwrap();

        let repo2 = MappingRepository::new();
        assert_eq!(repo2.load_dir(&dir, &reg).unwrap(), 1);
        let m = repo2.get("name with\ttab and\nnewline").unwrap();
        assert_eq!(m.table.sim_of(0, 0), Some(0.9));
        assert_eq!(m.table.sim_of(1, 1), Some(0.4));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn persist_skips_tombstoned_instances() {
        let mut reg = registry_with_sources();
        let repo = MappingRepository::new();
        repo.store(Mapping::same(
            "PubSame",
            LdsId(0),
            LdsId(1),
            MappingTable::from_triples([(0, 0, 1.0), (1, 1, 0.8)]),
        ));
        reg.lds_mut(LdsId(0)).remove("d1");
        let dir = std::env::temp_dir().join("moma_repo_tombstones");
        let _ = fs::remove_dir_all(&dir);
        repo.persist_dir(&dir, &reg).unwrap();
        let repo2 = MappingRepository::new();
        repo2.load_dir(&dir, &reg).unwrap();
        let m = repo2.get("PubSame").unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m.table.sim_of(0, 0), Some(1.0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_skips_unknown_instances() {
        let reg = registry_with_sources();
        let dir = std::env::temp_dir().join("moma_repo_unknown_ids");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("mapping_0000.tsv"),
            "#name\tX\n#kind\tsame\n#domain\tPublication@DBLP\n#range\tPublication@ACM\n\
             d0\tp0\t1\nGHOST\tp1\t0.5\n",
        )
        .unwrap();
        let repo = MappingRepository::new();
        repo.load_dir(&dir, &reg).unwrap();
        assert_eq!(repo.get("X").unwrap().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
