//! Mapping repository and cache (paper Section 2.2, Figure 3).
//!
//! "A mapping repository is used to materialize both association and
//! same-mappings. … MOMA also maintains a mapping cache for storing
//! intermediate same-mappings derived during a match workflow."
//!
//! The repository is concurrency-safe (matchers may run in parallel) and
//! persists to a directory of TSV mapping tables keyed by *instance
//! string ids*, so files survive regeneration of the in-memory arenas.

use std::fs;
use std::path::Path;
use std::sync::Arc;

use std::sync::RwLock;

use moma_model::SourceRegistry;
use moma_table::{FxHashMap, MappingTable};

use crate::error::{CoreError, Result};
use crate::mapping::{Mapping, MappingKind};

/// Thread-safe named store of mappings.
#[derive(Debug, Default)]
pub struct MappingRepository {
    inner: RwLock<FxHashMap<String, Arc<Mapping>>>,
}

/// The mapping cache holds intermediate workflow results; structurally it
/// is a second repository instance.
pub type MappingCache = MappingRepository;

impl MappingRepository {
    /// Empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store a mapping under its own name, replacing any previous entry.
    pub fn store(&self, mapping: Mapping) -> Arc<Mapping> {
        let arc = Arc::new(mapping);
        self.inner
            .write()
            .expect("repository lock poisoned")
            .insert(arc.name.clone(), Arc::clone(&arc));
        arc
    }

    /// Store a mapping under an explicit name.
    pub fn store_as(&self, name: impl Into<String>, mapping: Mapping) -> Arc<Mapping> {
        let name = name.into();
        let arc = Arc::new(mapping.named(name.clone()));
        self.inner
            .write()
            .expect("repository lock poisoned")
            .insert(name, Arc::clone(&arc));
        arc
    }

    /// Fetch a mapping by name.
    pub fn get(&self, name: &str) -> Option<Arc<Mapping>> {
        self.inner
            .read()
            .expect("repository lock poisoned")
            .get(name)
            .cloned()
    }

    /// Fetch or error.
    pub fn require(&self, name: &str) -> Result<Arc<Mapping>> {
        self.get(name)
            .ok_or_else(|| CoreError::UnknownMapping(name.into()))
    }

    /// Whether a name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.inner
            .read()
            .expect("repository lock poisoned")
            .contains_key(name)
    }

    /// Remove an entry; returns whether it existed.
    pub fn remove(&self, name: &str) -> bool {
        self.inner
            .write()
            .expect("repository lock poisoned")
            .remove(name)
            .is_some()
    }

    /// All stored names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .inner
            .read()
            .expect("repository lock poisoned")
            .keys()
            .cloned()
            .collect();
        v.sort();
        v
    }

    /// Number of stored mappings.
    pub fn len(&self) -> usize {
        self.inner.read().expect("repository lock poisoned").len()
    }

    /// Whether the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.inner
            .read()
            .expect("repository lock poisoned")
            .is_empty()
    }

    /// Remove everything.
    pub fn clear(&self) {
        self.inner
            .write()
            .expect("repository lock poisoned")
            .clear();
    }

    /// Persist all mappings into `dir`, one TSV file per mapping, rows
    /// keyed by instance string ids resolved through `registry`.
    pub fn persist_dir(&self, dir: impl AsRef<Path>, registry: &SourceRegistry) -> Result<()> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        for (i, name) in self.names().iter().enumerate() {
            let mapping = self.get(name).expect("name listed");
            let d_lds = registry.lds(mapping.domain);
            let r_lds = registry.lds(mapping.range);
            let kind = match &mapping.kind {
                MappingKind::Same => "same".to_owned(),
                MappingKind::Association(t) => format!("assoc:{t}"),
            };
            let mut text = String::new();
            text.push_str(&format!("#name\t{}\n", mapping.name));
            text.push_str(&format!("#kind\t{kind}\n"));
            text.push_str(&format!("#domain\t{}\n", d_lds.name()));
            text.push_str(&format!("#range\t{}\n", r_lds.name()));
            for c in mapping.table.iter() {
                let (Some(d), Some(r)) = (
                    d_lds.get(c.domain).map(|i| &i.id),
                    r_lds.get(c.range).map(|i| &i.id),
                ) else {
                    continue;
                };
                text.push_str(&format!("{d}\t{r}\t{}\n", c.sim));
            }
            fs::write(dir.join(format!("mapping_{i:04}.tsv")), text)?;
        }
        Ok(())
    }

    /// Load every `mapping_*.tsv` in `dir` into the repository, resolving
    /// instance ids through `registry`. Rows whose ids are unknown are
    /// skipped; files whose sources are unknown raise an error.
    pub fn load_dir(&self, dir: impl AsRef<Path>, registry: &SourceRegistry) -> Result<usize> {
        let mut loaded = 0usize;
        let mut paths: Vec<_> = fs::read_dir(dir.as_ref())?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .map(|n| n.starts_with("mapping_") && n.ends_with(".tsv"))
                    .unwrap_or(false)
            })
            .collect();
        paths.sort();
        for path in paths {
            let text = fs::read_to_string(&path)?;
            let mut name = String::new();
            let mut kind = MappingKind::Same;
            let mut domain = None;
            let mut range = None;
            let mut table = MappingTable::new();
            for line in text.lines() {
                if let Some(rest) = line.strip_prefix('#') {
                    let mut parts = rest.split('\t');
                    match (parts.next(), parts.next()) {
                        (Some("name"), Some(v)) => name = v.to_owned(),
                        (Some("kind"), Some(v)) => {
                            kind = match v.strip_prefix("assoc:") {
                                Some(t) => MappingKind::Association(t.to_owned()),
                                None => MappingKind::Same,
                            }
                        }
                        (Some("domain"), Some(v)) => domain = Some(registry.resolve(v)?),
                        (Some("range"), Some(v)) => range = Some(registry.resolve(v)?),
                        _ => {}
                    }
                    continue;
                }
                if line.is_empty() {
                    continue;
                }
                let mut parts = line.split('\t');
                let (Some(d), Some(r), Some(s)) = (parts.next(), parts.next(), parts.next()) else {
                    continue;
                };
                let (Some(domain), Some(range)) = (domain, range) else {
                    continue;
                };
                let (d_lds, r_lds) = (registry.lds(domain), registry.lds(range));
                if let (Some(di), Some(ri), Ok(sim)) =
                    (d_lds.index_of(d), r_lds.index_of(r), s.parse::<f64>())
                {
                    table.push(di, ri, sim);
                }
            }
            let (Some(domain), Some(range)) = (domain, range) else {
                return Err(CoreError::InvalidConfig(format!(
                    "mapping file {} lacks #domain/#range headers",
                    path.display()
                )));
            };
            table.dedup_max();
            self.store(Mapping {
                name,
                kind,
                domain,
                range,
                table,
            });
            loaded += 1;
        }
        Ok(loaded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_model::{AttrDef, LdsId, LogicalSource, ObjectType};

    fn mapping(name: &str) -> Mapping {
        Mapping::same(
            name,
            LdsId(0),
            LdsId(1),
            MappingTable::from_triples([(0, 0, 1.0)]),
        )
    }

    #[test]
    fn store_get_remove() {
        let repo = MappingRepository::new();
        assert!(repo.is_empty());
        repo.store(mapping("a"));
        repo.store_as("b", mapping("ignored"));
        assert_eq!(repo.len(), 2);
        assert!(repo.contains("a"));
        assert_eq!(repo.get("b").unwrap().name, "b");
        assert!(repo.require("c").is_err());
        assert!(repo.remove("a"));
        assert!(!repo.remove("a"));
        assert_eq!(repo.names(), vec!["b".to_owned()]);
        repo.clear();
        assert!(repo.is_empty());
    }

    #[test]
    fn store_replaces() {
        let repo = MappingRepository::new();
        repo.store(mapping("a"));
        let mut m2 = mapping("a");
        m2.table = MappingTable::from_triples([(5, 5, 0.5)]);
        repo.store(m2);
        assert_eq!(repo.len(), 1);
        assert_eq!(repo.get("a").unwrap().table.sim_of(5, 5), Some(0.5));
    }

    #[test]
    fn concurrent_access() {
        let repo = Arc::new(MappingRepository::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let r = Arc::clone(&repo);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    r.store(mapping(&format!("m{t}_{i}")));
                    let _ = r.get(&format!("m{t}_{}", i / 2));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(repo.len(), 400);
    }

    fn registry_with_sources() -> SourceRegistry {
        let mut reg = SourceRegistry::new();
        let mut a = LogicalSource::new(
            "DBLP",
            ObjectType::new("Publication"),
            vec![AttrDef::text("title")],
        );
        a.insert_record("d0", vec![]).unwrap();
        a.insert_record("d1", vec![]).unwrap();
        let mut b = LogicalSource::new(
            "ACM",
            ObjectType::new("Publication"),
            vec![AttrDef::text("title")],
        );
        b.insert_record("p0", vec![]).unwrap();
        b.insert_record("p1", vec![]).unwrap();
        reg.register(a).unwrap();
        reg.register(b).unwrap();
        reg
    }

    #[test]
    fn persistence_roundtrip() {
        let reg = registry_with_sources();
        let repo = MappingRepository::new();
        repo.store(Mapping::same(
            "PubSame",
            LdsId(0),
            LdsId(1),
            MappingTable::from_triples([(0, 1, 0.9), (1, 0, 0.4)]),
        ));
        repo.store(Mapping::association(
            "SomeAssoc",
            "pubs of venue",
            LdsId(0),
            LdsId(1),
            MappingTable::from_triples([(1, 1, 1.0)]),
        ));
        let dir = std::env::temp_dir().join("moma_repo_roundtrip");
        let _ = fs::remove_dir_all(&dir);
        repo.persist_dir(&dir, &reg).unwrap();

        let repo2 = MappingRepository::new();
        let loaded = repo2.load_dir(&dir, &reg).unwrap();
        assert_eq!(loaded, 2);
        let m = repo2.get("PubSame").unwrap();
        assert_eq!(m.table.sim_of(0, 1), Some(0.9));
        assert_eq!(m.table.sim_of(1, 0), Some(0.4));
        assert!(m.kind.is_same());
        let a = repo2.get("SomeAssoc").unwrap();
        assert_eq!(a.kind, MappingKind::Association("pubs of venue".into()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_skips_unknown_instances() {
        let reg = registry_with_sources();
        let dir = std::env::temp_dir().join("moma_repo_unknown_ids");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("mapping_0000.tsv"),
            "#name\tX\n#kind\tsame\n#domain\tPublication@DBLP\n#range\tPublication@ACM\n\
             d0\tp0\t1\nGHOST\tp1\t0.5\n",
        )
        .unwrap();
        let repo = MappingRepository::new();
        repo.load_dir(&dir, &reg).unwrap();
        assert_eq!(repo.get("X").unwrap().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
