//! # moma-core — the MOMA mapping-based object-matching framework
//!
//! This crate is the paper's primary contribution (Thor & Rahm, *MOMA — A
//! Mapping-based Object Matching System*, CIDR 2007): a domain-independent
//! framework in which object matching is performed by *workflows* that
//! execute matchers and combine **instance mappings**.
//!
//! ## Concepts
//!
//! * [`Mapping`] — a set of correspondences `(a, b, s)` between two
//!   logical data sources, tagged as a **same-mapping** (semantic
//!   equality) or an **association mapping** (e.g. publication→author).
//! * [`ops::merge`](ops::merge()) — n-ary merge of mappings between the same sources
//!   with combination functions Avg / Min / Max / Weighted / PreferMap
//!   and configurable treatment of missing correspondences (Section 3.1).
//! * [`ops::compose`](ops::compose()) — composition `LDS_A → LDS_C → LDS_B` with per-path
//!   function `f` and path-aggregation `g` including the Relative family
//!   that rewards pairs reached via multiple compose paths (Section 3.2).
//! * [`ops::select`](ops::select()) — Threshold, Best-n, Best-1+Delta and constraint
//!   based selection of correspondences (Section 3.3).
//! * [`matchers`] — the extensible matcher library: the generic
//!   [`matchers::AttributeMatcher`], the
//!   [`matchers::MultiAttributeMatcher`], and the
//!   [`matchers::neighborhood::nh_match`] neighborhood matcher built from
//!   two composes (Section 4.2).
//! * [`workflow`] — match workflows: sequences of steps, each executing
//!   matchers and/or combining existing mappings, followed by selection
//!   (Section 2.2, Figure 3).
//! * [`repository`] — the mapping repository and cache that make results
//!   reusable across match tasks.
//! * [`cluster`] — duplicate clusters from self-mappings (Section 4.3).
//! * [`exec`] — deterministic parallel execution: a [`Parallelism`]
//!   config threaded through [`MatchContext`] shards matcher probing,
//!   compose joins and workflow steps across threads with bit-identical
//!   results at every thread count.
//! * [`delta`] — incremental matching for evolving sources: a
//!   [`DeltaMatchState`] patches a materialized mapping under source
//!   deltas in time proportional to the delta, bit-identical to a full
//!   re-match, and repository version stamps propagate the patch to
//!   derived compose/set-op results.
//!
//! ## Quick start
//!
//! ```
//! use moma_model::{AttrDef, LogicalSource, ObjectType, SourceRegistry};
//! use moma_core::matchers::{AttributeMatcher, MatchContext, Matcher};
//! use moma_core::ops::{select, Selection};
//! use moma_simstring::SimFn;
//!
//! let mut reg = SourceRegistry::new();
//! let mut dblp = LogicalSource::new("DBLP", ObjectType::new("Publication"),
//!     vec![AttrDef::text("title")]);
//! dblp.insert_record("d1", vec![("title", "Generic Schema Matching with Cupid".into())]).unwrap();
//! let mut acm = LogicalSource::new("ACM", ObjectType::new("Publication"),
//!     vec![AttrDef::text("title")]);
//! acm.insert_record("a1", vec![("title", "Generic schema matching with CUPID".into())]).unwrap();
//! let d = reg.register(dblp).unwrap();
//! let a = reg.register(acm).unwrap();
//!
//! let matcher = AttributeMatcher::new("title", "title", SimFn::Trigram, 0.8);
//! let ctx = MatchContext::new(&reg);
//! let mapping = matcher.execute(&ctx, d, a).unwrap();
//! let mapping = select::select(&mapping, &Selection::Threshold(0.8));
//! assert_eq!(mapping.len(), 1);
//! ```

pub mod blocking;
pub mod cluster;
pub mod delta;
pub mod error;
pub mod exec;
pub mod mapping;
pub mod matchers;
pub mod ops;
pub mod repository;
pub mod workflow;

pub use delta::DeltaMatchState;
pub use error::{CoreError, Result};
pub use exec::Parallelism;
pub use mapping::{Mapping, MappingKind};
pub use matchers::{MatchContext, Matcher};
pub use repository::{MappingCache, MappingRepository, Recipe, SnapshotEntry};
pub use workflow::{CombineOp, Combiner, StepInput, Workflow, WorkflowStep};
