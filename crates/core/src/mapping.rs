//! Instance mappings: the central MOMA abstraction.

use moma_model::LdsId;
use moma_table::MappingTable;

/// Whether a mapping asserts equality or some other semantic relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingKind {
    /// Same-mapping: correspondences between instances of the same object
    /// type that represent the same real-world entity.
    Same,
    /// Association mapping with a semantic type name, e.g.
    /// `"publications of author"`.
    Association(String),
}

impl MappingKind {
    /// True for same-mappings.
    pub fn is_same(&self) -> bool {
        matches!(self, MappingKind::Same)
    }
}

/// An instance mapping between two logical data sources
/// (paper Definition 1).
#[derive(Debug, Clone, PartialEq)]
pub struct Mapping {
    /// Human-readable label, e.g. `"PubSame(DBLP,ACM)"`.
    pub name: String,
    /// Same-mapping or association mapping.
    pub kind: MappingKind,
    /// Domain LDS.
    pub domain: LdsId,
    /// Range LDS.
    pub range: LdsId,
    /// The correspondences.
    pub table: MappingTable,
}

impl Mapping {
    /// Create a same-mapping.
    pub fn same(name: impl Into<String>, domain: LdsId, range: LdsId, table: MappingTable) -> Self {
        Self {
            name: name.into(),
            kind: MappingKind::Same,
            domain,
            range,
            table,
        }
    }

    /// Create an association mapping.
    pub fn association(
        name: impl Into<String>,
        assoc_type: impl Into<String>,
        domain: LdsId,
        range: LdsId,
        table: MappingTable,
    ) -> Self {
        Self {
            name: name.into(),
            kind: MappingKind::Association(assoc_type.into()),
            domain,
            range,
            table,
        }
    }

    /// The identity same-mapping over `count` instances of one LDS — the
    /// "trivial same-mapping" used when the neighborhood matcher runs
    /// within a single source (paper Section 4.3).
    pub fn identity(lds: LdsId, count: u32) -> Self {
        let table = MappingTable::from_triples((0..count).map(|i| (i, i, 1.0)));
        Self::same(format!("Identity({})", lds.0), lds, lds, table)
    }

    /// Number of correspondences.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the mapping holds no correspondences.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Whether this is a self-mapping (domain LDS == range LDS).
    pub fn is_self_mapping(&self) -> bool {
        self.domain == self.range
    }

    /// The inverse mapping: domain and range swapped, table inverted.
    ///
    /// One of the two stated advantages of explicit mapping representation
    /// (Section 2.1): "we can easily determine and use the inverse
    /// mapping".
    pub fn inverse(&self) -> Mapping {
        let kind = match &self.kind {
            MappingKind::Same => MappingKind::Same,
            MappingKind::Association(t) => MappingKind::Association(format!("inverse({t})")),
        };
        Mapping {
            name: format!("inverse({})", self.name),
            kind,
            domain: self.range,
            range: self.domain,
            table: self.table.inverted(),
        }
    }

    /// Clamp all similarity values into `[0, 1]` (defensive; operators
    /// preserve the invariant themselves).
    pub fn clamp_sims(&mut self) {
        let rows = std::mem::take(&mut self.table).into_rows();
        self.table = MappingTable::from_rows(
            rows.into_iter()
                .map(|mut c| {
                    c.sim = c.sim.clamp(0.0, 1.0);
                    c
                })
                .collect(),
        );
    }

    /// Check the `[0,1]` similarity invariant.
    pub fn sims_valid(&self) -> bool {
        self.table
            .iter()
            .all(|c| (0.0..=1.0).contains(&c.sim) && c.sim.is_finite())
    }

    /// Replace the label, returning self (builder style).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Mapping {
        Mapping::same(
            "PubSame",
            LdsId(0),
            LdsId(1),
            MappingTable::from_triples([(0, 10, 1.0), (1, 11, 0.6)]),
        )
    }

    #[test]
    fn constructors() {
        let m = sample();
        assert!(m.kind.is_same());
        assert_eq!(m.len(), 2);
        assert!(!m.is_self_mapping());
        let a = Mapping::association(
            "PubAuth",
            "publications of author",
            LdsId(0),
            LdsId(2),
            MappingTable::new(),
        );
        assert!(!a.kind.is_same());
        assert!(a.is_empty());
    }

    #[test]
    fn identity_mapping() {
        let id = Mapping::identity(LdsId(3), 4);
        assert_eq!(id.len(), 4);
        assert!(id.is_self_mapping());
        assert!(id.kind.is_same());
        for c in id.table.iter() {
            assert_eq!(c.domain, c.range);
            assert_eq!(c.sim, 1.0);
        }
    }

    #[test]
    fn inverse_swaps_and_labels() {
        let m = sample();
        let inv = m.inverse();
        assert_eq!(inv.domain, LdsId(1));
        assert_eq!(inv.range, LdsId(0));
        assert_eq!(inv.table.sim_of(10, 0), Some(1.0));
        assert!(inv.name.starts_with("inverse("));
        // Same-mapping inverse is still a same-mapping.
        assert!(inv.kind.is_same());
    }

    #[test]
    fn association_inverse_renames_type() {
        let a = Mapping::association(
            "VenuePub",
            "publications of venue",
            LdsId(0),
            LdsId(1),
            MappingTable::from_triples([(0, 1, 1.0)]),
        );
        match a.inverse().kind {
            MappingKind::Association(t) => assert_eq!(t, "inverse(publications of venue)"),
            _ => panic!("expected association"),
        }
    }

    #[test]
    fn double_inverse_restores_table() {
        let m = sample();
        assert_eq!(m.inverse().inverse().table, m.table);
    }

    #[test]
    fn sims_validation_and_clamp() {
        let mut m = Mapping::same(
            "bad",
            LdsId(0),
            LdsId(1),
            MappingTable::from_triples([(0, 0, 1.5), (1, 1, -0.25)]),
        );
        assert!(!m.sims_valid());
        m.clamp_sims();
        assert!(m.sims_valid());
        assert_eq!(m.table.sim_of(0, 0), Some(1.0));
        assert_eq!(m.table.sim_of(1, 1), Some(0.0));
    }

    #[test]
    fn named_builder() {
        let m = sample().named("Renamed");
        assert_eq!(m.name, "Renamed");
    }
}
