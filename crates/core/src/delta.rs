//! Incremental (delta) matching: patch a materialized mapping in place
//! when its sources change, instead of re-matching from scratch.
//!
//! MOMA's central idea is *reuse*: materialized mappings in the
//! repository are cheaper to adapt than to recompute (paper Section 2.2,
//! Figure 3). This module is the runtime form of that idea for evolving
//! sources. A [`DeltaMatchState`] — created by
//! [`AttributeMatcher::prime`] — caches the matcher's projected values
//! and (in blocked mode) *both-side* trigram indexes. When a
//! [`SourceDelta`](moma_model::SourceDelta) is applied to the registry,
//! feeding the resulting [`AppliedDelta`] to [`DeltaMatchState::apply`]
//!
//! 1. patches the cached projections and incrementally maintains the
//!    indexes (tombstones + compaction, see [`crate::blocking`]),
//! 2. drops the mapping rows whose domain or range instance was touched,
//! 3. re-probes **only** the touched domain values against the range
//!    side, and the touched range values against the domain side (the
//!    inverse probe — Dice is symmetric, so prefix filtering loses
//!    nothing in either direction),
//!
//! giving per-delta cost proportional to `|delta|`, not `|source|`.
//! Probes are sharded through the caller's
//! [`Parallelism`](crate::exec::Parallelism) exactly like full matcher
//! execution, and the result is **bit-for-bit identical to a full
//! re-match** at every thread count (property-tested in
//! `tests/incremental_equivalence.rs`).
//!
//! ## When incremental execution applies
//!
//! The identical-result guarantee needs the candidate filter to be exact
//! with respect to the scoring measure. [`DeltaMatchState::apply`]
//! therefore runs incrementally for
//!
//! * any fixed similarity function whose resolved plan scores all pairs
//!   (explicit [`Blocking::AllPairs`], or [`Blocking::Threshold`]
//!   falling back for a non-q-gram measure),
//! * any q-gram measure under [`Blocking::Threshold`] — the
//!   T-occurrence bounds are exact and *symmetric*, so both-side
//!   [`ThresholdIndex`](crate::blocking::ThresholdIndex)es are
//!   maintained, and
//! * trigram-Dice scoring ([`SimFn::Trigram`] / `QgramDice(3)` without a
//!   custom candidate floor) with [`Blocking::TrigramPrefix`];
//!
//! [`Blocking::AllPairs`]: crate::blocking::Blocking::AllPairs
//! [`Blocking::Threshold`]: crate::blocking::Blocking::Threshold
//! [`Blocking::TrigramPrefix`]: crate::blocking::Blocking::TrigramPrefix
//!
//! for every other configuration — TF-IDF (its corpus is global: one
//! added document changes every weight) or blocked scoring with a
//! conservative candidate floor (the floor makes results depend on the
//! probe direction) — it transparently falls back to a full re-match,
//! still returning the correct mapping. [`DeltaMatchState::is_incremental`]
//! reports which regime a state is in.
//!
//! Downstream, patched repository mappings invalidate the compose /
//! set-op / merge results derived from them via version stamps; see
//! [`MappingRepository::refresh_stale`](crate::repository::MappingRepository::refresh_stale)
//! and [`DeltaMatchState::patch_and_refresh`].

use moma_model::{AppliedDelta, LdsId};
use moma_simstring::SimFn;
use moma_table::{Correspondence, FxHashSet, MappingTable};

use crate::blocking::CandidateIndex;
use crate::error::{CoreError, Result};
use crate::mapping::Mapping;
use crate::matchers::attribute::CandidatePlan;
use crate::matchers::{AttributeMatcher, MatchContext, Matcher, MatcherSim};
use crate::repository::MappingRepository;

/// Materialized incremental-matching state for one
/// `(matcher, domain LDS, range LDS)` triple.
#[derive(Debug, Clone)]
pub struct DeltaMatchState {
    matcher: AttributeMatcher,
    domain: LdsId,
    range: LdsId,
    /// Cached match-string projection of the domain attribute, indexed
    /// by arena index; `None` = instance removed or attribute missing.
    domain_vals: Vec<Option<String>>,
    /// Same for the range attribute.
    range_vals: Vec<Option<String>>,
    /// Incrementally maintained candidate index over live range values
    /// (blocked-incremental mode only; prefix or threshold family per
    /// the matcher's resolved plan).
    range_index: Option<CandidateIndex>,
    /// Index over live domain values, probed *inversely* by touched
    /// range values (blocked-incremental mode only).
    domain_index: Option<CandidateIndex>,
    mapping: Mapping,
    incremental: bool,
    /// Rows re-scored by the last [`DeltaMatchState::apply`] call
    /// (0 after a full-fallback apply).
    pub last_rescored: usize,
    /// Whether the last [`DeltaMatchState::apply`] call touched this
    /// state's projections at all (false: the deltas were irrelevant and
    /// the mapping is unchanged).
    last_touched: bool,
    /// Whether the last [`DeltaMatchState::apply`] call fell back to a
    /// full re-match.
    last_full_rematch: bool,
    /// Total number of full-re-match fallbacks executed by this state.
    full_rematches: u64,
}

/// Whether a matcher configuration supports incremental delta execution
/// with the identical-result guarantee (see module docs). Decided on the
/// *resolved* candidate plan: all-pairs and threshold-exact plans are
/// always incremental for fixed measures; prefix-filtered plans only
/// when the filter is exact for the scoring measure (trigram Dice at
/// the matcher threshold, no custom floor).
fn supports_incremental(m: &AttributeMatcher) -> bool {
    if matches!(m.sim, MatcherSim::TfIdf) {
        return false;
    }
    match m.candidate_plan() {
        CandidatePlan::AllPairs | CandidatePlan::Threshold { .. } => true,
        // Only arises for `MatcherSim::TfIdf`, rejected above: the
        // weighted-prefix index is exact for a *frozen* corpus, but any
        // delta shifts the corpus-global weights, so every apply must be
        // a full re-match.
        CandidatePlan::TfIdf => false,
        CandidatePlan::Prefix { .. } => {
            matches!(
                m.sim,
                MatcherSim::Fixed(SimFn::Trigram) | MatcherSim::Fixed(SimFn::QgramDice(3))
            ) && m.candidate_floor.is_none()
        }
    }
}

impl AttributeMatcher {
    /// Execute the matcher fully and capture a [`DeltaMatchState`] so
    /// that subsequent source deltas can be matched incrementally.
    pub fn prime(
        &self,
        ctx: &MatchContext<'_>,
        domain: LdsId,
        range: LdsId,
    ) -> Result<DeltaMatchState> {
        let mapping = self.execute(ctx, domain, range)?;
        let par = self.parallelism.unwrap_or(ctx.parallelism);
        let incremental = supports_incremental(self);

        let project = |lds: LdsId, attr: &str| -> Result<Vec<Option<String>>> {
            let lds = ctx.registry.lds(lds);
            let mut vals: Vec<Option<String>> = vec![None; lds.len()];
            for (i, v) in lds.project(attr)? {
                vals[i as usize] = Some(v.to_match_string());
            }
            Ok(vals)
        };
        let domain_vals = project(domain, &self.domain_attr)?;
        let range_vals = project(range, &self.range_attr)?;

        let build = |vals: &[Option<String>]| -> Option<CandidateIndex> {
            let pairs: Vec<(u32, &str)> = vals
                .iter()
                .enumerate()
                .filter_map(|(i, v)| v.as_deref().map(|v| (i as u32, v)))
                .collect();
            self.build_candidate_index(&pairs, &par)
        };
        let (domain_index, range_index) = if incremental {
            // `build_candidate_index` returns None for all-pairs plans,
            // so only genuinely blocked configurations pay for indexes.
            (build(&domain_vals), build(&range_vals))
        } else {
            (None, None)
        };

        Ok(DeltaMatchState {
            matcher: self.clone(),
            domain,
            range,
            domain_vals,
            range_vals,
            range_index,
            domain_index,
            mapping,
            incremental,
            last_rescored: 0,
            last_touched: false,
            last_full_rematch: false,
            full_rematches: 0,
        })
    }

    /// Delta-aware execution: patch `state` (captured by
    /// [`AttributeMatcher::prime`] for this matcher) under applied
    /// deltas and return the updated mapping. Equivalent to
    /// [`DeltaMatchState::apply`]; provided on the matcher for symmetry
    /// with [`Matcher::execute`].
    pub fn execute_delta<'s>(
        &self,
        ctx: &MatchContext<'_>,
        state: &'s mut DeltaMatchState,
        deltas: &[&AppliedDelta],
    ) -> Result<&'s Mapping> {
        state.apply(ctx, deltas)
    }
}

/// Sync one side's cached value and (if present) its trigram index with
/// the registry's current state. Idempotent: re-applying the same delta
/// finds the cache already current and degenerates to no-ops.
fn sync_value(
    vals: &mut Vec<Option<String>>,
    index: &mut Option<CandidateIndex>,
    id: u32,
    new: Option<String>,
) {
    if vals.len() <= id as usize {
        vals.resize(id as usize + 1, None);
    }
    let old = std::mem::replace(&mut vals[id as usize], new.clone());
    if let Some(idx) = index {
        match (&old, &new) {
            (Some(o), Some(n)) => {
                if !idx.update(id, o, n) {
                    idx.insert(id, n);
                }
            }
            (Some(_), None) => {
                idx.remove(id);
            }
            (None, Some(n)) => {
                idx.insert(id, n);
            }
            (None, None) => {}
        }
    }
}

impl DeltaMatchState {
    /// The current (incrementally maintained) mapping.
    pub fn mapping(&self) -> &Mapping {
        &self.mapping
    }

    /// Whether deltas are executed incrementally (`false`: every apply
    /// is a transparent full re-match; see module docs).
    pub fn is_incremental(&self) -> bool {
        self.incremental
    }

    /// Whether the last [`DeltaMatchState::apply`] call changed anything
    /// (`false`: the deltas did not touch this state's matched
    /// projections, so the mapping is untouched).
    pub fn last_touched(&self) -> bool {
        self.last_touched
    }

    /// Whether the last [`DeltaMatchState::apply`] call paid a full
    /// re-match instead of an incremental patch. Always `false` for
    /// irrelevant deltas (they are skipped before the fallback).
    pub fn last_was_full_rematch(&self) -> bool {
        self.last_full_rematch
    }

    /// Total number of full-re-match fallbacks this state has executed.
    /// Non-incremental configurations (e.g. TF-IDF, whose corpus-global
    /// weights shift under any delta) pay one per relevant delta batch;
    /// operators can watch this via the server's `delta`/`stats`
    /// endpoints to see which mappings carry full-re-match cost.
    pub fn full_rematches(&self) -> u64 {
        self.full_rematches
    }

    /// Apply source deltas (already applied to `ctx.registry` via
    /// [`SourceRegistry::apply_delta`](moma_model::SourceRegistry::apply_delta))
    /// to the materialized mapping. Deltas against sources other than
    /// this state's domain/range are ignored; a delta against a
    /// self-mapping source touches both sides. Returns the patched
    /// mapping.
    pub fn apply(&mut self, ctx: &MatchContext<'_>, deltas: &[&AppliedDelta]) -> Result<&Mapping> {
        // 1. Collect touched arena indexes per side, in delta order.
        //    `dropped`: rows referencing these must go. `probe`: values
        //    to re-score (adds + updates; removals only drop).
        let mut dropped_d: Vec<u32> = Vec::new();
        let mut probe_d: Vec<u32> = Vec::new();
        let mut dropped_r: Vec<u32> = Vec::new();
        let mut probe_r: Vec<u32> = Vec::new();
        for delta in deltas {
            for (side, attr) in [
                (delta.lds == self.domain).then_some((0, &self.matcher.domain_attr)),
                (delta.lds == self.range).then_some((1, &self.matcher.range_attr)),
            ]
            .into_iter()
            .flatten()
            {
                let (added, removed, updated) = delta.touched_for_attr(attr);
                let (dropped, probe) = if side == 0 {
                    (&mut dropped_d, &mut probe_d)
                } else {
                    (&mut dropped_r, &mut probe_r)
                };
                dropped.extend(removed.iter().copied());
                dropped.extend(updated.iter().copied());
                dropped.extend(added.iter().copied()); // idempotent re-apply
                probe.extend(added.iter().copied());
                probe.extend(updated.iter().copied());
            }
        }
        // Deltas that touch neither matched projection can't change the
        // mapping — skip even the full-fallback re-match.
        if dropped_d.is_empty() && dropped_r.is_empty() {
            self.last_rescored = 0;
            self.last_touched = false;
            self.last_full_rematch = false;
            return Ok(&self.mapping);
        }
        self.last_touched = true;
        if !self.incremental {
            self.last_rescored = 0;
            self.last_full_rematch = true;
            self.full_rematches += 1;
            self.mapping = self.matcher.execute(ctx, self.domain, self.range)?;
            return Ok(&self.mapping);
        }
        self.last_full_rematch = false;
        let par = self.matcher.parallelism.unwrap_or(ctx.parallelism);

        // 2. Sync cached projections and indexes with the registry.
        let d_lds = ctx.registry.lds(self.domain);
        let r_lds = ctx.registry.lds(self.range);
        let fetch =
            |lds: &moma_model::LogicalSource, id: u32, attr: &str| -> Result<Option<String>> {
                if !lds.is_live(id) {
                    return Ok(None);
                }
                Ok(lds.attr_of(id, attr)?.map(|v| v.to_match_string()))
            };
        for &id in dropped_d.iter() {
            let new = fetch(d_lds, id, &self.matcher.domain_attr)?;
            sync_value(&mut self.domain_vals, &mut self.domain_index, id, new);
        }
        for &id in dropped_r.iter() {
            let new = fetch(r_lds, id, &self.matcher.range_attr)?;
            sync_value(&mut self.range_vals, &mut self.range_index, id, new);
        }

        // 3. Drop every row touching a changed instance.
        let drop_d: FxHashSet<u32> = dropped_d.iter().copied().collect();
        let drop_r: FxHashSet<u32> = dropped_r.iter().copied().collect();
        let mut rows: Vec<Correspondence> = std::mem::take(&mut self.mapping.table)
            .into_rows()
            .into_iter()
            .filter(|c| !drop_d.contains(&c.domain) && !drop_r.contains(&c.range))
            .collect();

        // 4. Re-probe touched values. Deduplicate + order the probe
        //    lists (an id updated twice probes once, on its final
        //    value), then shard through `par` — shard outputs are merged
        //    in input order and the final table is sorted, so results
        //    are identical at every thread count.
        let plist = |probe: &[u32], vals: &[Option<String>]| -> Vec<(u32, String)> {
            let mut ids: Vec<u32> = probe.to_vec();
            ids.sort_unstable();
            ids.dedup();
            ids.into_iter()
                .filter_map(|i| vals.get(i as usize)?.clone().map(|v| (i, v)))
                .collect()
        };
        let probe_d = plist(&probe_d, &self.domain_vals);
        let probe_r = plist(&probe_r, &self.range_vals);
        self.last_rescored = probe_d.len() + probe_r.len();

        let MatcherSim::Fixed(simfn) = self.matcher.sim.clone() else {
            unreachable!("TfIdf never reaches the incremental path");
        };
        let threshold = self.matcher.threshold;

        // 4a. Touched domain values × current range side.
        let range_vals = &self.range_vals;
        let range_index = &self.range_index;
        let forward = |chunk: &[(u32, String)]| -> Vec<Correspondence> {
            let mut out = Vec::new();
            for (d_idx, d_val) in chunk {
                match range_index {
                    Some(idx) => {
                        for cand in idx.candidates(d_val) {
                            let r_val = range_vals[cand as usize]
                                .as_deref()
                                .expect("live candidate has a value");
                            let s = simfn.eval(d_val, r_val);
                            if s >= threshold {
                                out.push(Correspondence::new(*d_idx, cand, s));
                            }
                        }
                    }
                    None => {
                        for (r_idx, r_val) in range_vals.iter().enumerate() {
                            let Some(r_val) = r_val else { continue };
                            let s = simfn.eval(d_val, r_val);
                            if s >= threshold {
                                out.push(Correspondence::new(*d_idx, r_idx as u32, s));
                            }
                        }
                    }
                }
            }
            out
        };
        for shard in par.run_sharded(&probe_d, forward) {
            rows.extend(shard);
        }

        // 4b. Touched range values × current domain side (inverse probe).
        let domain_vals = &self.domain_vals;
        let domain_index = &self.domain_index;
        let inverse = |chunk: &[(u32, String)]| -> Vec<Correspondence> {
            let mut out = Vec::new();
            for (r_idx, r_val) in chunk {
                match domain_index {
                    Some(idx) => {
                        for cand in idx.candidates(r_val) {
                            let d_val = domain_vals[cand as usize]
                                .as_deref()
                                .expect("live candidate has a value");
                            let s = simfn.eval(d_val, r_val);
                            if s >= threshold {
                                out.push(Correspondence::new(cand, *r_idx, s));
                            }
                        }
                    }
                    None => {
                        for (d_idx, d_val) in domain_vals.iter().enumerate() {
                            let Some(d_val) = d_val else { continue };
                            let s = simfn.eval(d_val, r_val);
                            if s >= threshold {
                                out.push(Correspondence::new(d_idx as u32, *r_idx, s));
                            }
                        }
                    }
                }
            }
            out
        };
        for shard in par.run_sharded(&probe_r, inverse) {
            rows.extend(shard);
        }

        // 5. Rebuild the table: dedup_max collapses the overlap between
        //    the forward and inverse probes (identical scores) and
        //    restores (domain, range) order — exactly the shape a full
        //    re-match produces.
        self.mapping.table = MappingTable::from_rows(rows);
        Ok(&self.mapping)
    }

    /// Apply deltas, publish the patched mapping into `repository` under
    /// `name`, and run [`MappingRepository::refresh_stale`]. Note the
    /// refresh is repository-wide: it recomputes (and the returned names
    /// include) *every* stale derived entry — those downstream of this
    /// patch plus any left stale by earlier un-refreshed patches.
    pub fn patch_and_refresh(
        &mut self,
        ctx: &MatchContext<'_>,
        deltas: &[&AppliedDelta],
        repository: &MappingRepository,
        name: &str,
    ) -> Result<Vec<String>> {
        if !repository.contains(name) {
            return Err(CoreError::UnknownMapping(name.into()));
        }
        let par = self.matcher.parallelism.unwrap_or(ctx.parallelism);
        self.apply(ctx, deltas)?;
        repository.patch(name, self.mapping.clone().named(name));
        repository.refresh_stale(&par)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::Blocking;
    use crate::exec::Parallelism;
    use crate::ops::compose::{PathAgg, PathCombine};
    use crate::repository::Recipe;
    use moma_model::{AttrDef, LogicalSource, ObjectType, SourceDelta, SourceRegistry};

    fn setup() -> (SourceRegistry, LdsId, LdsId) {
        let mut reg = SourceRegistry::new();
        let mut dblp = LogicalSource::new(
            "DBLP",
            ObjectType::new("Publication"),
            vec![AttrDef::text("title"), AttrDef::year("year")],
        );
        let mut acm = LogicalSource::new(
            "ACM",
            ObjectType::new("Publication"),
            vec![AttrDef::text("title"), AttrDef::year("year")],
        );
        let titles = [
            "A formal perspective on the view selection problem",
            "Generic Schema Matching with Cupid",
            "Potter's Wheel: An Interactive Data Cleaning System",
            "Robust and Efficient Fuzzy Match for Online Data Cleaning",
        ];
        for (i, t) in titles.iter().enumerate() {
            dblp.insert_record(format!("d{i}"), vec![("title", (*t).into())])
                .unwrap();
        }
        for (i, t) in titles.iter().enumerate().take(3) {
            acm.insert_record(format!("a{i}"), vec![("title", format!("{t}.").into())])
                .unwrap();
        }
        let d = reg.register(dblp).unwrap();
        let a = reg.register(acm).unwrap();
        (reg, d, a)
    }

    fn assert_incremental_equals_full(
        matcher: &AttributeMatcher,
        reg: &mut SourceRegistry,
        d: LdsId,
        a: LdsId,
        deltas: Vec<SourceDelta>,
    ) {
        let ctx = MatchContext::new(reg);
        let mut state = matcher.prime(&ctx, d, a).unwrap();
        for delta in deltas {
            let applied = reg.apply_delta(&delta).unwrap();
            let ctx = MatchContext::new(reg);
            let incremental = state.apply(&ctx, &[&applied]).unwrap().clone();
            let full = matcher.execute(&ctx, d, a).unwrap();
            assert_eq!(
                incremental.table.rows(),
                full.table.rows(),
                "incremental != full after {applied:?}"
            );
        }
    }

    #[test]
    fn incremental_tracks_adds_updates_removes_allpairs() {
        let (mut reg, d, a) = setup();
        let matcher = AttributeMatcher::new("title", "title", SimFn::Trigram, 0.7)
            .with_blocking(Blocking::AllPairs);
        let deltas = vec![
            SourceDelta::new(a).add(
                "a9",
                vec![(
                    "title".into(),
                    "Robust and Efficient Fuzzy Match for Online Data Cleaning".into(),
                )],
            ),
            SourceDelta::new(d).update(
                "d1",
                "title",
                Some("Generic schema matching with CUPID".into()),
            ),
            SourceDelta::new(d).remove("d0"),
            SourceDelta::new(a).remove("a2").remove("a2"), // duplicate
            SourceDelta::new(d).update("d2", "title", None), // clear attr
        ];
        assert_incremental_equals_full(&matcher, &mut reg, d, a, deltas);
    }

    #[test]
    fn incremental_tracks_changes_blocked() {
        let (mut reg, d, a) = setup();
        let matcher = AttributeMatcher::new("title", "title", SimFn::Trigram, 0.6)
            .with_blocking(Blocking::TrigramPrefix);
        let deltas = vec![
            SourceDelta::new(a)
                .add(
                    "a9",
                    vec![(
                        "title".into(),
                        "Potter's Wheel: Interactive Cleaning".into(),
                    )],
                )
                .remove("a0"),
            SourceDelta::new(d).update(
                "d3",
                "title",
                Some("Fuzzy Match for Online Data Cleaning".into()),
            ),
            // No-op update: same value written back.
            SourceDelta::new(d).update(
                "d3",
                "title",
                Some("Fuzzy Match for Online Data Cleaning".into()),
            ),
        ];
        assert_incremental_equals_full(&matcher, &mut reg, d, a, deltas);
    }

    #[test]
    fn incremental_tracks_changes_threshold_blocked() {
        // The default blocking: threshold-exact indexes on both sides,
        // maintained in place (bucket moves on updates, tombstones on
        // removals, gramless transitions on attribute clears).
        for sim in [SimFn::Trigram, SimFn::QgramJaccard(3)] {
            let (mut reg, d, a) = setup();
            let matcher = AttributeMatcher::new("title", "title", sim, 0.5);
            assert_eq!(matcher.blocking, Blocking::Threshold);
            let deltas = vec![
                SourceDelta::new(a)
                    .add(
                        "a9",
                        vec![(
                            "title".into(),
                            "Potter's Wheel: Interactive Cleaning".into(),
                        )],
                    )
                    .remove("a0"),
                SourceDelta::new(d).update(
                    "d3",
                    "title",
                    Some("Fuzzy Match for Online Data Cleaning".into()),
                ),
                SourceDelta::new(d).update("d2", "title", Some("!!".into())), // to gramless
                SourceDelta::new(d).update("d2", "title", Some("Potter's Wheel".into())),
            ];
            assert_incremental_equals_full(&matcher, &mut reg, d, a, deltas);
        }
    }

    #[test]
    fn self_mapping_deltas_touch_both_sides() {
        let (mut reg, d, _) = setup();
        let matcher = AttributeMatcher::new("title", "title", SimFn::Trigram, 0.5);
        let deltas = vec![
            SourceDelta::new(d).add(
                "dup",
                vec![("title".into(), "Generic Schema Matching with Cupid!".into())],
            ),
            SourceDelta::new(d).remove("d1"),
        ];
        assert_incremental_equals_full(&matcher, &mut reg, d, d, deltas);
    }

    #[test]
    fn irrelevant_deltas_are_ignored() {
        let (mut reg, d, a) = setup();
        let matcher = AttributeMatcher::new("title", "title", SimFn::Trigram, 0.7);
        let ctx = MatchContext::new(&reg);
        let mut state = matcher.prime(&ctx, d, a).unwrap();
        let before = state.mapping().table.rows().to_vec();
        // Update of an attribute this matcher does not read.
        let applied = reg
            .apply_delta(&SourceDelta::new(d).update("d0", "year", Some(2001u16.into())))
            .unwrap();
        let ctx = MatchContext::new(&reg);
        // The matcher-side entry point delegates to `apply`.
        matcher
            .execute_delta(&ctx, &mut state, &[&applied])
            .unwrap();
        assert_eq!(state.last_rescored, 0);
        assert!(!state.last_touched());
        assert!(!state.last_was_full_rematch());
        assert_eq!(state.full_rematches(), 0);
        assert_eq!(state.mapping().table.rows(), &before[..]);
        // Empty delta list.
        state.apply(&ctx, &[]).unwrap();
        assert_eq!(state.mapping().table.rows(), &before[..]);
    }

    #[test]
    fn reapplying_a_delta_is_idempotent() {
        let (mut reg, d, a) = setup();
        let matcher = AttributeMatcher::new("title", "title", SimFn::Trigram, 0.6)
            .with_blocking(Blocking::TrigramPrefix);
        let ctx = MatchContext::new(&reg);
        let mut state = matcher.prime(&ctx, d, a).unwrap();
        let delta = SourceDelta::new(a)
            .add("a9", vec![("title".into(), "Potter's Wheel".into())])
            .update("a1", "title", Some("Schema Matching, generically".into()))
            .remove("a0");
        let applied = reg.apply_delta(&delta).unwrap();
        let ctx = MatchContext::new(&reg);
        let once = state
            .apply(&ctx, &[&applied])
            .unwrap()
            .table
            .rows()
            .to_vec();
        let twice = state
            .apply(&ctx, &[&applied])
            .unwrap()
            .table
            .rows()
            .to_vec();
        assert_eq!(once, twice);
        let full = matcher.execute(&ctx, d, a).unwrap();
        assert_eq!(twice, full.table.rows());
    }

    #[test]
    fn unsupported_configs_fall_back_to_full() {
        let (mut reg, d, a) = setup();
        // Jaro scoring under blocking has a conservative candidate floor:
        // no identical-result guarantee, so apply == full re-match.
        let blocked_jaro = AttributeMatcher::new("title", "title", SimFn::Jaro, 0.9)
            .with_blocking(Blocking::TrigramPrefix);
        let tfidf = AttributeMatcher::tfidf("title", "title", 0.5);
        for matcher in [blocked_jaro, tfidf] {
            let ctx = MatchContext::new(&reg);
            let mut state = matcher.prime(&ctx, d, a).unwrap();
            assert!(!state.is_incremental());
            let applied = reg
                .apply_delta(
                    &SourceDelta::new(a).add("zz", vec![("title".into(), "Potter's Wheel".into())]),
                )
                .unwrap();
            let ctx = MatchContext::new(&reg);
            let got = state.apply(&ctx, &[&applied]).unwrap().clone();
            let full = matcher.execute(&ctx, d, a).unwrap();
            assert_eq!(got.table.rows(), full.table.rows());
            // The fallback is visible to operators: the apply was a full
            // re-match and the counter advanced.
            assert!(state.last_touched());
            assert!(state.last_was_full_rematch());
            assert_eq!(state.full_rematches(), 1);
            reg.apply_delta(&SourceDelta::new(a).remove("zz")).unwrap();
        }
    }

    #[test]
    fn incremental_results_identical_across_thread_counts() {
        let (mut reg, d, a) = setup();
        let matcher = AttributeMatcher::new("title", "title", SimFn::Trigram, 0.6)
            .with_blocking(Blocking::TrigramPrefix);
        let delta = SourceDelta::new(a)
            .add(
                "n0",
                vec![("title".into(), "View selection, formally".into())],
            )
            .add("n1", vec![("title".into(), "Data Cleaning Systems".into())])
            .remove("a1");
        let mut reference: Option<Vec<Correspondence>> = None;
        for threads in [1usize, 2, 8] {
            let mut reg_t = reg.clone();
            let par = Parallelism::new(threads).with_min_shard_size(1);
            let ctx = MatchContext::new(&reg_t).with_parallelism(par);
            let mut state = matcher.prime(&ctx, d, a).unwrap();
            let applied = reg_t.apply_delta(&delta).unwrap();
            let ctx = MatchContext::new(&reg_t).with_parallelism(par);
            let rows = state
                .apply(&ctx, &[&applied])
                .unwrap()
                .table
                .rows()
                .to_vec();
            match &reference {
                None => reference = Some(rows),
                Some(r) => assert_eq!(&rows, r, "threads={threads}"),
            }
        }
        // Keep `reg` borrowed mutably above happy.
        let _ = &mut reg;
    }

    #[test]
    fn patch_and_refresh_updates_downstream() {
        let (mut reg, d, a) = setup();
        let par = Parallelism::sequential();
        let repo = MappingRepository::new();
        let matcher = AttributeMatcher::new("title", "title", SimFn::Trigram, 0.7);
        let ctx = MatchContext::new(&reg).with_parallelism(par);
        let mut state = matcher.prime(&ctx, d, a).unwrap();
        repo.store_as("TitleSame", state.mapping().clone());
        // ACM self-identity to compose through.
        let acm_len = reg.lds(a).len() as u32;
        repo.store(Mapping::identity(a, acm_len).named("AcmId"));
        repo.store_derived(
            "Composed",
            Recipe::Compose {
                left: "TitleSame".into(),
                right: "AcmId".into(),
                f: PathCombine::Min,
                g: PathAgg::Max,
            },
            &par,
        )
        .unwrap();

        // Unknown repository name is a typed error.
        let ctx = MatchContext::new(&reg).with_parallelism(par);
        assert!(matches!(
            state.patch_and_refresh(&ctx, &[], &repo, "ghost"),
            Err(CoreError::UnknownMapping(_))
        ));

        let applied = reg.apply_delta(&SourceDelta::new(d).remove("d0")).unwrap();
        let ctx = MatchContext::new(&reg).with_parallelism(par);
        let refreshed = state
            .patch_and_refresh(&ctx, &[&applied], &repo, "TitleSame")
            .unwrap();
        assert_eq!(refreshed, vec!["Composed".to_owned()]);
        // The composed result no longer contains the removed instance.
        let composed = repo.get("Composed").unwrap();
        assert!(composed.table.iter().all(|c| c.domain != 0));
        assert!(!repo.is_stale("Composed"));
        assert_eq!(
            repo.get("TitleSame").unwrap().table.rows(),
            state.mapping().table.rows()
        );
    }
}
