//! Error type for core operations.

use std::fmt;

use moma_model::ModelError;

/// Errors raised by mapping operators, matchers and workflows.
#[derive(Debug)]
pub enum CoreError {
    /// Propagated data-model error.
    Model(ModelError),
    /// Operator inputs are incompatible (different sources, wrong kinds).
    Incompatible(String),
    /// An operator received no inputs.
    EmptyInput(String),
    /// A named mapping was not found in the repository or cache.
    UnknownMapping(String),
    /// A matcher or workflow was configured inconsistently.
    InvalidConfig(String),
    /// I/O failure during repository persistence.
    Io(std::io::Error),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Model(e) => write!(f, "model error: {e}"),
            CoreError::Incompatible(msg) => write!(f, "incompatible mappings: {msg}"),
            CoreError::EmptyInput(op) => write!(f, "operator `{op}` received no inputs"),
            CoreError::UnknownMapping(name) => write!(f, "unknown mapping `{name}`"),
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Model(e) => Some(e),
            CoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for CoreError {
    fn from(e: ModelError) -> Self {
        CoreError::Model(e)
    }
}

impl From<std::io::Error> for CoreError {
    fn from(e: std::io::Error) -> Self {
        CoreError::Io(e)
    }
}

/// Convenience alias used throughout `moma-core`.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(CoreError::EmptyInput("merge".into())
            .to_string()
            .contains("merge"));
        assert!(CoreError::UnknownMapping("PubSame".into())
            .to_string()
            .contains("PubSame"));
        let m: CoreError = ModelError::UnknownSource("X".into()).into();
        assert!(m.to_string().contains("model error"));
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let m: CoreError = ModelError::UnknownSource("X".into()).into();
        assert!(m.source().is_some());
        assert!(CoreError::Incompatible("x".into()).source().is_none());
    }
}
