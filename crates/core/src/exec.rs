//! Parallel execution configuration for matchers and workflows.
//!
//! This module re-exports the deterministic sharded-execution layer from
//! [`moma_table::exec`] and is the canonical place the rest of the
//! matching stack imports it from. A [`Parallelism`] value travels inside
//! every [`MatchContext`](crate::MatchContext):
//!
//! * **Attribute / multi-attribute matchers** shard their domain values
//!   across threads; every shard probes the shared read-only
//!   [`TrigramIndex`](crate::blocking::TrigramIndex) and scores its
//!   candidates independently, and the per-shard correspondence lists are
//!   concatenated in shard order.
//! * **Workflow steps** execute independent matcher inputs of one step
//!   concurrently, and route the compose operator through the parallel
//!   hash join ([`moma_table::join::par_hash_join`]).
//! * **Index construction**
//!   ([`TrigramIndex::build_par`](crate::blocking::TrigramIndex::build_par))
//!   builds per-shard postings maps merged in shard order.
//!
//! All three are bit-identical to their sequential counterparts — the
//! shards are contiguous input ranges and the merge order is fixed — so
//! determinism guarantees (and their tests) hold at every thread count.
//!
//! The default for a fresh context is [`Parallelism::from_env`]: the
//! `MOMA_THREADS` environment variable when set (`1` forces sequential
//! execution), otherwise one thread per available CPU.
//!
//! ```
//! use moma_core::exec::Parallelism;
//!
//! let seq = Parallelism::sequential();
//! assert!(!seq.is_parallel());
//! let four = Parallelism::new(4);
//! assert_eq!(four.threads, 4);
//! ```

pub use moma_table::exec::{Parallelism, DEFAULT_MIN_SHARD, THREADS_ENV};
