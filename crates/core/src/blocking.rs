//! Candidate generation (blocking) for attribute matchers.
//!
//! Matching large web sources all-pairs is quadratic — the paper's own
//! Google Scholar dataset has 64k entries. This module owns MOMA's two
//! index-based candidate generators:
//!
//! * **Prefix-filtered trigram blocking** ([`TrigramIndex`],
//!   [`Blocking::TrigramPrefix`]): range values are indexed by character
//!   trigram; a domain value probes only its rarest trigrams, whose
//!   number is derived from the similarity threshold so that any range
//!   value clearing the threshold must share at least one probed gram
//!   (standard prefix-filtering argument, transferred from Jaccard to
//!   Dice via `t_j = t_d / (2 - t_d)`). Cheap, near-exact, and usable as
//!   a lossy pre-filter for *non*-trigram measures via a conservative
//!   Dice floor.
//! * **Threshold-exact blocking** ([`ThresholdIndex`],
//!   [`Blocking::Threshold`]): the SimString/CPMerge *T-occurrence*
//!   engine. Values are tokenized into occurrence-tagged q-grams (so the
//!   scoring multisets become sets without losing multiplicities) and
//!   indexed partitioned by gram count
//!   ([`moma_table::SizeBucketedIndex`]); a probe applies the exact
//!   per-measure size window and minimum-overlap bounds of
//!   [`moma_simstring::bounds`] *before* any similarity is computed.
//!   The candidate set provably contains every pair reaching the
//!   matcher's threshold — and typically almost nothing else, so the
//!   expensive scoring stage runs on a fraction of the prefix filter's
//!   candidates.
//! * **Weighted-prefix TF-IDF blocking** ([`TfIdfIndex`]): the max-weight
//!   prefix filter of [`moma_simstring::wbounds`] applied to cached
//!   TF-IDF unit vectors. Range vectors are indexed by token id (one
//!   [`moma_table::BlockPostings`] per token); a probe unions the
//!   postings of only its heaviest tokens — the minimal descending-weight
//!   prefix whose squared mass reaches `1 − t²` — and screens each
//!   candidate against the exact size-window and minimum-shared-token
//!   bounds. Like the T-occurrence engine this is lossless: matcher
//!   results are bit-identical to all-pairs scoring.
//!
//! The posting-list storage — tombstoned removal, amortized compaction —
//! is [`moma_table::GramIndex`] / [`moma_table::SizeBucketedIndex`] /
//! [`moma_table::BlockPostings`]; this module owns tokenization and the
//! threshold arithmetic.
//!
//! ## Read-only shared-index probing
//!
//! A built [`TrigramIndex`] is immutable through `&self`: every probe
//! method only reads the postings, so one index can be probed
//! concurrently from any number of matcher worker threads without locks
//! (`&TrigramIndex` is `Send + Sync`). This is exactly how the parallel
//! attribute matchers use it — the range side is indexed once, then the
//! domain values are sharded across threads (see [`crate::exec`]) and
//! each shard probes the shared index independently. Because probing
//! never mutates, the per-shard candidate sets — and hence the
//! concatenated result — are bit-identical to a sequential run.
//!
//! ## Incremental maintenance
//!
//! For evolving sources the index need not be rebuilt:
//! [`TrigramIndex::insert`], [`TrigramIndex::remove`] (tombstone) and
//! [`TrigramIndex::update`] (surgical posting swap) patch it in place —
//! the machinery behind [`crate::delta`]'s incremental matching.
//! Removal leaves dead posting entries behind until the underlying
//! [`GramIndex`] compacts; probes filter them,
//! so candidate sets are always tombstone-exact, while [`TrigramIndex::df`]
//! may over-count between compactions (harmless for the prefix-filter
//! guarantee, which holds for *any* choice of probed grams).

use moma_simstring::bounds::{qgram_measure_of, QgramMeasure};
use moma_simstring::tokenize::{qgrams, trigrams};
use moma_simstring::{wbounds, SimFn};
use moma_table::exec::Parallelism;
use moma_table::{BlockPostings, FxHashMap, FxHashSet, GramIndex, SizeBucketedIndex};

/// Deduplicated trigram list of a value.
fn unique_trigrams(value: &str) -> Vec<String> {
    let mut grams = trigrams(value);
    grams.sort_unstable();
    grams.dedup();
    grams
}

/// Occurrence-tagged q-grams: the value's padded gram **multiset**
/// rendered as a duplicate-free list by suffixing the `k`-th repeat of
/// a gram with `\u{0}k` (NUL cannot appear in normalized text). Set
/// intersection of two tagged lists equals the multiset intersection of
/// the raw gram profiles, and the list length equals the multiset
/// size — exactly the quantities the q-gram scorers in
/// [`moma_simstring::ngram`] use, which is what makes the
/// [`ThresholdIndex`] bounds exact. Runs on every index insert, update
/// and probe, so grams are tagged in place — no per-gram reallocation
/// for the (overwhelmingly common) non-repeated ones.
pub(crate) fn tagged_qgrams(value: &str, q: usize) -> Vec<String> {
    use std::fmt::Write as _;
    let mut grams = qgrams(value, q);
    grams.sort_unstable();
    let mut run = 0usize;
    for i in 1..grams.len() {
        // The untagged base of the current repeat streak sits `run + 1`
        // slots back (everything between it and `i` is already tagged).
        if grams[i] == grams[i - run - 1] {
            run += 1;
            let _ = write!(grams[i], "\u{0}{run}");
        } else {
            run = 0;
        }
    }
    grams
}

/// Inverted trigram index over a set of `(id, value)` pairs.
#[derive(Debug, Default, Clone)]
pub struct TrigramIndex {
    inner: GramIndex,
}

impl TrigramIndex {
    /// Build the index.
    pub fn build<'a>(values: impl IntoIterator<Item = (u32, &'a str)>) -> Self {
        let mut idx = Self::default();
        for (id, value) in values {
            idx.insert(id, value);
        }
        idx
    }

    /// Build the index by sharding `values` across threads: each shard
    /// builds a private postings map, and the maps are merged in shard
    /// order. Per-gram posting lists therefore hold ids in input order —
    /// exactly as [`TrigramIndex::build`] produces them — so the parallel
    /// build is observationally identical to the sequential one.
    pub fn build_par<V: AsRef<str> + Sync>(values: &[(u32, V)], par: &Parallelism) -> Self {
        let mut parts = par
            .run_sharded(values, |shard| {
                let mut idx = Self::default();
                for (id, v) in shard {
                    idx.insert(*id, v.as_ref());
                }
                idx
            })
            .into_iter();
        let mut merged = parts.next().unwrap_or_default();
        for part in parts {
            merged.inner.absorb(part.inner);
        }
        merged
    }

    /// Index one value. Returns `false` (a no-op) if `id` is already
    /// live — use [`TrigramIndex::update`] to change an indexed value.
    pub fn insert(&mut self, id: u32, value: &str) -> bool {
        self.inner.insert(id, &unique_trigrams(value))
    }

    /// Tombstone an indexed value (see module docs); returns whether the
    /// id was live. O(1) amortized — dead posting entries are swept by
    /// the underlying index once they exceed a fixed fraction of the
    /// live population.
    pub fn remove(&mut self, id: u32) -> bool {
        self.inner.remove(id)
    }

    /// Replace a live value in place. The caller supplies the old value
    /// (the index stores no values); its postings are removed
    /// surgically, the new value's appended. Returns `false` if `id` is
    /// not live.
    pub fn update(&mut self, id: u32, old_value: &str, new_value: &str) -> bool {
        self.inner
            .replace(id, &unique_trigrams(old_value), &unique_trigrams(new_value))
    }

    /// Sweep tombstoned entries out of the posting lists now.
    pub fn compact(&mut self) {
        self.inner.compact();
    }

    /// Override the underlying auto-compaction policy (builder style);
    /// see [`GramIndex::with_compaction`].
    pub fn with_compaction(mut self, ratio: f64, floor: usize) -> Self {
        self.inner = self.inner.with_compaction(ratio, floor);
        self
    }

    /// Number of unswept tombstones.
    pub fn tombstone_count(&self) -> usize {
        self.inner.tombstone_count()
    }

    /// Whether `id` is indexed and not removed.
    pub fn is_live(&self, id: u32) -> bool {
        self.inner.is_live(id)
    }

    /// Number of live indexed *values* (not postings): every `(id,
    /// value)` pair passed to `build` counts once, including values that
    /// yield no trigrams and can therefore never be returned by
    /// [`TrigramIndex::candidates`].
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether no values are indexed. Note an index built only from
    /// gram-less values (e.g. empty strings) is *not* empty by this
    /// definition even though its postings are.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Document frequency of a gram (may over-count by unswept
    /// tombstones; exact after [`TrigramIndex::compact`]).
    pub fn df(&self, gram: &str) -> usize {
        self.inner.df(gram)
    }

    /// Candidate range ids for `query` under Dice threshold
    /// `dice_threshold`: union of the postings of the query's rarest
    /// `k = ⌊(1 − t_j)·|G|⌋ + 1` grams (`t_j` the Jaccard equivalent).
    ///
    /// A query producing no trigrams returns exactly the indexed values
    /// that also produced none: two empty gram multisets are identical
    /// (trigram Dice 1.0), so those — and only those — can clear any
    /// threshold.
    pub fn candidates(&self, query: &str, dice_threshold: f64) -> FxHashSet<u32> {
        let mut grams = unique_trigrams(query);
        if grams.is_empty() {
            return self.inner.gramless_ids();
        }
        let t_d = dice_threshold.clamp(0.0, 1.0);
        let t_j = if t_d >= 1.0 { 1.0 } else { t_d / (2.0 - t_d) };
        let k = (((1.0 - t_j) * grams.len() as f64).floor() as usize + 1).min(grams.len());
        self.inner.candidates(&mut grams, k)
    }

    /// Live ids whose values produced no trigrams (see
    /// [`TrigramIndex::candidates`] on the gramless edge).
    pub fn gramless_ids(&self) -> FxHashSet<u32> {
        self.inner.gramless_ids()
    }

    /// All live ids as candidates (used when the caller disables blocking
    /// for one probe) — including values that produced no trigrams, so
    /// this always has exactly [`TrigramIndex::len`] entries.
    pub fn all_ids(&self) -> FxHashSet<u32> {
        self.inner.all_ids()
    }
}

/// Index over values tokenized as occurrence-tagged q-grams, probed
/// with the exact threshold bounds of a fixed
/// [`QgramMeasure`] — the *T-occurrence*
/// candidate engine behind [`Blocking::Threshold`].
///
/// The measure, gram length `q` and similarity threshold are baked in
/// at construction: every probe applies
/// [`QgramMeasure::size_window`] to restrict the size buckets consulted
/// and [`QgramMeasure::min_overlap`] as the per-candidate count filter,
/// so [`ThresholdIndex::candidates`] returns a (typically tight)
/// superset of exactly the values whose similarity to the query reaches
/// the threshold — **no true match is ever pruned**. Like
/// [`TrigramIndex`] it is read-only-probeable from any number of
/// threads and incrementally maintainable (insert / tombstoned remove /
/// surgical update / compact), which is what lets the delta engine keep
/// one on each side of a mapping.
#[derive(Debug, Clone)]
pub struct ThresholdIndex {
    inner: SizeBucketedIndex,
    measure: QgramMeasure,
    q: usize,
    threshold: f64,
}

impl ThresholdIndex {
    /// Empty index for `measure` over `q`-grams at `threshold` (> 0 —
    /// at 0 nothing can be pruned and the caller should not block).
    pub fn new(measure: QgramMeasure, q: usize, threshold: f64) -> Self {
        debug_assert!(q >= 1, "q-gram length must be at least 1");
        debug_assert!(threshold > 0.0, "threshold blocking needs t > 0");
        Self {
            inner: SizeBucketedIndex::new(),
            measure,
            q,
            threshold,
        }
    }

    /// Build the index.
    pub fn build<'a>(
        measure: QgramMeasure,
        q: usize,
        threshold: f64,
        values: impl IntoIterator<Item = (u32, &'a str)>,
    ) -> Self {
        let mut idx = Self::new(measure, q, threshold);
        for (id, value) in values {
            idx.insert(id, value);
        }
        idx
    }

    /// Build the index by sharding `values` across threads (merged in
    /// shard order; observationally identical to [`ThresholdIndex::build`]).
    pub fn build_par<V: AsRef<str> + Sync>(
        measure: QgramMeasure,
        q: usize,
        threshold: f64,
        values: &[(u32, V)],
        par: &Parallelism,
    ) -> Self {
        let mut parts = par
            .run_sharded(values, |shard| {
                let mut idx = Self::new(measure, q, threshold);
                for (id, v) in shard {
                    idx.insert(*id, v.as_ref());
                }
                idx
            })
            .into_iter();
        let mut merged = parts
            .next()
            .unwrap_or_else(|| Self::new(measure, q, threshold));
        for part in parts {
            merged.inner.absorb(part.inner);
        }
        merged
    }

    fn grams(&self, value: &str) -> Vec<String> {
        tagged_qgrams(value, self.q)
    }

    /// Index one value. Returns `false` (a no-op) if `id` is already
    /// live — use [`ThresholdIndex::update`] to change an indexed value.
    pub fn insert(&mut self, id: u32, value: &str) -> bool {
        self.inner.insert(id, &self.grams(value))
    }

    /// Tombstone an indexed value; returns whether the id was live.
    pub fn remove(&mut self, id: u32) -> bool {
        self.inner.remove(id)
    }

    /// Replace a live value in place (the caller supplies the old value;
    /// the index stores none). Returns `false` if `id` is not live.
    pub fn update(&mut self, id: u32, old_value: &str, new_value: &str) -> bool {
        self.inner
            .replace(id, &self.grams(old_value), &self.grams(new_value))
    }

    /// Sweep tombstoned entries out of the posting buckets now.
    pub fn compact(&mut self) {
        self.inner.compact();
    }

    /// Override the underlying auto-compaction policy (builder style);
    /// see [`SizeBucketedIndex::with_compaction`].
    pub fn with_compaction(mut self, ratio: f64, floor: usize) -> Self {
        self.inner = self.inner.with_compaction(ratio, floor);
        self
    }

    /// Number of unswept tombstones.
    pub fn tombstone_count(&self) -> usize {
        self.inner.tombstone_count()
    }

    /// Whether `id` is indexed and not removed.
    pub fn is_live(&self, id: u32) -> bool {
        self.inner.is_live(id)
    }

    /// Number of live indexed values (gramless ones included).
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether no values are indexed.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// The measure/q/threshold configuration this index prunes for.
    pub fn config(&self) -> (QgramMeasure, usize, f64) {
        (self.measure, self.q, self.threshold)
    }

    /// All live ids (diagnostics; a probe never needs this).
    pub fn all_ids(&self) -> FxHashSet<u32> {
        self.inner.all_ids()
    }

    /// Candidate ids for `query`: every live value whose similarity to
    /// `query` under the index's measure reaches the index's threshold
    /// is returned (plus only such near-misses as also clear the exact
    /// count bound). A gramless query returns exactly the gramless
    /// values — the only ones it can match (similarity 1.0).
    pub fn candidates(&self, query: &str) -> FxHashSet<u32> {
        let grams = self.grams(query);
        if grams.is_empty() {
            return if self.threshold <= 1.0 {
                self.inner.gramless_ids()
            } else {
                FxHashSet::default()
            };
        }
        let (lo, hi) = self.measure.size_window(self.threshold, grams.len());
        if lo > hi {
            return FxHashSet::default();
        }
        let clamp = |s: usize| s.min(u32::MAX as usize) as u32;
        let (x, t, m) = (grams.len(), self.threshold, self.measure);
        self.inner
            .candidates(&grams, clamp(lo), clamp(hi), &|cand_size| {
                clamp(m.min_overlap(t, x, cand_size as usize))
            })
    }
}

/// Weighted-prefix candidate index for TF-IDF cosine — the exact
/// `Blocking::Threshold` engine for corpus-weighted scoring.
///
/// The index stores no strings and owns no corpus: it is built over the
/// *cached unit vectors* ([`moma_simstring::TfIdfCorpus::vector`]) of
/// the range side, with the corpus frozen for the duration of the match
/// (the attribute matcher builds it from both columns first). Each
/// token id owns a [`BlockPostings`] list of the indexed ids whose
/// vectors contain it; per-id metadata (token count, maximum weight)
/// backs the candidate-side screens.
///
/// A probe sorts the query's weights descending and consults only the
/// minimal prefix [`wbounds::min_prefix_len`] demands; every id merged
/// from those postings is screened against [`wbounds::size_window`] and
/// [`wbounds::min_shared_tokens`] before it is admitted. All three
/// bounds are exact (no false dismissals — see the `wbounds` property
/// tests), so scoring the surviving candidates reproduces all-pairs
/// results bit-identically.
///
/// Maintenance mirrors the other index families: tombstoned
/// [`TfIdfIndex::remove`], surgical [`TfIdfIndex::update`] (the caller
/// supplies the old vector), amortized [`TfIdfIndex::compact`]. Note
/// the vectors must come from the index's frozen corpus — if the corpus
/// itself changes (document frequencies shift), the index must be
/// rebuilt, which is why the delta engine treats TF-IDF matchers as
/// non-incremental.
#[derive(Debug, Clone)]
pub struct TfIdfIndex {
    threshold: f64,
    /// `postings[token id]` = ids of indexed vectors containing it.
    postings: Vec<BlockPostings>,
    /// Live id → (token count, max weight) of its non-empty vector.
    meta: FxHashMap<u32, (u32, f64)>,
    /// Live ids whose vectors are empty (token-free values) — the exact
    /// match set of an empty query (cosine 1.0), unreachable via
    /// postings.
    empties: FxHashSet<u32>,
    /// Removed ids whose posting entries have not been swept yet.
    tombstones: FxHashSet<u32>,
}

impl TfIdfIndex {
    /// Empty index pruning for TF-IDF cosine at `threshold` (> 0 — at 0
    /// nothing can be pruned and the caller should score all pairs).
    pub fn new(threshold: f64) -> Self {
        debug_assert!(threshold > 0.0, "TF-IDF blocking needs t > 0");
        Self {
            threshold,
            postings: Vec::new(),
            meta: FxHashMap::default(),
            empties: FxHashSet::default(),
            tombstones: FxHashSet::default(),
        }
    }

    /// Build from `(id, cached vector)` pairs.
    pub fn build<'a>(
        threshold: f64,
        vectors: impl IntoIterator<Item = (u32, &'a [(u32, f64)])>,
    ) -> Self {
        let mut idx = Self::new(threshold);
        for (id, v) in vectors {
            idx.insert(id, v);
        }
        idx
    }

    fn posting_mut(&mut self, tid: u32) -> &mut BlockPostings {
        let tid = tid as usize;
        if tid >= self.postings.len() {
            self.postings.resize_with(tid + 1, BlockPostings::new);
        }
        &mut self.postings[tid]
    }

    /// Index one value's cached vector. Returns `false` (a no-op) if
    /// `id` is already live — use [`TfIdfIndex::update`] to change an
    /// indexed vector.
    pub fn insert(&mut self, id: u32, vector: &[(u32, f64)]) -> bool {
        if self.is_live(id) {
            return false;
        }
        if self.tombstones.contains(&id) {
            // Re-inserting a removed id must not resurrect its stale
            // postings; purge them first.
            self.compact();
        }
        if vector.is_empty() {
            self.empties.insert(id);
            return true;
        }
        let maxw = vector.iter().map(|e| e.1).fold(0.0, f64::max);
        self.meta.insert(id, (vector.len() as u32, maxw));
        for &(tid, _) in vector {
            self.posting_mut(tid).insert(id);
        }
        true
    }

    /// Tombstone a live id; returns whether it was live. Sweeps once
    /// tombstones exceed a quarter of the live population.
    pub fn remove(&mut self, id: u32) -> bool {
        if self.empties.remove(&id) {
            return true;
        }
        if self.meta.remove(&id).is_none() {
            return false;
        }
        self.tombstones.insert(id);
        if self.tombstones.len() >= 16 && self.tombstones.len() * 4 > self.meta.len() {
            self.compact();
        }
        true
    }

    /// Replace a live vector in place. The caller supplies the old
    /// vector (the index stores none); its postings are removed
    /// surgically, the new vector's appended. Returns `false` if `id`
    /// is not live.
    pub fn update(&mut self, id: u32, old: &[(u32, f64)], new: &[(u32, f64)]) -> bool {
        if !self.is_live(id) {
            return false;
        }
        for &(tid, _) in old {
            if let Some(p) = self.postings.get_mut(tid as usize) {
                p.remove(id);
            }
        }
        self.meta.remove(&id);
        self.empties.remove(&id);
        if new.is_empty() {
            self.empties.insert(id);
            return true;
        }
        let maxw = new.iter().map(|e| e.1).fold(0.0, f64::max);
        self.meta.insert(id, (new.len() as u32, maxw));
        for &(tid, _) in new {
            self.posting_mut(tid).insert(id);
        }
        true
    }

    /// Sweep tombstoned entries out of the posting lists now.
    pub fn compact(&mut self) {
        if self.tombstones.is_empty() {
            return;
        }
        let dead = std::mem::take(&mut self.tombstones);
        for p in &mut self.postings {
            if !p.is_empty() {
                p.retain(|id| !dead.contains(&id));
            }
        }
    }

    /// Number of unswept tombstones.
    pub fn tombstone_count(&self) -> usize {
        self.tombstones.len()
    }

    /// Whether `id` is indexed and not removed.
    pub fn is_live(&self, id: u32) -> bool {
        self.meta.contains_key(&id) || self.empties.contains(&id)
    }

    /// Number of live indexed vectors (empty ones included).
    pub fn len(&self) -> usize {
        self.meta.len() + self.empties.len()
    }

    /// Whether no vectors are indexed.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty() && self.empties.is_empty()
    }

    /// The threshold this index prunes for.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Candidate ids for a query vector: every live vector whose cosine
    /// with `query` reaches the index threshold is returned (plus only
    /// such near-misses as also clear the exact weighted bounds). An
    /// empty query returns exactly the empty-vector values — the only
    /// ones it can match (cosine 1.0).
    pub fn candidates(&self, query: &[(u32, f64)]) -> FxHashSet<u32> {
        if query.is_empty() {
            return if self.threshold <= 1.0 {
                self.empties.clone()
            } else {
                FxHashSet::default()
            };
        }
        // Heaviest-first view of the query (ties broken by token id so
        // probes are deterministic).
        let mut by_weight: Vec<(f64, u32)> = query.iter().map(|&(id, w)| (w, id)).collect();
        by_weight.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let weights: Vec<f64> = by_weight.iter().map(|e| e.0).collect();
        let k = wbounds::min_prefix_len(&weights, self.threshold);
        let maxw_q = weights[0];
        let (lo, _) = wbounds::size_window(self.threshold, maxw_q);
        let mut out = FxHashSet::default();
        for &(_, tid) in by_weight.iter().take(k) {
            let Some(list) = self.postings.get(tid as usize) else {
                continue;
            };
            for id in list.iter() {
                if out.contains(&id) || self.tombstones.contains(&id) {
                    continue;
                }
                let (size, maxw_c) = self.meta[&id];
                let size = size as usize;
                if size < lo {
                    continue;
                }
                // Shared tokens are capped by both vector lengths.
                let need = wbounds::min_shared_tokens(self.threshold, maxw_q, maxw_c);
                if size.min(query.len()) < need {
                    continue;
                }
                out.insert(id);
            }
        }
        out
    }
}

/// A built candidate index of either family, with its probe parameters
/// baked in — the runtime form of a resolved [`Blocking`] choice,
/// shared by full matcher execution and the incremental delta engine
/// (both sides of a [`crate::delta::DeltaMatchState`] hold one).
#[derive(Debug, Clone)]
pub enum CandidateIndex {
    /// Prefix-filtered trigram index probed at a fixed Dice bound
    /// (the matcher threshold when scoring trigram Dice — near-exact —
    /// or a conservative floor for other measures — lossy by design).
    Prefix {
        /// The trigram index over the indexed side.
        index: TrigramIndex,
        /// Dice bound every probe uses.
        dice_bound: f64,
    },
    /// Threshold-exact T-occurrence index (bounds baked in).
    Threshold(ThresholdIndex),
}

impl CandidateIndex {
    /// Candidate ids for one probe value.
    pub fn candidates(&self, query: &str) -> FxHashSet<u32> {
        match self {
            CandidateIndex::Prefix { index, dice_bound } => index.candidates(query, *dice_bound),
            CandidateIndex::Threshold(index) => index.candidates(query),
        }
    }

    /// Index one value (delta maintenance).
    pub fn insert(&mut self, id: u32, value: &str) -> bool {
        match self {
            CandidateIndex::Prefix { index, .. } => index.insert(id, value),
            CandidateIndex::Threshold(index) => index.insert(id, value),
        }
    }

    /// Tombstone an indexed value (delta maintenance).
    pub fn remove(&mut self, id: u32) -> bool {
        match self {
            CandidateIndex::Prefix { index, .. } => index.remove(id),
            CandidateIndex::Threshold(index) => index.remove(id),
        }
    }

    /// Replace a live value in place (delta maintenance).
    pub fn update(&mut self, id: u32, old_value: &str, new_value: &str) -> bool {
        match self {
            CandidateIndex::Prefix { index, .. } => index.update(id, old_value, new_value),
            CandidateIndex::Threshold(index) => index.update(id, old_value, new_value),
        }
    }
}

/// Candidate-generation strategy of an attribute matcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Blocking {
    /// Score every domain×range pair. Exact, quadratic.
    AllPairs,
    /// Prefix-filtered trigram blocking (see module docs). Near-exact for
    /// trigram-Dice scoring at thresholds ≥ ~0.4; lossy (conservative
    /// Dice floor) for other measures; orders of magnitude fewer
    /// comparisons than all-pairs.
    TrigramPrefix,
    /// Threshold-exact blocking (the default): for q-gram measures
    /// (trigram Dice, `qgram:*`, `qgramjaccard:*`, `qgramcosine:*`,
    /// `qgramoverlap:*`) the matcher threshold itself prunes candidates
    /// *before* scoring via the T-occurrence engine, and for TF-IDF
    /// cosine via the weighted-prefix engine ([`TfIdfIndex`]) — zero
    /// loss of matches either way. For every other configuration —
    /// non-q-gram fixed measures, a custom candidate floor, or a
    /// threshold of 0 — it transparently falls back: to all-pairs
    /// (exact) when no sound bound exists, or to the prefix filter when
    /// a candidate floor explicitly opts into lossy pruning. Matcher
    /// results under this variant are therefore always identical to
    /// [`Blocking::AllPairs`].
    #[default]
    Threshold,
}

impl Blocking {
    /// The best self-configuring choice for a similarity function:
    /// [`Blocking::Threshold`] when the exact bounds apply (q-gram
    /// family), otherwise [`Blocking::TrigramPrefix`] (lossy floor-based
    /// pruning — the historical default of scripts and the CLI, which
    /// prefer speed over exactness for non-q-gram measures).
    pub fn auto_for(sim: &SimFn) -> Blocking {
        if qgram_measure_of(sim).is_some() {
            Blocking::Threshold
        } else {
            Blocking::TrigramPrefix
        }
    }

    /// Parse a CLI/config name. Accepted (case-insensitive):
    /// `all-pairs`/`allpairs`, `trigram-prefix`/`prefix`, `threshold`.
    pub fn parse(name: &str) -> Option<Blocking> {
        match name.to_ascii_lowercase().as_str() {
            "all-pairs" | "allpairs" => Some(Blocking::AllPairs),
            "trigram-prefix" | "trigramprefix" | "prefix" => Some(Blocking::TrigramPrefix),
            "threshold" => Some(Blocking::Threshold),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_simstring::ngram::trigram;

    pub(super) fn titles() -> Vec<(u32, &'static str)> {
        vec![
            (0, "A formal perspective on the view selection problem"),
            (1, "Generic Schema Matching with Cupid"),
            (2, "Potter's Wheel: An Interactive Data Cleaning System"),
            (
                3,
                "Robust and Efficient Fuzzy Match for Online Data Cleaning",
            ),
            (4, "A formal perspective on the view selection problem."),
        ]
    }

    #[test]
    fn identical_value_is_candidate() {
        let idx = TrigramIndex::build(titles());
        let c = idx.candidates("A formal perspective on the view selection problem", 0.8);
        assert!(c.contains(&0));
        assert!(c.contains(&4));
    }

    #[test]
    fn typo_variant_is_candidate() {
        let idx = TrigramIndex::build(titles());
        let c = idx.candidates("Generic Schema Matchng with Cupid", 0.8);
        assert!(c.contains(&1));
    }

    #[test]
    fn blocking_recall_vs_allpairs() {
        // Every pair above the threshold must be generated as a candidate.
        let data = titles();
        let idx = TrigramIndex::build(data.clone());
        let threshold = 0.5;
        for (_, q) in &data {
            let cands = idx.candidates(q, threshold);
            for (id, v) in &data {
                if trigram(q, v) >= threshold {
                    assert!(cands.contains(id), "missed {v} for query {q}");
                }
            }
        }
    }

    #[test]
    fn unrelated_value_can_be_pruned() {
        let idx = TrigramIndex::build(titles());
        let c = idx.candidates("zzzz qqqq xxxx", 0.8);
        assert!(c.is_empty());
    }

    #[test]
    fn empty_query_no_candidates() {
        let idx = TrigramIndex::build(titles());
        assert!(idx.candidates("", 0.5).is_empty());
        assert!(idx.candidates("!!", 0.5).is_empty());
    }

    #[test]
    fn df_and_len() {
        let idx = TrigramIndex::build(titles());
        assert_eq!(idx.len(), 5);
        assert!(!idx.is_empty());
        assert!(idx.df("##a") >= 2); // two titles start with 'a'
        assert_eq!(idx.df("zzz"), 0);
    }

    #[test]
    fn all_ids_complete() {
        let idx = TrigramIndex::build(titles());
        assert_eq!(idx.all_ids().len(), 5);
    }

    #[test]
    fn len_counts_values_not_postings() {
        // Two values share every trigram; postings are per-gram lists,
        // but len()/is_empty() count indexed *values*.
        let idx = TrigramIndex::build([(0, "abc"), (1, "abc")]);
        assert_eq!(idx.len(), 2);
        assert!(!idx.is_empty());
        assert_eq!(idx.df("abc"), 2);
    }

    #[test]
    fn empty_string_values_are_counted_but_never_candidates() {
        // "" and "!!" normalize to nothing: no trigrams, so they can
        // never be candidates — but they are still indexed values.
        let idx = TrigramIndex::build([(0, ""), (1, "!!"), (2, "data")]);
        assert_eq!(idx.len(), 3);
        assert!(!idx.is_empty());
        // all_ids still reports every indexed value.
        let all = idx.all_ids();
        assert_eq!(all.len(), 3);
        assert!(all.contains(&0) && all.contains(&1) && all.contains(&2));
        // Probing anything never surfaces the gram-less values.
        for t in [0.3, 0.8] {
            assert!(!idx.candidates("data", t).contains(&0));
            assert!(!idx.candidates("data", t).contains(&1));
        }
        // An index of only gram-less values: non-empty by len, empty postings.
        let gramless = TrigramIndex::build([(7, "")]);
        assert_eq!(gramless.len(), 1);
        assert!(!gramless.is_empty());
        assert!(gramless.candidates("anything", 0.5).is_empty());
        assert_eq!(gramless.all_ids().len(), 1);
    }

    #[test]
    fn short_values_get_padded_trigrams() {
        // Values shorter than 3 chars still produce padded grams
        // ("a" -> ##a, #a#, a## ; "ab" -> ##a, #ab, ab#, b##), so they
        // are reachable candidates — the <3-char edge of `trigrams`.
        let idx = TrigramIndex::build([(0, "a"), (1, "ab")]);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.df("##a"), 2);
        assert_eq!(idx.df("#a#"), 1);
        assert!(idx.candidates("a", 0.9).contains(&0));
        assert!(idx.candidates("ab", 0.9).contains(&1));
        assert_eq!(idx.all_ids().len(), 2);
    }

    #[test]
    fn parallel_build_is_identical() {
        let data = titles();
        let with_edges: Vec<(u32, &str)> = data
            .iter()
            .copied()
            .chain([(90, ""), (91, "ab"), (92, "!!")])
            .collect();
        let seq = TrigramIndex::build(with_edges.iter().copied());
        for threads in [1usize, 2, 8] {
            let par = Parallelism::new(threads).with_min_shard_size(1);
            let p = TrigramIndex::build_par(&with_edges, &par);
            assert_eq!(p.len(), seq.len(), "threads={threads}");
            assert_eq!(p.all_ids(), seq.all_ids());
            // Same postings: same df for every gram, and candidate sets
            // (with identical insertion order) for every probe.
            for (_, v) in &with_edges {
                for g in moma_simstring::tokenize::trigrams(v) {
                    assert_eq!(p.df(&g), seq.df(&g), "gram {g}");
                }
                let cp: Vec<u32> = p.candidates(v, 0.5).into_iter().collect();
                let cs: Vec<u32> = seq.candidates(v, 0.5).into_iter().collect();
                assert_eq!(cp, cs, "probe {v} threads={threads}");
            }
        }
    }

    #[test]
    fn lower_threshold_probes_more() {
        let idx = TrigramIndex::build(titles());
        let tight = idx.candidates("data cleaning", 0.9);
        let loose = idx.candidates("data cleaning", 0.3);
        assert!(loose.len() >= tight.len());
        // Both "data cleaning" titles reachable at a loose threshold.
        assert!(loose.contains(&2) && loose.contains(&3));
    }

    #[test]
    fn incremental_maintenance_matches_rebuild() {
        let mut idx = TrigramIndex::build(titles());
        // Remove one, update one, add one.
        assert!(idx.remove(2));
        assert!(!idx.remove(2));
        assert!(idx.update(
            1,
            "Generic Schema Matching with Cupid",
            "Reference Reconciliation in Complex Spaces",
        ));
        assert!(idx.insert(5, "Data Cleaning: Problems and Current Approaches"));
        assert!(!idx.insert(5, "duplicate insert is rejected"));
        idx.compact();

        let fresh = TrigramIndex::build([
            (0, "A formal perspective on the view selection problem"),
            (1, "Reference Reconciliation in Complex Spaces"),
            (
                3,
                "Robust and Efficient Fuzzy Match for Online Data Cleaning",
            ),
            (4, "A formal perspective on the view selection problem."),
            (5, "Data Cleaning: Problems and Current Approaches"),
        ]);
        assert_eq!(idx.len(), fresh.len());
        assert_eq!(idx.all_ids(), fresh.all_ids());
        for q in [
            "view selection",
            "reference reconciliation",
            "data cleaning",
            "fuzzy match",
        ] {
            assert_eq!(
                idx.candidates(q, 0.4),
                fresh.candidates(q, 0.4),
                "probe {q}"
            );
        }
    }

    #[test]
    fn tombstoned_ids_never_surface_before_compaction() {
        let mut idx = TrigramIndex::build(titles());
        idx.remove(0);
        assert!(idx.tombstone_count() > 0 || idx.len() == 4);
        let c = idx.candidates("A formal perspective on the view selection problem", 0.4);
        assert!(!c.contains(&0));
        assert!(c.contains(&4));
        assert!(!idx.all_ids().contains(&0));
        assert!(!idx.is_live(0) && idx.is_live(4));
    }
}

#[cfg(test)]
mod threshold_tests {
    use super::*;
    use moma_simstring::ngram::{qgram_cosine, qgram_dice, qgram_jaccard, qgram_overlap};

    fn eval(m: QgramMeasure, a: &str, b: &str, q: usize) -> f64 {
        match m {
            QgramMeasure::Dice => qgram_dice(a, b, q),
            QgramMeasure::Jaccard => qgram_jaccard(a, b, q),
            QgramMeasure::Cosine => qgram_cosine(a, b, q),
            QgramMeasure::Overlap => qgram_overlap(a, b, q),
        }
    }

    #[test]
    fn tagged_qgrams_encode_multiplicity() {
        // "aaaa" -> ##a #aa aaa aaa aa# a## : 6 grams, "aaa" twice.
        let g = tagged_qgrams("aaaa", 3);
        assert_eq!(g.len(), 6);
        assert!(g.contains(&"aaa".to_owned()));
        assert!(g.contains(&"aaa\u{0}1".to_owned()));
        // All entries unique (the whole point of tagging).
        let unique: FxHashSet<&String> = g.iter().collect();
        assert_eq!(unique.len(), g.len());
        // A long repeat streak tags every occurrence distinctly.
        let long = tagged_qgrams(&"a".repeat(15), 3);
        assert_eq!(long.len(), 17);
        let unique: FxHashSet<&String> = long.iter().collect();
        assert_eq!(unique.len(), long.len());
        // Intersection of tagged sets == multiset intersection.
        let h = tagged_qgrams("aaa", 3); // ##a #aa aaa aa# a## : 5 grams
        let shared = g.iter().filter(|x| h.contains(x)).count();
        let expected = qgram_dice("aaaa", "aaa", 3) * (g.len() + h.len()) as f64 / 2.0;
        assert_eq!(shared as f64, expected.round());
        assert!(tagged_qgrams("", 3).is_empty());
    }

    #[test]
    fn titles_threshold_probe_is_exact_superset() {
        let data = super::tests::titles();
        for m in moma_simstring::bounds::ALL_MEASURES {
            for t in [0.5, 0.8] {
                let idx = ThresholdIndex::build(m, 3, t, data.iter().copied());
                for (_, q) in &data {
                    let cands = idx.candidates(q);
                    for (id, v) in &data {
                        if eval(m, q, v, 3) >= t {
                            assert!(cands.contains(id), "{m:?} t={t}: missed `{v}` for `{q}`");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn prunes_more_than_prefix_filter_here() {
        // Not a theorem, but on this data the exact filter is strictly
        // tighter than the prefix union for a selective probe.
        let data = super::tests::titles();
        let prefix = TrigramIndex::build(data.iter().copied());
        let exact = ThresholdIndex::build(QgramMeasure::Dice, 3, 0.8, data.iter().copied());
        let q = "A formal perspective on the view selection problem";
        assert!(exact.candidates(q).len() <= prefix.candidates(q, 0.8).len());
        // The unrelated probe is pruned to nothing by both.
        assert!(exact.candidates("zzzz qqqq xxxx").is_empty());
    }

    #[test]
    fn gramless_query_matches_gramless_values_only() {
        let idx = ThresholdIndex::build(
            QgramMeasure::Dice,
            3,
            0.7,
            [(0, ""), (1, "!!"), (2, "data")],
        );
        // "" and "!!" normalize to no grams: they match each other at
        // similarity 1.0 and nothing else.
        for q in ["", "?!"] {
            let c = idx.candidates(q);
            assert_eq!(c, [0u32, 1].into_iter().collect::<FxHashSet<_>>());
        }
        assert!(!idx.candidates("data").contains(&0));
        assert!(idx.candidates("data").contains(&2));
    }

    #[test]
    fn maintenance_matches_rebuild() {
        let mut idx = ThresholdIndex::build(QgramMeasure::Dice, 3, 0.5, super::tests::titles());
        assert!(idx.remove(2));
        assert!(!idx.remove(2));
        assert!(idx.update(
            1,
            "Generic Schema Matching with Cupid",
            "Reference Reconciliation in Complex Spaces",
        ));
        assert!(idx.insert(5, "Data Cleaning: Problems and Current Approaches"));
        assert!(!idx.insert(5, "duplicate insert is rejected"));
        idx.compact();
        let fresh = ThresholdIndex::build(
            QgramMeasure::Dice,
            3,
            0.5,
            [
                (0, "A formal perspective on the view selection problem"),
                (1, "Reference Reconciliation in Complex Spaces"),
                (
                    3,
                    "Robust and Efficient Fuzzy Match for Online Data Cleaning",
                ),
                (4, "A formal perspective on the view selection problem."),
                (5, "Data Cleaning: Problems and Current Approaches"),
            ],
        );
        assert_eq!(idx.len(), fresh.len());
        assert_eq!(idx.all_ids(), fresh.all_ids());
        for q in [
            "view selection",
            "reference reconciliation",
            "data cleaning problems",
            "fuzzy match online",
        ] {
            assert_eq!(idx.candidates(q), fresh.candidates(q), "probe {q}");
        }
    }

    #[test]
    fn parallel_build_is_identical() {
        let data: Vec<(u32, &str)> = super::tests::titles()
            .into_iter()
            .chain([(90, ""), (91, "ab"), (92, "!!")])
            .collect();
        let seq = ThresholdIndex::build(QgramMeasure::Jaccard, 3, 0.4, data.iter().copied());
        for threads in [1usize, 2, 8] {
            let par = Parallelism::new(threads).with_min_shard_size(1);
            let p = ThresholdIndex::build_par(QgramMeasure::Jaccard, 3, 0.4, &data, &par);
            assert_eq!(p.len(), seq.len(), "threads={threads}");
            for (_, v) in &data {
                assert_eq!(p.candidates(v), seq.candidates(v), "probe {v}");
            }
        }
    }

    #[test]
    fn candidate_index_dispatch() {
        let data = super::tests::titles();
        let mut prefix = CandidateIndex::Prefix {
            index: TrigramIndex::build(data.iter().copied()),
            dice_bound: 0.6,
        };
        let mut exact = CandidateIndex::Threshold(ThresholdIndex::build(
            QgramMeasure::Dice,
            3,
            0.6,
            data.iter().copied(),
        ));
        let q = "A formal perspective on the view selection problem";
        for idx in [&mut prefix, &mut exact] {
            assert!(idx.candidates(q).contains(&0));
            assert!(idx.remove(0));
            assert!(!idx.candidates(q).contains(&0));
            assert!(idx.insert(0, q));
            assert!(idx.update(0, q, "something else entirely"));
            assert!(!idx.candidates(q).contains(&0));
        }
    }

    #[test]
    fn blocking_helpers() {
        assert_eq!(Blocking::default(), Blocking::Threshold);
        assert_eq!(Blocking::auto_for(&SimFn::Trigram), Blocking::Threshold);
        assert_eq!(
            Blocking::auto_for(&SimFn::QgramJaccard(2)),
            Blocking::Threshold
        );
        assert_eq!(Blocking::auto_for(&SimFn::Jaro), Blocking::TrigramPrefix);
        assert_eq!(Blocking::parse("threshold"), Some(Blocking::Threshold));
        assert_eq!(Blocking::parse("ALL-PAIRS"), Some(Blocking::AllPairs));
        assert_eq!(Blocking::parse("prefix"), Some(Blocking::TrigramPrefix));
        assert_eq!(Blocking::parse("nope"), None);
    }
}

#[cfg(test)]
mod tfidf_tests {
    use super::*;
    use moma_simstring::tfidf::cosine_vectors;
    use moma_simstring::TfIdfCorpus;

    fn corpus_and_vectors(values: &[(u32, &str)]) -> (TfIdfCorpus, Vec<(u32, Vec<(u32, f64)>)>) {
        let corpus = TfIdfCorpus::build(values.iter().map(|(_, v)| *v));
        let vecs = values
            .iter()
            .map(|&(id, v)| (id, corpus.vector(v)))
            .collect();
        (corpus, vecs)
    }

    fn build(threshold: f64, vecs: &[(u32, Vec<(u32, f64)>)]) -> TfIdfIndex {
        TfIdfIndex::build(threshold, vecs.iter().map(|(id, v)| (*id, v.as_slice())))
    }

    #[test]
    fn probe_is_exact_superset() {
        let data = super::tests::titles();
        let (corpus, vecs) = corpus_and_vectors(&data);
        for t in [0.3, 0.6, 0.9] {
            let idx = build(t, &vecs);
            assert_eq!(idx.len(), data.len());
            for (_, q) in &data {
                let qv = corpus.vector(q);
                let cands = idx.candidates(&qv);
                for (id, v) in &data {
                    if corpus.cosine(q, v) >= t {
                        assert!(cands.contains(id), "t={t}: missed `{v}` for `{q}`");
                    }
                }
            }
        }
    }

    #[test]
    fn prefix_prunes_unrelated_probes() {
        let data = super::tests::titles();
        let (corpus, vecs) = corpus_and_vectors(&data);
        let idx = build(0.8, &vecs);
        // A query sharing no token with any title is pruned to nothing.
        let qv = corpus.vector("zzzz qqqq xxxx");
        assert!(idx.candidates(&qv).is_empty());
        // A selective probe returns fewer ids than the population.
        let qv = corpus.vector("Generic Schema Matching with Cupid");
        let c = idx.candidates(&qv);
        assert!(c.contains(&1));
        assert!(c.len() < data.len());
    }

    #[test]
    fn empty_vectors_match_each_other_only() {
        let values = [(0u32, ""), (1, "!!"), (2, "data cleaning")];
        let (corpus, vecs) = corpus_and_vectors(&values);
        let idx = build(0.7, &vecs);
        assert_eq!(idx.len(), 3);
        // "" and "!!" tokenize to nothing: cosine 1.0 with each other.
        let c = idx.candidates(&corpus.vector("?!"));
        assert_eq!(c, [0u32, 1].into_iter().collect::<FxHashSet<_>>());
        assert!(!idx.candidates(&corpus.vector("data cleaning")).contains(&0));
    }

    #[test]
    fn maintenance_matches_rebuild() {
        // The corpus covers every value that ever enters the index —
        // out-of-corpus tokens get call-local ids, which are only
        // coherent within one scoring call, never across index inserts.
        let mut data = super::tests::titles();
        data.push((90, "Reference Reconciliation in Complex Spaces"));
        data.push((91, "Data Cleaning: Problems and Current Approaches"));
        let (corpus, vecs) = corpus_and_vectors(&data);
        let vecs = &vecs[..5];
        let mut idx = build(0.5, vecs);
        // Remove one, update one, re-insert the removed id with a new
        // vector (exercises the stale-posting purge), duplicate-reject.
        assert!(idx.remove(2));
        assert!(!idx.remove(2));
        let replacement = corpus.vector("Reference Reconciliation in Complex Spaces");
        assert!(idx.update(1, &vecs[1].1, &replacement));
        let fresh_two = corpus.vector("Data Cleaning: Problems and Current Approaches");
        assert!(idx.insert(2, &fresh_two));
        assert!(!idx.insert(2, &fresh_two));
        idx.compact();

        let final_vecs: Vec<(u32, Vec<(u32, f64)>)> = vec![
            (0, vecs[0].1.clone()),
            (1, replacement),
            (2, fresh_two),
            (3, vecs[3].1.clone()),
            (4, vecs[4].1.clone()),
        ];
        let fresh = build(0.5, &final_vecs);
        assert_eq!(idx.len(), fresh.len());
        for q in [
            "view selection problem",
            "reference reconciliation",
            "data cleaning problems",
            "fuzzy match online",
        ] {
            let qv = corpus.vector(q);
            assert_eq!(idx.candidates(&qv), fresh.candidates(&qv), "probe {q}");
        }
        // Pruned candidates really are pruned (soundness is covered
        // above; this pins that maintenance didn't degrade to all-ids).
        let qv = corpus.vector("zzzz qqqq");
        assert!(idx.candidates(&qv).is_empty());
    }

    #[test]
    fn tombstoned_ids_never_surface() {
        let data = super::tests::titles();
        let (corpus, vecs) = corpus_and_vectors(&data);
        let mut idx = build(0.4, &vecs);
        idx.remove(0);
        let qv = corpus.vector("A formal perspective on the view selection problem");
        let c = idx.candidates(&qv);
        assert!(!c.contains(&0));
        assert!(c.contains(&4));
        assert!(!idx.is_live(0) && idx.is_live(4));
    }

    #[test]
    fn cached_vectors_score_like_strings() {
        // The identity the matcher relies on: screening + scoring over
        // cached vectors reproduces the string-level cosine exactly.
        let data = super::tests::titles();
        let (corpus, vecs) = corpus_and_vectors(&data);
        for (i, (_, a)) in data.iter().enumerate() {
            for (j, (_, b)) in data.iter().enumerate() {
                assert_eq!(cosine_vectors(&vecs[i].1, &vecs[j].1), corpus.cosine(a, b));
            }
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use moma_simstring::ngram::trigram;
    use proptest::prelude::*;

    proptest! {
        /// Prefix filtering must never lose a pair whose Dice similarity
        /// clears the threshold.
        #[test]
        fn no_false_dismissals(
            values in prop::collection::vec("[a-d][a-d ]{2,11}", 1..20),
            query in "[a-d][a-d ]{2,11}",
            t in 0.4f64..0.95,
        ) {
            let idx = TrigramIndex::build(
                values.iter().enumerate().map(|(i, v)| (i as u32, v.as_str())),
            );
            let cands = idx.candidates(&query, t);
            for (i, v) in values.iter().enumerate() {
                if trigram(&query, v) >= t {
                    prop_assert!(cands.contains(&(i as u32)),
                        "missed `{}` for `{}` at t={}", v, query, t);
                }
            }
        }

        /// The T-occurrence engine makes the same promise for all four
        /// q-gram measures — including repeat-heavy strings where the
        /// multiset/set distinction matters — and additionally generates
        /// nothing outside the exact count criterion (verified against
        /// direct scoring).
        #[test]
        fn threshold_index_no_false_dismissals(
            values in prop::collection::vec("[a-c][a-c ]{0,11}", 1..20),
            query in "[a-c][a-c ]{0,11}",
            t in 0.3f64..=1.0,
            q in 2usize..4,
        ) {
            use moma_simstring::ngram::{qgram_cosine, qgram_dice, qgram_jaccard, qgram_overlap};
            for m in moma_simstring::bounds::ALL_MEASURES {
                let idx = ThresholdIndex::build(
                    m, q, t,
                    values.iter().enumerate().map(|(i, v)| (i as u32, v.as_str())),
                );
                let cands = idx.candidates(&query);
                for (i, v) in values.iter().enumerate() {
                    let s = match m {
                        QgramMeasure::Dice => qgram_dice(&query, v, q),
                        QgramMeasure::Jaccard => qgram_jaccard(&query, v, q),
                        QgramMeasure::Cosine => qgram_cosine(&query, v, q),
                        QgramMeasure::Overlap => qgram_overlap(&query, v, q),
                    };
                    if s >= t {
                        prop_assert!(cands.contains(&(i as u32)),
                            "{:?} q={} t={}: missed `{}` (sim {}) for `{}`", m, q, t, v, s, query);
                    }
                }
            }
        }

        /// The weighted-prefix TF-IDF engine makes the T-occurrence
        /// promise for corpus-weighted cosine: no pair reaching the
        /// threshold is ever pruned, over random corpora and thresholds.
        #[test]
        fn tfidf_index_no_false_dismissals(
            values in prop::collection::vec("[a-d]{1,4}( [a-d]{1,4}){0,4}", 1..16),
            query in "[a-d]{1,4}( [a-d]{1,4}){0,4}",
            t in 0.05f64..=1.0,
        ) {
            let corpus = moma_simstring::TfIdfCorpus::build(
                values.iter().map(|s| s.as_str()).chain([query.as_str()]),
            );
            let vecs: Vec<Vec<(u32, f64)>> =
                values.iter().map(|v| corpus.vector(v)).collect();
            let idx = TfIdfIndex::build(
                t,
                vecs.iter().enumerate().map(|(i, v)| (i as u32, v.as_slice())),
            );
            let qv = corpus.vector(&query);
            let cands = idx.candidates(&qv);
            for (i, v) in values.iter().enumerate() {
                let s = moma_simstring::tfidf::cosine_vectors(&qv, &vecs[i]);
                if s >= t {
                    prop_assert!(cands.contains(&(i as u32)),
                        "t={}: missed `{}` (cos {}) for `{}`", t, v, s, query);
                }
            }
        }

        /// The same guarantee holds for an *incrementally maintained*
        /// index: after removals and updates, every surviving value whose
        /// similarity clears the threshold is still generated.
        #[test]
        fn no_false_dismissals_after_maintenance(
            values in prop::collection::vec("[a-d][a-d ]{2,11}", 4..20),
            replacement in "[a-d][a-d ]{2,11}",
            query in "[a-d][a-d ]{2,11}",
            t in 0.4f64..0.95,
        ) {
            let mut idx = TrigramIndex::build(
                values.iter().enumerate().map(|(i, v)| (i as u32, v.as_str())),
            );
            // Remove every third value, replace every fourth.
            let mut current: Vec<Option<String>> =
                values.iter().map(|v| Some(v.clone())).collect();
            for i in (0..values.len()).step_by(3) {
                idx.remove(i as u32);
                current[i] = None;
            }
            for i in (1..values.len()).step_by(4) {
                if let Some(old) = current[i].clone() {
                    idx.update(i as u32, &old, &replacement);
                    current[i] = Some(replacement.clone());
                }
            }
            let cands = idx.candidates(&query, t);
            for (i, v) in current.iter().enumerate() {
                match v {
                    Some(v) if trigram(&query, v) >= t => prop_assert!(
                        cands.contains(&(i as u32)),
                        "missed `{}` for `{}` at t={}", v, query, t
                    ),
                    None => prop_assert!(
                        !cands.contains(&(i as u32)),
                        "tombstoned id {} surfaced", i
                    ),
                    _ => {}
                }
            }
        }
    }
}
