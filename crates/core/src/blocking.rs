//! Candidate generation (blocking) for attribute matchers.
//!
//! Matching large web sources all-pairs is quadratic — the paper's own
//! Google Scholar dataset has 64k entries. MOMA's attribute matcher
//! therefore supports *prefix-filtered trigram blocking*: range values are
//! indexed by character trigram; a domain value probes only its rarest
//! trigrams, whose number is derived from the similarity threshold so
//! that any range value clearing the threshold must share at least one
//! probed gram (standard prefix-filtering argument, transferred from
//! Jaccard to Dice via `t_j = t_d / (2 - t_d)`).
//!
//! The index storage itself — posting lists, tombstoned removal,
//! amortized compaction — is [`moma_table::GramIndex`]; this module owns
//! the trigram tokenization and the threshold→probe-count arithmetic.
//!
//! ## Read-only shared-index probing
//!
//! A built [`TrigramIndex`] is immutable through `&self`: every probe
//! method only reads the postings, so one index can be probed
//! concurrently from any number of matcher worker threads without locks
//! (`&TrigramIndex` is `Send + Sync`). This is exactly how the parallel
//! attribute matchers use it — the range side is indexed once, then the
//! domain values are sharded across threads (see [`crate::exec`]) and
//! each shard probes the shared index independently. Because probing
//! never mutates, the per-shard candidate sets — and hence the
//! concatenated result — are bit-identical to a sequential run.
//!
//! ## Incremental maintenance
//!
//! For evolving sources the index need not be rebuilt:
//! [`TrigramIndex::insert`], [`TrigramIndex::remove`] (tombstone) and
//! [`TrigramIndex::update`] (surgical posting swap) patch it in place —
//! the machinery behind [`crate::delta`]'s incremental matching.
//! Removal leaves dead posting entries behind until the underlying
//! [`GramIndex`](moma_table::GramIndex) compacts; probes filter them,
//! so candidate sets are always tombstone-exact, while [`TrigramIndex::df`]
//! may over-count between compactions (harmless for the prefix-filter
//! guarantee, which holds for *any* choice of probed grams).

use moma_simstring::tokenize::trigrams;
use moma_table::exec::Parallelism;
use moma_table::{FxHashSet, GramIndex};

/// Deduplicated trigram list of a value.
fn unique_trigrams(value: &str) -> Vec<String> {
    let mut grams = trigrams(value);
    grams.sort_unstable();
    grams.dedup();
    grams
}

/// Inverted trigram index over a set of `(id, value)` pairs.
#[derive(Debug, Default, Clone)]
pub struct TrigramIndex {
    inner: GramIndex,
}

impl TrigramIndex {
    /// Build the index.
    pub fn build<'a>(values: impl IntoIterator<Item = (u32, &'a str)>) -> Self {
        let mut idx = Self::default();
        for (id, value) in values {
            idx.insert(id, value);
        }
        idx
    }

    /// Build the index by sharding `values` across threads: each shard
    /// builds a private postings map, and the maps are merged in shard
    /// order. Per-gram posting lists therefore hold ids in input order —
    /// exactly as [`TrigramIndex::build`] produces them — so the parallel
    /// build is observationally identical to the sequential one.
    pub fn build_par<V: AsRef<str> + Sync>(values: &[(u32, V)], par: &Parallelism) -> Self {
        let mut parts = par
            .run_sharded(values, |shard| {
                let mut idx = Self::default();
                for (id, v) in shard {
                    idx.insert(*id, v.as_ref());
                }
                idx
            })
            .into_iter();
        let mut merged = parts.next().unwrap_or_default();
        for part in parts {
            merged.inner.absorb(part.inner);
        }
        merged
    }

    /// Index one value. Returns `false` (a no-op) if `id` is already
    /// live — use [`TrigramIndex::update`] to change an indexed value.
    pub fn insert(&mut self, id: u32, value: &str) -> bool {
        self.inner.insert(id, &unique_trigrams(value))
    }

    /// Tombstone an indexed value (see module docs); returns whether the
    /// id was live. O(1) amortized — dead posting entries are swept by
    /// the underlying index once they exceed a fixed fraction of the
    /// live population.
    pub fn remove(&mut self, id: u32) -> bool {
        self.inner.remove(id)
    }

    /// Replace a live value in place. The caller supplies the old value
    /// (the index stores no values); its postings are removed
    /// surgically, the new value's appended. Returns `false` if `id` is
    /// not live.
    pub fn update(&mut self, id: u32, old_value: &str, new_value: &str) -> bool {
        self.inner
            .replace(id, &unique_trigrams(old_value), &unique_trigrams(new_value))
    }

    /// Sweep tombstoned entries out of the posting lists now.
    pub fn compact(&mut self) {
        self.inner.compact();
    }

    /// Number of unswept tombstones.
    pub fn tombstone_count(&self) -> usize {
        self.inner.tombstone_count()
    }

    /// Whether `id` is indexed and not removed.
    pub fn is_live(&self, id: u32) -> bool {
        self.inner.is_live(id)
    }

    /// Number of live indexed *values* (not postings): every `(id,
    /// value)` pair passed to `build` counts once, including values that
    /// yield no trigrams and can therefore never be returned by
    /// [`TrigramIndex::candidates`].
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether no values are indexed. Note an index built only from
    /// gram-less values (e.g. empty strings) is *not* empty by this
    /// definition even though its postings are.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Document frequency of a gram (may over-count by unswept
    /// tombstones; exact after [`TrigramIndex::compact`]).
    pub fn df(&self, gram: &str) -> usize {
        self.inner.df(gram)
    }

    /// Candidate range ids for `query` under Dice threshold
    /// `dice_threshold`: union of the postings of the query's rarest
    /// `k = ⌊(1 − t_j)·|G|⌋ + 1` grams (`t_j` the Jaccard equivalent).
    pub fn candidates(&self, query: &str, dice_threshold: f64) -> FxHashSet<u32> {
        let mut grams = unique_trigrams(query);
        if grams.is_empty() {
            return FxHashSet::default();
        }
        let t_d = dice_threshold.clamp(0.0, 1.0);
        let t_j = if t_d >= 1.0 { 1.0 } else { t_d / (2.0 - t_d) };
        let k = (((1.0 - t_j) * grams.len() as f64).floor() as usize + 1).min(grams.len());
        self.inner.candidates(&mut grams, k)
    }

    /// All live ids as candidates (used when the caller disables blocking
    /// for one probe) — including values that produced no trigrams, so
    /// this always has exactly [`TrigramIndex::len`] entries.
    pub fn all_ids(&self) -> FxHashSet<u32> {
        self.inner.all_ids()
    }
}

/// Candidate-generation strategy of an attribute matcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Blocking {
    /// Score every domain×range pair. Exact, quadratic.
    #[default]
    AllPairs,
    /// Prefix-filtered trigram blocking (see module docs). Near-exact for
    /// thresholds ≥ ~0.4; orders of magnitude fewer comparisons.
    TrigramPrefix,
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_simstring::ngram::trigram;

    fn titles() -> Vec<(u32, &'static str)> {
        vec![
            (0, "A formal perspective on the view selection problem"),
            (1, "Generic Schema Matching with Cupid"),
            (2, "Potter's Wheel: An Interactive Data Cleaning System"),
            (
                3,
                "Robust and Efficient Fuzzy Match for Online Data Cleaning",
            ),
            (4, "A formal perspective on the view selection problem."),
        ]
    }

    #[test]
    fn identical_value_is_candidate() {
        let idx = TrigramIndex::build(titles());
        let c = idx.candidates("A formal perspective on the view selection problem", 0.8);
        assert!(c.contains(&0));
        assert!(c.contains(&4));
    }

    #[test]
    fn typo_variant_is_candidate() {
        let idx = TrigramIndex::build(titles());
        let c = idx.candidates("Generic Schema Matchng with Cupid", 0.8);
        assert!(c.contains(&1));
    }

    #[test]
    fn blocking_recall_vs_allpairs() {
        // Every pair above the threshold must be generated as a candidate.
        let data = titles();
        let idx = TrigramIndex::build(data.clone());
        let threshold = 0.5;
        for (_, q) in &data {
            let cands = idx.candidates(q, threshold);
            for (id, v) in &data {
                if trigram(q, v) >= threshold {
                    assert!(cands.contains(id), "missed {v} for query {q}");
                }
            }
        }
    }

    #[test]
    fn unrelated_value_can_be_pruned() {
        let idx = TrigramIndex::build(titles());
        let c = idx.candidates("zzzz qqqq xxxx", 0.8);
        assert!(c.is_empty());
    }

    #[test]
    fn empty_query_no_candidates() {
        let idx = TrigramIndex::build(titles());
        assert!(idx.candidates("", 0.5).is_empty());
        assert!(idx.candidates("!!", 0.5).is_empty());
    }

    #[test]
    fn df_and_len() {
        let idx = TrigramIndex::build(titles());
        assert_eq!(idx.len(), 5);
        assert!(!idx.is_empty());
        assert!(idx.df("##a") >= 2); // two titles start with 'a'
        assert_eq!(idx.df("zzz"), 0);
    }

    #[test]
    fn all_ids_complete() {
        let idx = TrigramIndex::build(titles());
        assert_eq!(idx.all_ids().len(), 5);
    }

    #[test]
    fn len_counts_values_not_postings() {
        // Two values share every trigram; postings are per-gram lists,
        // but len()/is_empty() count indexed *values*.
        let idx = TrigramIndex::build([(0, "abc"), (1, "abc")]);
        assert_eq!(idx.len(), 2);
        assert!(!idx.is_empty());
        assert_eq!(idx.df("abc"), 2);
    }

    #[test]
    fn empty_string_values_are_counted_but_never_candidates() {
        // "" and "!!" normalize to nothing: no trigrams, so they can
        // never be candidates — but they are still indexed values.
        let idx = TrigramIndex::build([(0, ""), (1, "!!"), (2, "data")]);
        assert_eq!(idx.len(), 3);
        assert!(!idx.is_empty());
        // all_ids still reports every indexed value.
        let all = idx.all_ids();
        assert_eq!(all.len(), 3);
        assert!(all.contains(&0) && all.contains(&1) && all.contains(&2));
        // Probing anything never surfaces the gram-less values.
        for t in [0.3, 0.8] {
            assert!(!idx.candidates("data", t).contains(&0));
            assert!(!idx.candidates("data", t).contains(&1));
        }
        // An index of only gram-less values: non-empty by len, empty postings.
        let gramless = TrigramIndex::build([(7, "")]);
        assert_eq!(gramless.len(), 1);
        assert!(!gramless.is_empty());
        assert!(gramless.candidates("anything", 0.5).is_empty());
        assert_eq!(gramless.all_ids().len(), 1);
    }

    #[test]
    fn short_values_get_padded_trigrams() {
        // Values shorter than 3 chars still produce padded grams
        // ("a" -> ##a, #a#, a## ; "ab" -> ##a, #ab, ab#, b##), so they
        // are reachable candidates — the <3-char edge of `trigrams`.
        let idx = TrigramIndex::build([(0, "a"), (1, "ab")]);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.df("##a"), 2);
        assert_eq!(idx.df("#a#"), 1);
        assert!(idx.candidates("a", 0.9).contains(&0));
        assert!(idx.candidates("ab", 0.9).contains(&1));
        assert_eq!(idx.all_ids().len(), 2);
    }

    #[test]
    fn parallel_build_is_identical() {
        let data = titles();
        let with_edges: Vec<(u32, &str)> = data
            .iter()
            .copied()
            .chain([(90, ""), (91, "ab"), (92, "!!")])
            .collect();
        let seq = TrigramIndex::build(with_edges.iter().copied());
        for threads in [1usize, 2, 8] {
            let par = Parallelism::new(threads).with_min_shard_size(1);
            let p = TrigramIndex::build_par(&with_edges, &par);
            assert_eq!(p.len(), seq.len(), "threads={threads}");
            assert_eq!(p.all_ids(), seq.all_ids());
            // Same postings: same df for every gram, and candidate sets
            // (with identical insertion order) for every probe.
            for (_, v) in &with_edges {
                for g in moma_simstring::tokenize::trigrams(v) {
                    assert_eq!(p.df(&g), seq.df(&g), "gram {g}");
                }
                let cp: Vec<u32> = p.candidates(v, 0.5).into_iter().collect();
                let cs: Vec<u32> = seq.candidates(v, 0.5).into_iter().collect();
                assert_eq!(cp, cs, "probe {v} threads={threads}");
            }
        }
    }

    #[test]
    fn lower_threshold_probes_more() {
        let idx = TrigramIndex::build(titles());
        let tight = idx.candidates("data cleaning", 0.9);
        let loose = idx.candidates("data cleaning", 0.3);
        assert!(loose.len() >= tight.len());
        // Both "data cleaning" titles reachable at a loose threshold.
        assert!(loose.contains(&2) && loose.contains(&3));
    }

    #[test]
    fn incremental_maintenance_matches_rebuild() {
        let mut idx = TrigramIndex::build(titles());
        // Remove one, update one, add one.
        assert!(idx.remove(2));
        assert!(!idx.remove(2));
        assert!(idx.update(
            1,
            "Generic Schema Matching with Cupid",
            "Reference Reconciliation in Complex Spaces",
        ));
        assert!(idx.insert(5, "Data Cleaning: Problems and Current Approaches"));
        assert!(!idx.insert(5, "duplicate insert is rejected"));
        idx.compact();

        let fresh = TrigramIndex::build([
            (0, "A formal perspective on the view selection problem"),
            (1, "Reference Reconciliation in Complex Spaces"),
            (
                3,
                "Robust and Efficient Fuzzy Match for Online Data Cleaning",
            ),
            (4, "A formal perspective on the view selection problem."),
            (5, "Data Cleaning: Problems and Current Approaches"),
        ]);
        assert_eq!(idx.len(), fresh.len());
        assert_eq!(idx.all_ids(), fresh.all_ids());
        for q in [
            "view selection",
            "reference reconciliation",
            "data cleaning",
            "fuzzy match",
        ] {
            assert_eq!(
                idx.candidates(q, 0.4),
                fresh.candidates(q, 0.4),
                "probe {q}"
            );
        }
    }

    #[test]
    fn tombstoned_ids_never_surface_before_compaction() {
        let mut idx = TrigramIndex::build(titles());
        idx.remove(0);
        assert!(idx.tombstone_count() > 0 || idx.len() == 4);
        let c = idx.candidates("A formal perspective on the view selection problem", 0.4);
        assert!(!c.contains(&0));
        assert!(c.contains(&4));
        assert!(!idx.all_ids().contains(&0));
        assert!(!idx.is_live(0) && idx.is_live(4));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use moma_simstring::ngram::trigram;
    use proptest::prelude::*;

    proptest! {
        /// Prefix filtering must never lose a pair whose Dice similarity
        /// clears the threshold.
        #[test]
        fn no_false_dismissals(
            values in prop::collection::vec("[a-d][a-d ]{2,11}", 1..20),
            query in "[a-d][a-d ]{2,11}",
            t in 0.4f64..0.95,
        ) {
            let idx = TrigramIndex::build(
                values.iter().enumerate().map(|(i, v)| (i as u32, v.as_str())),
            );
            let cands = idx.candidates(&query, t);
            for (i, v) in values.iter().enumerate() {
                if trigram(&query, v) >= t {
                    prop_assert!(cands.contains(&(i as u32)),
                        "missed `{}` for `{}` at t={}", v, query, t);
                }
            }
        }

        /// The same guarantee holds for an *incrementally maintained*
        /// index: after removals and updates, every surviving value whose
        /// similarity clears the threshold is still generated.
        #[test]
        fn no_false_dismissals_after_maintenance(
            values in prop::collection::vec("[a-d][a-d ]{2,11}", 4..20),
            replacement in "[a-d][a-d ]{2,11}",
            query in "[a-d][a-d ]{2,11}",
            t in 0.4f64..0.95,
        ) {
            let mut idx = TrigramIndex::build(
                values.iter().enumerate().map(|(i, v)| (i as u32, v.as_str())),
            );
            // Remove every third value, replace every fourth.
            let mut current: Vec<Option<String>> =
                values.iter().map(|v| Some(v.clone())).collect();
            for i in (0..values.len()).step_by(3) {
                idx.remove(i as u32);
                current[i] = None;
            }
            for i in (1..values.len()).step_by(4) {
                if let Some(old) = current[i].clone() {
                    idx.update(i as u32, &old, &replacement);
                    current[i] = Some(replacement.clone());
                }
            }
            let cands = idx.candidates(&query, t);
            for (i, v) in current.iter().enumerate() {
                match v {
                    Some(v) if trigram(&query, v) >= t => prop_assert!(
                        cands.contains(&(i as u32)),
                        "missed `{}` for `{}` at t={}", v, query, t
                    ),
                    None => prop_assert!(
                        !cands.contains(&(i as u32)),
                        "tombstoned id {} surfaced", i
                    ),
                    _ => {}
                }
            }
        }
    }
}
