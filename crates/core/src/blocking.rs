//! Candidate generation (blocking) for attribute matchers.
//!
//! Matching large web sources all-pairs is quadratic — the paper's own
//! Google Scholar dataset has 64k entries. MOMA's attribute matcher
//! therefore supports *prefix-filtered trigram blocking*: range values are
//! indexed by character trigram; a domain value probes only its rarest
//! trigrams, whose number is derived from the similarity threshold so
//! that any range value clearing the threshold must share at least one
//! probed gram (standard prefix-filtering argument, transferred from
//! Jaccard to Dice via `t_j = t_d / (2 - t_d)`).

use moma_simstring::tokenize::trigrams;
use moma_table::{FxHashMap, FxHashSet};

/// Inverted trigram index over a set of `(id, value)` pairs.
#[derive(Debug, Default)]
pub struct TrigramIndex {
    postings: FxHashMap<String, Vec<u32>>,
    /// Number of indexed values.
    len: usize,
}

impl TrigramIndex {
    /// Build the index.
    pub fn build<'a>(values: impl IntoIterator<Item = (u32, &'a str)>) -> Self {
        let mut postings: FxHashMap<String, Vec<u32>> = FxHashMap::default();
        let mut len = 0usize;
        for (id, value) in values {
            len += 1;
            let mut grams = trigrams(value);
            grams.sort_unstable();
            grams.dedup();
            for g in grams {
                postings.entry(g).or_default().push(id);
            }
        }
        Self { postings, len }
    }

    /// Number of indexed values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Document frequency of a gram.
    pub fn df(&self, gram: &str) -> usize {
        self.postings.get(gram).map(|p| p.len()).unwrap_or(0)
    }

    /// Candidate range ids for `query` under Dice threshold
    /// `dice_threshold`: union of the postings of the query's rarest
    /// `k = ⌊(1 − t_j)·|G|⌋ + 1` grams (`t_j` the Jaccard equivalent).
    pub fn candidates(&self, query: &str, dice_threshold: f64) -> FxHashSet<u32> {
        let mut grams = trigrams(query);
        grams.sort_unstable();
        grams.dedup();
        if grams.is_empty() {
            return FxHashSet::default();
        }
        let t_d = dice_threshold.clamp(0.0, 1.0);
        let t_j = if t_d >= 1.0 { 1.0 } else { t_d / (2.0 - t_d) };
        let k = (((1.0 - t_j) * grams.len() as f64).floor() as usize + 1).min(grams.len());
        // Probe the rarest grams first.
        grams.sort_by_key(|g| self.df(g));
        let mut out = FxHashSet::default();
        for g in grams.iter().take(k) {
            if let Some(p) = self.postings.get(g.as_str()) {
                out.extend(p.iter().copied());
            }
        }
        out
    }

    /// All ids as candidates (used when the caller disables blocking for
    /// one probe).
    pub fn all_ids(&self) -> FxHashSet<u32> {
        self.postings.values().flatten().copied().collect()
    }
}

/// Candidate-generation strategy of an attribute matcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Blocking {
    /// Score every domain×range pair. Exact, quadratic.
    #[default]
    AllPairs,
    /// Prefix-filtered trigram blocking (see module docs). Near-exact for
    /// thresholds ≥ ~0.4; orders of magnitude fewer comparisons.
    TrigramPrefix,
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_simstring::ngram::trigram;

    fn titles() -> Vec<(u32, &'static str)> {
        vec![
            (0, "A formal perspective on the view selection problem"),
            (1, "Generic Schema Matching with Cupid"),
            (2, "Potter's Wheel: An Interactive Data Cleaning System"),
            (
                3,
                "Robust and Efficient Fuzzy Match for Online Data Cleaning",
            ),
            (4, "A formal perspective on the view selection problem."),
        ]
    }

    #[test]
    fn identical_value_is_candidate() {
        let idx = TrigramIndex::build(titles());
        let c = idx.candidates("A formal perspective on the view selection problem", 0.8);
        assert!(c.contains(&0));
        assert!(c.contains(&4));
    }

    #[test]
    fn typo_variant_is_candidate() {
        let idx = TrigramIndex::build(titles());
        let c = idx.candidates("Generic Schema Matchng with Cupid", 0.8);
        assert!(c.contains(&1));
    }

    #[test]
    fn blocking_recall_vs_allpairs() {
        // Every pair above the threshold must be generated as a candidate.
        let data = titles();
        let idx = TrigramIndex::build(data.clone());
        let threshold = 0.5;
        for (_, q) in &data {
            let cands = idx.candidates(q, threshold);
            for (id, v) in &data {
                if trigram(q, v) >= threshold {
                    assert!(cands.contains(id), "missed {v} for query {q}");
                }
            }
        }
    }

    #[test]
    fn unrelated_value_can_be_pruned() {
        let idx = TrigramIndex::build(titles());
        let c = idx.candidates("zzzz qqqq xxxx", 0.8);
        assert!(c.is_empty());
    }

    #[test]
    fn empty_query_no_candidates() {
        let idx = TrigramIndex::build(titles());
        assert!(idx.candidates("", 0.5).is_empty());
        assert!(idx.candidates("!!", 0.5).is_empty());
    }

    #[test]
    fn df_and_len() {
        let idx = TrigramIndex::build(titles());
        assert_eq!(idx.len(), 5);
        assert!(!idx.is_empty());
        assert!(idx.df("##a") >= 2); // two titles start with 'a'
        assert_eq!(idx.df("zzz"), 0);
    }

    #[test]
    fn all_ids_complete() {
        let idx = TrigramIndex::build(titles());
        assert_eq!(idx.all_ids().len(), 5);
    }

    #[test]
    fn lower_threshold_probes_more() {
        let idx = TrigramIndex::build(titles());
        let tight = idx.candidates("data cleaning", 0.9);
        let loose = idx.candidates("data cleaning", 0.3);
        assert!(loose.len() >= tight.len());
        // Both "data cleaning" titles reachable at a loose threshold.
        assert!(loose.contains(&2) && loose.contains(&3));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use moma_simstring::ngram::trigram;
    use proptest::prelude::*;

    proptest! {
        /// Prefix filtering must never lose a pair whose Dice similarity
        /// clears the threshold.
        #[test]
        fn no_false_dismissals(
            values in prop::collection::vec("[a-d][a-d ]{2,11}", 1..20),
            query in "[a-d][a-d ]{2,11}",
            t in 0.4f64..0.95,
        ) {
            let idx = TrigramIndex::build(
                values.iter().enumerate().map(|(i, v)| (i as u32, v.as_str())),
            );
            let cands = idx.candidates(&query, t);
            for (i, v) in values.iter().enumerate() {
                if trigram(&query, v) >= t {
                    prop_assert!(cands.contains(&(i as u32)),
                        "missed `{}` for `{}` at t={}", v, query, t);
                }
            }
        }
    }
}
