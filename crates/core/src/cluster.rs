//! Duplicate clusters from self-mappings (paper Sections 4.3 / 5.6).
//!
//! A self-mapping over one LDS marks duplicate records. Treating its
//! correspondences as edges, connected components are *duplicate
//! clusters*; collapsing clusters to representatives is the paper's
//! outlook strategy for dirty sources like Google Scholar ("first
//! determine the duplicates within dirty sources … represent them as
//! self-mappings … then compose with same-mappings").

use moma_table::{FxHashMap, MappingTable};

use crate::error::{CoreError, Result};
use crate::mapping::Mapping;

/// Union-find (disjoint set) over dense `u32` ids.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: u32) -> Self {
        Self {
            parent: (0..n).collect(),
            rank: vec![0; n as usize],
        }
    }

    /// Representative of `x` (with path halving).
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns the new representative.
    pub fn union(&mut self, a: u32, b: u32) -> u32 {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        hi
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }
}

/// Duplicate clusters of a self-mapping: connected components with at
/// least two members, sorted by smallest member (deterministic).
///
/// `n` is the instance count of the LDS. Fails if the mapping is not a
/// self-mapping.
pub fn clusters(self_mapping: &Mapping, n: u32) -> Result<Vec<Vec<u32>>> {
    if !self_mapping.is_self_mapping() {
        return Err(CoreError::Incompatible(format!(
            "clusters need a self-mapping, got ({}, {})",
            self_mapping.domain.0, self_mapping.range.0
        )));
    }
    let mut uf = UnionFind::new(n);
    for c in self_mapping.table.iter() {
        uf.union(c.domain, c.range);
    }
    let mut groups: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
    for x in 0..n {
        groups.entry(uf.find(x)).or_default().push(x);
    }
    let mut out: Vec<Vec<u32>> = groups.into_values().filter(|g| g.len() > 1).collect();
    for g in &mut out {
        g.sort_unstable();
    }
    out.sort_by_key(|g| g[0]);
    Ok(out)
}

/// Map each instance to its cluster representative (smallest member id);
/// singletons map to themselves.
pub fn representatives(self_mapping: &Mapping, n: u32) -> Result<Vec<u32>> {
    if !self_mapping.is_self_mapping() {
        return Err(CoreError::Incompatible(
            "representatives need a self-mapping".into(),
        ));
    }
    let mut uf = UnionFind::new(n);
    for c in self_mapping.table.iter() {
        uf.union(c.domain, c.range);
    }
    // Smallest member of each component as canonical representative.
    let mut smallest: FxHashMap<u32, u32> = FxHashMap::default();
    for x in 0..n {
        let root = uf.find(x);
        let entry = smallest.entry(root).or_insert(x);
        if x < *entry {
            *entry = x;
        }
    }
    Ok((0..n).map(|x| smallest[&uf.find(x)]).collect())
}

/// Rewrite a mapping's *domain* column through a representative table
/// (collapsing duplicate clusters); duplicate output pairs keep max sim.
pub fn collapse_domain(mapping: &Mapping, reps: &[u32]) -> Mapping {
    let table = MappingTable::from_triples(mapping.table.iter().map(|c| {
        let d = reps.get(c.domain as usize).copied().unwrap_or(c.domain);
        (d, c.range, c.sim)
    }));
    Mapping {
        name: format!("collapse({})", mapping.name),
        kind: mapping.kind.clone(),
        domain: mapping.domain,
        range: mapping.range,
        table,
    }
}

/// Expand a mapping's domain column back over clusters: each output pair
/// `(rep, b)` yields `(member, b)` for every member of rep's cluster —
/// the paper's "find more correspondences" composition of self-mappings
/// with same-mappings.
pub fn expand_domain(mapping: &Mapping, reps: &[u32]) -> Mapping {
    let mut members: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
    for (i, &r) in reps.iter().enumerate() {
        members.entry(r).or_default().push(i as u32);
    }
    let mut table = MappingTable::new();
    for c in mapping.table.iter() {
        if let Some(ms) = members.get(&c.domain) {
            for &m in ms {
                table.push(m, c.range, c.sim);
            }
        } else {
            table.push(c.domain, c.range, c.sim);
        }
    }
    table.dedup_max();
    Mapping {
        name: format!("expand({})", mapping.name),
        kind: mapping.kind.clone(),
        domain: mapping.domain,
        range: mapping.range,
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_model::LdsId;

    fn self_mapping() -> Mapping {
        // Clusters: {0,1,2} via 0-1, 1-2; {4,5}; 3 and 6 singletons.
        Mapping::same(
            "dups",
            LdsId(0),
            LdsId(0),
            MappingTable::from_triples([(0, 1, 0.9), (1, 2, 0.8), (4, 5, 0.7)]),
        )
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert!(!uf.connected(0, 1));
        uf.union(0, 1);
        uf.union(3, 4);
        assert!(uf.connected(0, 1));
        assert!(uf.connected(4, 3));
        assert!(!uf.connected(1, 3));
        uf.union(1, 3);
        assert!(uf.connected(0, 4));
        assert_eq!(uf.len(), 5);
    }

    #[test]
    fn clusters_found() {
        let cs = clusters(&self_mapping(), 7).unwrap();
        assert_eq!(cs, vec![vec![0, 1, 2], vec![4, 5]]);
    }

    #[test]
    fn representatives_are_smallest() {
        let reps = representatives(&self_mapping(), 7).unwrap();
        assert_eq!(reps, vec![0, 0, 0, 3, 4, 4, 6]);
    }

    #[test]
    fn non_self_mapping_rejected() {
        let m = Mapping::same("x", LdsId(0), LdsId(1), MappingTable::new());
        assert!(clusters(&m, 3).is_err());
        assert!(representatives(&m, 3).is_err());
    }

    #[test]
    fn collapse_rewrites_domains() {
        let reps = representatives(&self_mapping(), 7).unwrap();
        let cross = Mapping::same(
            "cross",
            LdsId(0),
            LdsId(1),
            MappingTable::from_triples([(1, 100, 0.8), (2, 100, 0.9), (6, 101, 1.0)]),
        );
        let collapsed = collapse_domain(&cross, &reps);
        // Both 1 and 2 collapse to 0; max sim wins.
        assert_eq!(collapsed.table.sim_of(0, 100), Some(0.9));
        assert_eq!(collapsed.table.sim_of(6, 101), Some(1.0));
        assert_eq!(collapsed.len(), 2);
    }

    #[test]
    fn expand_projects_back_over_cluster() {
        let reps = representatives(&self_mapping(), 7).unwrap();
        let collapsed = Mapping::same(
            "c",
            LdsId(0),
            LdsId(1),
            MappingTable::from_triples([(0, 100, 0.9)]),
        );
        let expanded = expand_domain(&collapsed, &reps);
        // All of cluster {0,1,2} now map to 100.
        assert_eq!(expanded.len(), 3);
        for d in [0, 1, 2] {
            assert_eq!(expanded.table.sim_of(d, 100), Some(0.9));
        }
    }

    #[test]
    fn collapse_then_expand_covers_original() {
        let reps = representatives(&self_mapping(), 7).unwrap();
        let cross = Mapping::same(
            "cross",
            LdsId(0),
            LdsId(1),
            MappingTable::from_triples([(1, 100, 0.8)]),
        );
        let round = expand_domain(&collapse_domain(&cross, &reps), &reps);
        // The original pair reappears (plus its cluster siblings).
        assert!(round.table.sim_of(1, 100).is_some());
        assert!(round.table.sim_of(0, 100).is_some());
        assert!(round.table.sim_of(2, 100).is_some());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use moma_model::LdsId;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn clusters_partition_edges(
            edges in prop::collection::vec((0u32..20, 0u32..20), 0..40)
        ) {
            let m = Mapping::same(
                "m",
                LdsId(0),
                LdsId(0),
                MappingTable::from_triples(edges.iter().map(|&(a, b)| (a, b, 1.0))),
            );
            let cs = clusters(&m, 20).unwrap();
            // Every edge's endpoints land in the same cluster.
            let mut cluster_of: std::collections::HashMap<u32, usize> = Default::default();
            for (i, c) in cs.iter().enumerate() {
                for &x in c {
                    cluster_of.insert(x, i);
                }
            }
            for (a, b) in edges {
                if a != b {
                    prop_assert_eq!(cluster_of.get(&a), cluster_of.get(&b));
                }
            }
            // Clusters are disjoint.
            let total: usize = cs.iter().map(|c| c.len()).sum();
            let distinct: std::collections::HashSet<u32> =
                cs.iter().flatten().copied().collect();
            prop_assert_eq!(total, distinct.len());
        }

        #[test]
        fn representatives_idempotent(
            edges in prop::collection::vec((0u32..16, 0u32..16), 0..30)
        ) {
            let m = Mapping::same(
                "m",
                LdsId(0),
                LdsId(0),
                MappingTable::from_triples(edges.into_iter().map(|(a, b)| (a, b, 0.5))),
            );
            let reps = representatives(&m, 16).unwrap();
            for (i, &r) in reps.iter().enumerate() {
                // rep of rep is rep; rep <= member.
                prop_assert_eq!(reps[r as usize], r);
                prop_assert!(r <= i as u32);
            }
        }
    }
}
