//! Atomic engine checkpoints that bound WAL replay on restart.
//!
//! A checkpoint is a directory next to the WAL segments,
//! `checkpoint.<seq, zero-padded to 20>`, holding:
//!
//! * `state.json` — the engine's full logical state (sources, mappings
//!   with exact versions and recipes, matcher definitions, command
//!   counters) as one deterministic JSON document, and
//! * `MARKER` — the last WAL sequence number the state covers plus the
//!   CRC-32 and byte length of `state.json`, so a half-written or
//!   bit-rotted state file is detected and the checkpoint skipped.
//!
//! ## Atomicity
//!
//! [`publish`] stages everything in `checkpoint.tmp/`, fsyncs both
//! files *and* the staged directory, then `rename`s it to its final
//! name and fsyncs the WAL directory. A crash at any point leaves
//! either the previous checkpoints untouched (tmp is ignored and wiped
//! on the next publish) or the new checkpoint fully published — never a
//! half-checkpoint with a valid name. Recovery walks checkpoints newest
//! to oldest and takes the first one whose marker validates, falling
//! back to full replay if none does, so a checkpoint deleted or
//! corrupted out from under the server degrades recovery time but never
//! correctness.
//!
//! The `MOMA_CHECKPOINT_FAULT_DELAY_MS` environment variable inserts a
//! sleep between staging and the rename — the crash-recovery CI gate
//! uses it to SIGKILL the server deterministically *mid-checkpoint* and
//! assert the fallback path.
//!
//! On a sharded server every shard keeps its own checkpoint chain in
//! its own WAL directory (`<wal>/shard.<i>/checkpoint.<seq>/`); the
//! background checkpointer and the `checkpoint` command visit the
//! shards independently, so one shard's checkpoint never blocks
//! another's writes.
//!
//! ## Example
//!
//! ```
//! use moma_server::checkpoint;
//!
//! let dir = std::env::temp_dir().join(format!("moma-ckpt-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir)?;
//!
//! // Publish a checkpoint covering WAL sequence 42, then find and
//! // load it back, CRC-validated.
//! let state = r#"{"mappings":[]}"#;
//! checkpoint::publish(&dir, 42, state)?;
//! let found = checkpoint::list(&dir)?;
//! assert_eq!(found.len(), 1);
//! assert_eq!(found[0].seq, 42);
//! let (seq, loaded) = checkpoint::load(&found[0].path).expect("marker validates");
//! assert_eq!((seq, loaded.as_str()), (42, state));
//!
//! std::fs::remove_dir_all(&dir)?;
//! # Ok::<(), std::io::Error>(())
//! ```

use std::fs::{self, File};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::wal::{crc32, fsync_dir};

/// Staging directory name; never treated as a valid checkpoint.
pub const TMP_DIR: &str = "checkpoint.tmp";

/// File holding the engine state JSON inside a checkpoint directory.
pub const STATE_FILE: &str = "state.json";

/// Validation marker file inside a checkpoint directory.
pub const MARKER_FILE: &str = "MARKER";

/// Checkpoint directory name for a WAL sequence number.
pub fn dir_name(seq: u64) -> String {
    format!("checkpoint.{seq:020}")
}

/// Parse a checkpoint directory name back to its sequence number.
pub fn parse_dir_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("checkpoint.")?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// A published checkpoint found on disk (not yet validated).
#[derive(Debug, Clone)]
pub struct CheckpointRef {
    /// Last WAL sequence number the checkpoint covers.
    pub seq: u64,
    /// The checkpoint directory.
    pub path: PathBuf,
}

/// List published checkpoints in `wal_dir`, oldest first. The staging
/// directory and anything with a malformed name are ignored.
pub fn list(wal_dir: &Path) -> std::io::Result<Vec<CheckpointRef>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(wal_dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_dir_name) {
            if entry.path().is_dir() {
                out.push(CheckpointRef {
                    seq,
                    path: entry.path(),
                });
            }
        }
    }
    out.sort_by_key(|c| c.seq);
    Ok(out)
}

/// Atomically publish a checkpoint covering WAL sequence `seq` with the
/// given engine state document. Returns the final checkpoint path.
pub fn publish(wal_dir: &Path, seq: u64, state: &str) -> std::io::Result<PathBuf> {
    let tmp = wal_dir.join(TMP_DIR);
    if tmp.exists() {
        fs::remove_dir_all(&tmp)?;
    }
    fs::create_dir_all(&tmp)?;

    let state_bytes = state.as_bytes();
    let marker = format!(
        "seq {seq}\ncrc {:08x}\nlen {}\n",
        crc32(state_bytes),
        state_bytes.len()
    );
    for (name, bytes) in [(STATE_FILE, state_bytes), (MARKER_FILE, marker.as_bytes())] {
        let mut f = File::create(tmp.join(name))?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fsync_dir(&tmp)?;

    // Deterministic mid-checkpoint crash window for the CI kill-9 gate:
    // the staged state exists but was not yet renamed into place.
    if let Ok(ms) = std::env::var("MOMA_CHECKPOINT_FAULT_DELAY_MS") {
        if let Ok(ms) = ms.trim().parse::<u64>() {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
    }

    let dest = wal_dir.join(dir_name(seq));
    if dest.exists() {
        fs::remove_dir_all(&dest)?;
    }
    fs::rename(&tmp, &dest)?;
    fsync_dir(wal_dir)?;
    Ok(dest)
}

/// Load and validate a checkpoint: returns `(seq, state_json)` or a
/// reason the checkpoint must be skipped.
pub fn load(path: &Path) -> Result<(u64, String), String> {
    let marker = fs::read_to_string(path.join(MARKER_FILE))
        .map_err(|e| format!("unreadable marker: {e}"))?;
    let mut seq = None;
    let mut crc = None;
    let mut len = None;
    for line in marker.lines() {
        match line.split_once(' ') {
            Some(("seq", v)) => seq = v.trim().parse::<u64>().ok(),
            Some(("crc", v)) => crc = u32::from_str_radix(v.trim(), 16).ok(),
            Some(("len", v)) => len = v.trim().parse::<u64>().ok(),
            _ => {}
        }
    }
    let (seq, crc, len) = match (seq, crc, len) {
        (Some(s), Some(c), Some(l)) => (s, c, l),
        _ => return Err("malformed marker".into()),
    };
    let mut state = Vec::new();
    File::open(path.join(STATE_FILE))
        .and_then(|mut f| f.read_to_end(&mut state))
        .map_err(|e| format!("unreadable state: {e}"))?;
    if state.len() as u64 != len {
        return Err(format!(
            "state length mismatch: marker says {len}, file has {}",
            state.len()
        ));
    }
    if crc32(&state) != crc {
        return Err("state CRC mismatch".into());
    }
    let state = String::from_utf8(state).map_err(|_| "state is not UTF-8".to_string())?;
    Ok((seq, state))
}

/// Delete all but the `keep` newest checkpoints and any stale staging
/// directory, fsync the WAL directory, and return the survivors oldest
/// first. Keeping more than one means recovery can fall back when the
/// newest checkpoint is lost or corrupt.
pub fn retain_newest(wal_dir: &Path, keep: usize) -> std::io::Result<Vec<CheckpointRef>> {
    let mut all = list(wal_dir)?;
    let tmp = wal_dir.join(TMP_DIR);
    let mut removed = tmp.exists();
    if removed {
        fs::remove_dir_all(&tmp)?;
    }
    while all.len() > keep {
        let victim = all.remove(0);
        fs::remove_dir_all(&victim.path)?;
        removed = true;
    }
    if removed {
        fsync_dir(wal_dir)?;
    }
    Ok(all)
}

/// Remove every checkpoint (and the staging directory) — used when a
/// fresh WAL is created over an old log directory.
pub fn clear_all(wal_dir: &Path) -> std::io::Result<()> {
    for cp in list(wal_dir)? {
        fs::remove_dir_all(&cp.path)?;
    }
    let tmp = wal_dir.join(TMP_DIR);
    if tmp.exists() {
        fs::remove_dir_all(&tmp)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("moma_ckpt_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn publish_load_roundtrip_and_retention() {
        let dir = tmp("roundtrip");
        publish(&dir, 5, "{\"a\":1}").unwrap();
        publish(&dir, 9, "{\"a\":2}").unwrap();
        publish(&dir, 12, "{\"a\":3}").unwrap();
        let all = list(&dir).unwrap();
        assert_eq!(all.iter().map(|c| c.seq).collect::<Vec<_>>(), [5, 9, 12]);
        let (seq, state) = load(&all[2].path).unwrap();
        assert_eq!((seq, state.as_str()), (12, "{\"a\":3}"));

        let kept = retain_newest(&dir, 2).unwrap();
        assert_eq!(kept.iter().map(|c| c.seq).collect::<Vec<_>>(), [9, 12]);
        assert!(!dir.join(dir_name(5)).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_marker_or_state_is_rejected() {
        let dir = tmp("corrupt");
        let path = publish(&dir, 7, "important state").unwrap();

        // Flip one state byte: CRC catches it.
        let state_path = path.join(STATE_FILE);
        let mut bytes = fs::read(&state_path).unwrap();
        bytes[3] ^= 0x40;
        fs::write(&state_path, &bytes).unwrap();
        assert!(load(&path).unwrap_err().contains("CRC"));

        // Truncate the marker: malformed.
        fs::write(path.join(MARKER_FILE), "seq 7\n").unwrap();
        assert!(load(&path).unwrap_err().contains("malformed"));

        // A leftover staging dir is never listed as a checkpoint.
        fs::create_dir_all(dir.join(TMP_DIR)).unwrap();
        assert_eq!(list(&dir).unwrap().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
