//! `moma_load` — load generator and protocol driver for `moma serve`.
//!
//! Modes (first argument):
//!
//! * `load`     — latency/throughput measurement: N reader threads issue
//!   `query`/`stats` while the main thread streams deltas; reports
//!   p50/p99 per class and overall throughput, optionally into a
//!   `BENCH_*.json` report with a trend gate against a baseline.
//! * `smoke`    — endpoint conformance: drives every endpoint with a
//!   fixed, deterministic command sequence and asserts the responses.
//! * `stream`   — deterministic delta traffic: generates the evolving
//!   scenario's delta stream against a local shadow registry (so the
//!   i-th delta is identical across runs with the same seeds) and sends
//!   each one as a `delta` command.
//! * `shard`    — multi-shard write-scaling bench: boots an embedded
//!   sharded server, places one self-match per source group via explicit
//!   shard hints, streams deltas from one writer thread per group and
//!   compares write throughput at `--shards N` against a 1-shard run of
//!   the same workload; writes the `serve_shard` report section.
//! * `scatter`  — sharded-server priming: one hinted self-match per
//!   shard over a distinct source, then deterministic deltas to each,
//!   so the sharded crash-recovery gate has traffic on every shard.
//! * `stat`     — print one numeric field of the `stats` response
//!   (dot-path, e.g. `commands.delta`).
//! * `dump`     — ask the server to persist its state to a directory.
//! * `checkpoint` — ask the server to publish a WAL checkpoint and
//!   prune covered segments.
//! * `shutdown` — stop the server.
//!
//! Exit codes: 0 ok, 1 assertion/usage failure, 3 connection lost
//! mid-stream (expected by the crash-recovery CI harness).

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use moma_datagen::{DeltaStream, EvolveConfig, Scenario, WorldConfig};
use moma_server::{protocol, Client, Json};

const USAGE: &str = "\
usage: moma_load <mode> [options]

modes:
  load      [--addr H:P] [--readers 4] [--requests 200] [--deltas 30]
            [--seed 11] [--churn 0.02] [--scenario-seed 7] [--threads N]
            [--report FILE] [--baseline FILE]
  smoke      --addr H:P
  batch      --addr H:P [--items 6] [--singles 0|1]
            apply a deterministic delta batch (one batch_delta frame, or
            the same items as N single deltas with --singles 1) and
            assert batch_query responses are byte-identical to
            singleton queries
  overload  [--conn-cap 8] [--sleep-ms 1500] [--writers 4]
            embedded-server overload e2e: saturate the write budget,
            assert explicit overloaded/busy frames, responsive reads,
            recovery, and zero panics
  shard     [--shards 4] [--deltas 300] [--ops 1] [--threads 1] [--wal 0|1]
            [--report FILE] [--baseline FILE]
            embedded multi-shard write-scaling bench: per-group writer
            threads stream deltas at --shards N and at 1 shard; the
            N-shard run must beat the 1-shard baseline
  stream     --addr H:P [--steps 50] [--seed 11] [--churn 0.02]
            [--scenario-seed 7] [--sleep-ms 0]
  scatter    --addr H:P [--shards 4] [--deltas 6]
            prime each shard of a sharded server: one hinted self-match
            per shard over a distinct source, then deterministic deltas
            to all of them
  stat       --addr H:P --key dotted.path
  dump       --addr H:P --dir DIR
  checkpoint --addr H:P
  shutdown   --addr H:P
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(mode) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(1);
    };
    let opts = match parse_opts(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("moma_load: {e}\n{USAGE}");
            return ExitCode::from(1);
        }
    };
    let result = match mode.as_str() {
        "load" => cmd_load(&opts),
        "smoke" => cmd_smoke(&opts),
        "batch" => cmd_batch(&opts),
        "overload" => cmd_overload(&opts),
        "shard" => cmd_shard(&opts),
        "stream" => cmd_stream(&opts),
        "scatter" => cmd_scatter(&opts),
        "stat" => cmd_stat(&opts),
        "dump" => cmd_dump(&opts),
        "checkpoint" => cmd_checkpoint(&opts),
        "shutdown" => cmd_shutdown(&opts),
        other => Err(format!("unknown mode `{other}`\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("moma_load {mode}: {e}");
            ExitCode::from(1)
        }
    }
}

type Opts = BTreeMap<String, String>;

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut out = Opts::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let key = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got `{flag}`"))?;
        let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        out.insert(key.to_owned(), value.clone());
    }
    Ok(out)
}

fn opt_num<T: std::str::FromStr>(opts: &Opts, key: &str, default: T) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|e| format!("--{key}: {e}")),
    }
}

fn connect(opts: &Opts) -> Result<Client, String> {
    let addr = opts.get("addr").ok_or("missing --addr")?;
    Client::connect_retry(addr, Duration::from_secs(10)).map_err(|e| format!("connect {addr}: {e}"))
}

fn ensure(cond: bool, msg: &str) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(format!("assertion failed: {msg}"))
    }
}

fn is_ok(resp: &Json) -> bool {
    resp.get("ok").and_then(Json::as_bool) == Some(true)
}

// ---- smoke ----------------------------------------------------------

/// Fixed, deterministic endpoint-conformance sequence. Running it twice
/// against two fresh servers of the same scenario produces identical
/// server states — the crash-recovery harness relies on that.
fn cmd_smoke(opts: &Opts) -> Result<ExitCode, String> {
    use moma_model::{AttrValue, DeltaOp};
    let mut c = connect(opts)?;
    let call = |c: &mut Client, req: &Json| c.call(req).map_err(|e| format!("call: {e}"));

    let r = call(&mut c, &protocol::bare_request("ping"))?;
    ensure(is_ok(&r), "ping")?;
    let r = call(&mut c, &protocol::bare_request("stats"))?;
    ensure(is_ok(&r), "stats")?;
    ensure(
        !r.get("sources")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .is_empty(),
        "stats reports sources",
    )?;

    // Three matchers + one composition.
    let r = call(
        &mut c,
        &protocol::match_request(
            "m_dblp_acm",
            "Publication@DBLP",
            "Publication@ACM",
            "title",
            "title",
            "trigram",
            0.75,
        ),
    )?;
    ensure(is_ok(&r), &format!("match m_dblp_acm: {r}"))?;
    ensure(
        r.get("incremental").and_then(Json::as_bool) == Some(true),
        "trigram matcher is incrementally maintainable",
    )?;
    let r = call(
        &mut c,
        &protocol::match_request(
            "m_acm_gs",
            "Publication@ACM",
            "Publication@GS",
            "title",
            "title",
            "trigram",
            0.75,
        ),
    )?;
    ensure(is_ok(&r), &format!("match m_acm_gs: {r}"))?;
    let r = call(
        &mut c,
        &protocol::match_request(
            "m_tfidf",
            "Publication@ACM",
            "Publication@GS",
            "title",
            "title",
            "tfidf",
            0.6,
        ),
    )?;
    ensure(is_ok(&r), &format!("match m_tfidf: {r}"))?;
    ensure(
        r.get("incremental").and_then(Json::as_bool) == Some(false),
        "tfidf matcher reports incremental: false",
    )?;
    let r = call(
        &mut c,
        &protocol::compose_request("c_dblp_gs", "m_dblp_acm", "m_acm_gs", "min", "max"),
    )?;
    ensure(is_ok(&r), &format!("compose c_dblp_gs: {r}"))?;

    // Queries: happy path, filtered, and the error case.
    let r = call(&mut c, &protocol::query_request("c_dblp_gs", 5, None))?;
    ensure(is_ok(&r), &format!("query c_dblp_gs: {r}"))?;
    ensure(
        r.get("rows").and_then(Json::as_arr).unwrap_or(&[]).len() <= 5,
        "query respects limit",
    )?;
    let r = call(&mut c, &protocol::query_request("m_acm_gs", 0, Some(0.95)))?;
    ensure(is_ok(&r), "query with min_sim")?;
    let r = call(&mut c, &protocol::query_request("no_such_mapping", 0, None))?;
    ensure(!is_ok(&r), "query of unknown mapping fails")?;

    // Delta 1: two adds against GS. The trigram state patches
    // incrementally; the TF-IDF state must report a full re-match.
    let ops = vec![
        DeltaOp::Add {
            id: "smoke_g1".into(),
            fields: vec![(
                "title".into(),
                AttrValue::Text("Snapshot isolation for mapping repositories".into()),
            )],
        },
        DeltaOp::Add {
            id: "smoke_g2".into(),
            fields: vec![(
                "title".into(),
                AttrValue::Text("Write-ahead logging for object matching services".into()),
            )],
        },
    ];
    let r = call(&mut c, &protocol::delta_request("Publication@GS", &ops))?;
    ensure(is_ok(&r), &format!("delta 1: {r}"))?;
    let empty: [Json; 0] = [];
    let touched = r.get("mappings").and_then(Json::as_arr).unwrap_or(&empty);
    let by_name = |name: &str| touched.iter().find(|m| m.str_field("name") == Some(name));
    let acm_gs = by_name("m_acm_gs").ok_or("delta 1 touches m_acm_gs")?;
    ensure(
        acm_gs.get("incremental").and_then(Json::as_bool) == Some(true),
        "m_acm_gs patched incrementally",
    )?;
    let tfidf = by_name("m_tfidf").ok_or("delta 1 touches m_tfidf")?;
    ensure(
        tfidf.get("incremental").and_then(Json::as_bool) == Some(false)
            && tfidf.get("full_rematch").and_then(Json::as_bool) == Some(true),
        "m_tfidf reports full re-match fallback",
    )?;
    ensure(
        by_name("m_dblp_acm").is_none(),
        "m_dblp_acm untouched by a GS delta",
    )?;
    let refreshed = r.get("refreshed").and_then(Json::as_arr).unwrap_or(&empty);
    ensure(
        refreshed.iter().any(|n| n.as_str() == Some("c_dblp_gs")),
        "derived c_dblp_gs refreshed after the delta",
    )?;

    // Delta 2: update + remove of the instances added above.
    let ops = vec![
        DeltaOp::Update {
            id: "smoke_g1".into(),
            attr: "title".into(),
            value: Some(AttrValue::Text(
                "Snapshot-isolated reads for mapping repositories".into(),
            )),
        },
        DeltaOp::Remove {
            id: "smoke_g2".into(),
        },
    ];
    let r = call(&mut c, &protocol::delta_request("Publication@GS", &ops))?;
    ensure(is_ok(&r), &format!("delta 2: {r}"))?;
    let applied = r.get("applied").ok_or("delta 2 reports applied counts")?;
    ensure(
        applied.num_field("updated") == Some(1.0) && applied.num_field("removed") == Some(1.0),
        "delta 2 applied counts",
    )?;

    // Checkpoint: a WAL-backed server publishes a state dump and prunes
    // covered segments; a memory-only server refuses with an error that
    // names the missing WAL. Either way the command counters and the
    // replayable state are untouched (checkpoint is not WAL-logged).
    let r = call(&mut c, &protocol::checkpoint_request())?;
    if is_ok(&r) {
        ensure(
            r.get("seq").and_then(Json::as_u64).is_some(),
            &format!("checkpoint reports a seq: {r}"),
        )?;
    } else {
        let msg = r.str_field("error").unwrap_or("");
        ensure(
            msg.contains("write-ahead log"),
            &format!("checkpoint refusal names the WAL: {r}"),
        )?;
    }

    // Stats reflect the durable command counters.
    let r = call(&mut c, &protocol::bare_request("stats"))?;
    let commands = r.get("commands").ok_or("stats has commands")?;
    ensure(
        commands.num_field("match") == Some(3.0)
            && commands.num_field("compose") == Some(1.0)
            && commands.num_field("delta") == Some(2.0),
        &format!("command counters after smoke: {commands}"),
    )?;
    eprintln!("smoke: ok (3 matchers, 1 compose, 2 deltas, 1 checkpoint, counters verified)");
    Ok(ExitCode::SUCCESS)
}

// ---- batch ----------------------------------------------------------

/// Deterministic delta items for the batch leg: the same instances in
/// the same order regardless of how they are framed, so a `batch_delta`
/// run and a `--singles 1` run leave the server (and its WAL replay) in
/// identical states.
fn batch_ops(items: usize) -> Vec<Vec<moma_model::DeltaOp>> {
    use moma_model::{AttrValue, DeltaOp};
    (0..items)
        .map(|i| {
            vec![DeltaOp::Add {
                id: format!("batch_g{i}"),
                fields: vec![(
                    "title".into(),
                    AttrValue::Text(format!("Group commit batch record number {i}")),
                )],
            }]
        })
        .collect()
}

/// Apply a deterministic batch of deltas — as one `batch_delta` frame
/// (default) or as the same items sent singly (`--singles 1`) — and
/// assert `batch_query` responses are byte-identical to singleton
/// `query` responses. The crash-recovery harness runs one server with
/// each framing and diffs the final dumps.
fn cmd_batch(opts: &Opts) -> Result<ExitCode, String> {
    let items: usize = opt_num(opts, "items", 6)?;
    let singles: u64 = opt_num(opts, "singles", 0)?;
    ensure(items > 0, "--items must be positive")?;
    let mut c = connect(opts)?;
    let gs_name = "Publication@GS";

    let ops = batch_ops(items);
    if singles == 1 {
        for (i, item_ops) in ops.iter().enumerate() {
            let r = c
                .call(&protocol::delta_request(gs_name, item_ops))
                .map_err(|e| format!("single delta {i}: {e}"))?;
            ensure(is_ok(&r), &format!("single delta {i}: {r}"))?;
        }
    } else {
        let req = protocol::batch_delta_request(
            ops.iter()
                .map(|item_ops| protocol::delta_item(gs_name, item_ops))
                .collect(),
        );
        let r = c.call(&req).map_err(|e| format!("batch_delta: {e}"))?;
        ensure(is_ok(&r), &format!("batch_delta: {r}"))?;
        ensure(
            r.get("count").and_then(Json::as_u64) == Some(items as u64),
            &format!("batch_delta count == {items}: {r}"),
        )?;
        let results = r.get("results").and_then(Json::as_arr).unwrap_or(&[]);
        for (i, item) in results.iter().enumerate() {
            ensure(is_ok(item), &format!("batch_delta item {i}: {item}"))?;
        }
        // With a WAL behind the server the whole batch is one group
        // commit: N consecutive sequence numbers from one append.
        if let (Some(first), Some(last)) = (
            r.get("first_seq").and_then(Json::as_u64),
            r.get("last_seq").and_then(Json::as_u64),
        ) {
            ensure(
                last - first + 1 == items as u64,
                &format!("batch_delta seqs contiguous: first {first} last {last}"),
            )?;
        }
    }

    // batch_query responses must be byte-identical to the singleton
    // query responses for the same items.
    let query_items = vec![
        protocol::query_item("m_acm_gs", 5, None),
        protocol::query_item("c_dblp_gs", 3, None),
        protocol::query_item("m_acm_gs", 0, Some(0.95)),
    ];
    let batched = c
        .batch_query(query_items.clone())
        .map_err(|e| format!("batch_query: {e}"))?;
    ensure(
        batched.len() == query_items.len(),
        "batch_query result count",
    )?;
    for (i, item) in query_items.iter().enumerate() {
        let mut single = item.clone();
        if let Json::Obj(fields) = &mut single {
            fields.insert(0, ("cmd".to_owned(), Json::Str("query".to_owned())));
        }
        let r = c.call(&single).map_err(|e| format!("query {i}: {e}"))?;
        ensure(
            batched[i].to_string() == r.to_string(),
            &format!(
                "batch_query item {i} byte-identical to singleton query: {} vs {r}",
                batched[i]
            ),
        )?;
    }

    eprintln!(
        "batch: ok ({items} deltas as {}, {} queries byte-identical)",
        if singles == 1 {
            "singles".to_owned()
        } else {
            "one batch_delta group commit".to_owned()
        },
        query_items.len(),
    );
    println!("BATCH_OK");
    Ok(ExitCode::SUCCESS)
}

// ---- overload -------------------------------------------------------

/// Embedded-server overload end-to-end: a tiny write budget plus a
/// deliberately slow writer (`debug_sleep_write`) force `overloaded`
/// responses on concurrent deltas while reads keep answering; a
/// connection-cap sweep forces a `busy` refusal frame; afterwards a
/// retried delta succeeds and stats show zero panics (`degraded:
/// false`).
fn cmd_overload(opts: &Opts) -> Result<ExitCode, String> {
    use moma_model::{AttrValue, DeltaOp};
    let conn_cap: u64 = opt_num(opts, "conn-cap", 8)?;
    let sleep_ms: u64 = opt_num(opts, "sleep-ms", 1500)?;
    let writers: usize = opt_num(opts, "writers", 4)?;
    ensure(conn_cap >= 2, "--conn-cap must be at least 2")?;

    let s = shadow_scenario(opts)?;
    let engine = moma_server::Engine::new(s.registry, moma_core::exec::Parallelism::from_env());
    let limits = moma_server::Limits {
        max_connections: conn_cap,
        max_pending_writes: 1,
        max_pending_reads: 256,
        retry_after_ms: 25,
        debug_commands: true,
    };
    let handle = moma_server::spawn_with_limits(engine, "127.0.0.1:0", limits)
        .map_err(|e| format!("spawn server: {e}"))?;
    let addr = handle.addr.to_string();

    let mut c = Client::connect_retry(&addr, Duration::from_secs(10))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    c.call_ok(&protocol::match_request(
        "m_load",
        "Publication@DBLP",
        "Publication@GS",
        "title",
        "title",
        "trigram",
        0.75,
    ))
    .map_err(|e| e.to_string())?;

    // Occupy the single write slot with a slow writer.
    let sleeper_addr = addr.clone();
    let sleeper = std::thread::spawn(move || -> Result<(), String> {
        let mut c = Client::connect_retry(&sleeper_addr, Duration::from_secs(10))
            .map_err(|e| format!("sleeper connect: {e}"))?;
        let req = Json::obj(vec![
            ("cmd", Json::Str("debug_sleep_write".to_owned())),
            ("ms", Json::Uint(sleep_ms)),
        ]);
        let r = c.call(&req).map_err(|e| format!("sleeper call: {e}"))?;
        if !is_ok(&r) {
            return Err(format!("debug_sleep_write: {r}"));
        }
        Ok(())
    });
    std::thread::sleep(Duration::from_millis(sleep_ms.min(400) / 2));

    // Writer flood while the slot is held: every admitted-or-rejected
    // delta must get an explicit answer — `overloaded` with a
    // retry-after hint, never a hang, never a panic.
    let window = Instant::now();
    let mut writer_threads = Vec::new();
    for w in 0..writers {
        let addr = addr.clone();
        writer_threads.push(std::thread::spawn(move || -> Result<(u64, u64), String> {
            let mut c = Client::connect_retry(&addr, Duration::from_secs(10))
                .map_err(|e| format!("writer {w}: connect: {e}"))?;
            let (mut overloaded, mut applied) = (0u64, 0u64);
            for k in 0..10 {
                let ops = vec![DeltaOp::Add {
                    id: format!("ovl_w{w}_{k}"),
                    fields: vec![(
                        "title".into(),
                        AttrValue::Text(format!("overload probe {w}/{k}")),
                    )],
                }];
                let req = protocol::delta_request("Publication@GS", &ops);
                let r = c
                    .call(&req)
                    .map_err(|e| format!("writer {w} delta {k}: {e}"))?;
                if r.get("overloaded").and_then(Json::as_bool) == Some(true) {
                    ensure(
                        r.get("retry_after_ms").and_then(Json::as_u64).is_some(),
                        "overloaded response carries retry_after_ms",
                    )?;
                    overloaded += 1;
                } else if is_ok(&r) {
                    applied += 1;
                } else {
                    return Err(format!("writer {w} delta {k}: {r}"));
                }
            }
            Ok((overloaded, applied))
        }));
    }

    // Reads stay responsive throughout the write-side overload.
    let mut read_ok = 0u64;
    while window.elapsed() < Duration::from_millis(sleep_ms / 2) {
        let r = c
            .call(&protocol::query_request("m_load", 5, None))
            .map_err(|e| format!("read during overload: {e}"))?;
        ensure(is_ok(&r), &format!("read during overload: {r}"))?;
        read_ok += 1;
        std::thread::sleep(Duration::from_millis(10));
    }

    let (mut overloaded, mut applied) = (0u64, 0u64);
    for t in writer_threads {
        let (o, a) = t.join().map_err(|_| "writer thread panicked")??;
        overloaded += o;
        applied += a;
    }
    sleeper.join().map_err(|_| "sleeper thread panicked")??;
    ensure(
        overloaded > 0,
        &format!("saw overloaded responses (overloaded {overloaded}, applied {applied})"),
    )?;
    ensure(read_ok > 0, "reads answered during the overload window")?;

    // Recovery: with the slot free again a retried delta goes through.
    let mut recovered = false;
    for _ in 0..200 {
        let ops = vec![DeltaOp::Add {
            id: "ovl_recovery".into(),
            fields: vec![("title".into(), AttrValue::Text("recovery probe".into()))],
        }];
        let r = c
            .call(&protocol::delta_request("Publication@GS", &ops))
            .map_err(|e| format!("recovery delta: {e}"))?;
        if is_ok(&r) {
            recovered = true;
            break;
        }
        ensure(
            r.get("overloaded").and_then(Json::as_bool) == Some(true),
            &format!("recovery delta rejected without overloaded flag: {r}"),
        )?;
        std::thread::sleep(Duration::from_millis(25));
    }
    ensure(recovered, "delta succeeds after the overload window")?;

    // Connection cap: hold idle connections until a fresh one is
    // refused with a one-frame `busy` answer.
    let mut held = Vec::new();
    let mut saw_busy = false;
    for i in 0..conn_cap + 2 {
        let mut extra = Client::connect_retry(&addr, Duration::from_secs(10))
            .map_err(|e| format!("cap connection {i}: {e}"))?;
        match extra.call(&protocol::bare_request("ping")) {
            Ok(r) if r.get("busy").and_then(Json::as_bool) == Some(true) => {
                ensure(
                    r.get("retry_after_ms").and_then(Json::as_u64).is_some(),
                    "busy refusal carries retry_after_ms",
                )?;
                saw_busy = true;
                break;
            }
            Ok(r) => {
                ensure(is_ok(&r), &format!("cap connection {i} ping: {r}"))?;
                held.push(extra);
            }
            // The refusal frame may race our ping write; a clean
            // close counts once at least the cap is reached.
            Err(_) if i >= conn_cap - 1 => {
                saw_busy = true;
                break;
            }
            Err(e) => return Err(format!("cap connection {i}: {e}")),
        }
    }
    ensure(saw_busy, "connection past the cap got a busy refusal")?;
    drop(held);

    // Zero server panics: the engine never entered degraded mode, and
    // the refusals were counted.
    let r = c
        .call_ok(&protocol::bare_request("stats"))
        .map_err(|e| e.to_string())?;
    ensure(
        r.get("degraded").and_then(Json::as_bool) == Some(false),
        &format!("server not degraded after overload: {r}"),
    )?;
    ensure(
        r.get("overloaded_rejections")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            > 0,
        "stats counted overloaded rejections",
    )?;
    ensure(
        r.get("busy_refusals").and_then(Json::as_u64).unwrap_or(0) > 0,
        "stats counted busy refusals",
    )?;
    handle.stop();

    eprintln!(
        "overload: ok ({overloaded} overloaded, {applied} applied, {read_ok} reads ok, \
         busy refusal seen, degraded=false)"
    );
    println!("OVERLOAD_OK");
    Ok(ExitCode::SUCCESS)
}

// ---- shard ----------------------------------------------------------

/// One write-scaling trial: boot `shards` engines over clones of the
/// scenario registry (each with its own WAL unless `--wal 0`), place
/// one self-match per source group via an explicit shard hint
/// (`group k → shard k % shards`), then run one writer thread per group
/// streaming `deltas` single-delta commands of `ops` adds each. Returns
/// `(write_rps, wall_seconds)` over the write phase only.
fn shard_trial(
    shards: usize,
    groups: &[(&str, &str)],
    deltas: usize,
    ops: usize,
    par: moma_core::exec::Parallelism,
    wal_base: Option<&std::path::Path>,
) -> Result<(f64, f64), String> {
    use moma_model::{AttrValue, DeltaOp};
    let mut engines = Vec::with_capacity(shards);
    for i in 0..shards {
        let s = {
            let mut cfg = WorldConfig::small();
            cfg.seed = 7;
            Scenario::generate(cfg)
        };
        let mut engine = moma_server::Engine::new(s.registry, par);
        if let Some(base) = wal_base {
            let dir = base.join(format!("shard.{i}"));
            engine
                .wal_create(&dir, moma_server::DurabilityPolicy::default())
                .map_err(|e| format!("wal {}: {e}", dir.display()))?;
        }
        engines.push(engine);
    }
    let handle = moma_server::spawn_sharded(engines, "127.0.0.1:0", moma_server::Limits::default())
        .map_err(|e| format!("spawn sharded server: {e}"))?;
    let addr = handle.addr.to_string();

    let mut c = Client::connect_retry(&addr, Duration::from_secs(10))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    for (k, (source, attr)) in groups.iter().enumerate() {
        let req = protocol::with_shard(
            protocol::match_request(
                &format!("m_shard_{k}"),
                source,
                source,
                attr,
                attr,
                "trigram",
                0.9,
            ),
            k % shards,
        );
        let r = c
            .call_ok(&req)
            .map_err(|e| format!("group {k} match: {e}"))?;
        if shards > 1 {
            ensure(
                r.get("shard").and_then(Json::as_u64) == Some((k % shards) as u64),
                &format!("group {k} placed on its hinted shard: {r}"),
            )?;
        }
    }

    // Writers connect and then rendezvous on a barrier, so the timed
    // window measures only the write phase — not connection setup or
    // the accept loop's poll latency.
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(groups.len() + 1));
    let mut writers = Vec::new();
    for (k, (source, attr)) in groups.iter().enumerate() {
        let addr = addr.clone();
        let source = source.to_string();
        let attr = attr.to_string();
        let barrier = std::sync::Arc::clone(&barrier);
        writers.push(std::thread::spawn(move || -> Result<(), String> {
            let mut c = Client::connect_retry(&addr, Duration::from_secs(10))
                .map_err(|e| format!("writer {k}: connect: {e}"))?;
            c.call_ok(&protocol::bare_request("ping"))
                .map_err(|e| format!("writer {k}: ping: {e}"))?;
            barrier.wait();
            for step in 0..deltas {
                let ops: Vec<DeltaOp> = (0..ops)
                    .map(|j| DeltaOp::Add {
                        id: format!("sb_{k}_{step}_{j}"),
                        fields: vec![(
                            attr.clone(),
                            AttrValue::Text(format!("shard bench probe {k} {step} {j}")),
                        )],
                    })
                    .collect();
                let r = c
                    .call(&protocol::delta_request(&source, &ops))
                    .map_err(|e| format!("writer {k} delta {step}: {e}"))?;
                if !is_ok(&r) {
                    return Err(format!("writer {k} delta {step}: {r}"));
                }
            }
            Ok(())
        }));
    }
    barrier.wait();
    let t0 = Instant::now();
    for w in writers {
        w.join().map_err(|_| "writer thread panicked")??;
    }
    let wall = t0.elapsed().as_secs_f64();
    let total = (groups.len() * deltas) as f64;

    // The aggregate stats must account every delta exactly once (the
    // repl exclusion invariant) and report the shard layout.
    let stats = c
        .call_ok(&protocol::bare_request("stats"))
        .map_err(|e| e.to_string())?;
    let counted = stats
        .get("commands")
        .and_then(|c| c.get("delta"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    ensure(
        counted == total as u64,
        &format!("aggregate commands.delta {counted} == {total} deltas sent"),
    )?;
    ensure(
        stats.get("shard_count").and_then(Json::as_u64) == Some(shards as u64),
        &format!("stats reports shard_count {shards}"),
    )?;
    ensure(
        stats.get("degraded").and_then(Json::as_bool) == Some(false),
        "server not degraded after the write phase",
    )?;
    handle.stop();
    Ok((total / wall.max(1e-9), wall))
}

fn cmd_shard(opts: &Opts) -> Result<ExitCode, String> {
    let shards: usize = opt_num(opts, "shards", 4)?;
    let deltas: usize = opt_num(opts, "deltas", 300)?;
    let ops: usize = opt_num(opts, "ops", 1)?;
    let use_wal: u8 = opt_num(opts, "wal", 1)?;
    ensure(shards >= 2, "--shards must be at least 2")?;
    // Sequential engines by default: this bench isolates the *lock and
    // log* scaling of sharding (concurrent write locks, overlapping
    // per-shard fsyncs), which intra-delta parallelism would mask by
    // saturating the cores from a single shard.
    let par = match opt_num::<usize>(opts, "threads", 1)? {
        0 => moma_core::exec::Parallelism::from_env(),
        n => moma_core::exec::Parallelism::new(n),
    };
    // One group per writer: distinct sources so each group's ownership
    // claim (and therefore its write lock and WAL) lands on its hinted
    // shard and deltas never fan out.
    let groups: Vec<(&str, &str)> = vec![
        ("Publication@DBLP", "title"),
        ("Publication@ACM", "title"),
        ("Publication@GS", "title"),
        ("Author@DBLP", "name"),
    ];

    let tmp = std::env::temp_dir().join(format!("moma-shard-bench-{}", std::process::id()));
    let wal_base = |trial: &str| -> Result<Option<std::path::PathBuf>, String> {
        if use_wal == 0 {
            return Ok(None);
        }
        let dir = tmp.join(trial);
        std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        Ok(Some(dir))
    };

    eprintln!(
        "shard: 1-shard baseline ({} groups x {deltas} deltas x {ops} ops)...",
        groups.len()
    );
    let single_base = wal_base("single")?;
    let (single_rps, single_wall) =
        shard_trial(1, &groups, deltas, ops, par, single_base.as_deref())?;
    eprintln!("shard: 1 shard: {single_rps:.0} deltas/s ({single_wall:.2}s)");

    eprintln!("shard: {shards}-shard run...");
    let sharded_base = wal_base("sharded")?;
    let (shard_rps, shard_wall) =
        shard_trial(shards, &groups, deltas, ops, par, sharded_base.as_deref())?;
    eprintln!("shard: {shards} shards: {shard_rps:.0} deltas/s ({shard_wall:.2}s)");
    let _ = std::fs::remove_dir_all(&tmp);

    let speedup = shard_rps / single_rps.max(1e-9);
    eprintln!("shard: write scaling {speedup:.2}x over the 1-shard baseline");
    ensure(
        shard_rps > single_rps,
        &format!(
            "{shards}-shard write throughput ({shard_rps:.0} rps) beats the 1-shard \
             baseline ({single_rps:.0} rps)"
        ),
    )?;

    let report = Json::obj(vec![
        ("shards", Json::Num(shards as f64)),
        ("groups", Json::Num(groups.len() as f64)),
        ("deltas_per_group", Json::Num(deltas as f64)),
        ("ops_per_delta", Json::Num(ops as f64)),
        ("wal", Json::Bool(use_wal != 0)),
        ("single_shard_rps", Json::Num(round3(single_rps))),
        ("sharded_rps", Json::Num(round3(shard_rps))),
        ("speedup", Json::Num(round3(speedup))),
        ("single_shard_wall_s", Json::Num(round3(single_wall))),
        ("sharded_wall_s", Json::Num(round3(shard_wall))),
    ]);
    if let Some(path) = opts.get("report") {
        write_report(path, "serve_shard", &report)?;
        eprintln!("shard: serve_shard section written to {path}");
    }
    if let Some(baseline) = opts.get("baseline") {
        gate_shard_baseline(baseline, &report)?;
    }
    println!("SHARD_SCALING_OK {speedup:.2}");
    Ok(ExitCode::SUCCESS)
}

/// Trend gate for the `serve_shard` section: a missing baseline file or
/// section degrades to a warning (this is the first PR with the
/// section); a present one bounds throughput collapse and requires the
/// scaling property itself.
fn gate_shard_baseline(path: &str, report: &Json) -> Result<(), String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => {
            eprintln!("shard: warning: baseline {path} missing — serve_shard trend gate skipped");
            return Ok(());
        }
    };
    let base = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let Some(base) = base.get("serve_shard") else {
        eprintln!(
            "shard: warning: baseline {path} has no serve_shard section — trend gate skipped"
        );
        return Ok(());
    };
    for key in ["sharded_rps", "speedup"] {
        let (Some(b), Some(n)) = (base.num_field(key), report.num_field(key)) else {
            continue;
        };
        if b <= 0.0 {
            continue;
        }
        if n < b / 4.0 {
            return Err(format!(
                "serve_shard trend gate: {key} = {n:.3} vs baseline {b:.3} (bound {:.3})",
                b / 4.0
            ));
        }
        eprintln!("shard: trend {key}: {n:.3} (baseline {b:.3}) ok");
    }
    Ok(())
}

// ---- stream ---------------------------------------------------------

/// Build the local shadow of the server's generated scenario, so delta
/// generation is reproducible without reading server state.
fn shadow_scenario(opts: &Opts) -> Result<Scenario, String> {
    let mut cfg = WorldConfig::small();
    cfg.seed = opt_num(opts, "scenario-seed", 7u64)?;
    Ok(Scenario::generate(cfg))
}

fn cmd_stream(opts: &Opts) -> Result<ExitCode, String> {
    let steps: usize = opt_num(opts, "steps", 50)?;
    let seed: u64 = opt_num(opts, "seed", 11)?;
    let churn: f64 = opt_num(opts, "churn", 0.02)?;
    let sleep_ms: u64 = opt_num(opts, "sleep-ms", 0)?;
    let mut c = connect(opts)?;

    let s = shadow_scenario(opts)?;
    let mut registry = s.registry;
    let gs = s.ids.pub_gs;
    let gs_name = registry.lds(gs).name();
    let mut stream = DeltaStream::new(
        EvolveConfig {
            seed,
            ..EvolveConfig::with_churn(churn)
        },
        gs,
    );
    for step in 1..=steps {
        let delta = stream.next_delta(&registry);
        let req = protocol::delta_request(&gs_name, &delta.ops);
        let resp = match c.call(&req) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("stream: connection lost at step {step}/{steps}: {e}");
                return Ok(ExitCode::from(3));
            }
        };
        if !is_ok(&resp) {
            return Err(format!("stream step {step}: {resp}"));
        }
        registry
            .apply_delta(&delta)
            .map_err(|e| format!("shadow apply step {step}: {e}"))?;
        if sleep_ms > 0 {
            std::thread::sleep(Duration::from_millis(sleep_ms));
        }
    }
    eprintln!("stream: sent {steps} deltas (seed {seed}, churn {churn})");
    Ok(ExitCode::SUCCESS)
}

// ---- scatter --------------------------------------------------------

/// Prime every shard of a sharded server over TCP: one hinted
/// self-match per shard over a distinct source, then a deterministic
/// delta stream to each of those sources. The sequence is fixed, so a
/// clean rerun against a fresh server of the same scenario produces an
/// identical state — the sharded crash-recovery gate diffs dumps
/// across runs.
fn cmd_scatter(opts: &Opts) -> Result<ExitCode, String> {
    use moma_model::{AttrValue, DeltaOp};
    let shards: usize = opt_num(opts, "shards", 4)?;
    let deltas: usize = opt_num(opts, "deltas", 6)?;
    // Sources the smoke sequence never touches, so the explicit hints
    // cannot collide with ownership claimed by other traffic.
    let groups = [
        ("Author@DBLP", "name"),
        ("Author@ACM", "name"),
        ("Author@GS", "name"),
        ("Venue@DBLP", "name"),
    ];
    ensure(
        shards >= 1 && shards <= groups.len(),
        &format!("--shards must be 1..={}", groups.len()),
    )?;
    let mut c = connect(opts)?;

    for (k, (source, attr)) in groups.iter().take(shards).enumerate() {
        let req = protocol::with_shard(
            protocol::match_request(
                &format!("m_scatter_{k}"),
                source,
                source,
                attr,
                attr,
                "trigram",
                0.9,
            ),
            k,
        );
        let r = c.call(&req).map_err(|e| format!("match shard {k}: {e}"))?;
        ensure(is_ok(&r), &format!("scatter match on shard {k}: {r}"))?;
        // A single-shard server ignores the hint and omits the
        // annotation; a sharded one must honor it exactly.
        if let Some(placed) = r.get("shard").and_then(Json::as_u64) {
            ensure(
                placed == k as u64,
                &format!("match hinted to shard {k} ran on shard {placed}"),
            )?;
        }
    }
    for step in 0..deltas {
        for (k, (source, attr)) in groups.iter().take(shards).enumerate() {
            let ops = vec![DeltaOp::Add {
                id: format!("scatter_{k}_{step}"),
                fields: vec![(
                    (*attr).to_owned(),
                    AttrValue::Text(format!("scatter probe {k} {step}")),
                )],
            }];
            let r = c
                .call(&protocol::delta_request(source, &ops))
                .map_err(|e| format!("delta shard {k} step {step}: {e}"))?;
            ensure(
                is_ok(&r),
                &format!("scatter delta shard {k} step {step}: {r}"),
            )?;
        }
    }
    for k in 0..shards {
        let r = c
            .call(&protocol::query_request(&format!("m_scatter_{k}"), 1, None))
            .map_err(|e| format!("query shard {k}: {e}"))?;
        ensure(is_ok(&r), &format!("scatter query shard {k}: {r}"))?;
    }
    eprintln!(
        "scatter: primed {shards} shard(s), sent {} deltas",
        shards * deltas
    );
    Ok(ExitCode::SUCCESS)
}

// ---- stat / dump / shutdown ----------------------------------------

fn cmd_stat(opts: &Opts) -> Result<ExitCode, String> {
    let key = opts.get("key").ok_or("missing --key")?;
    let mut c = connect(opts)?;
    let r = c
        .call_ok(&protocol::bare_request("stats"))
        .map_err(|e| e.to_string())?;
    let mut node = &r;
    for part in key.split('.') {
        node = node
            .get(part)
            .ok_or_else(|| format!("stats has no `{key}`"))?;
    }
    match node {
        Json::Uint(n) => println!("{n}"),
        Json::Num(n) if n.fract() == 0.0 => println!("{}", *n as i64),
        other => println!("{other}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_dump(opts: &Opts) -> Result<ExitCode, String> {
    let dir = opts.get("dir").ok_or("missing --dir")?;
    let mut c = connect(opts)?;
    let r = c
        .call_ok(&protocol::dump_request(dir))
        .map_err(|e| e.to_string())?;
    eprintln!("dump: {r}");
    Ok(ExitCode::SUCCESS)
}

fn cmd_checkpoint(opts: &Opts) -> Result<ExitCode, String> {
    let mut c = connect(opts)?;
    let r = c
        .call_ok(&protocol::checkpoint_request())
        .map_err(|e| e.to_string())?;
    eprintln!("checkpoint: {r}");
    Ok(ExitCode::SUCCESS)
}

fn cmd_shutdown(opts: &Opts) -> Result<ExitCode, String> {
    let mut c = connect(opts)?;
    let r = c
        .call_ok(&protocol::bare_request("shutdown"))
        .map_err(|e| e.to_string())?;
    ensure(is_ok(&r), "shutdown acknowledged")?;
    Ok(ExitCode::SUCCESS)
}

// ---- load -----------------------------------------------------------

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = (p * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn cmd_load(opts: &Opts) -> Result<ExitCode, String> {
    let readers: usize = opt_num(opts, "readers", 4)?;
    let requests: usize = opt_num(opts, "requests", 200)?;
    let deltas: usize = opt_num(opts, "deltas", 30)?;
    let seed: u64 = opt_num(opts, "seed", 11)?;
    let churn: f64 = opt_num(opts, "churn", 0.02)?;

    // Embedded server unless --addr points at a running one.
    let s = shadow_scenario(opts)?;
    let mut shadow = s.registry.clone();
    let gs = s.ids.pub_gs;
    let gs_name = shadow.lds(gs).name();
    let (addr, handle) = match opts.get("addr") {
        Some(a) => (a.clone(), None),
        None => {
            let par = match opt_num::<usize>(opts, "threads", 0)? {
                0 => moma_core::exec::Parallelism::from_env(),
                n => moma_core::exec::Parallelism::new(n),
            };
            let engine = moma_server::Engine::new(s.registry, par);
            let handle = moma_server::spawn(engine, "127.0.0.1:0")
                .map_err(|e| format!("spawn server: {e}"))?;
            (handle.addr.to_string(), Some(handle))
        }
    };

    let mut c = Client::connect_retry(&addr, Duration::from_secs(10))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    let r = c
        .call_ok(&protocol::match_request(
            "m_load",
            "Publication@DBLP",
            "Publication@GS",
            "title",
            "title",
            "trigram",
            0.75,
        ))
        .map_err(|e| e.to_string())?;
    ensure(
        r.get("incremental").and_then(Json::as_bool) == Some(true),
        "m_load is incrementally maintainable",
    )?;
    let rows0 = r.num_field("rows").unwrap_or(0.0) as u64;

    // Reader fan-out: queries with varying limits, a stats call every
    // 16th request.
    let t0 = Instant::now();
    let mut reader_threads = Vec::new();
    for r_id in 0..readers {
        let addr = addr.clone();
        reader_threads.push(std::thread::spawn(
            move || -> Result<(Vec<f64>, Vec<f64>), String> {
                let mut c = Client::connect_retry(&addr, Duration::from_secs(10))
                    .map_err(|e| format!("reader {r_id}: connect: {e}"))?;
                let mut q_ms = Vec::with_capacity(requests);
                let mut s_ms = Vec::new();
                for i in 0..requests {
                    let t = Instant::now();
                    let (req, sink) = if i % 16 == 15 {
                        (protocol::bare_request("stats"), &mut s_ms)
                    } else {
                        let limit = (i % 97 + 1) as u64;
                        (protocol::query_request("m_load", limit, None), &mut q_ms)
                    };
                    let resp = c
                        .call(&req)
                        .map_err(|e| format!("reader {r_id} request {i}: {e}"))?;
                    if !is_ok(&resp) {
                        return Err(format!("reader {r_id} request {i}: {resp}"));
                    }
                    sink.push(t.elapsed().as_secs_f64() * 1e3);
                }
                Ok((q_ms, s_ms))
            },
        ));
    }

    // Writer on the main thread: deterministic delta stream.
    let mut stream = DeltaStream::new(
        EvolveConfig {
            seed,
            ..EvolveConfig::with_churn(churn)
        },
        gs,
    );
    let mut d_ms = Vec::with_capacity(deltas);
    let mut all_incremental = true;
    let empty: [Json; 0] = [];
    for step in 1..=deltas {
        let delta = stream.next_delta(&shadow);
        let req = protocol::delta_request(&gs_name, &delta.ops);
        let t = Instant::now();
        let resp = c.call(&req).map_err(|e| format!("delta {step}: {e}"))?;
        d_ms.push(t.elapsed().as_secs_f64() * 1e3);
        if !is_ok(&resp) {
            return Err(format!("delta {step}: {resp}"));
        }
        for m in resp
            .get("mappings")
            .and_then(Json::as_arr)
            .unwrap_or(&empty)
        {
            if m.str_field("name") == Some("m_load")
                && m.get("incremental").and_then(Json::as_bool) != Some(true)
            {
                all_incremental = false;
            }
        }
        shadow
            .apply_delta(&delta)
            .map_err(|e| format!("shadow apply {step}: {e}"))?;
    }

    let mut q_ms = Vec::new();
    let mut s_ms = Vec::new();
    for t in reader_threads {
        let (q, s) = t.join().map_err(|_| "reader thread panicked")??;
        q_ms.extend(q);
        s_ms.extend(s);
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let total_requests = q_ms.len() + s_ms.len() + d_ms.len();
    let throughput = total_requests as f64 / wall_s.max(1e-9);

    // Quiesced amortization passes: the same work framed as singleton
    // requests vs batches of `batch_size`, no concurrent traffic — the
    // per-op difference is pure frame/JSON/syscall overhead.
    use moma_model::{AttrValue, DeltaOp};
    let batch_size = 8usize;
    let passes = 40usize;
    let mut single_q_ms = Vec::with_capacity(passes);
    for _ in 0..passes {
        let t = Instant::now();
        for _ in 0..batch_size {
            let r = c
                .call(&protocol::query_request("m_load", 8, None))
                .map_err(|e| format!("singleton query pass: {e}"))?;
            ensure(is_ok(&r), "singleton query pass")?;
        }
        single_q_ms.push(t.elapsed().as_secs_f64() * 1e3 / batch_size as f64);
    }
    let mut batch_q_ms = Vec::with_capacity(passes);
    for _ in 0..passes {
        let items = vec![protocol::query_item("m_load", 8, None); batch_size];
        let t = Instant::now();
        let results = c
            .batch_query(items)
            .map_err(|e| format!("batch query pass: {e}"))?;
        batch_q_ms.push(t.elapsed().as_secs_f64() * 1e3 / batch_size as f64);
        ensure(results.iter().all(is_ok), "batch query pass")?;
    }
    let delta_passes = 10usize;
    let mut single_d_ms = Vec::with_capacity(delta_passes);
    let mut batch_d_ms = Vec::with_capacity(delta_passes);
    for pass in 0..delta_passes {
        let mk_ops = |tag: &str, j: usize| {
            vec![DeltaOp::Add {
                id: format!("bload_{tag}_{pass}_{j}"),
                fields: vec![(
                    "title".into(),
                    AttrValue::Text(format!("batch load probe {tag} {pass}/{j}")),
                )],
            }]
        };
        let t = Instant::now();
        for j in 0..batch_size {
            let r = c
                .call(&protocol::delta_request(&gs_name, &mk_ops("s", j)))
                .map_err(|e| format!("singleton delta pass: {e}"))?;
            ensure(is_ok(&r), "singleton delta pass")?;
        }
        single_d_ms.push(t.elapsed().as_secs_f64() * 1e3 / batch_size as f64);
        let items = (0..batch_size)
            .map(|j| protocol::delta_item(&gs_name, &mk_ops("b", j)))
            .collect();
        let t = Instant::now();
        let results = c
            .batch_delta(items)
            .map_err(|e| format!("batch delta pass: {e}"))?;
        batch_d_ms.push(t.elapsed().as_secs_f64() * 1e3 / batch_size as f64);
        ensure(results.iter().all(is_ok), "batch delta pass")?;
    }

    let rows_final = c
        .call_ok(&protocol::query_request("m_load", 1, None))
        .map_err(|e| e.to_string())?
        .num_field("total")
        .unwrap_or(0.0) as u64;
    if let Some(h) = handle {
        h.stop();
    }

    q_ms.sort_by(|a, b| a.total_cmp(b));
    d_ms.sort_by(|a, b| a.total_cmp(b));
    s_ms.sort_by(|a, b| a.total_cmp(b));
    single_q_ms.sort_by(|a, b| a.total_cmp(b));
    batch_q_ms.sort_by(|a, b| a.total_cmp(b));
    single_d_ms.sort_by(|a, b| a.total_cmp(b));
    batch_d_ms.sort_by(|a, b| a.total_cmp(b));
    let singleton_q_p50 = percentile(&single_q_ms, 0.50);
    let batch_q_p50 = percentile(&batch_q_ms, 0.50);
    let report = Json::obj(vec![
        ("readers", Json::Num(readers as f64)),
        ("requests_per_reader", Json::Num(requests as f64)),
        ("deltas", Json::Num(deltas as f64)),
        ("query_p50_ms", Json::Num(round3(percentile(&q_ms, 0.50)))),
        ("query_p99_ms", Json::Num(round3(percentile(&q_ms, 0.99)))),
        ("delta_p50_ms", Json::Num(round3(percentile(&d_ms, 0.50)))),
        ("delta_p99_ms", Json::Num(round3(percentile(&d_ms, 0.99)))),
        ("stats_p99_ms", Json::Num(round3(percentile(&s_ms, 0.99)))),
        ("throughput_rps", Json::Num(round3(throughput))),
        ("all_incremental", Json::Bool(all_incremental)),
        ("rows_initial", Json::Num(rows0 as f64)),
        ("rows_final", Json::Num(rows_final as f64)),
        ("batch_size", Json::Num(batch_size as f64)),
        ("singleton_query_p50_ms", Json::Num(round3(singleton_q_p50))),
        ("batch_query_per_op_p50_ms", Json::Num(round3(batch_q_p50))),
        (
            "batch_query_per_op_p99_ms",
            Json::Num(round3(percentile(&batch_q_ms, 0.99))),
        ),
        (
            "singleton_delta_per_op_p50_ms",
            Json::Num(round3(percentile(&single_d_ms, 0.50))),
        ),
        (
            "batch_delta_per_op_p50_ms",
            Json::Num(round3(percentile(&batch_d_ms, 0.50))),
        ),
        (
            "batch_delta_per_op_p99_ms",
            Json::Num(round3(percentile(&batch_d_ms, 0.99))),
        ),
        (
            "batch_query_speedup",
            Json::Num(round3(singleton_q_p50 / batch_q_p50.max(1e-9))),
        ),
    ]);
    eprintln!(
        "load: {} requests in {:.2}s ({:.0} req/s); query p50 {:.3} ms p99 {:.3} ms; \
         delta p50 {:.3} ms p99 {:.3} ms; incremental={}",
        total_requests,
        wall_s,
        throughput,
        percentile(&q_ms, 0.50),
        percentile(&q_ms, 0.99),
        percentile(&d_ms, 0.50),
        percentile(&d_ms, 0.99),
        all_incremental,
    );
    ensure(all_incremental, "m_load stayed on the incremental path")?;
    eprintln!(
        "load: batch amortization: query per-op p50 {:.3} ms (singleton {:.3} ms, {:.1}x); \
         delta per-op p50 {:.3} ms (singleton {:.3} ms)",
        batch_q_p50,
        singleton_q_p50,
        singleton_q_p50 / batch_q_p50.max(1e-9),
        percentile(&batch_d_ms, 0.50),
        percentile(&single_d_ms, 0.50),
    );
    ensure(
        batch_q_p50 < singleton_q_p50,
        &format!(
            "batch query per-op p50 ({batch_q_p50:.3} ms) beats singleton p50 \
             ({singleton_q_p50:.3} ms) at batch size {batch_size}"
        ),
    )?;

    if let Some(path) = opts.get("report") {
        write_report(path, "serve_load", &report)?;
        eprintln!("load: serve_load section written to {path}");
    }
    if let Some(baseline) = opts.get("baseline") {
        gate_against_baseline(baseline, &report)?;
    }
    Ok(ExitCode::SUCCESS)
}

fn round3(x: f64) -> f64 {
    (x * 1e3).round() / 1e3
}

/// Insert/replace one named section of a bench report. An existing
/// report is parsed and re-emitted (pretty-printed) with the section
/// added; a missing file becomes `{"<name>": ...}`.
fn write_report(path: &str, name: &str, section: &Json) -> Result<(), String> {
    let mut root = match std::fs::read_to_string(path) {
        Ok(text) => Json::parse(&text).map_err(|e| format!("{path}: {e}"))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Json::Obj(Vec::new()),
        Err(e) => return Err(format!("{path}: {e}")),
    };
    let Json::Obj(fields) = &mut root else {
        return Err(format!("{path}: report root is not an object"));
    };
    fields.retain(|(k, _)| k != name);
    fields.push((name.to_owned(), section.clone()));
    std::fs::write(path, root.pretty() + "\n").map_err(|e| format!("{path}: {e}"))
}

/// Trend gate: compare against the committed previous-PR report. A
/// missing baseline file or section degrades to a warning (first PR
/// with the section); a present baseline enforces generous bounds that
/// tolerate CI hardware variance but catch order-of-magnitude
/// regressions.
fn gate_against_baseline(path: &str, report: &Json) -> Result<(), String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => {
            eprintln!("load: warning: baseline {path} missing — serve_load trend gate skipped");
            return Ok(());
        }
    };
    let base = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let Some(base) = base.get("serve_load") else {
        eprintln!("load: warning: baseline {path} has no serve_load section — trend gate skipped");
        return Ok(());
    };
    let pairs = [
        ("query_p99_ms", false),
        ("delta_p99_ms", false),
        ("throughput_rps", true),
        ("batch_query_per_op_p50_ms", false),
    ];
    for (key, higher_is_better) in pairs {
        let (Some(b), Some(n)) = (base.num_field(key), report.num_field(key)) else {
            continue;
        };
        if b <= 0.0 {
            continue;
        }
        let (ok, bound) = if higher_is_better {
            (n >= b / 4.0, b / 4.0)
        } else {
            (n <= b * 4.0, b * 4.0)
        };
        if !ok {
            return Err(format!(
                "serve_load trend gate: {key} = {n:.3} vs baseline {b:.3} (bound {bound:.3})"
            ));
        }
        eprintln!("load: trend {key}: {n:.3} (baseline {b:.3}) ok");
    }
    Ok(())
}
