//! Request/response vocabulary of the serving protocol.
//!
//! Every request is a JSON object with a `"cmd"` field; every response
//! is a JSON object with an `"ok"` boolean (plus `"error"` when it is
//! `false`). This module holds the request **builders** used by clients
//! (`moma_load`, tests, the CLI) and the [`AttrValue`] / delta codecs
//! shared between the engine (decode) and clients (encode), so both
//! sides agree on one wire form.
//!
//! ## Commands
//!
//! | cmd        | mutating | effect |
//! |------------|----------|--------|
//! | `ping`     | no       | liveness check |
//! | `match`    | yes      | execute + prime an attribute matcher, store the mapping |
//! | `compose`  | yes      | store a derived `compose(left, right, f, g)` mapping |
//! | `query`    | no       | read correspondences from a snapshot |
//! | `batch_query` | no    | N `query` items in one frame, per-item result array |
//! | `delta`    | yes      | ingest a source delta, patch mappings incrementally |
//! | `batch_delta` | yes   | N `delta` items, one WAL group commit, per-item status array |
//! | `checkpoint` | write lock | publish an atomic state checkpoint, prune covered WAL segments |
//! | `stats`    | no       | server/engine counters (per-shard + aggregate when sharded) |
//! | `dump`     | no       | persist repository + manifest to a directory |
//! | `install`  | yes      | *internal*: store a literal mapping table (cross-shard compose result) |
//! | `shutdown` | no       | stop the server after responding |
//!
//! `checkpoint` is not WAL-logged (it changes the disk layout, not the
//! logical state, and does not bump the command counters) but it is
//! serialized through the engine write lock like a mutating command.
//! When the server runs sharded (`moma serve --shards N`), `checkpoint`
//! checkpoints every shard and its response carries a per-shard array.
//!
//! ## Shard routing fields
//!
//! Against a sharded server, requests and responses gain a few fields
//! (all absent/ignored at `--shards 1`, so single-shard wire traffic is
//! unchanged):
//!
//! * `match` may carry a `"shard": N` placement hint (see
//!   [`with_shard`]); it is refused if it contradicts an existing
//!   ownership claim on the domain source.
//! * routed responses are annotated with the `"shard"` (or, for deltas,
//!   `"shards"`) that served them.
//! * `install` is the record a cross-shard `compose` writes to the
//!   installing shard's WAL: the computed rows as literals, so each
//!   shard's log replays independently. It is refused from the wire on
//!   a sharded server (the router owns it); see [`install_request`].
//!
//! ## Examples
//!
//! Builders produce the exact wire object; what goes on the socket is
//! `to_string()` of the returned [`Json`] inside a length-prefixed
//! frame (see [`crate::frame`]):
//!
//! ```
//! use moma_server::protocol::{query_request, with_shard, match_request};
//!
//! let q = query_request("DblpGs", 10, Some(0.8));
//! assert_eq!(
//!     q.to_string(),
//!     r#"{"cmd":"query","name":"DblpGs","limit":10,"min_sim":0.8}"#
//! );
//!
//! // Pin a match to shard 2 of a sharded server.
//! let m = with_shard(
//!     match_request("DblpGs", "Publication@DBLP", "Publication@GS",
//!                   "title", "title", "trigram", 0.7),
//!     2,
//! );
//! assert!(m.to_string().ends_with(r#""shard":2}"#));
//! ```
//!
//! ## Batch requests
//!
//! `batch_query` and `batch_delta` carry an `"items"` array whose
//! elements have the same fields as the corresponding single request
//! minus `"cmd"`. The response is `{"ok": true, "count": N, "results":
//! [...]}` where `results[i]` is exactly the response the i-th item
//! would have produced as a single request (`batch_delta` additionally
//! reports the group commit's `first_seq`/`last_seq`). A `batch_delta`
//! is logged as N ordinary `delta` WAL records in one fsync'd append,
//! so replay is bit-identical to the same deltas sent singly.
//!
//! ## Overload responses
//!
//! A server past its admission limits answers with `"ok": false` plus a
//! marker field and a retry hint instead of queueing unboundedly:
//! `{"busy": true, "retry_after_ms": N}` when the connection cap is
//! reached (sent once, then the connection is closed) and
//! `{"overloaded": true, "retry_after_ms": N}` when the per-class
//! in-flight budget is exhausted (the connection stays usable).
//!
//! `AttrValue`s travel as `{"t": kind, "v": value}` with kinds `text`,
//! `list`, `int`, `year`, `real`.

use moma_model::{AttrValue, DeltaOp, SourceDelta, SourceRegistry};

use crate::json::Json;

/// Encode an [`AttrValue`] as `{"t": ..., "v": ...}`.
pub fn attr_value_to_json(v: &AttrValue) -> Json {
    let (t, v) = match v {
        AttrValue::Text(s) => ("text", Json::Str(s.clone())),
        AttrValue::TextList(items) => (
            "list",
            Json::Arr(items.iter().map(|s| Json::Str(s.clone())).collect()),
        ),
        AttrValue::Int(n) => ("int", Json::Num(*n as f64)),
        AttrValue::Year(y) => ("year", Json::Num(*y as f64)),
        AttrValue::Real(x) => ("real", Json::Num(*x)),
    };
    Json::obj(vec![("t", Json::Str(t.into())), ("v", v)])
}

/// Decode an [`AttrValue`] from its wire form.
pub fn attr_value_from_json(j: &Json) -> Result<AttrValue, String> {
    let t = j.str_field("t").ok_or("attr value missing `t`")?;
    let v = j.get("v").ok_or("attr value missing `v`")?;
    match t {
        "text" => Ok(AttrValue::Text(
            v.as_str().ok_or("text value must be a string")?.to_owned(),
        )),
        "list" => {
            let items = v.as_arr().ok_or("list value must be an array")?;
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                out.push(
                    item.as_str()
                        .ok_or("list items must be strings")?
                        .to_owned(),
                );
            }
            Ok(AttrValue::TextList(out))
        }
        "int" => Ok(AttrValue::Int(
            v.as_f64().ok_or("int value must be a number")? as i64,
        )),
        "year" => {
            let y = v.as_f64().ok_or("year value must be a number")?;
            if !(0.0..=u16::MAX as f64).contains(&y) {
                return Err(format!("year {y} out of range"));
            }
            Ok(AttrValue::Year(y as u16))
        }
        "real" => Ok(AttrValue::Real(
            v.as_f64().ok_or("real value must be a number")?,
        )),
        other => Err(format!("unknown attr kind `{other}`")),
    }
}

fn op_to_json(op: &DeltaOp) -> Json {
    match op {
        DeltaOp::Add { id, fields } => Json::obj(vec![
            ("op", Json::Str("add".into())),
            ("id", Json::Str(id.clone())),
            (
                "fields",
                Json::Obj(
                    fields
                        .iter()
                        .map(|(k, v)| (k.clone(), attr_value_to_json(v)))
                        .collect(),
                ),
            ),
        ]),
        DeltaOp::Remove { id } => Json::obj(vec![
            ("op", Json::Str("remove".into())),
            ("id", Json::Str(id.clone())),
        ]),
        DeltaOp::Update { id, attr, value } => Json::obj(vec![
            ("op", Json::Str("update".into())),
            ("id", Json::Str(id.clone())),
            ("attr", Json::Str(attr.clone())),
            (
                "value",
                match value {
                    Some(v) => attr_value_to_json(v),
                    None => Json::Null,
                },
            ),
        ]),
    }
}

fn op_from_json(j: &Json) -> Result<DeltaOp, String> {
    let op = j.str_field("op").ok_or("delta op missing `op`")?;
    let id = j.str_field("id").ok_or("delta op missing `id`")?.to_owned();
    match op {
        "add" => {
            let Some(Json::Obj(fields)) = j.get("fields") else {
                return Err("add op needs a `fields` object".into());
            };
            let mut out = Vec::with_capacity(fields.len());
            for (k, v) in fields {
                out.push((k.clone(), attr_value_from_json(v)?));
            }
            Ok(DeltaOp::Add { id, fields: out })
        }
        "remove" => Ok(DeltaOp::Remove { id }),
        "update" => {
            let attr = j
                .str_field("attr")
                .ok_or("update op missing `attr`")?
                .to_owned();
            let value = match j.get("value") {
                None | Some(Json::Null) => None,
                Some(v) => Some(attr_value_from_json(v)?),
            };
            Ok(DeltaOp::Update { id, attr, value })
        }
        other => Err(format!("unknown delta op `{other}`")),
    }
}

/// Build a `delta` request from a source name and its operations.
pub fn delta_request(lds_name: &str, ops: &[DeltaOp]) -> Json {
    Json::obj(vec![
        ("cmd", Json::Str("delta".into())),
        ("lds", Json::Str(lds_name.into())),
        ("ops", Json::Arr(ops.iter().map(op_to_json).collect())),
    ])
}

/// Decode the `lds`/`ops` fields of a `delta` request against a
/// registry (resolving the source name to its handle).
pub fn parse_delta(registry: &SourceRegistry, req: &Json) -> Result<SourceDelta, String> {
    let name = req.str_field("lds").ok_or("delta request missing `lds`")?;
    let lds = registry
        .resolve(name)
        .map_err(|e| format!("unknown source `{name}`: {e}"))?;
    let ops_json = req
        .get("ops")
        .and_then(Json::as_arr)
        .ok_or("delta request missing `ops` array")?;
    let mut ops = Vec::with_capacity(ops_json.len());
    for op in ops_json {
        ops.push(op_from_json(op)?);
    }
    Ok(SourceDelta { lds, ops })
}

/// Build a `match` request.
#[allow(clippy::too_many_arguments)]
pub fn match_request(
    name: &str,
    domain: &str,
    range: &str,
    domain_attr: &str,
    range_attr: &str,
    sim: &str,
    threshold: f64,
) -> Json {
    Json::obj(vec![
        ("cmd", Json::Str("match".into())),
        ("name", Json::Str(name.into())),
        ("domain", Json::Str(domain.into())),
        ("range", Json::Str(range.into())),
        ("domain_attr", Json::Str(domain_attr.into())),
        ("range_attr", Json::Str(range_attr.into())),
        ("sim", Json::Str(sim.into())),
        ("threshold", Json::Num(threshold)),
    ])
}

/// Build a `compose` request (`f`/`g` as in `moma run` scripts, e.g.
/// `min` / `max` / `relative-left`).
pub fn compose_request(name: &str, left: &str, right: &str, f: &str, g: &str) -> Json {
    Json::obj(vec![
        ("cmd", Json::Str("compose".into())),
        ("name", Json::Str(name.into())),
        ("left", Json::Str(left.into())),
        ("right", Json::Str(right.into())),
        ("f", Json::Str(f.into())),
        ("g", Json::Str(g.into())),
    ])
}

/// Build a `query` request. `limit == 0` means "all rows".
pub fn query_request(name: &str, limit: u64, min_sim: Option<f64>) -> Json {
    let mut fields = vec![
        ("cmd".to_owned(), Json::Str("query".into())),
        ("name".to_owned(), Json::Str(name.into())),
        ("limit".to_owned(), Json::Num(limit as f64)),
    ];
    if let Some(s) = min_sim {
        fields.push(("min_sim".to_owned(), Json::Num(s)));
    }
    Json::Obj(fields)
}

/// One item of a [`batch_query_request`]: the fields of a
/// [`query_request`] minus `cmd`. `limit == 0` means "all rows".
pub fn query_item(name: &str, limit: u64, min_sim: Option<f64>) -> Json {
    let mut fields = vec![
        ("name".to_owned(), Json::Str(name.into())),
        ("limit".to_owned(), Json::Num(limit as f64)),
    ];
    if let Some(s) = min_sim {
        fields.push(("min_sim".to_owned(), Json::Num(s)));
    }
    Json::Obj(fields)
}

/// Build a `batch_query` request from [`query_item`]s.
pub fn batch_query_request(items: Vec<Json>) -> Json {
    Json::obj(vec![
        ("cmd", Json::Str("batch_query".into())),
        ("items", Json::Arr(items)),
    ])
}

/// One item of a [`batch_delta_request`]: the fields of a
/// [`delta_request`] minus `cmd`.
pub fn delta_item(lds_name: &str, ops: &[DeltaOp]) -> Json {
    Json::obj(vec![
        ("lds", Json::Str(lds_name.into())),
        ("ops", Json::Arr(ops.iter().map(op_to_json).collect())),
    ])
}

/// Build a `batch_delta` request from [`delta_item`]s.
pub fn batch_delta_request(items: Vec<Json>) -> Json {
    Json::obj(vec![
        ("cmd", Json::Str("batch_delta".into())),
        ("items", Json::Arr(items)),
    ])
}

/// Attach a shard placement hint to a request (meaningful on `match`
/// against a sharded server; ignored everywhere else, including at
/// `--shards 1`).
///
/// ```
/// use moma_server::protocol::{bare_request, with_shard};
/// let req = with_shard(bare_request("ping"), 3);
/// assert_eq!(req.to_string(), r#"{"cmd":"ping","shard":3}"#);
/// ```
pub fn with_shard(req: Json, shard: usize) -> Json {
    match req {
        Json::Obj(mut fields) => {
            fields.retain(|(k, _)| k != "shard");
            fields.push(("shard".to_owned(), Json::Uint(shard as u64)));
            Json::Obj(fields)
        }
        other => other,
    }
}

/// Build an `install` request: store a mapping as a literal table of
/// `[domain_idx, range_idx, sim]` rows. This is the record a
/// cross-shard `compose` writes to the installing shard's WAL — rows,
/// not a recipe, so the shard's log replays without consulting any
/// other shard. A sharded server refuses it from the wire; a
/// single-shard server accepts it (it is just a literal store).
pub fn install_request(
    name: &str,
    domain: &str,
    range: &str,
    rows: &[(u32, u32, f64)],
    assoc: Option<&str>,
) -> Json {
    let mut fields = vec![
        ("cmd".to_owned(), Json::Str("install".into())),
        ("name".to_owned(), Json::Str(name.into())),
        ("domain".to_owned(), Json::Str(domain.into())),
        ("range".to_owned(), Json::Str(range.into())),
        (
            "rows".to_owned(),
            Json::Arr(
                rows.iter()
                    .map(|&(d, r, sim)| {
                        Json::Arr(vec![
                            Json::Num(d as f64),
                            Json::Num(r as f64),
                            Json::Num(sim),
                        ])
                    })
                    .collect(),
            ),
        ),
    ];
    if let Some(t) = assoc {
        fields.push(("assoc".to_owned(), Json::Str(t.into())));
    }
    Json::Obj(fields)
}

/// Build a bare request carrying only a command name.
pub fn bare_request(cmd: &str) -> Json {
    Json::obj(vec![("cmd", Json::Str(cmd.into()))])
}

/// Build a `checkpoint` request.
pub fn checkpoint_request() -> Json {
    bare_request("checkpoint")
}

/// Build a `dump` request.
pub fn dump_request(dir: &str) -> Json {
    Json::obj(vec![
        ("cmd", Json::Str("dump".into())),
        ("dir", Json::Str(dir.into())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_value_roundtrip() {
        let values = [
            AttrValue::Text("Cupid: schema matching".into()),
            AttrValue::TextList(vec!["A. Thor".into(), "E. Rahm".into()]),
            AttrValue::Int(-42),
            AttrValue::Year(2007),
            AttrValue::Real(0.625),
        ];
        for v in values {
            let wire = attr_value_to_json(&v).to_string();
            let back = attr_value_from_json(&Json::parse(&wire).unwrap()).unwrap();
            assert_eq!(back, v, "wire: {wire}");
        }
    }

    #[test]
    fn delta_roundtrip_through_registry() {
        use moma_model::{AttrDef, LogicalSource, ObjectType};
        let mut reg = SourceRegistry::new();
        let lds = LogicalSource::new(
            "GS",
            ObjectType::new("Publication"),
            vec![AttrDef::text("title")],
        );
        let id = reg.register(lds).unwrap();
        let ops = vec![
            DeltaOp::Add {
                id: "g1".into(),
                fields: vec![("title".into(), AttrValue::Text("MOMA".into()))],
            },
            DeltaOp::Update {
                id: "g1".into(),
                attr: "title".into(),
                value: None,
            },
            DeltaOp::Remove { id: "g1".into() },
        ];
        let req = delta_request("Publication@GS", &ops);
        let wire = req.to_string();
        let parsed = parse_delta(&reg, &Json::parse(&wire).unwrap()).unwrap();
        assert_eq!(parsed.lds, id);
        assert_eq!(parsed.ops, ops);
    }
}
