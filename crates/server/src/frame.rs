//! Length-prefixed frame codec for the serving protocol.
//!
//! A frame is `[u32 big-endian payload length][payload bytes]`. The
//! payload is a UTF-8 JSON document (see [`crate::json`]); the codec
//! itself is payload-agnostic. Frames larger than [`MAX_FRAME`] are
//! rejected on both sides, so a corrupt or hostile length prefix cannot
//! drive an unbounded allocation.

use std::io::{self, Read, Write};

/// Maximum accepted payload size (16 MiB).
pub const MAX_FRAME: usize = 16 << 20;

/// Write one frame and flush it.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame. Returns `Ok(None)` on a clean EOF (the peer closed
/// the connection between frames); a mid-frame EOF is an error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame header",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_multiple_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, "unicode \u{1F600}".as_bytes()).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(
            read_frame(&mut r).unwrap().unwrap(),
            "unicode \u{1F600}".as_bytes()
        );
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn eof_inside_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        // Truncate inside the payload, and inside the header.
        for cut in [buf.len() - 3, 2] {
            let mut r = &buf[..cut];
            assert!(read_frame(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn oversized_frames_rejected_on_both_sides() {
        let mut sink = Vec::new();
        let huge = vec![0u8; MAX_FRAME + 1];
        assert!(write_frame(&mut sink, &huge).is_err());
        let mut bytes = ((MAX_FRAME + 1) as u32).to_be_bytes().to_vec();
        bytes.extend_from_slice(&[0; 8]);
        let mut r = &bytes[..];
        assert!(read_frame(&mut r).is_err());
    }
}
