//! Minimal JSON value, parser and writer.
//!
//! The build environment is offline (no serde), and the serving
//! protocol needs a real JSON round trip — requests arrive over the
//! wire, WAL records must replay bit-identically, and responses are
//! consumed by scripts. This module implements the subset of JSON the
//! protocol uses: objects (order-preserving), arrays, strings with full
//! escape handling, IEEE doubles, booleans and null.
//!
//! Writing is deterministic: object members keep insertion order,
//! numbers use Rust's shortest-round-trip `f64` formatting (integers
//! without a fractional part print as integers), and strings escape
//! `"`, `\`, control characters and nothing else. Parsing accepts
//! arbitrary whitespace and `\uXXXX` escapes (including surrogate
//! pairs) and enforces a nesting-depth limit so hostile frames cannot
//! blow the stack.

use std::fmt;

/// Maximum nesting depth accepted by [`Json::parse`].
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (IEEE double, like JavaScript).
    Num(f64),
    /// An unsigned integer that must round-trip exactly even above
    /// 2^53 (WAL sequence numbers, request counters). Writes as a plain
    /// JSON integer; the parser produces this variant only for integer
    /// literals too large for an exact `f64`.
    Uint(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order is preserved (and is the write order).
    Obj(Vec<(String, Json)>),
}

impl PartialEq for Json {
    fn eq(&self, other: &Json) -> bool {
        match (self, other) {
            (Json::Null, Json::Null) => true,
            (Json::Bool(a), Json::Bool(b)) => a == b,
            (Json::Num(a), Json::Num(b)) => a == b,
            (Json::Uint(a), Json::Uint(b)) => a == b,
            // Numeric equality across representations: `Num(7.0)` and
            // `Uint(7)` are the same JSON number.
            (Json::Num(f), Json::Uint(u)) | (Json::Uint(u), Json::Num(f)) => {
                *f >= 0.0 && *f < u64::MAX as f64 && f.fract() == 0.0 && (*f as u64) == *u
            }
            (Json::Str(a), Json::Str(b)) => a == b,
            (Json::Arr(a), Json::Arr(b)) => a == b,
            (Json::Obj(a), Json::Obj(b)) => a == b,
            _ => false,
        }
    }
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Borrow the value of `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string contents, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if a number. [`Json::Uint`] values above 2^53 round
    /// to the nearest representable double — use [`Json::as_u64`] where
    /// exactness matters.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Uint(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The number as a `u64`, if a non-negative integral number.
    /// [`Json::Uint`] values convert exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            Json::Uint(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean, if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Convenience: `get(key)` as `&str`.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::as_str)
    }

    /// Convenience: `get(key)` as `f64`.
    pub fn num_field(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Json::as_f64)
    }

    /// Pretty-print with two-space indentation (for human-read report
    /// files; the wire format stays compact via `Display`).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(members) if !members.is_empty() => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    out.push_str(&"  ".repeat(indent + 1));
                    out.push_str(&Json::Str(k.clone()).to_string());
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            other => out.push_str(&other.to_string()),
        }
    }

    /// Parse a JSON document (the full text must be one value, trailing
    /// whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if !n.is_finite() {
                    // JSON has no Inf/NaN; null is the standard stand-in.
                    f.write_str("null")
                } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Uint(n) => write!(f, "{n}"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_fmt(format_args!("{c}"))?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let v = self.value(depth + 1)?;
                    members.push((key, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(members));
                        }
                        _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii span");
        // Integer literals too large for an exact f64 (> 2^53) become
        // [`Json::Uint`] so counters and sequence numbers round-trip
        // bit-exactly; everything else stays a double as before.
        if text.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(v) = text.parse::<u64>() {
                if v > (1u64 << 53) {
                    return Ok(Json::Uint(v));
                }
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number `{text}` at offset {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".into());
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err("lone high surrogate".into());
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".into());
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(hi).ok_or("invalid \\u escape")?
                            };
                            out.push(c);
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!(
                        "unescaped control character at offset {}",
                        self.pos
                    ));
                }
                Some(b) if b < 0x80 => {
                    // Copy the maximal run of plain ASCII in one go —
                    // validating the whole remaining input per character
                    // made string parsing quadratic in frame size.
                    let start = self.pos;
                    while let Some(&nb) = self.bytes.get(self.pos) {
                        if nb == b'"' || nb == b'\\' || !(0x20..0x80).contains(&nb) {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii"));
                }
                Some(b) => {
                    // One multi-byte UTF-8 scalar: width from the leading
                    // byte, validated over just that span.
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(format!("invalid utf-8 at offset {}", self.pos)),
                    };
                    let span = self
                        .bytes
                        .get(self.pos..self.pos + width)
                        .ok_or("truncated utf-8 scalar")?;
                    let s = std::str::from_utf8(span)
                        .map_err(|_| format!("invalid utf-8 at offset {}", self.pos))?;
                    out.push_str(s);
                    self.pos += width;
                }
            }
        }
    }

    /// Read 4 hex digits, advancing past them; returns the code unit.
    fn hex4(&mut self) -> Result<u32, String> {
        let span = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or("truncated \\u escape")?;
        let text = std::str::from_utf8(span).map_err(|_| "bad \\u escape")?;
        let v = u32::from_str_radix(text, 16).map_err(|_| "bad \\u escape")?;
        self.pos += 4;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) -> Json {
        Json::parse(&v.to_string()).expect("roundtrip parse")
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-17.0),
            Json::Num(3.5),
            Json::Num(1e300),
            Json::Num(0.1 + 0.2),
            Json::Str(String::new()),
            Json::Str("plain".into()),
            Json::Str("tab\t nl\n quote\" back\\ é 中 \u{1}".into()),
        ] {
            assert_eq!(roundtrip(&v), v, "{v}");
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(-3.0).to_string(), "-3");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
    }

    #[test]
    fn containers_roundtrip_and_preserve_order() {
        let v = Json::obj(vec![
            ("zeta", Json::Num(1.0)),
            ("alpha", Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("nested", Json::obj(vec![("k", Json::Str("v".into()))])),
        ]);
        let text = v.to_string();
        assert!(text.starts_with("{\"zeta\":1,"), "{text}");
        assert_eq!(roundtrip(&v), v);
        assert_eq!(v.get("alpha").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.str_field("missing"), None);
    }

    #[test]
    fn parser_accepts_whitespace_and_escapes() {
        let v =
            Json::parse(" { \"a\" : [ 1 , 2.5 ,\n\"\\u0041\\u00e9\\ud83d\\ude00\" ] } ").unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("Aé😀"));
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "01x",
            "{\"a\":1} trailing",
            "\"\\ud800\"",
            "\u{1}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} parsed");
        }
        // Depth bomb: reject instead of overflowing the stack.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn u64_extraction_guards() {
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Str("7".into()).as_u64(), None);
        assert_eq!(Json::Uint(u64::MAX).as_u64(), Some(u64::MAX));
    }

    #[test]
    fn uint_roundtrips_exactly_above_2_pow_53() {
        // Values in this range are NOT representable as f64; a Num-based
        // path would silently round them.
        for v in [
            (1u64 << 53) + 1,
            u64::MAX,
            u64::MAX - 1,
            u64::MAX - 3,
            10_000_000_000_000_000_003,
        ] {
            let text = Json::Uint(v).to_string();
            assert_eq!(text, v.to_string());
            let back = Json::parse(&text).unwrap();
            assert_eq!(back.as_u64(), Some(v), "{text}");
            assert_eq!(back, Json::Uint(v));
        }
        // Small integers keep parsing as doubles (no behavior change).
        assert!(matches!(Json::parse("42").unwrap(), Json::Num(_)));
        assert!(matches!(
            Json::parse(&(1u64 << 53).to_string()).unwrap(),
            Json::Num(_)
        ));
        // Nested in an object, exactness survives a full round trip.
        let obj = Json::obj(vec![("seq", Json::Uint(u64::MAX - 1))]);
        let back = Json::parse(&obj.to_string()).unwrap();
        assert_eq!(back.get("seq").and_then(Json::as_u64), Some(u64::MAX - 1));
    }

    #[test]
    fn uint_num_numeric_equality() {
        assert_eq!(Json::Uint(7), Json::Num(7.0));
        assert_eq!(Json::Num(0.0), Json::Uint(0));
        assert_ne!(Json::Uint(7), Json::Num(7.5));
        assert_ne!(Json::Uint(u64::MAX), Json::Num(u64::MAX as f64));
    }
}
