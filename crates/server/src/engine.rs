//! The serving engine: registry + repository + primed delta states,
//! with a write-ahead log in front of every mutating command.
//!
//! ## Durability contract
//!
//! Mutating commands (`match`, `compose`, `delta`) are appended to the
//! [`Wal`] and `fsync`'d **before** they are applied; the client's
//! response is sent after apply. An acknowledged command is therefore
//! durable, and replaying the log re-executes exactly the commands the
//! pre-crash engine executed, in order. Because every engine operation
//! is deterministic — parallel matching and compose merge shard results
//! in input order, repository version stamps are assigned in command
//! order, and command *failures* re-fail identically against the same
//! state — the replayed engine is bit-identical to the pre-crash one:
//! same instances, same correspondences, same version stamps, same
//! counters.
//!
//! ## Concurrency
//!
//! The engine itself is single-writer: the server wraps it in an
//! `RwLock` and routes mutating commands through the write lock, so WAL
//! order equals apply order. Read commands (`query`, `stats`, `dump`)
//! go through the read lock and start from
//! [`MappingRepository::snapshot`], which captures every entry (mapping
//! `Arc` + version stamp) under one lock acquisition — a reader sees a
//! consistent point-in-time image and is never exposed to a
//! half-applied delta (see `tests/snapshot_isolation.rs`).

use std::collections::BTreeMap;
use std::path::Path;
use std::time::{Duration, Instant};

use moma_core::blocking::Blocking;
use moma_core::exec::Parallelism;
use moma_core::matchers::{AttributeMatcher, MatchContext};
use moma_core::ops::compose::{PathAgg, PathCombine};
use moma_core::repository::SnapshotEntry;
use moma_core::{DeltaMatchState, Mapping, MappingKind, MappingRepository, Recipe};
use moma_model::{
    AttrDef, AttrKind, LdsId, LogicalSource, ObjectInstance, ObjectType, SourceRegistry,
};
use moma_simstring::SimFn;
use moma_table::MappingTable;

use crate::checkpoint;
use crate::json::Json;
use crate::protocol;
use crate::wal::{RotationPolicy, Wal};

/// Minimum spacing between repeated full-re-match warnings for the same
/// mapping (see [`Engine::warn_full_rematch`]).
const WARN_PERIOD: Duration = Duration::from_secs(30);

/// Durable command counters; restored exactly by replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommandCounts {
    /// `match` commands logged (successful or not).
    pub matches: u64,
    /// `compose` commands logged (including coordinator `install`s of
    /// cross-shard compose results).
    pub composes: u64,
    /// `delta` commands logged with this engine as the accounting shard.
    pub deltas: u64,
    /// Replica `delta` records (`"repl": true`) fanned out to this shard
    /// by the router so its mappings stay patched; excluded from the
    /// aggregate `commands.delta` count.
    pub repl_deltas: u64,
}

/// Summary of a `--replay` startup.
#[derive(Debug, Clone)]
pub struct ReplaySummary {
    /// Records re-executed (only those *after* the restored checkpoint).
    pub replayed: usize,
    /// Torn-tail bytes dropped from the log.
    pub dropped_bytes: u64,
    /// Why log decoding stopped before EOF, if it did.
    pub stop_reason: Option<String>,
    /// Replayed commands that (deterministically) re-failed.
    pub failed: usize,
    /// Sequence number of the checkpoint recovery restored from (0 =
    /// no checkpoint, full replay).
    pub checkpoint_seq: u64,
    /// Surviving records skipped because the checkpoint covers them.
    pub skipped: usize,
    /// Live WAL segment files after recovery.
    pub segments: usize,
}

/// When to rotate WAL segments and publish automatic checkpoints.
#[derive(Debug, Clone, Copy)]
pub struct DurabilityPolicy {
    /// Seal the active segment after this many records (0 = unlimited).
    pub segment_records: u64,
    /// Seal the active segment at this many bytes (0 = unlimited).
    pub segment_bytes: u64,
    /// Auto-checkpoint after this many mutating commands (0 = off).
    pub checkpoint_every_records: u64,
    /// Auto-checkpoint after this many logged bytes (0 = off).
    pub checkpoint_every_bytes: u64,
}

impl Default for DurabilityPolicy {
    fn default() -> Self {
        DurabilityPolicy {
            segment_records: 0,
            segment_bytes: crate::wal::DEFAULT_SEGMENT_BYTES,
            checkpoint_every_records: 0,
            checkpoint_every_bytes: 0,
        }
    }
}

impl DurabilityPolicy {
    fn rotation(&self) -> RotationPolicy {
        let unlimited = |v: u64| if v == 0 { u64::MAX } else { v };
        RotationPolicy {
            max_records: unlimited(self.segment_records),
            max_bytes: unlimited(self.segment_bytes),
        }
    }
}

/// How many complete checkpoints to keep on disk. Two, so recovery can
/// fall back when the newest is lost mid-publish or corrupted.
const CHECKPOINTS_KEPT: usize = 2;

/// The serving engine. See the module docs for the durability and
/// concurrency contracts.
pub struct Engine {
    registry: SourceRegistry,
    repository: MappingRepository,
    /// Primed matcher states by mapping name (ordered, so delta
    /// application order is deterministic).
    states: BTreeMap<String, DeltaMatchState>,
    par: Parallelism,
    wal: Option<Wal>,
    commands: CommandCounts,
    /// `true` while re-executing WAL records: suppresses re-logging and
    /// operator warnings.
    replaying: bool,
    last_warn: BTreeMap<String, Instant>,
    warnings_suppressed: u64,
    /// Original `match` request per primed mapping, so a checkpoint can
    /// re-prime the matcher states on restore.
    match_requests: BTreeMap<String, Json>,
    policy: DurabilityPolicy,
    /// Last WAL seq covered by a published checkpoint (0 = none).
    checkpoint_seq: u64,
    records_since_checkpoint: u64,
    bytes_since_checkpoint: u64,
}

impl Engine {
    /// Engine over a registry, without a WAL (embedded/test use; attach
    /// one with [`Engine::wal_create`] / [`Engine::recover`]).
    pub fn new(registry: SourceRegistry, par: Parallelism) -> Engine {
        Engine {
            registry,
            repository: MappingRepository::new(),
            states: BTreeMap::new(),
            par,
            wal: None,
            commands: CommandCounts::default(),
            replaying: false,
            last_warn: BTreeMap::new(),
            warnings_suppressed: 0,
            match_requests: BTreeMap::new(),
            policy: DurabilityPolicy::default(),
            checkpoint_seq: 0,
            records_since_checkpoint: 0,
            bytes_since_checkpoint: 0,
        }
    }

    /// Attach a fresh WAL directory (removing any existing segments and
    /// checkpoints).
    pub fn wal_create(
        &mut self,
        dir: impl AsRef<Path>,
        policy: DurabilityPolicy,
    ) -> std::io::Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        checkpoint::clear_all(dir)?;
        self.wal = Some(Wal::create(dir, policy.rotation())?);
        self.policy = policy;
        self.checkpoint_seq = 0;
        self.records_since_checkpoint = 0;
        self.bytes_since_checkpoint = 0;
        Ok(())
    }

    /// Recover from a WAL directory and attach it: restore the newest
    /// valid checkpoint (falling back to older ones, then to full
    /// replay, if markers fail validation), re-execute only the logged
    /// commands *after* the checkpoint's sequence number, repair any
    /// torn tail, and resume appends.
    pub fn recover(
        &mut self,
        dir: impl AsRef<Path>,
        policy: DurabilityPolicy,
    ) -> Result<ReplaySummary, String> {
        let dir = dir.as_ref();
        let scan = Wal::scan(dir).map_err(|e| format!("scan {}: {e}", dir.display()))?;

        // Pick the newest checkpoint that validates AND that the
        // surviving segments connect to (first record seq must not leave
        // a gap after the checkpoint's seq).
        let mut base_seq = 0u64;
        let mut restored = false;
        let checkpoints = checkpoint::list(dir).map_err(|e| format!("list checkpoints: {e}"))?;
        for cp in checkpoints.iter().rev() {
            if !scan.records.is_empty() && scan.first_seq() > cp.seq + 1 {
                return Err(format!(
                    "WAL gap: first surviving record is seq {} but checkpoint {} covers only \
                     up to seq {}",
                    scan.first_seq(),
                    cp.path.display(),
                    cp.seq
                ));
            }
            let state = match checkpoint::load(&cp.path) {
                Ok((seq, state)) if seq == cp.seq => state,
                Ok((seq, _)) => {
                    eprintln!(
                        "warning: checkpoint {}: marker seq {seq} does not match its name; \
                         skipping",
                        cp.path.display()
                    );
                    continue;
                }
                Err(reason) => {
                    eprintln!(
                        "warning: checkpoint {}: {reason}; falling back",
                        cp.path.display()
                    );
                    continue;
                }
            };
            let state = match Json::parse(&state) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!(
                        "warning: checkpoint {}: state is not valid JSON ({e}); falling back",
                        cp.path.display()
                    );
                    continue;
                }
            };
            match self.restore_from_state(&state) {
                Ok(seq) => {
                    base_seq = seq;
                    restored = true;
                    break;
                }
                Err(e) => return Err(format!("restore {}: {e}", cp.path.display())),
            }
        }
        if !restored && !scan.records.is_empty() && scan.first_seq() != 1 {
            return Err(format!(
                "WAL gap: no usable checkpoint but the log starts at seq {} (segments before \
                 it were pruned)",
                scan.first_seq()
            ));
        }

        let mut replayed = 0usize;
        let mut skipped = 0usize;
        let mut failed = 0usize;
        self.replaying = true;
        for rec in &scan.records {
            if rec.seq <= base_seq {
                skipped += 1;
                continue;
            }
            let text = std::str::from_utf8(&rec.payload)
                .map_err(|e| format!("WAL record {}: not UTF-8: {e}", rec.seq))?;
            let req =
                Json::parse(text).map_err(|e| format!("WAL record {}: bad JSON: {e}", rec.seq))?;
            let resp = self.apply_logged(&req, Some(rec.seq));
            replayed += 1;
            if resp.get("ok").and_then(Json::as_bool) != Some(true) {
                // A command that failed live re-fails identically here;
                // count it but keep going — the state evolution matches
                // the pre-crash run either way.
                failed += 1;
            }
        }
        self.replaying = false;
        let wal = Wal::open(dir, policy.rotation(), &scan, base_seq)
            .map_err(|e| format!("open {}: {e}", dir.display()))?;
        let segments = wal.segment_count();
        self.wal = Some(wal);
        self.policy = policy;
        self.checkpoint_seq = base_seq;
        self.records_since_checkpoint = replayed as u64;
        self.bytes_since_checkpoint = 0;
        Ok(ReplaySummary {
            replayed,
            dropped_bytes: scan.dropped_bytes,
            stop_reason: scan.stop.as_ref().map(|s| s.reason.clone()),
            failed,
            checkpoint_seq: base_seq,
            skipped,
            segments,
        })
    }

    /// Whether `cmd` mutates engine state (and therefore must be
    /// WAL-logged and serialized through the write lock). `install` is
    /// the router's materialization of a cross-shard compose; it never
    /// arrives from clients directly but replays like any other record.
    pub fn is_mutating(cmd: &str) -> bool {
        matches!(
            cmd,
            "match" | "compose" | "delta" | "batch_delta" | "install"
        )
    }

    /// Whether `cmd` needs the server's write lock. `checkpoint` is not
    /// WAL-logged (it mutates the disk layout, not the logical state)
    /// but must still be serialized with writers.
    pub fn needs_write_lock(cmd: &str) -> bool {
        Engine::is_mutating(cmd) || cmd == "checkpoint"
    }

    /// Execute a mutating command: append it to the WAL (fsync'd), then
    /// apply it. Read-only commands are delegated to
    /// [`Engine::execute_read`] for embedded convenience.
    pub fn execute(&mut self, req: &Json) -> Json {
        let Some(cmd) = req.str_field("cmd") else {
            return err_response("request missing `cmd`");
        };
        if cmd == "checkpoint" {
            return match self.do_checkpoint() {
                Ok(resp) => resp,
                Err(e) => err_response(&e),
            };
        }
        if cmd == "batch_delta" {
            return match self.cmd_batch_delta(req) {
                Ok(resp) => resp,
                Err(e) => err_response(&e),
            };
        }
        if !Engine::is_mutating(cmd) {
            return self.execute_read(req);
        }
        let seq = if let Some(wal) = &mut self.wal {
            let payload = req.to_string();
            match wal.append(payload.as_bytes()) {
                Ok(seq) => {
                    self.records_since_checkpoint += 1;
                    self.bytes_since_checkpoint += payload.len() as u64;
                    Some(seq)
                }
                // Nothing durable ⇒ nothing applied: refuse the command.
                Err(e) => return err_response(&format!("WAL append failed: {e}")),
            }
        } else {
            None
        };
        self.apply_logged(req, seq)
    }

    /// Whether the durability policy's auto-checkpoint thresholds are
    /// exceeded. The server's background checkpointer polls this under
    /// the read lock and only takes the write lock (re-checking) when it
    /// returns `true` — checkpoints no longer run inline on the delta
    /// path.
    pub fn checkpoint_due(&self) -> bool {
        if self.wal.is_none() {
            return false;
        }
        let due_records = self.policy.checkpoint_every_records > 0
            && self.records_since_checkpoint >= self.policy.checkpoint_every_records;
        let due_bytes = self.policy.checkpoint_every_bytes > 0
            && self.bytes_since_checkpoint >= self.policy.checkpoint_every_bytes;
        due_records || due_bytes
    }

    /// Publish an automatic checkpoint (the background checkpointer's
    /// entry point; identical to the `checkpoint` command). A failure
    /// leaves nothing half-applied: everything the checkpoint would have
    /// covered is already durable in the WAL.
    pub fn run_auto_checkpoint(&mut self) -> Result<Json, String> {
        self.do_checkpoint()
    }

    /// Apply an already-logged mutating command (also the replay path).
    fn apply_logged(&mut self, req: &Json, seq: Option<u64>) -> Json {
        let cmd = req.str_field("cmd").unwrap_or_default().to_owned();
        let result = match cmd.as_str() {
            "match" => {
                self.commands.matches += 1;
                self.cmd_match(req)
            }
            "compose" => {
                self.commands.composes += 1;
                self.cmd_compose(req)
            }
            "delta" => {
                // Replica copies fanned out by the shard router carry
                // `"repl": true` and are tallied separately so the
                // aggregate `commands.delta` counts each client delta
                // once, on its accounting shard.
                if req.get("repl").and_then(Json::as_bool) == Some(true) {
                    self.commands.repl_deltas += 1;
                } else {
                    self.commands.deltas += 1;
                }
                self.cmd_delta(req, seq)
            }
            "install" => {
                self.commands.composes += 1;
                self.cmd_install(req)
            }
            other => Err(format!("`{other}` is not a mutating command")),
        };
        match result {
            Ok(resp) => resp,
            Err(e) => err_response(&e),
        }
    }

    /// Execute a read-only command against the current state.
    pub fn execute_read(&self, req: &Json) -> Json {
        let Some(cmd) = req.str_field("cmd") else {
            return err_response("request missing `cmd`");
        };
        let result = match cmd {
            "ping" => Ok(Json::obj(vec![("ok", Json::Bool(true))])),
            "query" => self.cmd_query(req),
            "batch_query" => self.cmd_batch_query(req),
            "stats" => Ok(self.stats()),
            "dump" => self.cmd_dump(req),
            "checkpoint" => Err("`checkpoint` must go through the write path".into()),
            other => Err(format!(
                "unknown command `{other}` (expected ping/match/compose/query/batch_query/delta/batch_delta/checkpoint/stats/dump/shutdown)"
            )),
        };
        match result {
            Ok(resp) => resp,
            Err(e) => err_response(&e),
        }
    }

    // ---- mutating commands ------------------------------------------

    /// Parse a `match` request into a matcher plus resolved domain and
    /// range handles (shared by [`Engine::cmd_match`] and checkpoint
    /// restore, which re-primes matchers from their original requests).
    fn build_matcher(&self, req: &Json) -> Result<(AttributeMatcher, LdsId, LdsId), String> {
        let domain = req
            .str_field("domain")
            .ok_or("match request missing `domain`")?;
        let range = req
            .str_field("range")
            .ok_or("match request missing `range`")?;
        let domain_attr = req.str_field("domain_attr").unwrap_or("title");
        let range_attr = req.str_field("range_attr").unwrap_or(domain_attr);
        let sim = req.str_field("sim").unwrap_or("trigram");
        let threshold = req.num_field("threshold").unwrap_or(0.7);
        if !(0.0..=1.0).contains(&threshold) {
            return Err(format!("threshold {threshold} must be in [0, 1]"));
        }

        let d = self
            .registry
            .resolve(domain)
            .map_err(|e| format!("domain: {e}"))?;
        let r = self
            .registry
            .resolve(range)
            .map_err(|e| format!("range: {e}"))?;

        let mut matcher = if sim == "tfidf" {
            AttributeMatcher::tfidf(domain_attr, range_attr, threshold)
        } else {
            let f = SimFn::parse(sim).ok_or_else(|| format!("unknown similarity `{sim}`"))?;
            let blocking = Blocking::auto_for(&f);
            AttributeMatcher::new(domain_attr, range_attr, f, threshold).with_blocking(blocking)
        };
        if let Some(b) = req.str_field("blocking") {
            let b = Blocking::parse(b).ok_or_else(|| format!("unknown blocking `{b}`"))?;
            matcher = matcher.with_blocking(b);
        }
        Ok((matcher, d, r))
    }

    fn cmd_match(&mut self, req: &Json) -> Result<Json, String> {
        let name = req
            .str_field("name")
            .ok_or("match request missing `name`")?;
        let (matcher, d, r) = self.build_matcher(req)?;
        let ctx = MatchContext::new(&self.registry).with_parallelism(self.par);
        let state = matcher.prime(&ctx, d, r).map_err(|e| e.to_string())?;
        let rows = state.mapping().len();
        let incremental = state.is_incremental();
        self.repository.store_as(name, state.mapping().clone());
        self.states.insert(name.to_owned(), state);
        self.match_requests.insert(name.to_owned(), req.clone());
        Ok(Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("name", Json::Str(name.into())),
            ("rows", Json::Num(rows as f64)),
            (
                "version",
                Json::Uint(self.repository.version(name).unwrap_or(0)),
            ),
            ("incremental", Json::Bool(incremental)),
        ]))
    }

    fn cmd_compose(&mut self, req: &Json) -> Result<Json, String> {
        let name = req
            .str_field("name")
            .ok_or("compose request missing `name`")?;
        let left = req
            .str_field("left")
            .ok_or("compose request missing `left`")?;
        let right = req
            .str_field("right")
            .ok_or("compose request missing `right`")?;
        let f = parse_combine(req.str_field("f").unwrap_or("min"))?;
        let g = parse_agg(req.str_field("g").unwrap_or("max"))?;
        let recipe = Recipe::Compose {
            left: left.to_owned(),
            right: right.to_owned(),
            f,
            g,
        };
        let mapping = self
            .repository
            .store_derived(name, recipe, &self.par)
            .map_err(|e| e.to_string())?;
        Ok(Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("name", Json::Str(name.into())),
            ("rows", Json::Num(mapping.len() as f64)),
            (
                "version",
                Json::Uint(self.repository.version(name).unwrap_or(0)),
            ),
        ]))
    }

    /// Execute an `install`: store a literal, pre-computed mapping table
    /// under `name`. This is how the shard router materializes a
    /// cross-shard compose — the coordinator gathers the input tables
    /// from their shards, computes the compose itself and logs the
    /// *result* here, so replay never has to reach across shards. The
    /// installed mapping is a point-in-time snapshot: it records its
    /// input versions in the response but carries no recipe, so later
    /// deltas do not refresh it (re-issue the compose to refresh).
    fn cmd_install(&mut self, req: &Json) -> Result<Json, String> {
        let name = req
            .str_field("name")
            .ok_or("install request missing `name`")?;
        let resolve = |field: &str| -> Result<LdsId, String> {
            let n = req
                .str_field(field)
                .ok_or_else(|| format!("install request missing `{field}`"))?;
            self.registry
                .resolve(n)
                .map_err(|e| format!("{field}: {e}"))
        };
        let domain = resolve("domain")?;
        let range = resolve("range")?;
        let rows_json = req
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or("install request missing `rows`")?;
        let mut triples = Vec::with_capacity(rows_json.len());
        for row in rows_json {
            let row = row
                .as_arr()
                .filter(|r| r.len() == 3)
                .ok_or("install rows must be [domain, range, sim] triples")?;
            let d = row[0].as_u64().ok_or("install row domain index")? as u32;
            let r = row[1].as_u64().ok_or("install row range index")? as u32;
            let sim = row[2].as_f64().ok_or("install row sim")?;
            triples.push((d, r, sim));
        }
        let table = MappingTable::from_triples(triples);
        let mapping = match req.get("assoc") {
            Some(Json::Str(t)) => Mapping::association(name, t.clone(), domain, range, table),
            _ => Mapping::same(name, domain, range, table),
        };
        let rows = mapping.len();
        self.repository.store_as(name, mapping);
        Ok(Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("name", Json::Str(name.into())),
            ("rows", Json::Num(rows as f64)),
            (
                "version",
                Json::Uint(self.repository.version(name).unwrap_or(0)),
            ),
            ("installed", Json::Bool(true)),
        ]))
    }

    fn cmd_delta(&mut self, req: &Json, seq: Option<u64>) -> Result<Json, String> {
        let delta = protocol::parse_delta(&self.registry, req)?;
        let applied = self
            .registry
            .apply_delta(&delta)
            .map_err(|e| format!("apply_delta: {e}"))?;

        // Patch every primed state. `apply` self-skips states whose
        // matched projections the delta does not touch, so the loop is
        // cheap for irrelevant mappings.
        let mut mappings_out = Vec::new();
        let mut patches = Vec::new();
        let mut warn_names = Vec::new();
        let mut untouched = 0usize;
        {
            let ctx = MatchContext::new(&self.registry).with_parallelism(self.par);
            for (name, state) in self.states.iter_mut() {
                state
                    .apply(&ctx, &[&applied])
                    .map_err(|e| format!("patch `{name}`: {e}"))?;
                if !state.last_touched() {
                    untouched += 1;
                    continue;
                }
                let full = state.last_was_full_rematch();
                if full {
                    warn_names.push((name.clone(), state.full_rematches()));
                }
                patches.push((name.clone(), state.mapping().clone()));
                mappings_out.push(Json::obj(vec![
                    ("name", Json::Str(name.clone())),
                    ("rows", Json::Num(state.mapping().len() as f64)),
                    ("rescored", Json::Num(state.last_rescored as f64)),
                    ("incremental", Json::Bool(!full)),
                    ("full_rematch", Json::Bool(full)),
                ]));
            }
        }
        for (name, total) in warn_names {
            self.warn_full_rematch(&name, total);
        }
        for (name, mapping) in patches {
            self.repository.patch(name, mapping);
        }
        let refreshed = self
            .repository
            .refresh_stale(&self.par)
            .map_err(|e| format!("refresh stale: {e}"))?;

        Ok(Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("seq", seq.map(Json::Uint).unwrap_or(Json::Null)),
            (
                "applied",
                Json::obj(vec![
                    ("added", Json::Num(applied.added.len() as f64)),
                    ("removed", Json::Num(applied.removed.len() as f64)),
                    ("updated", Json::Num(applied.updated.len() as f64)),
                    ("skipped", Json::Num(applied.skipped as f64)),
                ]),
            ),
            ("mappings", Json::Arr(mappings_out)),
            ("untouched", Json::Num(untouched as f64)),
            (
                "refreshed",
                Json::Arr(refreshed.into_iter().map(Json::Str).collect()),
            ),
        ]))
    }

    /// Execute a `batch_delta`: N delta operations amortized over one
    /// frame, one write-lock acquisition and **one WAL group-commit
    /// append** (see [`Wal::append_batch`]). Every item is logged as the
    /// ordinary single `delta` record it stands for, so replaying the
    /// log is bit-identical to the client having sent them one by one.
    /// The response carries a per-item status array; an item that fails
    /// to apply gets an inline error object (and re-fails identically on
    /// replay), while a failed group commit refuses the whole batch —
    /// nothing durable, nothing applied.
    fn cmd_batch_delta(&mut self, req: &Json) -> Result<Json, String> {
        let Some(Json::Arr(items)) = req.get("items") else {
            return Err("batch_delta request missing `items` array".into());
        };
        if items.is_empty() {
            return Err("batch_delta needs a non-empty `items` array".into());
        }
        // Re-frame each item as the single `delta` request it stands
        // for; that JSON is what gets logged.
        let reqs: Vec<Json> = items
            .iter()
            .map(|item| {
                let mut fields = vec![("cmd".to_owned(), Json::Str("delta".into()))];
                if let Json::Obj(src) = item {
                    for (k, v) in src {
                        if k != "cmd" {
                            fields.push((k.clone(), v.clone()));
                        }
                    }
                }
                Json::Obj(fields)
            })
            .collect();
        let first_seq = if let Some(wal) = &mut self.wal {
            let payloads: Vec<String> = reqs.iter().map(Json::to_string).collect();
            let bytes: Vec<&[u8]> = payloads.iter().map(|p| p.as_bytes()).collect();
            match wal.append_batch(&bytes) {
                Ok(first) => {
                    self.records_since_checkpoint += payloads.len() as u64;
                    self.bytes_since_checkpoint +=
                        payloads.iter().map(|p| p.len() as u64).sum::<u64>();
                    Some(first)
                }
                Err(e) => return Err(format!("WAL batch append failed: {e}")),
            }
        } else {
            None
        };
        let results: Vec<Json> = reqs
            .iter()
            .enumerate()
            .map(|(i, r)| self.apply_logged(r, first_seq.map(|f| f + i as u64)))
            .collect();
        let count = results.len() as u64;
        Ok(Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("count", Json::Uint(count)),
            ("first_seq", first_seq.map(Json::Uint).unwrap_or(Json::Null)),
            (
                "last_seq",
                first_seq
                    .map(|f| Json::Uint(f + count - 1))
                    .unwrap_or(Json::Null),
            ),
            ("results", Json::Arr(results)),
        ]))
    }

    /// Log (rate-limited per mapping) that a delta paid a transparent
    /// full re-match instead of an incremental patch — the operator
    /// signal for configurations like TF-IDF whose corpus-global
    /// weights make incremental maintenance unsound.
    fn warn_full_rematch(&mut self, name: &str, total: u64) {
        if self.replaying {
            return;
        }
        let now = Instant::now();
        if let Some(last) = self.last_warn.get(name) {
            if now.duration_since(*last) < WARN_PERIOD {
                self.warnings_suppressed += 1;
                return;
            }
        }
        self.last_warn.insert(name.to_owned(), now);
        eprintln!(
            "warning: mapping `{name}` is not incrementally maintainable; \
             this delta paid a full re-match ({total} so far; further \
             warnings for it muted for {}s)",
            WARN_PERIOD.as_secs()
        );
    }

    // ---- read-only commands -----------------------------------------

    fn cmd_query(&self, req: &Json) -> Result<Json, String> {
        let name = req
            .str_field("name")
            .ok_or("query request missing `name`")?;
        let limit = req.get("limit").and_then(Json::as_u64).unwrap_or(100) as usize;
        let min_sim = req.num_field("min_sim").unwrap_or(0.0);

        let snapshot = self.repository.snapshot();
        let Some(entry) = snapshot.iter().find(|e| e.name == name) else {
            let names: Vec<&str> = snapshot.iter().map(|e| e.name.as_str()).collect();
            return Err(format!(
                "unknown mapping `{name}` (have: {})",
                if names.is_empty() {
                    "none".to_owned()
                } else {
                    names.join(", ")
                }
            ));
        };
        let dom = self.registry.lds(entry.mapping.domain);
        let rng = self.registry.lds(entry.mapping.range);
        let id_of = |lds: &moma_model::LogicalSource, idx: u32| -> String {
            // The arena is append-only, so a snapshot row always
            // resolves — even if the instance was tombstoned after the
            // snapshot was taken.
            lds.get(idx).map(|i| i.id.clone()).unwrap_or_default()
        };
        let mut rows = Vec::new();
        let mut total = 0usize;
        for c in entry.mapping.table.rows() {
            if c.sim < min_sim {
                continue;
            }
            total += 1;
            if limit == 0 || rows.len() < limit {
                rows.push(Json::Arr(vec![
                    Json::Str(id_of(dom, c.domain)),
                    Json::Str(id_of(rng, c.range)),
                    Json::Num(c.sim),
                ]));
            }
        }
        Ok(Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("name", Json::Str(name.into())),
            ("version", Json::Uint(entry.version)),
            ("domain", Json::Str(dom.name())),
            ("range", Json::Str(rng.name())),
            ("total", Json::Num(total as f64)),
            ("rows", Json::Arr(rows)),
        ]))
    }

    /// Execute a `batch_query`: N queries amortized over one frame and
    /// one read-lock acquisition. Each item carries the same fields as a
    /// single `query` request (minus `cmd`); an item that fails gets an
    /// inline error object while the batch itself still succeeds.
    fn cmd_batch_query(&self, req: &Json) -> Result<Json, String> {
        let Some(Json::Arr(items)) = req.get("items") else {
            return Err("batch_query request missing `items` array".into());
        };
        if items.is_empty() {
            return Err("batch_query needs a non-empty `items` array".into());
        }
        let results: Vec<Json> = items
            .iter()
            .map(|item| match self.cmd_query(item) {
                Ok(resp) => resp,
                Err(e) => err_response(&e),
            })
            .collect();
        Ok(Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("count", Json::Uint(results.len() as u64)),
            ("results", Json::Arr(results)),
        ]))
    }

    /// Engine-level stats object (the server layer adds uptime and
    /// per-connection request counters on top).
    pub fn stats(&self) -> Json {
        let sources: Vec<Json> = self
            .registry
            .iter()
            .map(|(_, lds)| {
                Json::obj(vec![
                    ("name", Json::Str(lds.name())),
                    ("len", Json::Num(lds.len() as f64)),
                    ("live", Json::Num(lds.live_len() as f64)),
                ])
            })
            .collect();
        let mappings: Vec<Json> = self
            .repository
            .snapshot()
            .iter()
            .map(|e| {
                let mut fields = vec![
                    ("name".to_owned(), Json::Str(e.name.clone())),
                    ("version".to_owned(), Json::Uint(e.version)),
                    ("rows".to_owned(), Json::Num(e.mapping.len() as f64)),
                    ("derived".to_owned(), Json::Bool(e.derived)),
                    (
                        "stale".to_owned(),
                        Json::Bool(self.repository.is_stale(&e.name)),
                    ),
                ];
                if let Some(state) = self.states.get(&e.name) {
                    fields.push(("incremental".to_owned(), Json::Bool(state.is_incremental())));
                    fields.push((
                        "full_rematches".to_owned(),
                        Json::Uint(state.full_rematches()),
                    ));
                }
                Json::Obj(fields)
            })
            .collect();
        Json::obj(vec![
            ("ok", Json::Bool(true)),
            (
                "commands",
                Json::obj(vec![
                    ("match", Json::Uint(self.commands.matches)),
                    ("compose", Json::Uint(self.commands.composes)),
                    ("delta", Json::Uint(self.commands.deltas)),
                    ("repl_delta", Json::Uint(self.commands.repl_deltas)),
                ]),
            ),
            (
                "wal",
                match &self.wal {
                    Some(w) => Json::obj(vec![
                        ("seq", Json::Uint(w.last_seq())),
                        ("checkpoint_seq", Json::Uint(self.checkpoint_seq)),
                        (
                            "lag",
                            Json::Uint(w.last_seq().saturating_sub(self.checkpoint_seq)),
                        ),
                        ("segments", Json::Uint(w.segment_count() as u64)),
                        ("dir", Json::Str(w.dir().display().to_string())),
                    ]),
                    None => Json::Null,
                },
            ),
            ("sources", Json::Arr(sources)),
            ("mappings", Json::Arr(mappings)),
            (
                "full_rematch_warnings_suppressed",
                Json::Uint(self.warnings_suppressed),
            ),
        ])
    }

    fn cmd_dump(&self, req: &Json) -> Result<Json, String> {
        let dir = req.str_field("dir").ok_or("dump request missing `dir`")?;
        std::fs::create_dir_all(dir).map_err(|e| format!("create {dir}: {e}"))?;
        self.repository
            .persist_dir(dir, &self.registry)
            .map_err(|e| format!("persist {dir}: {e}"))?;
        // Deterministic manifest: version stamps, row counts and durable
        // counters, so two state dumps are byte-comparable with `diff -r`.
        let mut manifest = String::from("# moma dump manifest\n");
        manifest.push_str(&format!(
            "commands\t{}\t{}\t{}\t{}\n",
            self.commands.matches,
            self.commands.composes,
            self.commands.deltas,
            self.commands.repl_deltas
        ));
        let snapshot = self.repository.snapshot();
        for e in &snapshot {
            manifest.push_str(&format!(
                "mapping\t{}\t{}\t{}\t{}\n",
                e.name,
                e.version,
                e.mapping.len(),
                if e.derived { 1 } else { 0 }
            ));
        }
        for (_, lds) in self.registry.iter() {
            manifest.push_str(&format!(
                "source\t{}\t{}\t{}\n",
                lds.name(),
                lds.len(),
                lds.live_len()
            ));
        }
        let path = Path::new(dir).join("manifest.tsv");
        std::fs::write(&path, manifest).map_err(|e| format!("write {}: {e}", path.display()))?;
        Ok(Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("dir", Json::Str(dir.into())),
            ("mappings", Json::Num(snapshot.len() as f64)),
        ]))
    }

    // ---- checkpointing ----------------------------------------------

    /// Execute a `checkpoint` command: seal the active WAL segment,
    /// atomically publish a state dump covering everything applied so
    /// far, keep the [`CHECKPOINTS_KEPT`] newest checkpoints and delete
    /// the WAL segments the oldest retained one fully covers.
    ///
    /// The checkpoint is **not** WAL-logged: it mutates the disk layout,
    /// not the logical state, so replay determinism is unaffected — but
    /// it must hold the write lock (see [`Engine::needs_write_lock`]).
    fn do_checkpoint(&mut self) -> Result<Json, String> {
        let Some(wal) = self.wal.as_ref() else {
            return Err("checkpoint requires a write-ahead log (`moma serve --wal`)".into());
        };
        if let Some(reason) = wal.poisoned() {
            return Err(format!("WAL is poisoned: {reason}"));
        }
        let seq = wal.last_seq();
        if seq == self.checkpoint_seq {
            self.records_since_checkpoint = 0;
            self.bytes_since_checkpoint = 0;
            return Ok(Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("seq", Json::Uint(seq)),
                ("unchanged", Json::Bool(true)),
            ]));
        }
        let state = self.checkpoint_state(seq)?.to_string();
        let wal = self.wal.as_mut().expect("checked above");
        // Seal the active segment first: everything the checkpoint
        // covers then lives in sealed segments and becomes prunable.
        wal.rotate().map_err(|e| format!("rotate: {e}"))?;
        let path =
            checkpoint::publish(wal.dir(), seq, &state).map_err(|e| format!("publish: {e}"))?;
        let kept = checkpoint::retain_newest(wal.dir(), CHECKPOINTS_KEPT)
            .map_err(|e| format!("retain: {e}"))?;
        // Prune only what the *oldest* retained checkpoint covers, so a
        // lost or corrupt newest checkpoint still leaves a replayable
        // segment chain behind the fallback.
        let prune_to = kept.first().map(|c| c.seq).unwrap_or(0);
        let pruned = wal
            .prune_covered(prune_to)
            .map_err(|e| format!("prune: {e}"))?;
        let segments = wal.segment_count();
        self.checkpoint_seq = seq;
        self.records_since_checkpoint = 0;
        self.bytes_since_checkpoint = 0;
        Ok(Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("seq", Json::Uint(seq)),
            ("path", Json::Str(path.display().to_string())),
            ("segments", Json::Uint(segments as u64)),
            ("pruned", Json::Uint(pruned as u64)),
        ]))
    }

    /// Serialize the engine's full logical state as one deterministic
    /// JSON document: sources (arena order, tombstones included, so
    /// restored local indexes are identical), mappings with exact
    /// version stamps / recipes / recorded input versions, the original
    /// `match` requests (to re-prime matcher states), command counters
    /// and the repository version counter.
    ///
    /// Not covered (stats-only, reset on restore): per-state
    /// full-re-match counters and warning rate-limiter state.
    fn checkpoint_state(&self, seq: u64) -> Result<Json, String> {
        let sources: Vec<Json> = self
            .registry
            .iter()
            .map(|(_, lds)| {
                let schema: Vec<Json> = lds
                    .schema
                    .iter()
                    .map(|a| {
                        Json::obj(vec![
                            ("name", Json::Str(a.name.clone())),
                            ("kind", Json::Str(kind_to_str(a.kind).into())),
                        ])
                    })
                    .collect();
                let mut instances = Vec::with_capacity(lds.len());
                for idx in 0..lds.len() as u32 {
                    let inst = lds.get(idx).expect("arena index in bounds");
                    let values: Vec<Json> = inst
                        .values
                        .iter()
                        .map(|v| match v {
                            Some(v) => protocol::attr_value_to_json(v),
                            None => Json::Null,
                        })
                        .collect();
                    instances.push(Json::obj(vec![
                        ("id", Json::Str(inst.id.clone())),
                        ("live", Json::Bool(lds.is_live(idx))),
                        ("values", Json::Arr(values)),
                    ]));
                }
                Json::obj(vec![
                    ("pds", Json::Str(lds.pds.clone())),
                    ("type", Json::Str(lds.object_type.as_str().to_owned())),
                    ("schema", Json::Arr(schema)),
                    ("instances", Json::Arr(instances)),
                ])
            })
            .collect();

        let mut mappings = Vec::new();
        for e in self.repository.snapshot() {
            let rows: Vec<Json> = e
                .mapping
                .table
                .rows()
                .iter()
                .map(|c| {
                    Json::Arr(vec![
                        Json::Num(c.domain as f64),
                        Json::Num(c.range as f64),
                        Json::Num(c.sim),
                    ])
                })
                .collect();
            let recipe = match self.repository.recipe(&e.name) {
                Some(r) => recipe_to_json(&r)?,
                None => Json::Null,
            };
            let deps: Vec<Json> = e
                .dep_versions
                .iter()
                .map(|(n, v)| Json::Arr(vec![Json::Str(n.clone()), Json::Uint(*v)]))
                .collect();
            mappings.push(Json::obj(vec![
                ("name", Json::Str(e.name.clone())),
                (
                    "assoc",
                    match &e.mapping.kind {
                        MappingKind::Same => Json::Null,
                        MappingKind::Association(t) => Json::Str(t.clone()),
                    },
                ),
                (
                    "domain",
                    Json::Str(self.registry.lds(e.mapping.domain).name()),
                ),
                (
                    "range",
                    Json::Str(self.registry.lds(e.mapping.range).name()),
                ),
                ("version", Json::Uint(e.version)),
                ("recipe", recipe),
                ("dep_versions", Json::Arr(deps)),
                ("rows", Json::Arr(rows)),
            ]));
        }

        let matchers = Json::Obj(
            self.match_requests
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        );
        Ok(Json::obj(vec![
            ("seq", Json::Uint(seq)),
            (
                "commands",
                Json::obj(vec![
                    ("match", Json::Uint(self.commands.matches)),
                    ("compose", Json::Uint(self.commands.composes)),
                    ("delta", Json::Uint(self.commands.deltas)),
                    ("repl_delta", Json::Uint(self.commands.repl_deltas)),
                ]),
            ),
            (
                "version_counter",
                Json::Uint(self.repository.version_counter()),
            ),
            ("sources", Json::Arr(sources)),
            ("mappings", Json::Arr(mappings)),
            ("matchers", matchers),
        ]))
    }

    /// Rebuild the engine from a checkpoint state document; returns the
    /// WAL sequence number the state covers. Everything is parsed and
    /// validated against the booted registry **before** any of it is
    /// committed, so a rejected checkpoint leaves the engine untouched
    /// and recovery can fall back to an older one or to full replay.
    fn restore_from_state(&mut self, state: &Json) -> Result<u64, String> {
        let field = |name: &str| -> Result<&Json, String> {
            state
                .get(name)
                .ok_or_else(|| format!("checkpoint state missing `{name}`"))
        };
        let seq = field("seq")?
            .as_u64()
            .ok_or("checkpoint `seq` is not a u64")?;
        let commands_json = field("commands")?;
        let count = |name: &str| -> Result<u64, String> {
            commands_json
                .get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("checkpoint command counter `{name}` missing"))
        };
        let counts = CommandCounts {
            matches: count("match")?,
            composes: count("compose")?,
            deltas: count("delta")?,
            // Absent in pre-shard checkpoints; those logged no replicas.
            repl_deltas: commands_json
                .get("repl_delta")
                .and_then(Json::as_u64)
                .unwrap_or(0),
        };
        let version_counter = field("version_counter")?
            .as_u64()
            .ok_or("checkpoint `version_counter` is not a u64")?;

        // -- sources: rebuild each arena, aligned to the booted registry.
        let sources_json = field("sources")?
            .as_arr()
            .ok_or("checkpoint `sources` is not an array")?;
        if sources_json.len() != self.registry.len() {
            return Err(format!(
                "checkpoint has {} sources but the booted registry has {}",
                sources_json.len(),
                self.registry.len()
            ));
        }
        let mut new_sources = Vec::with_capacity(sources_json.len());
        for (i, sj) in sources_json.iter().enumerate() {
            let pds = sj.str_field("pds").ok_or("source missing `pds`")?;
            let ty = sj.str_field("type").ok_or("source missing `type`")?;
            let boot = self.registry.lds(LdsId(i as u32));
            if boot.pds != pds || boot.object_type.as_str() != ty {
                return Err(format!(
                    "checkpoint source {i} is {ty}@{pds} but the booted registry has {}",
                    boot.name()
                ));
            }
            let schema_json = sj
                .get("schema")
                .and_then(Json::as_arr)
                .ok_or("source missing `schema`")?;
            let mut schema = Vec::with_capacity(schema_json.len());
            for aj in schema_json {
                let name = aj.str_field("name").ok_or("schema attr missing `name`")?;
                let kind =
                    kind_from_str(aj.str_field("kind").ok_or("schema attr missing `kind`")?)?;
                schema.push(AttrDef::new(name, kind));
            }
            let mut lds = LogicalSource::new(pds, ObjectType::new(ty), schema);
            let instances = sj
                .get("instances")
                .and_then(Json::as_arr)
                .ok_or("source missing `instances`")?;
            for ij in instances {
                let id = ij.str_field("id").ok_or("instance missing `id`")?;
                let live = ij
                    .get("live")
                    .and_then(Json::as_bool)
                    .ok_or("instance missing `live`")?;
                let values_json = ij
                    .get("values")
                    .and_then(Json::as_arr)
                    .ok_or("instance missing `values`")?;
                let mut values = Vec::with_capacity(values_json.len());
                for vj in values_json {
                    values.push(match vj {
                        Json::Null => None,
                        other => Some(protocol::attr_value_from_json(other)?),
                    });
                }
                // Insert in arena order, tombstoning removed instances
                // immediately: a later slot may legally reuse the id,
                // and this ordering frees it before that insert.
                lds.insert(ObjectInstance::with_values(id, values))
                    .map_err(|e| format!("restore instance `{id}`: {e}"))?;
                if !live {
                    lds.remove(id);
                }
            }
            new_sources.push(lds);
        }

        // -- mappings: resolved against the booted registry's names.
        let mappings_json = field("mappings")?
            .as_arr()
            .ok_or("checkpoint `mappings` is not an array")?;
        let mut new_mappings = Vec::with_capacity(mappings_json.len());
        for mj in mappings_json {
            let name = mj.str_field("name").ok_or("mapping missing `name`")?;
            let resolve = |field: &str| -> Result<LdsId, String> {
                let n = mj
                    .str_field(field)
                    .ok_or_else(|| format!("mapping `{name}` missing `{field}`"))?;
                self.registry
                    .resolve(n)
                    .map_err(|e| format!("mapping `{name}` {field}: {e}"))
            };
            let domain = resolve("domain")?;
            let range = resolve("range")?;
            let version = mj
                .get("version")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("mapping `{name}` missing `version`"))?;
            let rows_json = mj
                .get("rows")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("mapping `{name}` missing `rows`"))?;
            let mut triples = Vec::with_capacity(rows_json.len());
            for row in rows_json {
                let row = row.as_arr().filter(|r| r.len() == 3).ok_or_else(|| {
                    format!("mapping `{name}`: rows must be [domain, range, sim] triples")
                })?;
                let d = row[0].as_u64().ok_or("row domain index")? as u32;
                let r = row[1].as_u64().ok_or("row range index")? as u32;
                let sim = row[2].as_f64().ok_or("row sim")?;
                triples.push((d, r, sim));
            }
            let table = MappingTable::from_triples(triples);
            let mapping = match mj.get("assoc") {
                Some(Json::Str(t)) => Mapping::association(name, t.clone(), domain, range, table),
                _ => Mapping::same(name, domain, range, table),
            };
            let recipe = match mj.get("recipe") {
                None | Some(Json::Null) => None,
                Some(r) => Some(recipe_from_json(r)?),
            };
            let deps_json = mj
                .get("dep_versions")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("mapping `{name}` missing `dep_versions`"))?;
            let mut deps = Vec::with_capacity(deps_json.len());
            for dj in deps_json {
                let pair = dj.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                    format!("mapping `{name}`: dep_versions must be [name, version] pairs")
                })?;
                deps.push((
                    pair[0].as_str().ok_or("dep name")?.to_owned(),
                    pair[1].as_u64().ok_or("dep version")?,
                ));
            }
            new_mappings.push((name.to_owned(), mapping, version, recipe, deps));
        }

        let Some(Json::Obj(matchers_json)) = state.get("matchers") else {
            return Err("checkpoint `matchers` is not an object".into());
        };
        let matchers_json = matchers_json.clone();

        // -- everything parsed: commit.
        for (i, lds) in new_sources.into_iter().enumerate() {
            *self.registry.lds_mut(LdsId(i as u32)) = lds;
        }
        self.repository = MappingRepository::new();
        for (name, mapping, version, recipe, deps) in new_mappings {
            self.repository
                .restore_entry(name, mapping, version, recipe, deps);
        }
        self.repository.restore_version_counter(version_counter);
        self.commands = counts;
        self.states.clear();
        self.match_requests.clear();
        for (name, req) in matchers_json {
            let (matcher, d, r) = self.build_matcher(&req)?;
            let ctx = MatchContext::new(&self.registry).with_parallelism(self.par);
            let primed = matcher
                .prime(&ctx, d, r)
                .map_err(|e| format!("re-prime `{name}`: {e}"))?;
            // Invariant check: re-priming against the restored sources
            // must reproduce the restored leaf mapping exactly (the same
            // determinism the WAL replay bit-identity rests on). Skipped
            // when the entry was later overwritten by a derived mapping
            // of the same name.
            if self.repository.recipe(&name).is_none() {
                if let Some(stored) = self.repository.get(&name) {
                    if stored.table.rows() != primed.mapping().table.rows() {
                        return Err(format!(
                            "checkpoint invariant violation: re-primed matcher `{name}` \
                             disagrees with its restored mapping table"
                        ));
                    }
                }
            }
            self.states.insert(name.clone(), primed);
            self.match_requests.insert(name, req);
        }
        self.last_warn.clear();
        Ok(seq)
    }

    // ---- accessors ---------------------------------------------------

    /// The engine's source registry.
    pub fn registry(&self) -> &SourceRegistry {
        &self.registry
    }

    /// The engine's mapping repository.
    pub fn repository(&self) -> &MappingRepository {
        &self.repository
    }

    /// Point-in-time snapshot of every repository entry (one lock
    /// acquisition; see [`MappingRepository::snapshot`]).
    pub fn snapshot(&self) -> Vec<SnapshotEntry> {
        self.repository.snapshot()
    }

    /// Durable command counters.
    pub fn command_counts(&self) -> CommandCounts {
        self.commands
    }

    /// Last WAL sequence number (0 when no WAL or empty log).
    pub fn wal_seq(&self) -> u64 {
        self.wal.as_ref().map(|w| w.last_seq()).unwrap_or(0)
    }

    /// Last WAL sequence covered by a checkpoint (0 = none yet).
    pub fn checkpoint_seq(&self) -> u64 {
        self.checkpoint_seq
    }

    /// `(mapping, domain source, range source)` names for every primed
    /// matcher state, in deterministic (BTreeMap) order. The shard
    /// router rebuilds its ownership index from this after recovery:
    /// whatever shard a state recovered on is, by construction, the
    /// shard that owns it.
    pub fn state_endpoints(&self) -> Vec<(String, String, String)> {
        self.match_requests
            .iter()
            .filter_map(|(name, req)| {
                let d = req.str_field("domain")?;
                let r = req.str_field("range")?;
                Some((name.clone(), d.to_owned(), r.to_owned()))
            })
            .collect()
    }

    /// Names of every mapping in the repository (snapshot order).
    pub fn mapping_names(&self) -> Vec<String> {
        self.repository
            .snapshot()
            .into_iter()
            .map(|e| e.name)
            .collect()
    }

    /// The engine's parallelism setting (the router's cross-shard
    /// compose path reuses it so a gathered compose runs with the same
    /// execution parameters as a single-shard one).
    pub fn parallelism(&self) -> Parallelism {
        self.par
    }
}

/// `{"ok": false, "error": msg}`.
pub fn err_response(msg: &str) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(msg.into())),
    ])
}

pub(crate) fn parse_combine(name: &str) -> Result<PathCombine, String> {
    match name {
        "avg" => Ok(PathCombine::Avg),
        "min" => Ok(PathCombine::Min),
        "max" => Ok(PathCombine::Max),
        "product" => Ok(PathCombine::Product),
        _ => {
            if let Some(w) = name.strip_prefix("weighted:") {
                let w: f64 = w.parse().map_err(|e| format!("weighted:{w}: {e}"))?;
                return Ok(PathCombine::Weighted(w));
            }
            Err(format!(
                "unknown path combine `{name}` (avg/min/max/product/weighted:W)"
            ))
        }
    }
}

pub(crate) fn parse_agg(name: &str) -> Result<PathAgg, String> {
    match name {
        "avg" => Ok(PathAgg::Avg),
        "min" => Ok(PathAgg::Min),
        "max" => Ok(PathAgg::Max),
        "relative-left" => Ok(PathAgg::RelativeLeft),
        "relative-right" => Ok(PathAgg::RelativeRight),
        "relative" => Ok(PathAgg::Relative),
        _ => Err(format!(
            "unknown path aggregation `{name}` (avg/min/max/relative/relative-left/relative-right)"
        )),
    }
}

// ---- checkpoint codecs (inverses of the parse_* / request grammar) ----

fn kind_to_str(kind: AttrKind) -> &'static str {
    match kind {
        AttrKind::Text => "text",
        AttrKind::TextList => "list",
        AttrKind::Int => "int",
        AttrKind::Year => "year",
        AttrKind::Real => "real",
    }
}

fn kind_from_str(s: &str) -> Result<AttrKind, String> {
    match s {
        "text" => Ok(AttrKind::Text),
        "list" => Ok(AttrKind::TextList),
        "int" => Ok(AttrKind::Int),
        "year" => Ok(AttrKind::Year),
        "real" => Ok(AttrKind::Real),
        other => Err(format!("unknown attr kind `{other}`")),
    }
}

fn combine_to_str(f: PathCombine) -> String {
    match f {
        PathCombine::Avg => "avg".into(),
        PathCombine::Min => "min".into(),
        PathCombine::Max => "max".into(),
        PathCombine::Product => "product".into(),
        // f64 Display is shortest-roundtrip, so parse_combine recovers
        // the exact weight.
        PathCombine::Weighted(w) => format!("weighted:{w}"),
    }
}

fn agg_to_str(g: PathAgg) -> &'static str {
    match g {
        PathAgg::Avg => "avg",
        PathAgg::Min => "min",
        PathAgg::Max => "max",
        PathAgg::RelativeLeft => "relative-left",
        PathAgg::RelativeRight => "relative-right",
        PathAgg::Relative => "relative",
    }
}

fn recipe_to_json(recipe: &Recipe) -> Result<Json, String> {
    let binary = |op: &str, left: &str, right: &str| {
        Json::obj(vec![
            ("op", Json::Str(op.into())),
            ("left", Json::Str(left.into())),
            ("right", Json::Str(right.into())),
        ])
    };
    match recipe {
        Recipe::Compose { left, right, f, g } => Ok(Json::obj(vec![
            ("op", Json::Str("compose".into())),
            ("left", Json::Str(left.clone())),
            ("right", Json::Str(right.clone())),
            ("f", Json::Str(combine_to_str(*f))),
            ("g", Json::Str(agg_to_str(*g).into())),
        ])),
        Recipe::Union { left, right } => Ok(binary("union", left, right)),
        Recipe::Intersect { left, right } => Ok(binary("intersect", left, right)),
        Recipe::Difference { left, right } => Ok(binary("difference", left, right)),
        // Not creatable through the serving protocol.
        Recipe::Merge { .. } => Err("checkpoint: merge recipes are not serializable".into()),
    }
}

fn recipe_from_json(j: &Json) -> Result<Recipe, String> {
    let op = j.str_field("op").ok_or("recipe missing `op`")?;
    let side = |name: &str| -> Result<String, String> {
        j.str_field(name)
            .map(str::to_owned)
            .ok_or_else(|| format!("recipe missing `{name}`"))
    };
    match op {
        "compose" => Ok(Recipe::Compose {
            left: side("left")?,
            right: side("right")?,
            f: parse_combine(j.str_field("f").ok_or("recipe missing `f`")?)?,
            g: parse_agg(j.str_field("g").ok_or("recipe missing `g`")?)?,
        }),
        "union" => Ok(Recipe::Union {
            left: side("left")?,
            right: side("right")?,
        }),
        "intersect" => Ok(Recipe::Intersect {
            left: side("left")?,
            right: side("right")?,
        }),
        "difference" => Ok(Recipe::Difference {
            left: side("left")?,
            right: side("right")?,
        }),
        other => Err(format!("unknown recipe op `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_model::{AttrDef, AttrValue, DeltaOp, LogicalSource, ObjectType};

    fn tiny_registry() -> SourceRegistry {
        let mut reg = SourceRegistry::new();
        for (pds, ids) in [
            ("DBLP", vec!["d1", "d2"]),
            ("ACM", vec!["a1", "a2"]),
            ("GS", vec!["g1"]),
        ] {
            let mut lds = LogicalSource::new(
                pds,
                ObjectType::new("Publication"),
                vec![AttrDef::text("title")],
            );
            for id in ids {
                lds.insert_record(
                    id,
                    vec![("title", AttrValue::Text(format!("The {id} system paper")))],
                )
                .unwrap();
            }
            reg.register(lds).unwrap();
        }
        reg
    }

    fn match_cmd(name: &str, domain: &str, range: &str) -> Json {
        protocol::match_request(name, domain, range, "title", "title", "trigram", 0.5)
    }

    #[test]
    fn match_compose_query_delta_roundtrip() {
        let mut e = Engine::new(tiny_registry(), Parallelism::sequential());
        let r = e.execute(&match_cmd("m1", "Publication@DBLP", "Publication@ACM"));
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
        assert_eq!(r.get("incremental").and_then(Json::as_bool), Some(true));
        let r = e.execute(&match_cmd("m2", "Publication@ACM", "Publication@GS"));
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
        let r = e.execute(&protocol::compose_request("c", "m1", "m2", "min", "max"));
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");

        let q = e.execute_read(&protocol::query_request("m1", 0, None));
        assert_eq!(q.get("ok").and_then(Json::as_bool), Some(true), "{q}");
        assert!(q.num_field("total").unwrap() >= 1.0);
        let missing = e.execute_read(&protocol::query_request("nope", 0, None));
        assert_eq!(missing.get("ok").and_then(Json::as_bool), Some(false));

        // A GS delta touches m2 (and refreshes c), not m1.
        let ops = vec![DeltaOp::Add {
            id: "g9".into(),
            fields: vec![(
                "title".into(),
                AttrValue::Text("The a1 system paper".into()),
            )],
        }];
        let r = e.execute(&protocol::delta_request("Publication@GS", &ops));
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
        let touched = r.get("mappings").and_then(Json::as_arr).unwrap();
        assert_eq!(touched.len(), 1);
        assert_eq!(touched[0].str_field("name"), Some("m2"));
        assert_eq!(
            touched[0].get("incremental").and_then(Json::as_bool),
            Some(true)
        );
        let refreshed = r.get("refreshed").and_then(Json::as_arr).unwrap();
        assert_eq!(refreshed.len(), 1);
        assert_eq!(refreshed[0].as_str(), Some("c"));
        assert_eq!(e.command_counts().deltas, 1);
    }

    fn assert_snapshots_identical(a: &Engine, b: &Engine) {
        assert_eq!(a.command_counts(), b.command_counts());
        let (a, b) = (a.snapshot(), b.snapshot());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.version, y.version, "version stamp for {}", x.name);
            assert_eq!(x.dep_versions, y.dep_versions);
            assert_eq!(x.mapping.table.rows(), y.mapping.table.rows(), "{}", x.name);
        }
    }

    #[test]
    fn wal_replay_restores_bit_identical_state() {
        let dir = std::env::temp_dir().join("moma_engine_replay");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let wal_dir = dir.join("wal");

        let requests = [
            match_cmd("m1", "Publication@DBLP", "Publication@ACM"),
            match_cmd("m2", "Publication@ACM", "Publication@GS"),
            protocol::compose_request("c", "m1", "m2", "min", "max"),
            protocol::delta_request(
                "Publication@GS",
                &[DeltaOp::Add {
                    id: "g9".into(),
                    fields: vec![(
                        "title".into(),
                        AttrValue::Text("The a1 system paper".into()),
                    )],
                }],
            ),
            // A failing command must replay as the same failure.
            protocol::delta_request(
                "Publication@GS",
                &[DeltaOp::Add {
                    id: "g9".into(),
                    fields: vec![("title".into(), AttrValue::Text("dup id".into()))],
                }],
            ),
        ];

        let mut live = Engine::new(tiny_registry(), Parallelism::sequential());
        live.wal_create(&wal_dir, DurabilityPolicy::default())
            .unwrap();
        let mut ok_count = 0;
        for req in &requests {
            let r = live.execute(req);
            if r.get("ok").and_then(Json::as_bool) == Some(true) {
                ok_count += 1;
            }
        }
        assert_eq!(ok_count, requests.len() - 1);

        let mut replayed = Engine::new(tiny_registry(), Parallelism::sequential());
        let summary = replayed
            .recover(&wal_dir, DurabilityPolicy::default())
            .unwrap();
        assert_eq!(summary.replayed, requests.len());
        assert_eq!(summary.failed, 1);
        assert_eq!(summary.dropped_bytes, 0);
        assert_eq!(summary.checkpoint_seq, 0);
        assert_eq!(summary.skipped, 0);

        assert_snapshots_identical(&live, &replayed);
        // New appends resume after the replayed prefix.
        assert_eq!(replayed.wal_seq(), live.wal_seq());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_bounds_replay_and_restores_bit_identical_state() {
        let dir = std::env::temp_dir().join("moma_engine_ckpt");
        let _ = std::fs::remove_dir_all(&dir);
        let wal_dir = dir.join("wal");

        let policy = DurabilityPolicy {
            segment_records: 2, // force plenty of rotations
            ..DurabilityPolicy::default()
        };

        let mut live = Engine::new(tiny_registry(), Parallelism::sequential());
        live.wal_create(&wal_dir, policy).unwrap();
        let pre = [
            match_cmd("m1", "Publication@DBLP", "Publication@ACM"),
            match_cmd("m2", "Publication@ACM", "Publication@GS"),
            protocol::compose_request("c", "m1", "m2", "min", "max"),
        ];
        for req in &pre {
            let r = live.execute(req);
            assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
        }
        let r = live.execute(&protocol::bare_request("checkpoint"));
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
        assert_eq!(r.get("seq").and_then(Json::as_u64), Some(3));
        assert_eq!(live.checkpoint_seq(), 3);

        // A second checkpoint with no traffic in between is a no-op.
        let r = live.execute(&protocol::bare_request("checkpoint"));
        assert_eq!(r.get("unchanged").and_then(Json::as_bool), Some(true));

        let post = [
            protocol::delta_request(
                "Publication@GS",
                &[DeltaOp::Add {
                    id: "g9".into(),
                    fields: vec![(
                        "title".into(),
                        AttrValue::Text("The a1 system paper".into()),
                    )],
                }],
            ),
            protocol::delta_request("Publication@GS", &[DeltaOp::Remove { id: "g9".into() }]),
        ];
        for req in &post {
            let r = live.execute(req);
            assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
        }

        // Recovery restores the checkpoint and replays ONLY the suffix.
        let mut recovered = Engine::new(tiny_registry(), Parallelism::sequential());
        let summary = recovered.recover(&wal_dir, policy).unwrap();
        assert_eq!(summary.checkpoint_seq, 3);
        assert_eq!(
            summary.replayed,
            post.len(),
            "only the post-checkpoint suffix"
        );
        assert_eq!(summary.failed, 0);
        assert_snapshots_identical(&live, &recovered);
        assert_eq!(recovered.wal_seq(), live.wal_seq());

        // And it must equal a clean end-to-end run of all commands.
        let mut clean = Engine::new(tiny_registry(), Parallelism::sequential());
        for req in pre.iter().chain(&post) {
            clean.execute(req);
        }
        assert_snapshots_identical(&clean, &recovered);

        // The recovered engine keeps serving and can checkpoint again.
        let r = recovered.execute(&protocol::bare_request("checkpoint"));
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
        assert_eq!(recovered.checkpoint_seq(), 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tfidf_delta_reports_full_rematch() {
        let mut e = Engine::new(tiny_registry(), Parallelism::sequential());
        let req = protocol::match_request(
            "t",
            "Publication@ACM",
            "Publication@GS",
            "title",
            "title",
            "tfidf",
            0.1,
        );
        let r = e.execute(&req);
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
        assert_eq!(r.get("incremental").and_then(Json::as_bool), Some(false));

        let ops = vec![DeltaOp::Add {
            id: "g7".into(),
            fields: vec![(
                "title".into(),
                AttrValue::Text("The g1 system paper".into()),
            )],
        }];
        let r = e.execute(&protocol::delta_request("Publication@GS", &ops));
        let touched = r.get("mappings").and_then(Json::as_arr).unwrap();
        assert_eq!(touched.len(), 1);
        assert_eq!(
            touched[0].get("incremental").and_then(Json::as_bool),
            Some(false)
        );
        assert_eq!(
            touched[0].get("full_rematch").and_then(Json::as_bool),
            Some(true)
        );
    }
}
