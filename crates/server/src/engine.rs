//! The serving engine: registry + repository + primed delta states,
//! with a write-ahead log in front of every mutating command.
//!
//! ## Durability contract
//!
//! Mutating commands (`match`, `compose`, `delta`) are appended to the
//! [`Wal`] and `fsync`'d **before** they are applied; the client's
//! response is sent after apply. An acknowledged command is therefore
//! durable, and replaying the log re-executes exactly the commands the
//! pre-crash engine executed, in order. Because every engine operation
//! is deterministic — parallel matching and compose merge shard results
//! in input order, repository version stamps are assigned in command
//! order, and command *failures* re-fail identically against the same
//! state — the replayed engine is bit-identical to the pre-crash one:
//! same instances, same correspondences, same version stamps, same
//! counters.
//!
//! ## Concurrency
//!
//! The engine itself is single-writer: the server wraps it in an
//! `RwLock` and routes mutating commands through the write lock, so WAL
//! order equals apply order. Read commands (`query`, `stats`, `dump`)
//! go through the read lock and start from
//! [`MappingRepository::snapshot`], which captures every entry (mapping
//! `Arc` + version stamp) under one lock acquisition — a reader sees a
//! consistent point-in-time image and is never exposed to a
//! half-applied delta (see `tests/snapshot_isolation.rs`).

use std::collections::BTreeMap;
use std::path::Path;
use std::time::{Duration, Instant};

use moma_core::blocking::Blocking;
use moma_core::exec::Parallelism;
use moma_core::matchers::{AttributeMatcher, MatchContext};
use moma_core::ops::compose::{PathAgg, PathCombine};
use moma_core::repository::SnapshotEntry;
use moma_core::{DeltaMatchState, MappingRepository, Recipe};
use moma_model::SourceRegistry;
use moma_simstring::SimFn;

use crate::json::Json;
use crate::protocol;
use crate::wal::Wal;

/// Minimum spacing between repeated full-re-match warnings for the same
/// mapping (see [`Engine::warn_full_rematch`]).
const WARN_PERIOD: Duration = Duration::from_secs(30);

/// Durable command counters; restored exactly by replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommandCounts {
    /// `match` commands logged (successful or not).
    pub matches: u64,
    /// `compose` commands logged.
    pub composes: u64,
    /// `delta` commands logged.
    pub deltas: u64,
}

/// Summary of a `--replay` startup.
#[derive(Debug, Clone)]
pub struct ReplaySummary {
    /// Records re-executed.
    pub replayed: usize,
    /// Torn-tail bytes dropped from the log file.
    pub dropped_bytes: u64,
    /// Why log decoding stopped before EOF, if it did.
    pub stop_reason: Option<String>,
    /// Replayed commands that (deterministically) re-failed.
    pub failed: usize,
}

/// The serving engine. See the module docs for the durability and
/// concurrency contracts.
pub struct Engine {
    registry: SourceRegistry,
    repository: MappingRepository,
    /// Primed matcher states by mapping name (ordered, so delta
    /// application order is deterministic).
    states: BTreeMap<String, DeltaMatchState>,
    par: Parallelism,
    wal: Option<Wal>,
    commands: CommandCounts,
    /// `true` while re-executing WAL records: suppresses re-logging and
    /// operator warnings.
    replaying: bool,
    last_warn: BTreeMap<String, Instant>,
    warnings_suppressed: u64,
}

impl Engine {
    /// Engine over a registry, without a WAL (embedded/test use; attach
    /// one with [`Engine::wal_create`] / [`Engine::wal_replay`]).
    pub fn new(registry: SourceRegistry, par: Parallelism) -> Engine {
        Engine {
            registry,
            repository: MappingRepository::new(),
            states: BTreeMap::new(),
            par,
            wal: None,
            commands: CommandCounts::default(),
            replaying: false,
            last_warn: BTreeMap::new(),
            warnings_suppressed: 0,
        }
    }

    /// Attach a fresh WAL (truncating any existing file).
    pub fn wal_create(&mut self, path: impl AsRef<Path>) -> std::io::Result<()> {
        self.wal = Some(Wal::create(path)?);
        Ok(())
    }

    /// Replay an existing WAL and attach it: decode the valid record
    /// prefix (dropping any torn tail), re-execute every logged command
    /// in order, and resume appends after the last valid record.
    pub fn wal_replay(&mut self, path: impl AsRef<Path>) -> Result<ReplaySummary, String> {
        let (wal, outcome) =
            Wal::open_replay(&path).map_err(|e| format!("open {:?}: {e}", path.as_ref()))?;
        let mut failed = 0usize;
        self.replaying = true;
        for rec in &outcome.records {
            let text = std::str::from_utf8(&rec.payload)
                .map_err(|e| format!("WAL record {}: not UTF-8: {e}", rec.seq))?;
            let req =
                Json::parse(text).map_err(|e| format!("WAL record {}: bad JSON: {e}", rec.seq))?;
            let resp = self.apply_logged(&req, Some(rec.seq));
            if resp.get("ok").and_then(Json::as_bool) != Some(true) {
                // A command that failed live re-fails identically here;
                // count it but keep going — the state evolution matches
                // the pre-crash run either way.
                failed += 1;
            }
        }
        self.replaying = false;
        self.wal = Some(wal);
        Ok(ReplaySummary {
            replayed: outcome.records.len(),
            dropped_bytes: outcome.dropped_bytes,
            stop_reason: outcome.stop_reason,
            failed,
        })
    }

    /// Whether `cmd` mutates engine state (and therefore must be
    /// WAL-logged and serialized through the write lock).
    pub fn is_mutating(cmd: &str) -> bool {
        matches!(cmd, "match" | "compose" | "delta")
    }

    /// Execute a mutating command: append it to the WAL (fsync'd), then
    /// apply it. Read-only commands are delegated to
    /// [`Engine::execute_read`] for embedded convenience.
    pub fn execute(&mut self, req: &Json) -> Json {
        let Some(cmd) = req.str_field("cmd") else {
            return err_response("request missing `cmd`");
        };
        if !Engine::is_mutating(cmd) {
            return self.execute_read(req);
        }
        let seq = if let Some(wal) = &mut self.wal {
            match wal.append(req.to_string().as_bytes()) {
                Ok(seq) => Some(seq),
                // Nothing durable ⇒ nothing applied: refuse the command.
                Err(e) => return err_response(&format!("WAL append failed: {e}")),
            }
        } else {
            None
        };
        self.apply_logged(req, seq)
    }

    /// Apply an already-logged mutating command (also the replay path).
    fn apply_logged(&mut self, req: &Json, seq: Option<u64>) -> Json {
        let cmd = req.str_field("cmd").unwrap_or_default().to_owned();
        let result = match cmd.as_str() {
            "match" => {
                self.commands.matches += 1;
                self.cmd_match(req)
            }
            "compose" => {
                self.commands.composes += 1;
                self.cmd_compose(req)
            }
            "delta" => {
                self.commands.deltas += 1;
                self.cmd_delta(req, seq)
            }
            other => Err(format!("`{other}` is not a mutating command")),
        };
        match result {
            Ok(resp) => resp,
            Err(e) => err_response(&e),
        }
    }

    /// Execute a read-only command against the current state.
    pub fn execute_read(&self, req: &Json) -> Json {
        let Some(cmd) = req.str_field("cmd") else {
            return err_response("request missing `cmd`");
        };
        let result = match cmd {
            "ping" => Ok(Json::obj(vec![("ok", Json::Bool(true))])),
            "query" => self.cmd_query(req),
            "stats" => Ok(self.stats()),
            "dump" => self.cmd_dump(req),
            other => Err(format!(
                "unknown command `{other}` (expected ping/match/compose/query/delta/stats/dump/shutdown)"
            )),
        };
        match result {
            Ok(resp) => resp,
            Err(e) => err_response(&e),
        }
    }

    // ---- mutating commands ------------------------------------------

    fn cmd_match(&mut self, req: &Json) -> Result<Json, String> {
        let name = req
            .str_field("name")
            .ok_or("match request missing `name`")?;
        let domain = req
            .str_field("domain")
            .ok_or("match request missing `domain`")?;
        let range = req
            .str_field("range")
            .ok_or("match request missing `range`")?;
        let domain_attr = req.str_field("domain_attr").unwrap_or("title");
        let range_attr = req.str_field("range_attr").unwrap_or(domain_attr);
        let sim = req.str_field("sim").unwrap_or("trigram");
        let threshold = req.num_field("threshold").unwrap_or(0.7);
        if !(0.0..=1.0).contains(&threshold) {
            return Err(format!("threshold {threshold} must be in [0, 1]"));
        }

        let d = self
            .registry
            .resolve(domain)
            .map_err(|e| format!("domain: {e}"))?;
        let r = self
            .registry
            .resolve(range)
            .map_err(|e| format!("range: {e}"))?;

        let mut matcher = if sim == "tfidf" {
            AttributeMatcher::tfidf(domain_attr, range_attr, threshold)
        } else {
            let f = SimFn::parse(sim).ok_or_else(|| format!("unknown similarity `{sim}`"))?;
            let blocking = Blocking::auto_for(&f);
            AttributeMatcher::new(domain_attr, range_attr, f, threshold).with_blocking(blocking)
        };
        if let Some(b) = req.str_field("blocking") {
            let b = Blocking::parse(b).ok_or_else(|| format!("unknown blocking `{b}`"))?;
            matcher = matcher.with_blocking(b);
        }

        let ctx = MatchContext::new(&self.registry).with_parallelism(self.par);
        let state = matcher.prime(&ctx, d, r).map_err(|e| e.to_string())?;
        let rows = state.mapping().len();
        let incremental = state.is_incremental();
        self.repository.store_as(name, state.mapping().clone());
        self.states.insert(name.to_owned(), state);
        Ok(Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("name", Json::Str(name.into())),
            ("rows", Json::Num(rows as f64)),
            (
                "version",
                Json::Num(self.repository.version(name).unwrap_or(0) as f64),
            ),
            ("incremental", Json::Bool(incremental)),
        ]))
    }

    fn cmd_compose(&mut self, req: &Json) -> Result<Json, String> {
        let name = req
            .str_field("name")
            .ok_or("compose request missing `name`")?;
        let left = req
            .str_field("left")
            .ok_or("compose request missing `left`")?;
        let right = req
            .str_field("right")
            .ok_or("compose request missing `right`")?;
        let f = parse_combine(req.str_field("f").unwrap_or("min"))?;
        let g = parse_agg(req.str_field("g").unwrap_or("max"))?;
        let recipe = Recipe::Compose {
            left: left.to_owned(),
            right: right.to_owned(),
            f,
            g,
        };
        let mapping = self
            .repository
            .store_derived(name, recipe, &self.par)
            .map_err(|e| e.to_string())?;
        Ok(Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("name", Json::Str(name.into())),
            ("rows", Json::Num(mapping.len() as f64)),
            (
                "version",
                Json::Num(self.repository.version(name).unwrap_or(0) as f64),
            ),
        ]))
    }

    fn cmd_delta(&mut self, req: &Json, seq: Option<u64>) -> Result<Json, String> {
        let delta = protocol::parse_delta(&self.registry, req)?;
        let applied = self
            .registry
            .apply_delta(&delta)
            .map_err(|e| format!("apply_delta: {e}"))?;

        // Patch every primed state. `apply` self-skips states whose
        // matched projections the delta does not touch, so the loop is
        // cheap for irrelevant mappings.
        let mut mappings_out = Vec::new();
        let mut patches = Vec::new();
        let mut warn_names = Vec::new();
        let mut untouched = 0usize;
        {
            let ctx = MatchContext::new(&self.registry).with_parallelism(self.par);
            for (name, state) in self.states.iter_mut() {
                state
                    .apply(&ctx, &[&applied])
                    .map_err(|e| format!("patch `{name}`: {e}"))?;
                if !state.last_touched() {
                    untouched += 1;
                    continue;
                }
                let full = state.last_was_full_rematch();
                if full {
                    warn_names.push((name.clone(), state.full_rematches()));
                }
                patches.push((name.clone(), state.mapping().clone()));
                mappings_out.push(Json::obj(vec![
                    ("name", Json::Str(name.clone())),
                    ("rows", Json::Num(state.mapping().len() as f64)),
                    ("rescored", Json::Num(state.last_rescored as f64)),
                    ("incremental", Json::Bool(!full)),
                    ("full_rematch", Json::Bool(full)),
                ]));
            }
        }
        for (name, total) in warn_names {
            self.warn_full_rematch(&name, total);
        }
        for (name, mapping) in patches {
            self.repository.patch(name, mapping);
        }
        let refreshed = self
            .repository
            .refresh_stale(&self.par)
            .map_err(|e| format!("refresh stale: {e}"))?;

        Ok(Json::obj(vec![
            ("ok", Json::Bool(true)),
            (
                "seq",
                seq.map(|s| Json::Num(s as f64)).unwrap_or(Json::Null),
            ),
            (
                "applied",
                Json::obj(vec![
                    ("added", Json::Num(applied.added.len() as f64)),
                    ("removed", Json::Num(applied.removed.len() as f64)),
                    ("updated", Json::Num(applied.updated.len() as f64)),
                    ("skipped", Json::Num(applied.skipped as f64)),
                ]),
            ),
            ("mappings", Json::Arr(mappings_out)),
            ("untouched", Json::Num(untouched as f64)),
            (
                "refreshed",
                Json::Arr(refreshed.into_iter().map(Json::Str).collect()),
            ),
        ]))
    }

    /// Log (rate-limited per mapping) that a delta paid a transparent
    /// full re-match instead of an incremental patch — the operator
    /// signal for configurations like TF-IDF whose corpus-global
    /// weights make incremental maintenance unsound.
    fn warn_full_rematch(&mut self, name: &str, total: u64) {
        if self.replaying {
            return;
        }
        let now = Instant::now();
        if let Some(last) = self.last_warn.get(name) {
            if now.duration_since(*last) < WARN_PERIOD {
                self.warnings_suppressed += 1;
                return;
            }
        }
        self.last_warn.insert(name.to_owned(), now);
        eprintln!(
            "warning: mapping `{name}` is not incrementally maintainable; \
             this delta paid a full re-match ({total} so far; further \
             warnings for it muted for {}s)",
            WARN_PERIOD.as_secs()
        );
    }

    // ---- read-only commands -----------------------------------------

    fn cmd_query(&self, req: &Json) -> Result<Json, String> {
        let name = req
            .str_field("name")
            .ok_or("query request missing `name`")?;
        let limit = req.get("limit").and_then(Json::as_u64).unwrap_or(100) as usize;
        let min_sim = req.num_field("min_sim").unwrap_or(0.0);

        let snapshot = self.repository.snapshot();
        let Some(entry) = snapshot.iter().find(|e| e.name == name) else {
            let names: Vec<&str> = snapshot.iter().map(|e| e.name.as_str()).collect();
            return Err(format!(
                "unknown mapping `{name}` (have: {})",
                if names.is_empty() {
                    "none".to_owned()
                } else {
                    names.join(", ")
                }
            ));
        };
        let dom = self.registry.lds(entry.mapping.domain);
        let rng = self.registry.lds(entry.mapping.range);
        let id_of = |lds: &moma_model::LogicalSource, idx: u32| -> String {
            // The arena is append-only, so a snapshot row always
            // resolves — even if the instance was tombstoned after the
            // snapshot was taken.
            lds.get(idx).map(|i| i.id.clone()).unwrap_or_default()
        };
        let mut rows = Vec::new();
        let mut total = 0usize;
        for c in entry.mapping.table.rows() {
            if c.sim < min_sim {
                continue;
            }
            total += 1;
            if limit == 0 || rows.len() < limit {
                rows.push(Json::Arr(vec![
                    Json::Str(id_of(dom, c.domain)),
                    Json::Str(id_of(rng, c.range)),
                    Json::Num(c.sim),
                ]));
            }
        }
        Ok(Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("name", Json::Str(name.into())),
            ("version", Json::Num(entry.version as f64)),
            ("domain", Json::Str(dom.name())),
            ("range", Json::Str(rng.name())),
            ("total", Json::Num(total as f64)),
            ("rows", Json::Arr(rows)),
        ]))
    }

    /// Engine-level stats object (the server layer adds uptime and
    /// per-connection request counters on top).
    pub fn stats(&self) -> Json {
        let sources: Vec<Json> = self
            .registry
            .iter()
            .map(|(_, lds)| {
                Json::obj(vec![
                    ("name", Json::Str(lds.name())),
                    ("len", Json::Num(lds.len() as f64)),
                    ("live", Json::Num(lds.live_len() as f64)),
                ])
            })
            .collect();
        let mappings: Vec<Json> = self
            .repository
            .snapshot()
            .iter()
            .map(|e| {
                let mut fields = vec![
                    ("name".to_owned(), Json::Str(e.name.clone())),
                    ("version".to_owned(), Json::Num(e.version as f64)),
                    ("rows".to_owned(), Json::Num(e.mapping.len() as f64)),
                    ("derived".to_owned(), Json::Bool(e.derived)),
                    (
                        "stale".to_owned(),
                        Json::Bool(self.repository.is_stale(&e.name)),
                    ),
                ];
                if let Some(state) = self.states.get(&e.name) {
                    fields.push(("incremental".to_owned(), Json::Bool(state.is_incremental())));
                    fields.push((
                        "full_rematches".to_owned(),
                        Json::Num(state.full_rematches() as f64),
                    ));
                }
                Json::Obj(fields)
            })
            .collect();
        Json::obj(vec![
            ("ok", Json::Bool(true)),
            (
                "commands",
                Json::obj(vec![
                    ("match", Json::Num(self.commands.matches as f64)),
                    ("compose", Json::Num(self.commands.composes as f64)),
                    ("delta", Json::Num(self.commands.deltas as f64)),
                ]),
            ),
            (
                "wal",
                match &self.wal {
                    Some(w) => Json::obj(vec![
                        ("seq", Json::Num(w.last_seq() as f64)),
                        ("path", Json::Str(w.path().display().to_string())),
                    ]),
                    None => Json::Null,
                },
            ),
            ("sources", Json::Arr(sources)),
            ("mappings", Json::Arr(mappings)),
            (
                "full_rematch_warnings_suppressed",
                Json::Num(self.warnings_suppressed as f64),
            ),
        ])
    }

    fn cmd_dump(&self, req: &Json) -> Result<Json, String> {
        let dir = req.str_field("dir").ok_or("dump request missing `dir`")?;
        std::fs::create_dir_all(dir).map_err(|e| format!("create {dir}: {e}"))?;
        self.repository
            .persist_dir(dir, &self.registry)
            .map_err(|e| format!("persist {dir}: {e}"))?;
        // Deterministic manifest: version stamps, row counts and durable
        // counters, so two state dumps are byte-comparable with `diff -r`.
        let mut manifest = String::from("# moma dump manifest\n");
        manifest.push_str(&format!(
            "commands\t{}\t{}\t{}\n",
            self.commands.matches, self.commands.composes, self.commands.deltas
        ));
        let snapshot = self.repository.snapshot();
        for e in &snapshot {
            manifest.push_str(&format!(
                "mapping\t{}\t{}\t{}\t{}\n",
                e.name,
                e.version,
                e.mapping.len(),
                if e.derived { 1 } else { 0 }
            ));
        }
        for (_, lds) in self.registry.iter() {
            manifest.push_str(&format!(
                "source\t{}\t{}\t{}\n",
                lds.name(),
                lds.len(),
                lds.live_len()
            ));
        }
        let path = Path::new(dir).join("manifest.tsv");
        std::fs::write(&path, manifest).map_err(|e| format!("write {}: {e}", path.display()))?;
        Ok(Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("dir", Json::Str(dir.into())),
            ("mappings", Json::Num(snapshot.len() as f64)),
        ]))
    }

    // ---- accessors ---------------------------------------------------

    /// The engine's source registry.
    pub fn registry(&self) -> &SourceRegistry {
        &self.registry
    }

    /// The engine's mapping repository.
    pub fn repository(&self) -> &MappingRepository {
        &self.repository
    }

    /// Point-in-time snapshot of every repository entry (one lock
    /// acquisition; see [`MappingRepository::snapshot`]).
    pub fn snapshot(&self) -> Vec<SnapshotEntry> {
        self.repository.snapshot()
    }

    /// Durable command counters.
    pub fn command_counts(&self) -> CommandCounts {
        self.commands
    }

    /// Last WAL sequence number (0 when no WAL or empty log).
    pub fn wal_seq(&self) -> u64 {
        self.wal.as_ref().map(|w| w.last_seq()).unwrap_or(0)
    }
}

/// `{"ok": false, "error": msg}`.
pub fn err_response(msg: &str) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(msg.into())),
    ])
}

fn parse_combine(name: &str) -> Result<PathCombine, String> {
    match name {
        "avg" => Ok(PathCombine::Avg),
        "min" => Ok(PathCombine::Min),
        "max" => Ok(PathCombine::Max),
        "product" => Ok(PathCombine::Product),
        _ => {
            if let Some(w) = name.strip_prefix("weighted:") {
                let w: f64 = w.parse().map_err(|e| format!("weighted:{w}: {e}"))?;
                return Ok(PathCombine::Weighted(w));
            }
            Err(format!(
                "unknown path combine `{name}` (avg/min/max/product/weighted:W)"
            ))
        }
    }
}

fn parse_agg(name: &str) -> Result<PathAgg, String> {
    match name {
        "avg" => Ok(PathAgg::Avg),
        "min" => Ok(PathAgg::Min),
        "max" => Ok(PathAgg::Max),
        "relative-left" => Ok(PathAgg::RelativeLeft),
        "relative-right" => Ok(PathAgg::RelativeRight),
        "relative" => Ok(PathAgg::Relative),
        _ => Err(format!(
            "unknown path aggregation `{name}` (avg/min/max/relative/relative-left/relative-right)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moma_model::{AttrDef, AttrValue, DeltaOp, LogicalSource, ObjectType};

    fn tiny_registry() -> SourceRegistry {
        let mut reg = SourceRegistry::new();
        for (pds, ids) in [
            ("DBLP", vec!["d1", "d2"]),
            ("ACM", vec!["a1", "a2"]),
            ("GS", vec!["g1"]),
        ] {
            let mut lds = LogicalSource::new(
                pds,
                ObjectType::new("Publication"),
                vec![AttrDef::text("title")],
            );
            for id in ids {
                lds.insert_record(
                    id,
                    vec![("title", AttrValue::Text(format!("The {id} system paper")))],
                )
                .unwrap();
            }
            reg.register(lds).unwrap();
        }
        reg
    }

    fn match_cmd(name: &str, domain: &str, range: &str) -> Json {
        protocol::match_request(name, domain, range, "title", "title", "trigram", 0.5)
    }

    #[test]
    fn match_compose_query_delta_roundtrip() {
        let mut e = Engine::new(tiny_registry(), Parallelism::sequential());
        let r = e.execute(&match_cmd("m1", "Publication@DBLP", "Publication@ACM"));
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
        assert_eq!(r.get("incremental").and_then(Json::as_bool), Some(true));
        let r = e.execute(&match_cmd("m2", "Publication@ACM", "Publication@GS"));
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
        let r = e.execute(&protocol::compose_request("c", "m1", "m2", "min", "max"));
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");

        let q = e.execute_read(&protocol::query_request("m1", 0, None));
        assert_eq!(q.get("ok").and_then(Json::as_bool), Some(true), "{q}");
        assert!(q.num_field("total").unwrap() >= 1.0);
        let missing = e.execute_read(&protocol::query_request("nope", 0, None));
        assert_eq!(missing.get("ok").and_then(Json::as_bool), Some(false));

        // A GS delta touches m2 (and refreshes c), not m1.
        let ops = vec![DeltaOp::Add {
            id: "g9".into(),
            fields: vec![(
                "title".into(),
                AttrValue::Text("The a1 system paper".into()),
            )],
        }];
        let r = e.execute(&protocol::delta_request("Publication@GS", &ops));
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
        let touched = r.get("mappings").and_then(Json::as_arr).unwrap();
        assert_eq!(touched.len(), 1);
        assert_eq!(touched[0].str_field("name"), Some("m2"));
        assert_eq!(
            touched[0].get("incremental").and_then(Json::as_bool),
            Some(true)
        );
        let refreshed = r.get("refreshed").and_then(Json::as_arr).unwrap();
        assert_eq!(refreshed.len(), 1);
        assert_eq!(refreshed[0].as_str(), Some("c"));
        assert_eq!(e.command_counts().deltas, 1);
    }

    #[test]
    fn wal_replay_restores_bit_identical_state() {
        let dir = std::env::temp_dir().join("moma_engine_replay");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let wal_path = dir.join("wal.log");

        let requests = [
            match_cmd("m1", "Publication@DBLP", "Publication@ACM"),
            match_cmd("m2", "Publication@ACM", "Publication@GS"),
            protocol::compose_request("c", "m1", "m2", "min", "max"),
            protocol::delta_request(
                "Publication@GS",
                &[DeltaOp::Add {
                    id: "g9".into(),
                    fields: vec![(
                        "title".into(),
                        AttrValue::Text("The a1 system paper".into()),
                    )],
                }],
            ),
            // A failing command must replay as the same failure.
            protocol::delta_request(
                "Publication@GS",
                &[DeltaOp::Add {
                    id: "g9".into(),
                    fields: vec![("title".into(), AttrValue::Text("dup id".into()))],
                }],
            ),
        ];

        let mut live = Engine::new(tiny_registry(), Parallelism::sequential());
        live.wal_create(&wal_path).unwrap();
        let mut ok_count = 0;
        for req in &requests {
            let r = live.execute(req);
            if r.get("ok").and_then(Json::as_bool) == Some(true) {
                ok_count += 1;
            }
        }
        assert_eq!(ok_count, requests.len() - 1);

        let mut replayed = Engine::new(tiny_registry(), Parallelism::sequential());
        let summary = replayed.wal_replay(&wal_path).unwrap();
        assert_eq!(summary.replayed, requests.len());
        assert_eq!(summary.failed, 1);
        assert_eq!(summary.dropped_bytes, 0);

        assert_eq!(replayed.command_counts(), live.command_counts());
        let (a, b) = (live.snapshot(), replayed.snapshot());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.version, y.version, "version stamp for {}", x.name);
            assert_eq!(x.dep_versions, y.dep_versions);
            assert_eq!(x.mapping.table.rows(), y.mapping.table.rows(), "{}", x.name);
        }
        // New appends resume after the replayed prefix.
        assert_eq!(replayed.wal_seq(), live.wal_seq());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tfidf_delta_reports_full_rematch() {
        let mut e = Engine::new(tiny_registry(), Parallelism::sequential());
        let req = protocol::match_request(
            "t",
            "Publication@ACM",
            "Publication@GS",
            "title",
            "title",
            "tfidf",
            0.1,
        );
        let r = e.execute(&req);
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
        assert_eq!(r.get("incremental").and_then(Json::as_bool), Some(false));

        let ops = vec![DeltaOp::Add {
            id: "g7".into(),
            fields: vec![(
                "title".into(),
                AttrValue::Text("The g1 system paper".into()),
            )],
        }];
        let r = e.execute(&protocol::delta_request("Publication@GS", &ops));
        let touched = r.get("mappings").and_then(Json::as_arr).unwrap();
        assert_eq!(touched.len(), 1);
        assert_eq!(
            touched[0].get("incremental").and_then(Json::as_bool),
            Some(false)
        );
        assert_eq!(
            touched[0].get("full_rematch").and_then(Json::as_bool),
            Some(true)
        );
    }
}
