//! TCP server: accept loop, per-connection threads, graceful shutdown.
//!
//! Plain `std::net` — a listener thread accepts connections and hands
//! each one to its own handler thread (the service holds a handful of
//! long-lived clients, not ten thousand; thread-per-connection keeps
//! the whole stack dependency-free and easy to reason about). The
//! engines sit behind a [`ShardRouter`]: with one shard (the default)
//! every mutating command serializes through that shard's write lock —
//! so WAL order equals apply order — while `query`/`stats`/`dump` run
//! concurrently under the read lock against repository snapshots. With
//! `--shards N` the router places mutating commands by source ownership
//! and scatters reads, so writes to distinct shards no longer serialize
//! behind one lock (see the [`crate::shard`] module docs and
//! `docs/ARCHITECTURE.md` for the routing invariants).
//!
//! Shutdown: a `shutdown` command (or [`ServerHandle::stop`]) sets a
//! stop flag; the nonblocking accept loop notices within ~15 ms, stops
//! accepting, and handler threads drain at their next read timeout.
//!
//! ## Admission control
//!
//! The server refuses work it cannot serve promptly instead of queueing
//! it unboundedly (see [`Limits`]): connections past the cap get one
//! `busy` refusal frame and a close; requests past the per-class,
//! **per-shard** in-flight budget (mutating commands queue on a shard's
//! write lock, reads on its read lock) get an `overloaded` response
//! with a `retry_after_ms` hint while the connection stays usable. A
//! dedicated background thread walks the shards and publishes
//! auto-checkpoints when a shard's durability thresholds are exceeded,
//! off the delta path.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::engine::{err_response, Engine};
use crate::frame::write_frame;
use crate::json::Json;
use crate::shard::{self, ComposePlan, ShardRouter};

/// How long handler threads block in `read` before re-checking the stop
/// flag (also bounds shutdown latency).
const READ_POLL: Duration = Duration::from_millis(250);

/// How long a peer may stall *inside* a frame (header or payload
/// started, no further bytes) before the connection is dropped. Bounds
/// the damage of a client that dies mid-write without closing.
const MID_FRAME_STALL: Duration = Duration::from_secs(30);

/// How often the background checkpointer re-checks the durability
/// thresholds (a cheap read-lock peek per shard; also bounds its
/// shutdown latency).
const CHECKPOINT_POLL: Duration = Duration::from_millis(100);

/// How long the background checkpointer backs off after a *failed*
/// checkpoint, so a persistently failing one (poisoned WAL, full disk)
/// does not spam a warning per poll interval.
const CHECKPOINT_BACKOFF: Duration = Duration::from_secs(5);

/// Admission-control limits. The defaults are generous for a service
/// holding a handful of long-lived clients; tests and the overload
/// harness shrink them to force the refusal paths deterministically.
/// The write/read budgets apply **per shard**.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Concurrently served connections; further connects get one `busy`
    /// refusal frame and an immediate close.
    pub max_connections: u64,
    /// Mutating commands in flight per shard (executing, or queued on
    /// the shard's write lock) before new ones are answered
    /// `overloaded`.
    pub max_pending_writes: u64,
    /// Read-only commands in flight per shard before new ones are
    /// answered `overloaded`.
    pub max_pending_reads: u64,
    /// Retry hint attached to `busy`/`overloaded` responses.
    pub retry_after_ms: u64,
    /// Enable the `debug_*` fault-injection commands (`debug_panic`,
    /// `debug_sleep_write`) used by the poison-recovery and overload
    /// tests. The CLI gates this behind `MOMA_DEBUG_COMMANDS=1`.
    pub debug_commands: bool,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_connections: 256,
            max_pending_writes: 64,
            max_pending_reads: 256,
            retry_after_ms: 100,
            debug_commands: false,
        }
    }
}

/// State shared between the accept loop and handler threads.
pub struct Shared {
    /// The shard router: engines, per-shard admission counters and the
    /// deterministic ownership index.
    pub router: ShardRouter,
    limits: Limits,
    stop: AtomicBool,
    started: Instant,
    requests: AtomicU64,
    errors: AtomicU64,
    connections: AtomicU64,
    active_connections: AtomicU64,
    busy_refusals: AtomicU64,
    overloaded_rejections: AtomicU64,
    auto_checkpoints: AtomicU64,
    /// Set when a handler panicked while holding a write lock (the lock
    /// is recovered and serving continues, but state deserves an
    /// operator's look) — or when a replica delta diverged.
    degraded: AtomicBool,
}

impl Shared {
    /// Ask the server to stop; accept loop and handlers drain promptly.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Whether a stop has been requested.
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// The configured admission limits.
    pub fn limits(&self) -> &Limits {
        &self.limits
    }

    /// Record that a poisoned engine lock was recovered: the poisoned
    /// flag becomes a `degraded` marker in `stats` instead of a panic
    /// cascade across every later connection.
    fn note_recovered(&self, recovered: bool) {
        if recovered {
            self.degraded.store(true, Ordering::Relaxed);
        }
    }

    fn debug_write_cmd(&self, cmd: &str) -> bool {
        self.limits.debug_commands && matches!(cmd, "debug_panic" | "debug_sleep_write")
    }
}

/// RAII in-flight slot for one admission class; dropping it releases
/// the slot.
struct Admission<'a>(&'a AtomicU64);

impl Drop for Admission<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Try to take an in-flight slot; `None` means the budget is exhausted
/// and the request must be refused.
fn admit(counter: &AtomicU64, budget: u64) -> Option<Admission<'_>> {
    let prev = counter.fetch_add(1, Ordering::AcqRel);
    if prev >= budget {
        counter.fetch_sub(1, Ordering::AcqRel);
        None
    } else {
        Some(Admission(counter))
    }
}

/// Take a write slot on shard `i`.
fn admit_write(shared: &Shared, i: usize) -> Option<Admission<'_>> {
    admit(
        &shared.router.shard(i).inflight_writes,
        shared.limits.max_pending_writes,
    )
}

/// Take a read slot on shard `i`.
fn admit_read(shared: &Shared, i: usize) -> Option<Admission<'_>> {
    admit(
        &shared.router.shard(i).inflight_reads,
        shared.limits.max_pending_reads,
    )
}

/// RAII active-connection slot, paired with the accept loop's
/// increment; dropping it (handler return or panic) frees the slot.
struct ConnSlot(Arc<Shared>);

impl Drop for ConnSlot {
    fn drop(&mut self) {
        self.0.active_connections.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Handle to a server running on a background thread (embedded mode,
/// used by `moma_load` and the end-to-end tests).
pub struct ServerHandle {
    /// Bound address (useful with port 0).
    pub addr: SocketAddr,
    shared: Arc<Shared>,
    thread: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// Shared server state.
    pub fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Request a stop and wait for the accept loop to drain.
    pub fn stop(self) {
        self.shared.request_stop();
        let _ = self.thread.join();
    }
}

/// Bind `addr` and serve on a background thread with default
/// [`Limits`].
pub fn spawn(engine: Engine, addr: &str) -> io::Result<ServerHandle> {
    spawn_with_limits(engine, addr, Limits::default())
}

/// Bind `addr` and serve on a background thread with explicit
/// admission limits.
pub fn spawn_with_limits(engine: Engine, addr: &str, limits: Limits) -> io::Result<ServerHandle> {
    spawn_sharded(vec![engine], addr, limits)
}

/// Bind `addr` and serve `engines` (one per shard) on a background
/// thread. With a single engine this is exactly [`spawn_with_limits`];
/// with more, commands are routed as described in [`crate::shard`].
pub fn spawn_sharded(engines: Vec<Engine>, addr: &str, limits: Limits) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(new_shared(engines, limits));
    let shared2 = Arc::clone(&shared);
    let thread = std::thread::Builder::new()
        .name("moma-accept".into())
        .spawn(move || accept_loop(listener, shared2))?;
    Ok(ServerHandle {
        addr,
        shared,
        thread,
    })
}

/// Bind `addr` and serve on the current thread until shutdown, with
/// default [`Limits`].
pub fn run(engine: Engine, addr: &str) -> io::Result<()> {
    run_with_limits(engine, addr, Limits::default())
}

/// Bind `addr` and serve on the current thread until shutdown, with
/// explicit admission limits.
pub fn run_with_limits(engine: Engine, addr: &str, limits: Limits) -> io::Result<()> {
    run_sharded(vec![engine], addr, limits)
}

/// Bind `addr` and serve `engines` (one per shard) on the current
/// thread until shutdown.
pub fn run_sharded(engines: Vec<Engine>, addr: &str, limits: Limits) -> io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    let shards = engines.len();
    eprintln!(
        "moma serve: listening on {} ({shards} shard{})",
        listener.local_addr()?,
        if shards == 1 { "" } else { "s" }
    );
    accept_loop(listener, Arc::new(new_shared(engines, limits)));
    Ok(())
}

fn new_shared(engines: Vec<Engine>, limits: Limits) -> Shared {
    Shared {
        router: ShardRouter::new(engines),
        limits,
        stop: AtomicBool::new(false),
        started: Instant::now(),
        requests: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        connections: AtomicU64::new(0),
        active_connections: AtomicU64::new(0),
        busy_refusals: AtomicU64::new(0),
        overloaded_rejections: AtomicU64::new(0),
        auto_checkpoints: AtomicU64::new(0),
        degraded: AtomicBool::new(false),
    }
}

/// Write one `busy` refusal frame and let the connection drop.
fn refuse_busy(shared: &Shared, stream: &mut TcpStream, why: &str) {
    shared.busy_refusals.fetch_add(1, Ordering::Relaxed);
    let resp = Json::obj(vec![
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::Str(format!(
                "busy: {why}; retry after {} ms",
                shared.limits.retry_after_ms
            )),
        ),
        ("busy", Json::Bool(true)),
        ("retry_after_ms", Json::Uint(shared.limits.retry_after_ms)),
    ]);
    let _ = write_frame(stream, resp.to_string().as_bytes());
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    listener
        .set_nonblocking(true)
        .expect("set_nonblocking on listener");
    // The background checkpointer lives exactly as long as the accept
    // loop: one thread, joined below — it can never run concurrently
    // with itself or with shutdown teardown.
    let checkpointer = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("moma-checkpoint".into())
            .spawn(move || checkpoint_loop(shared))
            .ok()
    };
    let mut handlers = Vec::new();
    while !shared.stopping() {
        match listener.accept() {
            Ok((mut stream, peer)) => {
                let active = shared.active_connections.fetch_add(1, Ordering::AcqRel);
                if active >= shared.limits.max_connections {
                    shared.active_connections.fetch_sub(1, Ordering::AcqRel);
                    refuse_busy(&shared, &mut stream, "connection limit reached");
                    continue;
                }
                shared.connections.fetch_add(1, Ordering::Relaxed);
                // Keep a refusal handle: if the thread spawn below
                // fails, `stream` is already gone into the dropped
                // closure and the peer still deserves a frame.
                let refusal = stream.try_clone().ok();
                let slot = ConnSlot(Arc::clone(&shared));
                let shared2 = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name(format!("moma-conn-{peer}"))
                    .spawn(move || {
                        let _slot = slot;
                        handle_connection(stream, shared2)
                    });
                match spawned {
                    Ok(h) => handlers.push(h),
                    // Thread exhaustion must not kill the accept loop
                    // (and with it the whole server): refuse this
                    // connection and keep serving the rest.
                    Err(e) => {
                        eprintln!("moma serve: refusing connection from {peer}: spawn failed: {e}");
                        if let Some(mut s) = refusal {
                            refuse_busy(&shared, &mut s, "out of handler threads");
                        }
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(15));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                eprintln!("moma serve: accept error: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }
    if let Some(cp) = checkpointer {
        let _ = cp.join();
    }
}

/// Background auto-checkpointer: walks the shards, peeks at each one's
/// durability thresholds under its read lock and, only when due, takes
/// that shard's write lock to publish a checkpoint — so checkpoint cost
/// never rides on a delta's response time, and a checkpoint on one
/// shard never blocks writes to another. Single-threaded by
/// construction and joined by the accept loop, so it cannot overlap
/// itself or outlive shutdown. The `MOMA_CHECKPOINT_FAULT_DELAY_MS`
/// fault injection applies here the same as to explicit `checkpoint`
/// commands (it lives in `checkpoint::publish`).
fn checkpoint_loop(shared: Arc<Shared>) {
    while !shared.stopping() {
        let mut failed = false;
        for i in 0..shared.router.len() {
            let due = {
                let (engine, recovered) = shared.router.engine_read(i);
                shared.note_recovered(recovered);
                engine.checkpoint_due()
            };
            if !due {
                continue;
            }
            // Re-check under the write lock: a concurrent explicit
            // `checkpoint` command may have run since the peek. The
            // counter is bumped while the lock is still held so a
            // stats reader never sees the new checkpoint_seq without
            // the matching auto_checkpoints count.
            let result = {
                let (mut engine, recovered) = shared.router.engine_write(i);
                shared.note_recovered(recovered);
                if engine.checkpoint_due() {
                    let r = engine.run_auto_checkpoint();
                    if r.is_ok() {
                        shared.auto_checkpoints.fetch_add(1, Ordering::Relaxed);
                    }
                    Some(r)
                } else {
                    None
                }
            };
            if let Some(Err(e)) = result {
                eprintln!("moma serve: warning: background checkpoint failed on shard {i}: {e}");
                failed = true;
            }
        }
        if failed {
            let deadline = Instant::now() + CHECKPOINT_BACKOFF;
            while Instant::now() < deadline && !shared.stopping() {
                std::thread::sleep(CHECKPOINT_POLL);
            }
            continue;
        }
        std::thread::sleep(CHECKPOINT_POLL);
    }
}

/// What the handler read from the wire.
enum Next {
    Frame(Vec<u8>),
    Eof,
    /// Read timeout with no frame started — re-check the stop flag.
    Idle,
}

/// Error returned when a mid-frame retry must give up (server stopping
/// or the peer stalled past [`MID_FRAME_STALL`]).
fn mid_frame_abort(shared: &Shared, progress: &Instant, what: &str) -> Option<io::Error> {
    // A server stop must not wait on a half-written frame: the handler
    // thread is joined by the accept loop and would hang shutdown.
    if shared.stopping() {
        return Some(io::Error::new(
            io::ErrorKind::ConnectionAborted,
            format!("server stopping with partial frame {what}"),
        ));
    }
    if progress.elapsed() >= MID_FRAME_STALL {
        return Some(io::Error::new(
            io::ErrorKind::TimedOut,
            format!("peer stalled mid-frame ({what})"),
        ));
    }
    None
}

/// Like [`read_frame`], but a read timeout *between* frames surfaces as
/// [`Next::Idle`] instead of an error. A timeout after the frame header
/// has started keeps reading (the peer is mid-write) — up to the stop
/// flag or the [`MID_FRAME_STALL`] deadline, so a peer that stalls
/// mid-frame can neither pin this handler thread forever nor block
/// shutdown (the accept loop joins every handler).
///
/// [`read_frame`]: crate::frame::read_frame
fn next_frame(stream: &mut TcpStream, shared: &Shared) -> io::Result<Next> {
    use io::Read;
    let mut len_buf = [0u8; 4];
    let mut filled = 0usize;
    let mut progress = Instant::now();
    while filled < 4 {
        match stream.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(Next::Eof),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame header",
                ))
            }
            Ok(n) => {
                filled += n;
                progress = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if filled == 0
                    && matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
            {
                return Ok(Next::Idle)
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if let Some(abort) = mid_frame_abort(shared, &progress, "header") {
                    return Err(abort);
                }
            }
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > crate::frame::MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    let mut got = 0usize;
    let mut progress = Instant::now();
    while got < len {
        match stream.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame payload",
                ))
            }
            Ok(n) => {
                got += n;
                progress = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if let Some(abort) = mid_frame_abort(shared, &progress, "payload") {
                    return Err(abort);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(Next::Frame(payload))
}

fn handle_connection(mut stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    loop {
        let payload = match next_frame(&mut stream, &shared) {
            Ok(Next::Frame(p)) => p,
            Ok(Next::Eof) => return,
            Ok(Next::Idle) => {
                if shared.stopping() {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        shared.requests.fetch_add(1, Ordering::Relaxed);
        let resp = dispatch(&payload, &shared);
        if resp.get("ok").and_then(Json::as_bool) != Some(true) {
            shared.errors.fetch_add(1, Ordering::Relaxed);
        }
        let stop_after = resp.get("stopping").and_then(Json::as_bool) == Some(true);
        if write_frame(&mut stream, resp.to_string().as_bytes()).is_err() {
            return;
        }
        if stop_after {
            return;
        }
    }
}

/// `overloaded` response for a request past its class's in-flight
/// budget. The connection stays usable — the client is expected to
/// back off for `retry_after_ms` and resend.
fn overloaded_response(shared: &Shared, class: &str) -> Json {
    shared.overloaded_rejections.fetch_add(1, Ordering::Relaxed);
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::Str(format!(
                "overloaded: too many in-flight {class} commands; retry after {} ms",
                shared.limits.retry_after_ms
            )),
        ),
        ("overloaded", Json::Bool(true)),
        ("retry_after_ms", Json::Uint(shared.limits.retry_after_ms)),
    ])
}

/// Response for a handler that panicked mid-command. The engine lock is
/// recovered (see [`ShardRouter::engine_write`]) and serving continues,
/// but `stats` reports `degraded: true` from here on.
fn internal_error_response(shared: &Shared) -> Json {
    shared.degraded.store(true, Ordering::Relaxed);
    err_response("internal error: command handler panicked; engine marked degraded (see stats)")
}

/// Clone a request object with one extra field appended.
fn with_field(req: &Json, key: &str, value: Json) -> Json {
    let mut fields = match req {
        Json::Obj(fields) => fields.clone(),
        _ => Vec::new(),
    };
    fields.push((key.to_owned(), value));
    Json::Obj(fields)
}

/// Append `(key, value)` to an object response (no-op otherwise).
fn annotate(mut resp: Json, key: &str, value: Json) -> Json {
    if let Json::Obj(fields) = &mut resp {
        fields.push((key.to_owned(), value));
    }
    resp
}

fn response_ok(resp: &Json) -> bool {
    resp.get("ok").and_then(Json::as_bool) == Some(true)
}

fn dispatch(payload: &[u8], shared: &Shared) -> Json {
    let req = match std::str::from_utf8(payload)
        .map_err(|e| e.to_string())
        .and_then(Json::parse)
    {
        Ok(req) => req,
        Err(e) => return err_response(&format!("bad request: {e}")),
    };
    let Some(cmd) = req.str_field("cmd") else {
        return err_response("request missing `cmd`");
    };
    match cmd {
        "shutdown" => {
            shared.request_stop();
            Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("stopping", Json::Bool(true)),
            ])
        }
        "stats" => stats_response(shared, &req),
        c if Engine::needs_write_lock(c) || shared.debug_write_cmd(c) => {
            write_path(c, &req, shared)
        }
        _ => read_path(&req, shared),
    }
}

/// `stats`: gather every shard's engine stats (each under its own read
/// admission + lock, in ascending shard order), merge them when sharded
/// and append the server-level counters.
fn stats_response(shared: &Shared, req: &Json) -> Json {
    let n = shared.router.len();
    let mut per_shard = Vec::with_capacity(n);
    for i in 0..n {
        let Some(_slot) = admit_read(shared, i) else {
            return overloaded_response(shared, "read");
        };
        let (engine, recovered) = shared.router.engine_read(i);
        shared.note_recovered(recovered);
        per_shard.push(engine.execute_read(req));
    }
    let mut resp = if n == 1 {
        per_shard.pop().expect("one shard")
    } else {
        shard::merge_stats(&shared.router, &per_shard)
    };
    if let Json::Obj(fields) = &mut resp {
        fields.push((
            "uptime_ms".to_owned(),
            Json::Uint(shared.started.elapsed().as_millis() as u64),
        ));
        fields.push((
            "requests".to_owned(),
            Json::Uint(shared.requests.load(Ordering::Relaxed)),
        ));
        fields.push((
            "request_errors".to_owned(),
            Json::Uint(shared.errors.load(Ordering::Relaxed)),
        ));
        fields.push((
            "connections".to_owned(),
            Json::Uint(shared.connections.load(Ordering::Relaxed)),
        ));
        fields.push((
            "active_connections".to_owned(),
            Json::Uint(shared.active_connections.load(Ordering::Relaxed)),
        ));
        fields.push((
            "busy_refusals".to_owned(),
            Json::Uint(shared.busy_refusals.load(Ordering::Relaxed)),
        ));
        fields.push((
            "overloaded_rejections".to_owned(),
            Json::Uint(shared.overloaded_rejections.load(Ordering::Relaxed)),
        ));
        fields.push((
            "auto_checkpoints".to_owned(),
            Json::Uint(shared.auto_checkpoints.load(Ordering::Relaxed)),
        ));
        fields.push((
            "shard_count".to_owned(),
            Json::Uint(shared.router.len() as u64),
        ));
        fields.push((
            "degraded".to_owned(),
            Json::Bool(shared.degraded.load(Ordering::Relaxed)),
        ));
    }
    resp
}

/// Run a read-only request on shard `i` under its read admission slot.
fn run_read_on(shared: &Shared, i: usize, req: &Json) -> Json {
    let Some(_slot) = admit_read(shared, i) else {
        return overloaded_response(shared, "read");
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let (engine, recovered) = shared.router.engine_read(i);
        shared.note_recovered(recovered);
        engine.execute_read(req)
    }));
    match outcome {
        Ok(resp) => resp,
        Err(_) => internal_error_response(shared),
    }
}

/// The router's "unknown mapping" error — same shape as the engine's,
/// so clients see one error grammar regardless of shard count.
fn unknown_mapping_response(shared: &Shared, name: &str) -> Json {
    let known = shared.router.known_mappings();
    let names: Vec<String> = known.iter().map(|(n, _)| n.clone()).collect();
    err_response(&format!(
        "unknown mapping `{name}` (have: {})",
        if names.is_empty() {
            "none".to_owned()
        } else {
            names.join(", ")
        }
    ))
}

fn read_path(req: &Json, shared: &Shared) -> Json {
    if shared.router.is_single() {
        return run_read_on(shared, 0, req);
    }
    let cmd = req.str_field("cmd").unwrap_or_default();
    match cmd {
        "ping" => Json::obj(vec![("ok", Json::Bool(true))]),
        "query" => {
            let Some(name) = req.str_field("name") else {
                return err_response("query request missing `name`");
            };
            match shared.router.mapping_shard(name) {
                Some(i) => annotate(run_read_on(shared, i, req), "shard", Json::Uint(i as u64)),
                None => unknown_mapping_response(shared, name),
            }
        }
        "batch_query" => sharded_batch_query(shared, req),
        "dump" => sharded_dump(shared, req),
        // Anything else lands on shard 0 for the canonical error
        // message (`unknown command ...`).
        _ => run_read_on(shared, 0, req),
    }
}

/// Sharded `batch_query`: group items by their mapping's shard, visit
/// shards in ascending order (one read admission + lock acquisition
/// per shard), and reassemble the per-item results in request order.
fn sharded_batch_query(shared: &Shared, req: &Json) -> Json {
    let Some(Json::Arr(items)) = req.get("items") else {
        return err_response("batch_query request missing `items` array");
    };
    if items.is_empty() {
        return err_response("batch_query needs a non-empty `items` array");
    }
    let mut results: Vec<Option<Json>> = vec![None; items.len()];
    let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for (k, item) in items.iter().enumerate() {
        match item.str_field("name") {
            None => results[k] = Some(err_response("query request missing `name`")),
            Some(name) => match shared.router.mapping_shard(name) {
                Some(i) => groups.entry(i).or_default().push(k),
                None => results[k] = Some(unknown_mapping_response(shared, name)),
            },
        }
    }
    for (i, idxs) in groups {
        let Some(_slot) = admit_read(shared, i) else {
            return overloaded_response(shared, "read");
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let (engine, recovered) = shared.router.engine_read(i);
            shared.note_recovered(recovered);
            idxs.iter()
                .map(|&k| {
                    let q = with_field(&items[k], "cmd", Json::Str("query".into()));
                    (k, engine.execute_read(&q))
                })
                .collect::<Vec<_>>()
        }));
        match outcome {
            Ok(pairs) => {
                for (k, resp) in pairs {
                    results[k] = Some(annotate(resp, "shard", Json::Uint(i as u64)));
                }
            }
            Err(_) => return internal_error_response(shared),
        }
    }
    let results: Vec<Json> = results
        .into_iter()
        .map(|r| r.expect("every batch_query item answered"))
        .collect();
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("count", Json::Uint(results.len() as u64)),
        ("results", Json::Arr(results)),
    ])
}

/// Sharded `dump`: each shard persists into `dir/shard.<i>/` (its own
/// deterministic manifest included), and the coordinator writes a
/// top-level `manifest.tsv` with the aggregate command counters — so an
/// N-shard recovered state remains byte-comparable to a clean N-shard
/// run with `diff -r`.
fn sharded_dump(shared: &Shared, req: &Json) -> Json {
    let Some(dir) = req.str_field("dir") else {
        return err_response("dump request missing `dir`");
    };
    if let Err(e) = std::fs::create_dir_all(dir) {
        return err_response(&format!("create {dir}: {e}"));
    }
    let n = shared.router.len();
    let mut total_mappings = 0u64;
    let mut sums = [0u64; 4];
    let mut shard_lines = String::new();
    for i in 0..n {
        let Some(_slot) = admit_read(shared, i) else {
            return overloaded_response(shared, "read");
        };
        let sub = format!("{dir}/shard.{i}");
        let sub_req = with_field(req, "dir", Json::Str(sub.clone()));
        // `with_field` appends, but `str_field` returns the first
        // occurrence — rebuild the request instead.
        let sub_req = match sub_req {
            Json::Obj(fields) => Json::Obj(
                fields
                    .into_iter()
                    .filter(|(k, _)| k != "dir")
                    .chain(std::iter::once(("dir".to_owned(), Json::Str(sub.clone()))))
                    .collect(),
            ),
            other => other,
        };
        let (engine, recovered) = shared.router.engine_read(i);
        shared.note_recovered(recovered);
        let resp = engine.execute_read(&sub_req);
        if !response_ok(&resp) {
            return annotate(resp, "shard", Json::Uint(i as u64));
        }
        let mappings = resp.get("mappings").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        total_mappings += mappings;
        let counts = engine.command_counts();
        sums[0] += counts.matches;
        sums[1] += counts.composes;
        sums[2] += counts.deltas;
        sums[3] += counts.repl_deltas;
        shard_lines.push_str(&format!(
            "shard\t{i}\t{mappings}\t{}\t{}\t{}\t{}\n",
            counts.matches, counts.composes, counts.deltas, counts.repl_deltas
        ));
    }
    let mut manifest = String::from("# moma shard dump manifest\n");
    manifest.push_str(&format!("shards\t{n}\n"));
    manifest.push_str(&format!(
        "commands\t{}\t{}\t{}\t{}\n",
        sums[0], sums[1], sums[2], sums[3]
    ));
    manifest.push_str(&shard_lines);
    let path = std::path::Path::new(dir).join("manifest.tsv");
    if let Err(e) = std::fs::write(&path, manifest) {
        return err_response(&format!("write {}: {e}", path.display()));
    }
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("dir", Json::Str(dir.into())),
        ("shards", Json::Uint(n as u64)),
        ("mappings", Json::Num(total_mappings as f64)),
    ])
}

fn write_path(c: &str, req: &Json, shared: &Shared) -> Json {
    // `debug_sleep_write` occupies its admission slot without touching
    // an engine lock: it models a slow writer filling the queue, so
    // overload tests can saturate the write budget while reads keep
    // answering. Debug commands always target shard 0.
    if c == "debug_sleep_write" || c == "debug_panic" {
        let Some(_slot) = admit_write(shared, 0) else {
            return overloaded_response(shared, "mutating");
        };
        if c == "debug_sleep_write" {
            let ms = req
                .get("ms")
                .and_then(Json::as_u64)
                .unwrap_or(250)
                .min(10_000);
            std::thread::sleep(Duration::from_millis(ms));
            return Json::obj(vec![("ok", Json::Bool(true)), ("slept_ms", Json::Uint(ms))]);
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let (_engine, recovered) = shared.router.engine_write(0);
            shared.note_recovered(recovered);
            panic!("debug_panic: injected handler panic");
        }));
        let _: Result<(), _> = outcome;
        return internal_error_response(shared);
    }
    if shared.router.is_single() {
        let Some(_slot) = admit_write(shared, 0) else {
            return overloaded_response(shared, "mutating");
        };
        // A panicked handler must not take the server down (or poison
        // every later request): catch it, answer an `internal_error`,
        // and let the router recover the lock next time around.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let (mut engine, recovered) = shared.router.engine_write(0);
            shared.note_recovered(recovered);
            engine.execute(req)
        }));
        return match outcome {
            Ok(resp) => resp,
            Err(_) => internal_error_response(shared),
        };
    }
    match c {
        "checkpoint" => sharded_checkpoint(shared, req),
        "match" => route_match(shared, req),
        "compose" => route_compose(shared, req),
        "delta" => route_delta(shared, req),
        "batch_delta" => route_batch_delta(shared, req),
        // `install` records are written by the router itself (and by
        // WAL replay); accepting them from the wire would bypass the
        // ownership index.
        "install" => err_response("`install` is internal to the shard router"),
        other => err_response(&format!("`{other}` is not routable")),
    }
}

/// `checkpoint` on every shard, ascending; the response aggregates the
/// per-shard sequence numbers (their sum is what the `wal.seq` /
/// `wal.checkpoint_seq` stats aggregates count).
fn sharded_checkpoint(shared: &Shared, req: &Json) -> Json {
    let n = shared.router.len();
    let mut per_shard = Vec::with_capacity(n);
    let mut seq_sum = 0u64;
    for i in 0..n {
        let Some(_slot) = admit_write(shared, i) else {
            return overloaded_response(shared, "mutating");
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let (mut engine, recovered) = shared.router.engine_write(i);
            shared.note_recovered(recovered);
            engine.execute(req)
        }));
        let resp = match outcome {
            Ok(resp) => resp,
            Err(_) => return internal_error_response(shared),
        };
        if !response_ok(&resp) {
            return annotate(resp, "shard", Json::Uint(i as u64));
        }
        seq_sum += resp.get("seq").and_then(Json::as_u64).unwrap_or(0);
        per_shard.push(annotate(resp, "shard", Json::Uint(i as u64)));
    }
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("seq", Json::Uint(seq_sum)),
        ("shards", Json::Arr(per_shard)),
    ])
}

fn route_match(shared: &Shared, req: &Json) -> Json {
    let Some(name) = req.str_field("name") else {
        return err_response("match request missing `name`");
    };
    let Some(domain) = req.str_field("domain") else {
        return err_response("match request missing `domain`");
    };
    let Some(range) = req.str_field("range") else {
        return err_response("match request missing `range`");
    };
    let hint = req.get("shard").and_then(Json::as_u64).map(|v| v as usize);
    let target = match shared.router.plan_match(domain, range, hint) {
        Ok(t) => t,
        Err(e) => return err_response(&e),
    };
    let Some(_slot) = admit_write(shared, target) else {
        return overloaded_response(shared, "mutating");
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let (mut engine, recovered) = shared.router.engine_write(target);
        shared.note_recovered(recovered);
        engine.execute(req)
    }));
    match outcome {
        Ok(resp) => {
            if response_ok(&resp) {
                shared.router.note_match(name, domain, range, target);
            }
            annotate(resp, "shard", Json::Uint(target as u64))
        }
        Err(_) => internal_error_response(shared),
    }
}

fn route_compose(shared: &Shared, req: &Json) -> Json {
    let Some(name) = req.str_field("name") else {
        return err_response("compose request missing `name`");
    };
    let Some(left) = req.str_field("left") else {
        return err_response("compose request missing `left`");
    };
    let Some(right) = req.str_field("right") else {
        return err_response("compose request missing `right`");
    };
    match shared.router.plan_compose(left, right) {
        Err(e) => err_response(&e),
        Ok(ComposePlan::Single(i)) => {
            let Some(_slot) = admit_write(shared, i) else {
                return overloaded_response(shared, "mutating");
            };
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let (mut engine, recovered) = shared.router.engine_write(i);
                shared.note_recovered(recovered);
                engine.execute(req)
            }));
            match outcome {
                Ok(resp) => {
                    if response_ok(&resp) {
                        shared.router.note_mapping(name, i);
                    }
                    annotate(resp, "shard", Json::Uint(i as u64))
                }
                Err(_) => internal_error_response(shared),
            }
        }
        Ok(ComposePlan::Cross {
            left: ls,
            right: rs,
            install,
        }) => cross_shard_compose(shared, req, name, left, right, ls, rs, install),
    }
}

/// The coordinator's gather-then-compute path: read-lock each input's
/// shard in turn (never both at once — cheap Arc clones make holding
/// two shard locks unnecessary), compute the compose locally with the
/// exact single-shard recipe evaluation, then log the *result* as an
/// `install` record on the left input's shard. The installed mapping is
/// a point-in-time snapshot of its inputs; the response records their
/// versions so a client can detect staleness and re-compose.
#[allow(clippy::too_many_arguments)]
fn cross_shard_compose(
    shared: &Shared,
    req: &Json,
    name: &str,
    left: &str,
    right: &str,
    ls: usize,
    rs: usize,
    install: usize,
) -> Json {
    let f = req.str_field("f").unwrap_or("min").to_owned();
    let g = req.str_field("g").unwrap_or("max").to_owned();
    let (f, g) = match (
        crate::engine::parse_combine(&f),
        crate::engine::parse_agg(&g),
    ) {
        (Ok(f), Ok(g)) => (f, g),
        (Err(e), _) | (_, Err(e)) => return err_response(&e),
    };
    // Gather: clone each input's mapping Arc plus the metadata the
    // install record needs, one shard at a time.
    let gather = |i: usize,
                  mapping_name: &str|
     -> Result<
        (
            std::sync::Arc<moma_core::Mapping>,
            u64,
            String,
            String,
            moma_core::exec::Parallelism,
        ),
        Json,
    > {
        let Some(_slot) = admit_read(shared, i) else {
            return Err(overloaded_response(shared, "read"));
        };
        let (engine, recovered) = shared.router.engine_read(i);
        shared.note_recovered(recovered);
        let Some(m) = engine.repository().get(mapping_name) else {
            return Err(err_response(&format!(
                "unknown mapping `{mapping_name}` on shard {i} (routing index stale?)"
            )));
        };
        let version = engine.repository().version(mapping_name).unwrap_or(0);
        let domain_name = engine.registry().lds(m.domain).name();
        let range_name = engine.registry().lds(m.range).name();
        Ok((m, version, domain_name, range_name, engine.parallelism()))
    };
    let (left_map, left_ver, left_domain, _left_range, par) = match gather(ls, left) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let (right_map, right_ver, _right_domain, right_range, _) = match gather(rs, right) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let (rows, assoc) = match shard::compose_gathered(&left_map, &right_map, f, g, &par) {
        Ok(v) => v,
        Err(e) => return err_response(&e),
    };
    let rows_json: Vec<Json> = rows
        .iter()
        .map(|&(d, r, sim)| {
            Json::Arr(vec![
                Json::Num(d as f64),
                Json::Num(r as f64),
                Json::Num(sim),
            ])
        })
        .collect();
    let mut install_fields = vec![
        ("cmd".to_owned(), Json::Str("install".into())),
        ("name".to_owned(), Json::Str(name.into())),
        ("domain".to_owned(), Json::Str(left_domain)),
        ("range".to_owned(), Json::Str(right_range)),
        ("rows".to_owned(), Json::Arr(rows_json)),
        (
            "inputs".to_owned(),
            Json::Arr(vec![
                Json::Arr(vec![Json::Str(left.into()), Json::Uint(left_ver)]),
                Json::Arr(vec![Json::Str(right.into()), Json::Uint(right_ver)]),
            ]),
        ),
    ];
    if let Some(t) = assoc {
        install_fields.push(("assoc".to_owned(), Json::Str(t)));
    }
    let install_req = Json::Obj(install_fields);
    let Some(_slot) = admit_write(shared, install) else {
        return overloaded_response(shared, "mutating");
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let (mut engine, recovered) = shared.router.engine_write(install);
        shared.note_recovered(recovered);
        engine.execute(&install_req)
    }));
    match outcome {
        Ok(resp) => {
            if !response_ok(&resp) {
                return resp;
            }
            shared.router.note_mapping(name, install);
            let resp = annotate(resp, "shard", Json::Uint(install as u64));
            let resp = annotate(resp, "cross_shard", Json::Bool(true));
            let resp = annotate(resp, "left_shard", Json::Uint(ls as u64));
            let resp = annotate(resp, "right_shard", Json::Uint(rs as u64));
            annotate(
                resp,
                "inputs",
                Json::Arr(vec![
                    Json::Arr(vec![Json::Str(left.into()), Json::Uint(left_ver)]),
                    Json::Arr(vec![Json::Str(right.into()), Json::Uint(right_ver)]),
                ]),
            )
        }
        Err(_) => internal_error_response(shared),
    }
}

fn route_delta(shared: &Shared, req: &Json) -> Json {
    let Some(source) = req.str_field("lds") else {
        return err_response("delta request missing `lds`");
    };
    // Unknown sources get the registry's own error (routable: it names
    // the source and the registry is identical on every shard).
    {
        let (engine, recovered) = shared.router.engine_read(0);
        shared.note_recovered(recovered);
        if let Err(e) = engine.registry().resolve(source) {
            return err_response(&format!("unknown source `{source}`: {e}"));
        }
    }
    let targets = match shared.router.plan_delta(source) {
        Ok(t) => t,
        Err(e) => return err_response(&e),
    };
    apply_fanout_delta(shared, req, &targets)
}

/// Apply one delta to its target shards: admission on every target,
/// write locks in ascending shard order (all held until every copy is
/// applied, so concurrent deltas to overlapping shard sets cannot
/// interleave differently on different shards), accounting copy on the
/// lowest target, `"repl": true` replicas on the rest.
fn apply_fanout_delta(shared: &Shared, req: &Json, targets: &[usize]) -> Json {
    let mut slots = Vec::with_capacity(targets.len());
    for &i in targets {
        match admit_write(shared, i) {
            Some(s) => slots.push(s),
            None => return overloaded_response(shared, "mutating"),
        }
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut guards = Vec::with_capacity(targets.len());
        for &i in targets {
            let (g, recovered) = shared.router.engine_write(i);
            shared.note_recovered(recovered);
            guards.push((i, g));
        }
        let mut primary = None;
        for (k, (i, engine)) in guards.iter_mut().enumerate() {
            if k == 0 {
                primary = Some(engine.execute(req));
            } else {
                let repl_req = with_field(req, "repl", Json::Bool(true));
                let resp = engine.execute(&repl_req);
                if !response_ok(&resp) {
                    // A replica that fails while the accounting copy
                    // succeeded means the shards have diverged; keep
                    // serving but flag it loudly.
                    eprintln!(
                        "moma serve: warning: replica delta diverged on shard {i}: {}",
                        resp.str_field("error").unwrap_or("unknown error")
                    );
                    shared.degraded.store(true, Ordering::Relaxed);
                }
            }
        }
        primary.expect("at least one delta target")
    }));
    match outcome {
        Ok(resp) => annotate(
            resp,
            "shards",
            Json::Arr(targets.iter().map(|&i| Json::Uint(i as u64)).collect()),
        ),
        Err(_) => internal_error_response(shared),
    }
}

/// Sharded `batch_delta`. When every item routes to one shard the whole
/// batch forwards there unchanged — one WAL group commit, contiguous
/// sequence numbers, exactly the single-shard semantics. A batch
/// spanning shards is decomposed into per-shard sub-batches (one group
/// commit per shard, write locks held across all of them in ascending
/// order); per-item results are reassembled in request order and the
/// envelope's `first_seq`/`last_seq` are `null` because no single
/// shard's sequence range covers the batch.
fn route_batch_delta(shared: &Shared, req: &Json) -> Json {
    let Some(Json::Arr(items)) = req.get("items") else {
        return err_response("batch_delta request missing `items` array");
    };
    if items.is_empty() {
        return err_response("batch_delta needs a non-empty `items` array");
    }
    let mut item_targets: Vec<Vec<usize>> = Vec::with_capacity(items.len());
    for (k, item) in items.iter().enumerate() {
        let Some(source) = item.str_field("lds") else {
            return err_response(&format!("batch_delta item {k} missing `lds`"));
        };
        {
            let (engine, recovered) = shared.router.engine_read(0);
            shared.note_recovered(recovered);
            if let Err(e) = engine.registry().resolve(source) {
                return err_response(&format!(
                    "batch_delta item {k}: unknown source `{source}`: {e}"
                ));
            }
        }
        match shared.router.plan_delta(source) {
            Ok(t) => item_targets.push(t),
            Err(e) => return err_response(&format!("batch_delta item {k}: {e}")),
        }
    }
    let union: std::collections::BTreeSet<usize> = item_targets.iter().flatten().copied().collect();
    if union.len() == 1 {
        let i = *union.iter().next().expect("non-empty union");
        let Some(_slot) = admit_write(shared, i) else {
            return overloaded_response(shared, "mutating");
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let (mut engine, recovered) = shared.router.engine_write(i);
            shared.note_recovered(recovered);
            engine.execute(req)
        }));
        return match outcome {
            Ok(resp) => annotate(resp, "shards", Json::Arr(vec![Json::Uint(i as u64)])),
            Err(_) => internal_error_response(shared),
        };
    }

    // Multi-shard batch: per-shard sub-batches under all write locks.
    let mut slots = Vec::with_capacity(union.len());
    for &i in &union {
        match admit_write(shared, i) {
            Some(s) => slots.push(s),
            None => return overloaded_response(shared, "mutating"),
        }
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut guards = Vec::with_capacity(union.len());
        for &i in &union {
            let (g, recovered) = shared.router.engine_write(i);
            shared.note_recovered(recovered);
            guards.push((i, g));
        }
        let mut results: Vec<Option<Json>> = vec![None; items.len()];
        for (i, engine) in guards.iter_mut() {
            // Sub-batch for shard i, in request order. An item's
            // accounting copy goes to its lowest target; other targets
            // get replicas.
            let mut sub_items = Vec::new();
            let mut accounted = Vec::new();
            for (k, targets) in item_targets.iter().enumerate() {
                if !targets.contains(i) {
                    continue;
                }
                let is_accounting = targets.first() == Some(i);
                let item = if is_accounting {
                    items[k].clone()
                } else {
                    with_field(&items[k], "repl", Json::Bool(true))
                };
                sub_items.push(item);
                accounted.push(if is_accounting { Some(k) } else { None });
            }
            let sub_req = Json::obj(vec![
                ("cmd", Json::Str("batch_delta".into())),
                ("items", Json::Arr(sub_items)),
            ]);
            let resp = engine.execute(&sub_req);
            if !response_ok(&resp) {
                return Err(annotate(resp, "shard", Json::Uint(*i as u64)));
            }
            if let Some(Json::Arr(sub_results)) = resp.get("results") {
                for (j, slot) in accounted.iter().enumerate() {
                    if let Some(k) = slot {
                        results[*k] = sub_results.get(j).cloned();
                    }
                }
            }
        }
        Ok(results)
    }));
    let results = match outcome {
        Ok(Ok(results)) => results,
        Ok(Err(resp)) => return resp,
        Err(_) => return internal_error_response(shared),
    };
    let results: Vec<Json> = results
        .into_iter()
        .map(|r| r.unwrap_or_else(|| err_response("batch_delta item result missing")))
        .collect();
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("count", Json::Uint(results.len() as u64)),
        ("first_seq", Json::Null),
        ("last_seq", Json::Null),
        ("results", Json::Arr(results)),
        (
            "shards",
            Json::Arr(union.iter().map(|&i| Json::Uint(i as u64)).collect()),
        ),
    ])
}
