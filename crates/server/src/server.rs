//! TCP server: accept loop, per-connection threads, graceful shutdown.
//!
//! Plain `std::net` — a listener thread accepts connections and hands
//! each one to its own handler thread (the service holds a handful of
//! long-lived clients, not ten thousand; thread-per-connection keeps
//! the whole stack dependency-free and easy to reason about). The
//! [`Engine`] sits behind an `RwLock`: mutating commands (`match`,
//! `compose`, `delta`) serialize through the write lock — so WAL order
//! equals apply order — while `query`/`stats`/`dump` run concurrently
//! under the read lock against repository snapshots.
//!
//! Shutdown: a `shutdown` command (or [`ServerHandle::stop`]) sets a
//! stop flag; the nonblocking accept loop notices within ~15 ms, stops
//! accepting, and handler threads drain at their next read timeout.
//!
//! ## Admission control
//!
//! The server refuses work it cannot serve promptly instead of queueing
//! it unboundedly (see [`Limits`]): connections past the cap get one
//! `busy` refusal frame and a close; requests past the per-class
//! in-flight budget (mutating commands queue on the engine write lock,
//! reads on the read lock) get an `overloaded` response with a
//! `retry_after_ms` hint while the connection stays usable. A dedicated
//! background thread publishes auto-checkpoints when the durability
//! policy's thresholds are exceeded, off the delta path.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

use crate::engine::{err_response, Engine};
use crate::frame::write_frame;
use crate::json::Json;

/// How long handler threads block in `read` before re-checking the stop
/// flag (also bounds shutdown latency).
const READ_POLL: Duration = Duration::from_millis(250);

/// How long a peer may stall *inside* a frame (header or payload
/// started, no further bytes) before the connection is dropped. Bounds
/// the damage of a client that dies mid-write without closing.
const MID_FRAME_STALL: Duration = Duration::from_secs(30);

/// How often the background checkpointer re-checks the durability
/// thresholds (a cheap read-lock peek; also bounds its shutdown
/// latency).
const CHECKPOINT_POLL: Duration = Duration::from_millis(100);

/// How long the background checkpointer backs off after a *failed*
/// checkpoint, so a persistently failing one (poisoned WAL, full disk)
/// does not spam a warning per poll interval.
const CHECKPOINT_BACKOFF: Duration = Duration::from_secs(5);

/// Admission-control limits. The defaults are generous for a service
/// holding a handful of long-lived clients; tests and the overload
/// harness shrink them to force the refusal paths deterministically.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Concurrently served connections; further connects get one `busy`
    /// refusal frame and an immediate close.
    pub max_connections: u64,
    /// Mutating commands in flight (executing, or queued on the engine
    /// write lock) before new ones are answered `overloaded`.
    pub max_pending_writes: u64,
    /// Read-only commands in flight before new ones are answered
    /// `overloaded`.
    pub max_pending_reads: u64,
    /// Retry hint attached to `busy`/`overloaded` responses.
    pub retry_after_ms: u64,
    /// Enable the `debug_*` fault-injection commands (`debug_panic`,
    /// `debug_sleep_write`) used by the poison-recovery and overload
    /// tests. The CLI gates this behind `MOMA_DEBUG_COMMANDS=1`.
    pub debug_commands: bool,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_connections: 256,
            max_pending_writes: 64,
            max_pending_reads: 256,
            retry_after_ms: 100,
            debug_commands: false,
        }
    }
}

/// State shared between the accept loop and handler threads.
pub struct Shared {
    /// The engine; write lock for mutating commands, read lock for
    /// queries.
    pub engine: RwLock<Engine>,
    limits: Limits,
    stop: AtomicBool,
    started: Instant,
    requests: AtomicU64,
    errors: AtomicU64,
    connections: AtomicU64,
    active_connections: AtomicU64,
    inflight_writes: AtomicU64,
    inflight_reads: AtomicU64,
    busy_refusals: AtomicU64,
    overloaded_rejections: AtomicU64,
    auto_checkpoints: AtomicU64,
    /// Set when a handler panicked while holding the write lock (the
    /// lock is recovered and serving continues, but state deserves an
    /// operator's look).
    degraded: AtomicBool,
}

impl Shared {
    /// Ask the server to stop; accept loop and handlers drain promptly.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Whether a stop has been requested.
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// The configured admission limits.
    pub fn limits(&self) -> &Limits {
        &self.limits
    }

    /// Read-lock the engine, recovering the guard if a previous handler
    /// panicked while holding the write lock. The poisoned flag becomes
    /// a `degraded` marker in `stats` instead of a panic cascade across
    /// every later connection.
    pub fn engine_read(&self) -> RwLockReadGuard<'_, Engine> {
        match self.engine.read() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.degraded.store(true, Ordering::Relaxed);
                poisoned.into_inner()
            }
        }
    }

    /// Write-lock the engine, recovering the guard like
    /// [`Shared::engine_read`].
    pub fn engine_write(&self) -> RwLockWriteGuard<'_, Engine> {
        match self.engine.write() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.degraded.store(true, Ordering::Relaxed);
                poisoned.into_inner()
            }
        }
    }

    fn debug_write_cmd(&self, cmd: &str) -> bool {
        self.limits.debug_commands && matches!(cmd, "debug_panic" | "debug_sleep_write")
    }
}

/// RAII in-flight slot for one admission class; dropping it releases
/// the slot.
struct Admission<'a>(&'a AtomicU64);

impl Drop for Admission<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Try to take an in-flight slot; `None` means the budget is exhausted
/// and the request must be refused.
fn admit(counter: &AtomicU64, budget: u64) -> Option<Admission<'_>> {
    let prev = counter.fetch_add(1, Ordering::AcqRel);
    if prev >= budget {
        counter.fetch_sub(1, Ordering::AcqRel);
        None
    } else {
        Some(Admission(counter))
    }
}

/// RAII active-connection slot, paired with the accept loop's
/// increment; dropping it (handler return or panic) frees the slot.
struct ConnSlot(Arc<Shared>);

impl Drop for ConnSlot {
    fn drop(&mut self) {
        self.0.active_connections.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Handle to a server running on a background thread (embedded mode,
/// used by `moma_load` and the end-to-end tests).
pub struct ServerHandle {
    /// Bound address (useful with port 0).
    pub addr: SocketAddr,
    shared: Arc<Shared>,
    thread: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// Shared server state.
    pub fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Request a stop and wait for the accept loop to drain.
    pub fn stop(self) {
        self.shared.request_stop();
        let _ = self.thread.join();
    }
}

/// Bind `addr` and serve on a background thread with default
/// [`Limits`].
pub fn spawn(engine: Engine, addr: &str) -> io::Result<ServerHandle> {
    spawn_with_limits(engine, addr, Limits::default())
}

/// Bind `addr` and serve on a background thread with explicit
/// admission limits.
pub fn spawn_with_limits(engine: Engine, addr: &str, limits: Limits) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(new_shared(engine, limits));
    let shared2 = Arc::clone(&shared);
    let thread = std::thread::Builder::new()
        .name("moma-accept".into())
        .spawn(move || accept_loop(listener, shared2))?;
    Ok(ServerHandle {
        addr,
        shared,
        thread,
    })
}

/// Bind `addr` and serve on the current thread until shutdown, with
/// default [`Limits`].
pub fn run(engine: Engine, addr: &str) -> io::Result<()> {
    run_with_limits(engine, addr, Limits::default())
}

/// Bind `addr` and serve on the current thread until shutdown, with
/// explicit admission limits.
pub fn run_with_limits(engine: Engine, addr: &str, limits: Limits) -> io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    eprintln!("moma serve: listening on {}", listener.local_addr()?);
    accept_loop(listener, Arc::new(new_shared(engine, limits)));
    Ok(())
}

fn new_shared(engine: Engine, limits: Limits) -> Shared {
    Shared {
        engine: RwLock::new(engine),
        limits,
        stop: AtomicBool::new(false),
        started: Instant::now(),
        requests: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        connections: AtomicU64::new(0),
        active_connections: AtomicU64::new(0),
        inflight_writes: AtomicU64::new(0),
        inflight_reads: AtomicU64::new(0),
        busy_refusals: AtomicU64::new(0),
        overloaded_rejections: AtomicU64::new(0),
        auto_checkpoints: AtomicU64::new(0),
        degraded: AtomicBool::new(false),
    }
}

/// Write one `busy` refusal frame and let the connection drop.
fn refuse_busy(shared: &Shared, stream: &mut TcpStream, why: &str) {
    shared.busy_refusals.fetch_add(1, Ordering::Relaxed);
    let resp = Json::obj(vec![
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::Str(format!(
                "busy: {why}; retry after {} ms",
                shared.limits.retry_after_ms
            )),
        ),
        ("busy", Json::Bool(true)),
        ("retry_after_ms", Json::Uint(shared.limits.retry_after_ms)),
    ]);
    let _ = write_frame(stream, resp.to_string().as_bytes());
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    listener
        .set_nonblocking(true)
        .expect("set_nonblocking on listener");
    // The background checkpointer lives exactly as long as the accept
    // loop: one thread, joined below — it can never run concurrently
    // with itself or with shutdown teardown.
    let checkpointer = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("moma-checkpoint".into())
            .spawn(move || checkpoint_loop(shared))
            .ok()
    };
    let mut handlers = Vec::new();
    while !shared.stopping() {
        match listener.accept() {
            Ok((mut stream, peer)) => {
                let active = shared.active_connections.fetch_add(1, Ordering::AcqRel);
                if active >= shared.limits.max_connections {
                    shared.active_connections.fetch_sub(1, Ordering::AcqRel);
                    refuse_busy(&shared, &mut stream, "connection limit reached");
                    continue;
                }
                shared.connections.fetch_add(1, Ordering::Relaxed);
                // Keep a refusal handle: if the thread spawn below
                // fails, `stream` is already gone into the dropped
                // closure and the peer still deserves a frame.
                let refusal = stream.try_clone().ok();
                let slot = ConnSlot(Arc::clone(&shared));
                let shared2 = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name(format!("moma-conn-{peer}"))
                    .spawn(move || {
                        let _slot = slot;
                        handle_connection(stream, shared2)
                    });
                match spawned {
                    Ok(h) => handlers.push(h),
                    // Thread exhaustion must not kill the accept loop
                    // (and with it the whole server): refuse this
                    // connection and keep serving the rest.
                    Err(e) => {
                        eprintln!("moma serve: refusing connection from {peer}: spawn failed: {e}");
                        if let Some(mut s) = refusal {
                            refuse_busy(&shared, &mut s, "out of handler threads");
                        }
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(15));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                eprintln!("moma serve: accept error: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }
    if let Some(cp) = checkpointer {
        let _ = cp.join();
    }
}

/// Background auto-checkpointer: peeks at the durability thresholds
/// under the read lock and, only when due, takes the write lock to
/// publish a checkpoint — so checkpoint cost never rides on a delta's
/// response time. Single-threaded by construction and joined by the
/// accept loop, so it cannot overlap itself or outlive shutdown. The
/// `MOMA_CHECKPOINT_FAULT_DELAY_MS` fault injection applies here the
/// same as to explicit `checkpoint` commands (it lives in
/// `checkpoint::publish`).
fn checkpoint_loop(shared: Arc<Shared>) {
    while !shared.stopping() {
        let due = shared.engine_read().checkpoint_due();
        if due {
            // Re-check under the write lock: a concurrent explicit
            // `checkpoint` command may have run since the peek. The
            // counter is bumped while the lock is still held so a
            // stats reader never sees the new checkpoint_seq without
            // the matching auto_checkpoints count.
            let result = {
                let mut engine = shared.engine_write();
                if engine.checkpoint_due() {
                    let r = engine.run_auto_checkpoint();
                    if r.is_ok() {
                        shared.auto_checkpoints.fetch_add(1, Ordering::Relaxed);
                    }
                    Some(r)
                } else {
                    None
                }
            };
            match result {
                Some(Ok(_)) => continue,
                Some(Err(e)) => {
                    eprintln!("moma serve: warning: background checkpoint failed: {e}");
                    let deadline = Instant::now() + CHECKPOINT_BACKOFF;
                    while Instant::now() < deadline && !shared.stopping() {
                        std::thread::sleep(CHECKPOINT_POLL);
                    }
                    continue;
                }
                None => {}
            }
        }
        std::thread::sleep(CHECKPOINT_POLL);
    }
}

/// What the handler read from the wire.
enum Next {
    Frame(Vec<u8>),
    Eof,
    /// Read timeout with no frame started — re-check the stop flag.
    Idle,
}

/// Error returned when a mid-frame retry must give up (server stopping
/// or the peer stalled past [`MID_FRAME_STALL`]).
fn mid_frame_abort(shared: &Shared, progress: &Instant, what: &str) -> Option<io::Error> {
    // A server stop must not wait on a half-written frame: the handler
    // thread is joined by the accept loop and would hang shutdown.
    if shared.stopping() {
        return Some(io::Error::new(
            io::ErrorKind::ConnectionAborted,
            format!("server stopping with partial frame {what}"),
        ));
    }
    if progress.elapsed() >= MID_FRAME_STALL {
        return Some(io::Error::new(
            io::ErrorKind::TimedOut,
            format!("peer stalled mid-frame ({what})"),
        ));
    }
    None
}

/// Like [`read_frame`], but a read timeout *between* frames surfaces as
/// [`Next::Idle`] instead of an error. A timeout after the frame header
/// has started keeps reading (the peer is mid-write) — up to the stop
/// flag or the [`MID_FRAME_STALL`] deadline, so a peer that stalls
/// mid-frame can neither pin this handler thread forever nor block
/// shutdown (the accept loop joins every handler).
///
/// [`read_frame`]: crate::frame::read_frame
fn next_frame(stream: &mut TcpStream, shared: &Shared) -> io::Result<Next> {
    use io::Read;
    let mut len_buf = [0u8; 4];
    let mut filled = 0usize;
    let mut progress = Instant::now();
    while filled < 4 {
        match stream.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(Next::Eof),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame header",
                ))
            }
            Ok(n) => {
                filled += n;
                progress = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if filled == 0
                    && matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
            {
                return Ok(Next::Idle)
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if let Some(abort) = mid_frame_abort(shared, &progress, "header") {
                    return Err(abort);
                }
            }
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > crate::frame::MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    let mut got = 0usize;
    let mut progress = Instant::now();
    while got < len {
        match stream.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame payload",
                ))
            }
            Ok(n) => {
                got += n;
                progress = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if let Some(abort) = mid_frame_abort(shared, &progress, "payload") {
                    return Err(abort);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(Next::Frame(payload))
}

fn handle_connection(mut stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    loop {
        let payload = match next_frame(&mut stream, &shared) {
            Ok(Next::Frame(p)) => p,
            Ok(Next::Eof) => return,
            Ok(Next::Idle) => {
                if shared.stopping() {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        shared.requests.fetch_add(1, Ordering::Relaxed);
        let resp = dispatch(&payload, &shared);
        if resp.get("ok").and_then(Json::as_bool) != Some(true) {
            shared.errors.fetch_add(1, Ordering::Relaxed);
        }
        let stop_after = resp.get("stopping").and_then(Json::as_bool) == Some(true);
        if write_frame(&mut stream, resp.to_string().as_bytes()).is_err() {
            return;
        }
        if stop_after {
            return;
        }
    }
}

/// `overloaded` response for a request past its class's in-flight
/// budget. The connection stays usable — the client is expected to
/// back off for `retry_after_ms` and resend.
fn overloaded_response(shared: &Shared, class: &str) -> Json {
    shared.overloaded_rejections.fetch_add(1, Ordering::Relaxed);
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::Str(format!(
                "overloaded: too many in-flight {class} commands; retry after {} ms",
                shared.limits.retry_after_ms
            )),
        ),
        ("overloaded", Json::Bool(true)),
        ("retry_after_ms", Json::Uint(shared.limits.retry_after_ms)),
    ])
}

/// Response for a handler that panicked mid-command. The engine lock is
/// recovered (see [`Shared::engine_write`]) and serving continues, but
/// `stats` reports `degraded: true` from here on.
fn internal_error_response(shared: &Shared) -> Json {
    shared.degraded.store(true, Ordering::Relaxed);
    err_response("internal error: command handler panicked; engine marked degraded (see stats)")
}

fn dispatch(payload: &[u8], shared: &Shared) -> Json {
    let req = match std::str::from_utf8(payload)
        .map_err(|e| e.to_string())
        .and_then(Json::parse)
    {
        Ok(req) => req,
        Err(e) => return err_response(&format!("bad request: {e}")),
    };
    let Some(cmd) = req.str_field("cmd") else {
        return err_response("request missing `cmd`");
    };
    match cmd {
        "shutdown" => {
            shared.request_stop();
            Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("stopping", Json::Bool(true)),
            ])
        }
        "stats" => {
            let Some(_slot) = admit(&shared.inflight_reads, shared.limits.max_pending_reads) else {
                return overloaded_response(shared, "read");
            };
            let engine = shared.engine_read();
            let mut resp = engine.execute_read(&req);
            if let Json::Obj(fields) = &mut resp {
                fields.push((
                    "uptime_ms".to_owned(),
                    Json::Uint(shared.started.elapsed().as_millis() as u64),
                ));
                fields.push((
                    "requests".to_owned(),
                    Json::Uint(shared.requests.load(Ordering::Relaxed)),
                ));
                fields.push((
                    "request_errors".to_owned(),
                    Json::Uint(shared.errors.load(Ordering::Relaxed)),
                ));
                fields.push((
                    "connections".to_owned(),
                    Json::Uint(shared.connections.load(Ordering::Relaxed)),
                ));
                fields.push((
                    "active_connections".to_owned(),
                    Json::Uint(shared.active_connections.load(Ordering::Relaxed)),
                ));
                fields.push((
                    "busy_refusals".to_owned(),
                    Json::Uint(shared.busy_refusals.load(Ordering::Relaxed)),
                ));
                fields.push((
                    "overloaded_rejections".to_owned(),
                    Json::Uint(shared.overloaded_rejections.load(Ordering::Relaxed)),
                ));
                fields.push((
                    "auto_checkpoints".to_owned(),
                    Json::Uint(shared.auto_checkpoints.load(Ordering::Relaxed)),
                ));
                fields.push((
                    "degraded".to_owned(),
                    Json::Bool(shared.degraded.load(Ordering::Relaxed)),
                ));
            }
            resp
        }
        c if Engine::needs_write_lock(c) || shared.debug_write_cmd(c) => {
            let Some(_slot) = admit(&shared.inflight_writes, shared.limits.max_pending_writes)
            else {
                return overloaded_response(shared, "mutating");
            };
            // `debug_sleep_write` occupies its admission slot without
            // touching the engine lock: it models a slow writer filling
            // the queue, so overload tests can saturate the write
            // budget while reads keep answering.
            if c == "debug_sleep_write" {
                let ms = req
                    .get("ms")
                    .and_then(Json::as_u64)
                    .unwrap_or(250)
                    .min(10_000);
                std::thread::sleep(Duration::from_millis(ms));
                return Json::obj(vec![("ok", Json::Bool(true)), ("slept_ms", Json::Uint(ms))]);
            }
            // A panicked handler must not take the server down (or
            // poison every later request): catch it, answer an
            // `internal_error`, and let `engine_write` recover the
            // lock next time around.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let mut engine = shared.engine_write();
                if c == "debug_panic" {
                    panic!("debug_panic: injected handler panic");
                }
                engine.execute(&req)
            }));
            match outcome {
                Ok(resp) => resp,
                Err(_) => internal_error_response(shared),
            }
        }
        _ => {
            let Some(_slot) = admit(&shared.inflight_reads, shared.limits.max_pending_reads) else {
                return overloaded_response(shared, "read");
            };
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let engine = shared.engine_read();
                engine.execute_read(&req)
            }));
            match outcome {
                Ok(resp) => resp,
                Err(_) => internal_error_response(shared),
            }
        }
    }
}
