//! TCP server: accept loop, per-connection threads, graceful shutdown.
//!
//! Plain `std::net` — a listener thread accepts connections and hands
//! each one to its own handler thread (the service holds a handful of
//! long-lived clients, not ten thousand; thread-per-connection keeps
//! the whole stack dependency-free and easy to reason about). The
//! [`Engine`] sits behind an `RwLock`: mutating commands (`match`,
//! `compose`, `delta`) serialize through the write lock — so WAL order
//! equals apply order — while `query`/`stats`/`dump` run concurrently
//! under the read lock against repository snapshots.
//!
//! Shutdown: a `shutdown` command (or [`ServerHandle::stop`]) sets a
//! stop flag; the nonblocking accept loop notices within ~15 ms, stops
//! accepting, and handler threads drain at their next read timeout.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use crate::engine::{err_response, Engine};
use crate::frame::write_frame;
use crate::json::Json;

/// How long handler threads block in `read` before re-checking the stop
/// flag (also bounds shutdown latency).
const READ_POLL: Duration = Duration::from_millis(250);

/// How long a peer may stall *inside* a frame (header or payload
/// started, no further bytes) before the connection is dropped. Bounds
/// the damage of a client that dies mid-write without closing.
const MID_FRAME_STALL: Duration = Duration::from_secs(30);

/// State shared between the accept loop and handler threads.
pub struct Shared {
    /// The engine; write lock for mutating commands, read lock for
    /// queries.
    pub engine: RwLock<Engine>,
    stop: AtomicBool,
    started: Instant,
    requests: AtomicU64,
    errors: AtomicU64,
    connections: AtomicU64,
}

impl Shared {
    /// Ask the server to stop; accept loop and handlers drain promptly.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Whether a stop has been requested.
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

/// Handle to a server running on a background thread (embedded mode,
/// used by `moma_load` and the end-to-end tests).
pub struct ServerHandle {
    /// Bound address (useful with port 0).
    pub addr: SocketAddr,
    shared: Arc<Shared>,
    thread: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// Shared server state.
    pub fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Request a stop and wait for the accept loop to drain.
    pub fn stop(self) {
        self.shared.request_stop();
        let _ = self.thread.join();
    }
}

/// Bind `addr` and serve on a background thread.
pub fn spawn(engine: Engine, addr: &str) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(new_shared(engine));
    let shared2 = Arc::clone(&shared);
    let thread = std::thread::Builder::new()
        .name("moma-accept".into())
        .spawn(move || accept_loop(listener, shared2))?;
    Ok(ServerHandle {
        addr,
        shared,
        thread,
    })
}

/// Bind `addr` and serve on the current thread until shutdown.
pub fn run(engine: Engine, addr: &str) -> io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    eprintln!("moma serve: listening on {}", listener.local_addr()?);
    accept_loop(listener, Arc::new(new_shared(engine)));
    Ok(())
}

fn new_shared(engine: Engine) -> Shared {
    Shared {
        engine: RwLock::new(engine),
        stop: AtomicBool::new(false),
        started: Instant::now(),
        requests: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        connections: AtomicU64::new(0),
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    listener
        .set_nonblocking(true)
        .expect("set_nonblocking on listener");
    let mut handlers = Vec::new();
    while !shared.stopping() {
        match listener.accept() {
            Ok((stream, peer)) => {
                shared.connections.fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(&shared);
                let h = std::thread::Builder::new()
                    .name(format!("moma-conn-{peer}"))
                    .spawn(move || handle_connection(stream, shared))
                    .expect("spawn handler thread");
                handlers.push(h);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(15));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                eprintln!("moma serve: accept error: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// What the handler read from the wire.
enum Next {
    Frame(Vec<u8>),
    Eof,
    /// Read timeout with no frame started — re-check the stop flag.
    Idle,
}

/// Error returned when a mid-frame retry must give up (server stopping
/// or the peer stalled past [`MID_FRAME_STALL`]).
fn mid_frame_abort(shared: &Shared, progress: &Instant, what: &str) -> Option<io::Error> {
    // A server stop must not wait on a half-written frame: the handler
    // thread is joined by the accept loop and would hang shutdown.
    if shared.stopping() {
        return Some(io::Error::new(
            io::ErrorKind::ConnectionAborted,
            format!("server stopping with partial frame {what}"),
        ));
    }
    if progress.elapsed() >= MID_FRAME_STALL {
        return Some(io::Error::new(
            io::ErrorKind::TimedOut,
            format!("peer stalled mid-frame ({what})"),
        ));
    }
    None
}

/// Like [`read_frame`], but a read timeout *between* frames surfaces as
/// [`Next::Idle`] instead of an error. A timeout after the frame header
/// has started keeps reading (the peer is mid-write) — up to the stop
/// flag or the [`MID_FRAME_STALL`] deadline, so a peer that stalls
/// mid-frame can neither pin this handler thread forever nor block
/// shutdown (the accept loop joins every handler).
///
/// [`read_frame`]: crate::frame::read_frame
fn next_frame(stream: &mut TcpStream, shared: &Shared) -> io::Result<Next> {
    use io::Read;
    let mut len_buf = [0u8; 4];
    let mut filled = 0usize;
    let mut progress = Instant::now();
    while filled < 4 {
        match stream.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(Next::Eof),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame header",
                ))
            }
            Ok(n) => {
                filled += n;
                progress = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if filled == 0
                    && matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
            {
                return Ok(Next::Idle)
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if let Some(abort) = mid_frame_abort(shared, &progress, "header") {
                    return Err(abort);
                }
            }
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > crate::frame::MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    let mut got = 0usize;
    let mut progress = Instant::now();
    while got < len {
        match stream.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame payload",
                ))
            }
            Ok(n) => {
                got += n;
                progress = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if let Some(abort) = mid_frame_abort(shared, &progress, "payload") {
                    return Err(abort);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(Next::Frame(payload))
}

fn handle_connection(mut stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    loop {
        let payload = match next_frame(&mut stream, &shared) {
            Ok(Next::Frame(p)) => p,
            Ok(Next::Eof) => return,
            Ok(Next::Idle) => {
                if shared.stopping() {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        shared.requests.fetch_add(1, Ordering::Relaxed);
        let resp = dispatch(&payload, &shared);
        if resp.get("ok").and_then(Json::as_bool) != Some(true) {
            shared.errors.fetch_add(1, Ordering::Relaxed);
        }
        let stop_after = resp.get("stopping").and_then(Json::as_bool) == Some(true);
        if write_frame(&mut stream, resp.to_string().as_bytes()).is_err() {
            return;
        }
        if stop_after {
            return;
        }
    }
}

fn dispatch(payload: &[u8], shared: &Shared) -> Json {
    let req = match std::str::from_utf8(payload)
        .map_err(|e| e.to_string())
        .and_then(Json::parse)
    {
        Ok(req) => req,
        Err(e) => return err_response(&format!("bad request: {e}")),
    };
    let Some(cmd) = req.str_field("cmd") else {
        return err_response("request missing `cmd`");
    };
    match cmd {
        "shutdown" => {
            shared.request_stop();
            Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("stopping", Json::Bool(true)),
            ])
        }
        "stats" => {
            let engine = shared.engine.read().expect("engine lock poisoned");
            let mut resp = engine.execute_read(&req);
            if let Json::Obj(fields) = &mut resp {
                fields.push((
                    "uptime_ms".to_owned(),
                    Json::Uint(shared.started.elapsed().as_millis() as u64),
                ));
                fields.push((
                    "requests".to_owned(),
                    Json::Uint(shared.requests.load(Ordering::Relaxed)),
                ));
                fields.push((
                    "request_errors".to_owned(),
                    Json::Uint(shared.errors.load(Ordering::Relaxed)),
                ));
                fields.push((
                    "connections".to_owned(),
                    Json::Uint(shared.connections.load(Ordering::Relaxed)),
                ));
            }
            resp
        }
        c if Engine::needs_write_lock(c) => {
            let mut engine = shared.engine.write().expect("engine lock poisoned");
            engine.execute(&req)
        }
        _ => {
            let engine = shared.engine.read().expect("engine lock poisoned");
            engine.execute_read(&req)
        }
    }
}
