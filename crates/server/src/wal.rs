//! Append-only, CRC-framed, fsync'd write-ahead delta log.
//!
//! Every state-mutating command the server accepts (`match`, `compose`,
//! `delta`) is appended to the WAL **before** it is applied, and the
//! record is `fsync`'d before the client sees a response — an
//! acknowledged command is durable. On restart with `--replay`, the log
//! is decoded up to its last valid record and the commands are
//! re-executed in order; because every engine operation is deterministic
//! (parallel execution merges shard results in input order, PR 3), the
//! replayed repository is **bit-identical** to the pre-crash state.
//!
//! ## Record layout
//!
//! ```text
//! [payload_len: u32 LE][crc32: u32 LE][seq: u64 LE][payload bytes]
//! ```
//!
//! `crc32` (IEEE, reflected 0xEDB88320) covers the `seq` field plus the
//! payload, so neither a flipped payload byte nor a corrupted sequence
//! number survives decoding. Sequence numbers start at 1 and must
//! advance by exactly 1 per record.
//!
//! ## Replay semantics
//!
//! [`decode_records`] walks the log and stops at the **first** invalid
//! record — a truncated header or payload (torn tail write from a
//! crash), a CRC mismatch, an oversized length, or a sequence number
//! that is not `previous + 1` (duplicate or skipped sequence numbers
//! indicate a corrupt or mis-spliced log; everything after them is
//! untrustworthy). Everything before the stop point is returned;
//! [`Wal::open_replay`] then truncates the file back to the valid
//! prefix so new records append after the last good one.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// Largest accepted record payload (matches the frame protocol bound).
pub const MAX_RECORD: usize = crate::frame::MAX_FRAME;

/// Fixed per-record header size: `len + crc + seq`.
pub const RECORD_HEADER: usize = 4 + 4 + 8;

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`).
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    });
    let mut crc = !0u32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Monotonic sequence number (first record is 1).
    pub seq: u64,
    /// The logged command payload (JSON bytes).
    pub payload: Vec<u8>,
}

/// Result of decoding a log image.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// The valid record prefix, in log order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (where appends should resume).
    pub valid_len: u64,
    /// Bytes after the valid prefix that were discarded.
    pub dropped_bytes: u64,
    /// Why decoding stopped before EOF, if it did.
    pub stop_reason: Option<String>,
}

/// Encode one record.
pub fn encode_record(seq: u64, payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_RECORD, "payload exceeds MAX_RECORD");
    let mut body = Vec::with_capacity(8 + payload.len());
    body.extend_from_slice(&seq.to_le_bytes());
    body.extend_from_slice(payload);
    let crc = crc32(&body);
    let mut out = Vec::with_capacity(RECORD_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Decode a log image into its valid record prefix (see module docs for
/// the stop rules).
pub fn decode_records(bytes: &[u8]) -> ReplayOutcome {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut expected_seq = 1u64;
    let mut stop_reason = None;
    while pos < bytes.len() {
        let Some(header) = bytes.get(pos..pos + RECORD_HEADER) else {
            stop_reason = Some(format!(
                "truncated header at offset {pos} ({} bytes left)",
                bytes.len() - pos
            ));
            break;
        };
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if len > MAX_RECORD {
            stop_reason = Some(format!("oversized record ({len} bytes) at offset {pos}"));
            break;
        }
        let body_start = pos + 8; // seq + payload are CRC-covered
        let Some(body) = bytes.get(body_start..body_start + 8 + len) else {
            stop_reason = Some(format!("truncated payload at offset {pos}"));
            break;
        };
        if crc32(body) != crc {
            stop_reason = Some(format!("CRC mismatch at offset {pos}"));
            break;
        }
        let seq = u64::from_le_bytes(body[0..8].try_into().expect("8 bytes"));
        if seq != expected_seq {
            stop_reason = Some(format!(
                "sequence break at offset {pos}: got {seq}, expected {expected_seq}"
            ));
            break;
        }
        records.push(WalRecord {
            seq,
            payload: body[8..].to_vec(),
        });
        expected_seq += 1;
        pos += RECORD_HEADER + len;
    }
    ReplayOutcome {
        records,
        valid_len: pos as u64,
        dropped_bytes: (bytes.len() - pos) as u64,
        stop_reason,
    }
}

/// An open write-ahead log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    next_seq: u64,
}

impl Wal {
    /// Create a fresh log (truncating any existing file).
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Wal> {
        let path = path.as_ref().to_path_buf();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        Ok(Wal {
            file,
            path,
            next_seq: 1,
        })
    }

    /// Open an existing log for replay: decode the valid record prefix,
    /// truncate the file back to it (dropping any torn tail left by a
    /// crash), and position appends after the last valid record. A
    /// missing file behaves like an empty log.
    pub fn open_replay(path: impl AsRef<Path>) -> std::io::Result<(Wal, ReplayOutcome)> {
        let path = path.as_ref().to_path_buf();
        let mut bytes = Vec::new();
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&path)?;
        file.read_to_end(&mut bytes)?;
        let outcome = decode_records(&bytes);
        if outcome.dropped_bytes > 0 {
            file.set_len(outcome.valid_len)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(outcome.valid_len))?;
        let next_seq = outcome.records.last().map(|r| r.seq + 1).unwrap_or(1);
        Ok((
            Wal {
                file,
                path,
                next_seq,
            },
            outcome,
        ))
    }

    /// Append one record and `fsync` it; returns the record's sequence
    /// number. The record is durable when this returns.
    pub fn append(&mut self, payload: &[u8]) -> std::io::Result<u64> {
        let seq = self.next_seq;
        self.file.write_all(&encode_record(seq, payload))?;
        self.file.sync_data()?;
        self.next_seq += 1;
        Ok(seq)
    }

    /// The sequence number the next append will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Number of records appended or replayed so far.
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut log = Vec::new();
        for (i, payload) in [&b"alpha"[..], b"", b"{\"cmd\":\"delta\"}"]
            .iter()
            .enumerate()
        {
            log.extend_from_slice(&encode_record(i as u64 + 1, payload));
        }
        let out = decode_records(&log);
        assert_eq!(out.records.len(), 3);
        assert_eq!(out.stop_reason, None);
        assert_eq!(out.dropped_bytes, 0);
        assert_eq!(out.valid_len, log.len() as u64);
        assert_eq!(out.records[2].payload, b"{\"cmd\":\"delta\"}");
    }

    #[test]
    fn wal_file_roundtrip_and_torn_tail() {
        let dir = std::env::temp_dir().join("moma_wal_unit");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("wal.log");
        {
            let mut wal = Wal::create(&path).unwrap();
            assert_eq!(wal.append(b"one").unwrap(), 1);
            assert_eq!(wal.append(b"two").unwrap(), 2);
            assert_eq!(wal.last_seq(), 2);
        }
        // Simulate a torn write: half a record at the tail.
        let torn = &encode_record(3, b"three")[..9];
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(torn).unwrap();
        drop(f);

        let (mut wal, outcome) = Wal::open_replay(&path).unwrap();
        assert_eq!(outcome.records.len(), 2);
        assert_eq!(outcome.dropped_bytes, torn.len() as u64);
        assert!(outcome.stop_reason.is_some());
        // Appends resume after the valid prefix with the right seq.
        assert_eq!(wal.append(b"three-again").unwrap(), 3);
        let (_, outcome2) = Wal::open_replay(&path).unwrap();
        assert_eq!(outcome2.records.len(), 3);
        assert_eq!(outcome2.stop_reason, None);
        assert_eq!(outcome2.records[2].payload, b"three-again");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_an_empty_log() {
        let dir = std::env::temp_dir().join("moma_wal_missing");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let (wal, outcome) = Wal::open_replay(dir.join("nope.log")).unwrap();
        assert_eq!(outcome.records.len(), 0);
        assert_eq!(wal.next_seq(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
