//! Append-only, CRC-framed, fsync'd, **segmented** write-ahead delta log.
//!
//! Every state-mutating command the server accepts (`match`, `compose`,
//! `delta`) is appended to the WAL **before** it is applied, and the
//! record is `fsync`'d before the client sees a response — an
//! acknowledged command is durable. On restart with `--replay`, the log
//! is decoded up to its last valid record and the commands are
//! re-executed in order; because every engine operation is deterministic
//! (parallel execution merges shard results in input order, PR 3), the
//! replayed repository is **bit-identical** to the pre-crash state.
//!
//! ## Segments
//!
//! The log lives in a directory as numbered segment files
//! (`wal.000001.log`, `wal.000002.log`, …). Sequence numbers are
//! **global**: they continue across segment boundaries, so the
//! concatenation of all segments is one contiguous record stream. The
//! active (highest-numbered) segment receives appends; once it exceeds
//! the [`RotationPolicy`] byte/record budget it is sealed and a new
//! segment is started. Sealed segments whose records are all covered by
//! a checkpoint can be deleted ([`Wal::prune_covered`]), which is what
//! bounds restart time (see `checkpoint.rs`).
//!
//! ## Record layout
//!
//! ```text
//! [payload_len: u32 LE][crc32: u32 LE][seq: u64 LE][payload bytes]
//! ```
//!
//! `crc32` (IEEE, reflected 0xEDB88320) covers the `seq` field plus the
//! payload, so neither a flipped payload byte nor a corrupted sequence
//! number survives decoding. Sequence numbers must advance by exactly 1
//! per record across the whole segment chain.
//!
//! ## Replay semantics
//!
//! [`Wal::scan`] walks the segments in order and stops at the **first**
//! invalid record — a truncated header or payload (torn tail write from
//! a crash), a CRC mismatch, an oversized length, or a sequence number
//! that is not `previous + 1`. Everything before the stop point is
//! returned; [`Wal::open`] then truncates the stop segment back to its
//! valid prefix, deletes any later (untrustworthy) segments, and
//! positions appends after the last good record. A crash can only tear
//! the *tail* of the stream: rotation fsyncs the sealed segment before
//! the next one is created, and the directory itself is fsync'd after
//! every create/rotate/delete so acknowledged records survive a crash
//! of the filesystem metadata too.
//!
//! ## Failed appends
//!
//! [`Wal::append`] tracks the durable byte offset of the active
//! segment. If a write or fsync fails mid-record, the file is truncated
//! back to the durable offset (so the half-written, *unacknowledged*
//! record can never collide with the next append's sequence number); if
//! even that rollback fails, the WAL poisons itself and refuses further
//! appends rather than risk a corrupt stream.
//!
//! ## Sharding
//!
//! A sharded server (`moma serve --shards N`) runs one WAL per shard in
//! sibling directories `<wal>/shard.0` … `<wal>/shard.N-1`; each is a
//! completely independent log with its own sequence space, checkpoints
//! and rotation, and recovery replays them independently (see
//! `docs/DURABILITY.md`).
//!
//! ## Example
//!
//! ```
//! use moma_server::wal::{RotationPolicy, Wal};
//!
//! let dir = std::env::temp_dir().join(format!("moma-wal-doc-{}", std::process::id()));
//! let mut wal = Wal::create(&dir, RotationPolicy::default())?;
//! assert_eq!(wal.append(br#"{"cmd":"delta"}"#)?, 1);
//! assert_eq!(wal.append(br#"{"cmd":"match"}"#)?, 2);
//!
//! // A scan decodes the whole stream back, CRC-checked, in order.
//! let scan = Wal::scan(&dir)?;
//! assert_eq!((scan.first_seq(), scan.last_seq()), (1, 2));
//!
//! std::fs::remove_dir_all(&dir)?;
//! # Ok::<(), std::io::Error>(())
//! ```

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// Largest accepted record payload (matches the frame protocol bound).
pub const MAX_RECORD: usize = crate::frame::MAX_FRAME;

/// Fixed per-record header size: `len + crc + seq`.
pub const RECORD_HEADER: usize = 4 + 4 + 8;

/// Default rotation budget: seal the active segment at 8 MiB.
pub const DEFAULT_SEGMENT_BYTES: u64 = 8 << 20;

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`).
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    });
    let mut crc = !0u32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// `fsync` a directory so renames/creates/deletes inside it are durable.
pub fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Monotonic sequence number (first record of a fresh log is 1).
    pub seq: u64,
    /// The logged command payload (JSON bytes).
    pub payload: Vec<u8>,
}

/// Result of decoding one segment image.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// The valid record prefix, in log order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (where appends should resume).
    pub valid_len: u64,
    /// Bytes after the valid prefix that were discarded.
    pub dropped_bytes: u64,
    /// Why decoding stopped before EOF, if it did.
    pub stop_reason: Option<String>,
}

/// Encode one record.
pub fn encode_record(seq: u64, payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_RECORD, "payload exceeds MAX_RECORD");
    let mut body = Vec::with_capacity(8 + payload.len());
    body.extend_from_slice(&seq.to_le_bytes());
    body.extend_from_slice(payload);
    let crc = crc32(&body);
    let mut out = Vec::with_capacity(RECORD_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Decode a segment image whose first record must carry sequence number
/// 1 (a fresh, single-segment log). See [`decode_records_from`].
pub fn decode_records(bytes: &[u8]) -> ReplayOutcome {
    decode_records_from(bytes, Some(1))
}

/// Decode a segment image into its valid record prefix (see module docs
/// for the stop rules). `first_seq` pins the sequence number the first
/// record must carry; `None` accepts whatever the first (CRC-valid)
/// record claims — used to bootstrap the first surviving segment after
/// earlier segments were pruned by a checkpoint.
pub fn decode_records_from(bytes: &[u8], first_seq: Option<u64>) -> ReplayOutcome {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut expected_seq = first_seq;
    let mut stop_reason = None;
    while pos < bytes.len() {
        let Some(header) = bytes.get(pos..pos + RECORD_HEADER) else {
            stop_reason = Some(format!(
                "truncated header at offset {pos} ({} bytes left)",
                bytes.len() - pos
            ));
            break;
        };
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if len > MAX_RECORD {
            stop_reason = Some(format!("oversized record ({len} bytes) at offset {pos}"));
            break;
        }
        let body_start = pos + 8; // seq + payload are CRC-covered
        let Some(body) = bytes.get(body_start..body_start + 8 + len) else {
            stop_reason = Some(format!("truncated payload at offset {pos}"));
            break;
        };
        if crc32(body) != crc {
            stop_reason = Some(format!("CRC mismatch at offset {pos}"));
            break;
        }
        let seq = u64::from_le_bytes(body[0..8].try_into().expect("8 bytes"));
        if seq == 0 {
            stop_reason = Some(format!("invalid sequence number 0 at offset {pos}"));
            break;
        }
        if let Some(expected) = expected_seq {
            if seq != expected {
                stop_reason = Some(format!(
                    "sequence break at offset {pos}: got {seq}, expected {expected}"
                ));
                break;
            }
        }
        records.push(WalRecord {
            seq,
            payload: body[8..].to_vec(),
        });
        expected_seq = Some(seq + 1);
        pos += RECORD_HEADER + len;
    }
    ReplayOutcome {
        records,
        valid_len: pos as u64,
        dropped_bytes: (bytes.len() - pos) as u64,
        stop_reason,
    }
}

/// When to seal the active segment and start a new one. A budget of
/// `u64::MAX` disables that dimension.
#[derive(Debug, Clone, Copy)]
pub struct RotationPolicy {
    /// Seal after this many records.
    pub max_records: u64,
    /// Seal once the segment holds at least this many bytes.
    pub max_bytes: u64,
}

impl Default for RotationPolicy {
    fn default() -> Self {
        RotationPolicy {
            max_records: u64::MAX,
            max_bytes: DEFAULT_SEGMENT_BYTES,
        }
    }
}

/// Segment file name for `index` (`wal.000042.log`).
pub fn segment_file_name(index: u64) -> String {
    format!("wal.{index:06}.log")
}

/// Parse a segment file name back to its index.
pub fn parse_segment_index(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal.")?.strip_suffix(".log")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// List the segment files in `dir`, sorted by index. A missing or empty
/// directory is an empty log.
pub fn list_segment_files(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        if let Some(idx) = entry.file_name().to_str().and_then(parse_segment_index) {
            out.push((idx, entry.path()));
        }
    }
    out.sort_by_key(|(idx, _)| *idx);
    Ok(out)
}

/// Per-segment decode result of a [`Wal::scan`].
#[derive(Debug, Clone)]
pub struct SegmentScan {
    /// Segment index (from the file name).
    pub index: u64,
    /// Segment file path.
    pub path: PathBuf,
    /// Valid records decoded from this segment.
    pub records: u64,
    /// Byte length of the valid record prefix.
    pub valid_len: u64,
    /// Sequence number of the last valid record (0 if the segment holds
    /// none).
    pub last_seq: u64,
}

/// Where segment decoding stopped before the end of the chain.
#[derive(Debug, Clone)]
pub struct WalStop {
    /// Index of the segment the stop occurred in.
    pub segment: u64,
    /// Human-readable stop reason.
    pub reason: String,
}

/// Read-only decode of an entire WAL directory ([`Wal::scan`]).
#[derive(Debug, Clone)]
pub struct WalScan {
    /// All valid records across all segments, in sequence order.
    pub records: Vec<WalRecord>,
    /// Per-segment decode results, in index order. Segments after a
    /// stop are listed with zero decoded records.
    pub segments: Vec<SegmentScan>,
    /// Set if decoding stopped before the end of the last segment.
    pub stop: Option<WalStop>,
    /// Bytes past the valid prefix (torn tail + later segments).
    pub dropped_bytes: u64,
}

impl WalScan {
    /// Sequence number of the first decoded record (0 if none).
    pub fn first_seq(&self) -> u64 {
        self.records.first().map(|r| r.seq).unwrap_or(0)
    }

    /// Sequence number of the last decoded record (0 if none).
    pub fn last_seq(&self) -> u64 {
        self.records.last().map(|r| r.seq).unwrap_or(0)
    }
}

/// A sealed (no longer written) segment tracked by an open [`Wal`].
#[derive(Debug, Clone)]
struct SealedSegment {
    path: PathBuf,
    records: u64,
    last_seq: u64,
}

/// An open, segmented write-ahead log rooted at a directory.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    file: File,
    seg_index: u64,
    seg_path: PathBuf,
    /// Records in the active segment.
    seg_records: u64,
    /// Durable byte length of the active segment; failed appends roll
    /// back to this offset.
    durable_len: u64,
    next_seq: u64,
    policy: RotationPolicy,
    sealed: Vec<SealedSegment>,
    poisoned: Option<String>,
    #[cfg(test)]
    fail_next: Option<FailAppend>,
}

/// Test-only fault injection for [`Wal::append`].
#[cfg(test)]
#[derive(Debug)]
pub enum FailAppend {
    /// Write only the first `n` bytes of the record, then fail.
    ShortWrite(usize),
    /// Write the whole record but fail the fsync.
    SyncFail,
}

impl Wal {
    /// Create a fresh log directory (removing any existing segments)
    /// with one empty active segment. The directory entry is fsync'd so
    /// the log survives a crash right after creation.
    pub fn create(dir: impl AsRef<Path>, policy: RotationPolicy) -> std::io::Result<Wal> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        for (_, path) in list_segment_files(&dir)? {
            std::fs::remove_file(&path)?;
        }
        Wal::start_segment(dir, policy, 1, 1, Vec::new())
    }

    fn start_segment(
        dir: PathBuf,
        policy: RotationPolicy,
        seg_index: u64,
        next_seq: u64,
        sealed: Vec<SealedSegment>,
    ) -> std::io::Result<Wal> {
        let seg_path = dir.join(segment_file_name(seg_index));
        let file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(&seg_path)?;
        file.sync_all()?;
        fsync_dir(&dir)?;
        Ok(Wal {
            dir,
            file,
            seg_index,
            seg_path,
            seg_records: 0,
            durable_len: 0,
            next_seq,
            policy,
            sealed,
            poisoned: None,
            #[cfg(test)]
            fail_next: None,
        })
    }

    /// Decode every segment in `dir` without modifying anything on
    /// disk. Recovery first scans, then decides which checkpoint to
    /// restore from, then calls [`Wal::open`] to repair and resume.
    pub fn scan(dir: impl AsRef<Path>) -> std::io::Result<WalScan> {
        let dir = dir.as_ref();
        let files = list_segment_files(dir)?;
        let mut records = Vec::new();
        let mut segments = Vec::new();
        let mut stop = None;
        let mut dropped_bytes = 0u64;
        // The first surviving segment's first record pins the stream
        // start (earlier segments may have been pruned by a checkpoint);
        // every later record must be contiguous.
        let mut expected: Option<u64> = None;
        for (index, path) in files {
            if stop.is_some() {
                // Segments after a stop are untrustworthy; report them
                // so `open` can delete them.
                dropped_bytes += std::fs::metadata(&path)?.len();
                segments.push(SegmentScan {
                    index,
                    path,
                    records: 0,
                    valid_len: 0,
                    last_seq: 0,
                });
                continue;
            }
            let mut bytes = Vec::new();
            File::open(&path)?.read_to_end(&mut bytes)?;
            let out = decode_records_from(&bytes, expected);
            dropped_bytes += out.dropped_bytes;
            if let Some(last) = out.records.last() {
                expected = Some(last.seq + 1);
            }
            segments.push(SegmentScan {
                index,
                path,
                records: out.records.len() as u64,
                valid_len: out.valid_len,
                last_seq: out.records.last().map(|r| r.seq).unwrap_or(0),
            });
            if let Some(reason) = out.stop_reason {
                stop = Some(WalStop {
                    segment: index,
                    reason,
                });
            }
            records.extend(out.records);
        }
        Ok(WalScan {
            records,
            segments,
            stop,
            dropped_bytes,
        })
    }

    /// Open the log for appending after a [`Wal::scan`]: truncate the
    /// stop segment (if any) back to its valid prefix, delete any later
    /// segments, and resume the sequence after the last valid record —
    /// or after `base_seq` (the restored checkpoint's sequence number)
    /// when no records survive at all.
    pub fn open(
        dir: impl AsRef<Path>,
        policy: RotationPolicy,
        scan: &WalScan,
        base_seq: u64,
    ) -> std::io::Result<Wal> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let next_seq = scan.last_seq().max(base_seq) + 1;
        if scan.segments.is_empty() {
            return Wal::start_segment(dir, policy, 1, next_seq, Vec::new());
        }
        // The active segment is where decoding stopped (everything after
        // it is deleted), or the last segment of a clean chain.
        let active_pos = match &scan.stop {
            Some(stop) => scan
                .segments
                .iter()
                .position(|s| s.index == stop.segment)
                .expect("stop segment is part of the scan"),
            None => scan.segments.len() - 1,
        };
        let mut deleted = false;
        for seg in &scan.segments[active_pos + 1..] {
            std::fs::remove_file(&seg.path)?;
            deleted = true;
        }
        let active = &scan.segments[active_pos];
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&active.path)?;
        if std::fs::metadata(&active.path)?.len() != active.valid_len {
            file.set_len(active.valid_len)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(active.valid_len))?;
        if deleted {
            fsync_dir(&dir)?;
        }
        let sealed = scan.segments[..active_pos]
            .iter()
            .map(|s| SealedSegment {
                path: s.path.clone(),
                records: s.records,
                last_seq: s.last_seq,
            })
            .collect();
        Ok(Wal {
            dir,
            file,
            seg_index: active.index,
            seg_path: active.path.clone(),
            seg_records: active.records,
            durable_len: active.valid_len,
            next_seq,
            policy,
            sealed,
            poisoned: None,
            #[cfg(test)]
            fail_next: None,
        })
    }

    /// Append one record and `fsync` it; returns the record's sequence
    /// number. The record is durable when this returns. On failure the
    /// active segment is rolled back to its durable length, so the next
    /// append reuses the same sequence number; if the rollback itself
    /// fails the WAL poisons itself and refuses all further appends.
    pub fn append(&mut self, payload: &[u8]) -> std::io::Result<u64> {
        if let Some(reason) = &self.poisoned {
            return Err(std::io::Error::other(format!("WAL is poisoned: {reason}")));
        }
        self.maybe_rotate()?;
        let seq = self.next_seq;
        let rec = encode_record(seq, payload);
        if let Err(e) = self.write_record(&rec) {
            self.rollback_to_durable(&e);
            return Err(e);
        }
        self.durable_len += rec.len() as u64;
        self.seg_records += 1;
        self.next_seq += 1;
        Ok(seq)
    }

    /// Append `payloads` as one group commit: each record carries its
    /// own (consecutive) sequence number, but the whole batch lands in a
    /// single `write` + `fsync`, so N operations pay one disk round
    /// trip. The on-disk byte stream is identical to N individual
    /// [`Wal::append`] calls — replay cannot tell them apart. Returns
    /// the sequence number of the *first* record (the last is
    /// `first + payloads.len() - 1`).
    ///
    /// All-or-nothing: on failure the active segment rolls back to its
    /// durable length and every sequence number is reused, exactly like
    /// a failed single append.
    pub fn append_batch(&mut self, payloads: &[&[u8]]) -> std::io::Result<u64> {
        if payloads.is_empty() {
            return Err(std::io::Error::other("append_batch: empty batch"));
        }
        if let Some(reason) = &self.poisoned {
            return Err(std::io::Error::other(format!("WAL is poisoned: {reason}")));
        }
        // Rotate once up front: the batch stays inside one segment, so
        // a torn tail can only truncate its suffix, never split it
        // across a segment boundary.
        self.maybe_rotate()?;
        let first = self.next_seq;
        let total: usize = payloads.iter().map(|p| RECORD_HEADER + p.len()).sum();
        let mut buf = Vec::with_capacity(total);
        for (i, payload) in payloads.iter().enumerate() {
            buf.extend_from_slice(&encode_record(first + i as u64, payload));
        }
        if let Err(e) = self.write_record(&buf) {
            self.rollback_to_durable(&e);
            return Err(e);
        }
        self.durable_len += buf.len() as u64;
        self.seg_records += payloads.len() as u64;
        self.next_seq += payloads.len() as u64;
        Ok(first)
    }

    fn write_record(&mut self, rec: &[u8]) -> std::io::Result<()> {
        #[cfg(test)]
        if let Some(fail) = self.fail_next.take() {
            return match fail {
                FailAppend::ShortWrite(n) => {
                    self.file.write_all(&rec[..n.min(rec.len())])?;
                    let _ = self.file.sync_data();
                    Err(std::io::Error::other("injected short write"))
                }
                FailAppend::SyncFail => {
                    self.file.write_all(rec)?;
                    Err(std::io::Error::other("injected fsync failure"))
                }
            };
        }
        self.file.write_all(rec)?;
        self.file.sync_data()
    }

    /// After a failed append: drop whatever partial bytes the failed
    /// write may have left past the durable offset.
    fn rollback_to_durable(&mut self, cause: &std::io::Error) {
        let result = self
            .file
            .set_len(self.durable_len)
            .and_then(|_| self.file.seek(SeekFrom::Start(self.durable_len)))
            .and_then(|_| self.file.sync_data());
        if let Err(e) = result {
            self.poisoned = Some(format!(
                "append failed ({cause}) and rollback to offset {} failed ({e})",
                self.durable_len
            ));
        }
    }

    fn maybe_rotate(&mut self) -> std::io::Result<()> {
        if self.seg_records >= self.policy.max_records || self.durable_len >= self.policy.max_bytes
        {
            self.rotate()?;
        }
        Ok(())
    }

    /// Seal the active segment and start a new one (no-op while the
    /// active segment is empty). The sealed segment and the directory
    /// entry of the new one are fsync'd before any append lands in it,
    /// so only the *last* segment can ever hold a torn record.
    pub fn rotate(&mut self) -> std::io::Result<()> {
        if self.seg_records == 0 {
            return Ok(());
        }
        self.file.sync_all()?;
        let next_index = self.seg_index + 1;
        let next_path = self.dir.join(segment_file_name(next_index));
        let file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(&next_path)?;
        file.sync_all()?;
        fsync_dir(&self.dir)?;
        self.sealed.push(SealedSegment {
            path: std::mem::replace(&mut self.seg_path, next_path),
            records: self.seg_records,
            last_seq: self.next_seq - 1,
        });
        self.file = file;
        self.seg_index = next_index;
        self.seg_records = 0;
        self.durable_len = 0;
        Ok(())
    }

    /// Delete sealed segments whose records are all `<= seq` (covered
    /// by a checkpoint). Only a contiguous prefix of sealed segments is
    /// removed — the stream stays gap-free — and the directory entry is
    /// fsync'd after the deletes. Returns how many segments were
    /// removed.
    pub fn prune_covered(&mut self, seq: u64) -> std::io::Result<usize> {
        let covered = self
            .sealed
            .iter()
            .take_while(|s| s.records == 0 || s.last_seq <= seq)
            .count();
        if covered == 0 {
            return Ok(0);
        }
        for seg in self.sealed.drain(..covered) {
            std::fs::remove_file(&seg.path)?;
        }
        fsync_dir(&self.dir)?;
        Ok(covered)
    }

    /// The sequence number the next append will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Sequence number of the last appended or replayed record.
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// The log's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of live segment files (sealed + active).
    pub fn segment_count(&self) -> usize {
        self.sealed.len() + 1
    }

    /// Why the WAL refuses appends, if it is poisoned.
    pub fn poisoned(&self) -> Option<&str> {
        self.poisoned.as_deref()
    }

    #[cfg(test)]
    fn fail_next_append(&mut self, fail: FailAppend) {
        self.fail_next = Some(fail);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("moma_wal_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn no_rotation() -> RotationPolicy {
        RotationPolicy {
            max_records: u64::MAX,
            max_bytes: u64::MAX,
        }
    }

    fn reopen(dir: &Path) -> (Wal, WalScan) {
        let scan = Wal::scan(dir).unwrap();
        let wal = Wal::open(dir, no_rotation(), &scan, 0).unwrap();
        (wal, scan)
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut log = Vec::new();
        for (i, payload) in [&b"alpha"[..], b"", b"{\"cmd\":\"delta\"}"]
            .iter()
            .enumerate()
        {
            log.extend_from_slice(&encode_record(i as u64 + 1, payload));
        }
        let out = decode_records(&log);
        assert_eq!(out.records.len(), 3);
        assert_eq!(out.stop_reason, None);
        assert_eq!(out.dropped_bytes, 0);
        assert_eq!(out.valid_len, log.len() as u64);
        assert_eq!(out.records[2].payload, b"{\"cmd\":\"delta\"}");
    }

    #[test]
    fn decode_from_accepts_claimed_first_seq() {
        let mut log = Vec::new();
        log.extend_from_slice(&encode_record(41, b"a"));
        log.extend_from_slice(&encode_record(42, b"b"));
        let out = decode_records_from(&log, None);
        assert_eq!(out.records.len(), 2);
        assert_eq!(out.records[0].seq, 41);
        // With a pinned first seq, a different claim is a stream break.
        let out = decode_records_from(&log, Some(1));
        assert_eq!(out.records.len(), 0);
        assert!(out.stop_reason.unwrap().contains("sequence break"));
    }

    #[test]
    fn wal_roundtrip_and_torn_tail() {
        let dir = tmp("torn");
        {
            let mut wal = Wal::create(&dir, no_rotation()).unwrap();
            assert_eq!(wal.append(b"one").unwrap(), 1);
            assert_eq!(wal.append(b"two").unwrap(), 2);
            assert_eq!(wal.last_seq(), 2);
        }
        // Simulate a torn write: half a record at the tail.
        let torn = &encode_record(3, b"three")[..9];
        let seg = dir.join(segment_file_name(1));
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(torn).unwrap();
        drop(f);

        let (mut wal, scan) = reopen(&dir);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.dropped_bytes, torn.len() as u64);
        assert!(scan.stop.is_some());
        // Appends resume after the valid prefix with the right seq.
        assert_eq!(wal.append(b"three-again").unwrap(), 3);
        let (_, scan2) = reopen(&dir);
        assert_eq!(scan2.records.len(), 3);
        assert!(scan2.stop.is_none());
        assert_eq!(scan2.records[2].payload, b"three-again");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_is_an_empty_log() {
        let dir = tmp("missing");
        let scan = Wal::scan(&dir).unwrap();
        assert_eq!(scan.records.len(), 0);
        let wal = Wal::open(&dir, no_rotation(), &scan, 0).unwrap();
        assert_eq!(wal.next_seq(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_preserves_global_sequence() {
        let dir = tmp("rotate");
        let policy = RotationPolicy {
            max_records: 3,
            max_bytes: u64::MAX,
        };
        let mut wal = Wal::create(&dir, policy).unwrap();
        for i in 1..=10u64 {
            assert_eq!(wal.append(format!("r{i}").as_bytes()).unwrap(), i);
        }
        assert_eq!(wal.segment_count(), 4); // 3+3+3+1
        let scan = Wal::scan(&dir).unwrap();
        assert_eq!(scan.records.len(), 10);
        assert!(scan.stop.is_none());
        for (i, rec) in scan.records.iter().enumerate() {
            assert_eq!(rec.seq, i as u64 + 1);
        }
        // Reopen keeps appending in the last segment with the next seq.
        drop(wal);
        let scan = Wal::scan(&dir).unwrap();
        let mut wal = Wal::open(&dir, policy, &scan, 0).unwrap();
        assert_eq!(wal.append(b"r11").unwrap(), 11);
        assert_eq!(Wal::scan(&dir).unwrap().records.len(), 11);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_in_middle_segment_drops_later_segments() {
        let dir = tmp("midtear");
        let policy = RotationPolicy {
            max_records: 2,
            max_bytes: u64::MAX,
        };
        {
            let mut wal = Wal::create(&dir, policy).unwrap();
            for i in 1..=6u64 {
                wal.append(format!("r{i}").as_bytes()).unwrap();
            }
        }
        // Corrupt the tail of segment 2 (records 3 and 4).
        let seg2 = dir.join(segment_file_name(2));
        let len = std::fs::metadata(&seg2).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&seg2)
            .unwrap()
            .set_len(len - 3)
            .unwrap();

        let (mut wal, scan) = reopen(&dir);
        assert_eq!(scan.records.len(), 3, "record 4 torn, 5 and 6 dropped");
        assert!(scan.stop.is_some());
        // Segment 3 was untrustworthy and is gone; appends resume at 4.
        assert!(!dir.join(segment_file_name(3)).exists());
        assert_eq!(wal.append(b"r4-again").unwrap(), 4);
        let scan = Wal::scan(&dir).unwrap();
        assert_eq!(scan.records.len(), 4);
        assert!(scan.stop.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_append_rolls_back_and_reuses_seq() {
        let dir = tmp("shortwrite");
        let mut wal = Wal::create(&dir, no_rotation()).unwrap();
        wal.append(b"one").unwrap();

        // A short write leaves partial bytes on disk; the rollback must
        // erase them so the retry's sequence number is not a duplicate.
        wal.fail_next_append(FailAppend::ShortWrite(9));
        let err = wal.append(b"two").unwrap_err();
        assert!(err.to_string().contains("short write"), "{err}");
        assert_eq!(wal.next_seq(), 2, "failed append must not consume a seq");
        assert!(wal.poisoned().is_none());
        assert_eq!(wal.append(b"two-retry").unwrap(), 2);

        // A failed fsync is also rolled back: the record was never
        // acknowledged, so it must not survive.
        wal.fail_next_append(FailAppend::SyncFail);
        wal.append(b"three").unwrap_err();
        assert_eq!(wal.append(b"three-retry").unwrap(), 3);

        drop(wal);
        let (_, scan) = reopen(&dir);
        assert!(scan.stop.is_none(), "{:?}", scan.stop);
        let payloads: Vec<&[u8]> = scan.records.iter().map(|r| &r.payload[..]).collect();
        assert_eq!(payloads, [&b"one"[..], b"two-retry", b"three-retry"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_append_is_byte_identical_to_singles() {
        let dir_b = tmp("batch");
        let dir_s = tmp("batch_singles");
        let payloads: [&[u8]; 3] = [b"{\"cmd\":\"delta\",\"n\":1}", b"two", b""];
        let mut batched = Wal::create(&dir_b, no_rotation()).unwrap();
        assert_eq!(batched.append(b"prefix").unwrap(), 1);
        assert_eq!(batched.append_batch(&payloads).unwrap(), 2);
        assert_eq!(batched.last_seq(), 4);
        let mut singles = Wal::create(&dir_s, no_rotation()).unwrap();
        singles.append(b"prefix").unwrap();
        for p in payloads {
            singles.append(p).unwrap();
        }
        let seg_b = std::fs::read(dir_b.join(segment_file_name(1))).unwrap();
        let seg_s = std::fs::read(dir_s.join(segment_file_name(1))).unwrap();
        assert_eq!(seg_b, seg_s, "group commit must not change the byte stream");
        // The batch is also visible to a scan as 3 ordinary records.
        drop(batched);
        let (_, scan) = reopen(&dir_b);
        assert_eq!(scan.records.len(), 4);
        assert_eq!(scan.last_seq(), 4);
        let _ = std::fs::remove_dir_all(&dir_b);
        let _ = std::fs::remove_dir_all(&dir_s);
    }

    #[test]
    fn failed_batch_append_rolls_back_and_reuses_all_seqs() {
        let dir = tmp("batch_fail");
        let mut wal = Wal::create(&dir, no_rotation()).unwrap();
        wal.append(b"one").unwrap();

        // Tear the batch mid-way: nothing from it may survive and every
        // sequence number must be reused by the retry.
        wal.fail_next_append(FailAppend::ShortWrite(25));
        let err = wal.append_batch(&[b"a", b"b", b"c"]).unwrap_err();
        assert!(err.to_string().contains("short write"), "{err}");
        assert_eq!(wal.next_seq(), 2, "failed batch must not consume seqs");
        assert!(wal.poisoned().is_none());
        assert_eq!(wal.append_batch(&[b"a2", b"b2", b"c2"]).unwrap(), 2);

        drop(wal);
        let (_, scan) = reopen(&dir);
        assert!(scan.stop.is_none(), "{:?}", scan.stop);
        let payloads: Vec<&[u8]> = scan.records.iter().map(|r| &r.payload[..]).collect();
        assert_eq!(payloads, [&b"one"[..], b"a2", b"b2", b"c2"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_rotates_before_not_inside_the_batch() {
        let dir = tmp("batch_rotate");
        let policy = RotationPolicy {
            max_records: 2,
            max_bytes: u64::MAX,
        };
        let mut wal = Wal::create(&dir, policy).unwrap();
        wal.append(b"r1").unwrap();
        wal.append(b"r2").unwrap();
        // The active segment is full: the batch seals it first, then
        // lands whole in the fresh segment (even though it overflows the
        // per-segment record budget on its own).
        assert_eq!(wal.append_batch(&[b"b1", b"b2", b"b3"]).unwrap(), 3);
        assert_eq!(wal.segment_count(), 2);
        let scan = Wal::scan(&dir).unwrap();
        assert!(scan.stop.is_none());
        assert_eq!(scan.records.len(), 5);
        assert_eq!(scan.segments[1].records, 3, "batch lives in one segment");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_covered_removes_only_sealed_covered_prefix() {
        let dir = tmp("prune");
        let policy = RotationPolicy {
            max_records: 2,
            max_bytes: u64::MAX,
        };
        let mut wal = Wal::create(&dir, policy).unwrap();
        for i in 1..=7u64 {
            wal.append(format!("r{i}").as_bytes()).unwrap();
        }
        assert_eq!(wal.segment_count(), 4); // [1,2][3,4][5,6][7]
        assert_eq!(wal.prune_covered(3).unwrap(), 1, "only [1,2] covered");
        assert_eq!(wal.segment_count(), 3);
        assert_eq!(wal.prune_covered(7).unwrap(), 2, "active never pruned");
        assert_eq!(wal.segment_count(), 1);
        // The surviving suffix still scans cleanly from its claimed seq.
        drop(wal);
        let scan = Wal::scan(&dir).unwrap();
        assert!(scan.stop.is_none());
        assert_eq!(scan.first_seq(), 7);
        assert_eq!(scan.last_seq(), 7);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_with_base_seq_resumes_after_checkpoint() {
        // All segments pruned (fully covered): the sequence resumes
        // from the checkpoint's seq, not from 1.
        let dir = tmp("baseseq");
        std::fs::create_dir_all(&dir).unwrap();
        let scan = Wal::scan(&dir).unwrap();
        let mut wal = Wal::open(&dir, no_rotation(), &scan, 41).unwrap();
        assert_eq!(wal.append(b"42nd").unwrap(), 42);
        let scan = Wal::scan(&dir).unwrap();
        assert_eq!(scan.first_seq(), 42);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
