//! # moma-server — the MOMA serving layer
//!
//! `moma serve` turns the matching framework into a long-lived service:
//! a [`engine::Engine`] owns a [`moma_model::SourceRegistry`], a
//! [`moma_core::MappingRepository`] and the primed
//! [`moma_core::DeltaMatchState`]s, and answers concurrent traffic over
//! a length-prefixed JSON frame protocol ([`frame`], [`protocol`]) on a
//! plain `std::net::TcpListener` — no async runtime, thread per
//! connection ([`server`]).
//!
//! Three properties carry the design (see the module docs for details):
//!
//! * **Durability** ([`wal`], [`checkpoint`]): every mutating command
//!   is appended to an fsync'd, CRC-framed, segment-rotated write-ahead
//!   log *before* it is applied, and checkpoints bound how much of it a
//!   restart must replay. `moma serve --replay` restores the newest
//!   valid checkpoint, re-executes only the log suffix after it and —
//!   because all engine operations are parallel-deterministic —
//!   restores the pre-crash repository bit-identically: same
//!   correspondences, same version stamps, same counters.
//! * **Snapshot isolation** ([`engine`]): readers start from
//!   [`moma_core::MappingRepository::snapshot`], a point-in-time image
//!   captured under one lock acquisition; a query never observes a
//!   half-applied delta.
//! * **Incremental serving** ([`moma_core::delta`]): source deltas
//!   patch materialized mappings in time proportional to the delta and
//!   the `delta` response reports, per mapping, whether the patch was
//!   incremental or paid a (transparent, warned-about) full re-match.
//! * **Sharding** ([`shard`]): `moma serve --shards N` runs N
//!   independent engines — each with its own WAL directory, checkpoint
//!   chain and admission budgets — behind a [`shard::ShardRouter`] that
//!   places mutating commands by source ownership, scatters reads and
//!   merges `stats`. Writes to distinct shards no longer serialize
//!   behind one lock, and each shard recovers from its own WAL
//!   independently.
//! * **Overload hardening** ([`server`]): bounded admission budgets per
//!   command class ([`server::Limits`]) answer excess traffic with
//!   explicit `busy`/`overloaded` frames instead of unbounded queueing,
//!   `batch_query`/`batch_delta` amortize per-request overhead (one WAL
//!   group commit per delta batch), and automatic checkpoints run on a
//!   server-owned background thread, off the delta path.
//!
//! The `moma_load` binary in this crate is the load generator and
//! protocol swiss-army knife used by CI: `load` (latency/throughput
//! report), `smoke` (endpoint conformance), `stream` (deterministic
//! delta traffic), `dump`, `stat`, `shutdown`.

pub mod checkpoint;
pub mod client;
pub mod engine;
pub mod frame;
pub mod json;
pub mod protocol;
pub mod server;
pub mod shard;
pub mod wal;

pub use client::Client;
pub use engine::{CommandCounts, DurabilityPolicy, Engine, ReplaySummary};
pub use json::Json;
pub use server::{
    run, run_sharded, run_with_limits, spawn, spawn_sharded, spawn_with_limits, Limits,
    ServerHandle,
};
pub use shard::ShardRouter;
pub use wal::Wal;
