//! Shard router: N independent engines behind one serving endpoint.
//!
//! `moma serve --shards N` partitions the serving workload across N
//! [`Engine`] instances. Every shard boots from an identical clone of
//! the source registry and owns its own WAL directory, checkpoint
//! chain and admission budgets; what differs between shards is which
//! *mappings* (and therefore which delta traffic) live on them.
//!
//! ## Routing model
//!
//! The router maintains a deterministic **ownership index** folded from
//! the command history (and rebuilt from engine state after recovery):
//!
//! * A successful `match` **claims** its domain source for the shard it
//!   ran on and registers that shard as a **host** of both its domain
//!   and range sources.
//! * A `match` is placed by a deterministic cascade: the domain's
//!   owning shard if claimed, else an explicit `"shard"` hint, else the
//!   lowest shard already hosting the domain (then the range), else
//!   `fnv1a(domain) % N`.
//! * A `delta` fans out to **every shard hosting a mapping over its
//!   source**, so each delta is visible to every mapping that existed
//!   when it was accepted (invariant I5 in `docs/ARCHITECTURE.md`).
//!   Exactly one target — the lowest — logs the accounting copy; the
//!   others log `"repl": true` replicas that patch their local states
//!   without double-counting `commands.delta`. A delta to a source no
//!   shard hosts is refused with a routable error.
//! * `query`/`batch_query` route by mapping name; `stats` and `dump`
//!   scatter across all shards and gather in ascending shard order.
//! * A `compose` whose inputs live on one shard runs there unchanged
//!   (single-shard fast path). A **cross-shard compose** gathers the
//!   two input tables under their shards' read locks, computes the
//!   compose on the coordinator, and logs the *result* as an `install`
//!   record on the left input's shard — replay never reaches across
//!   shards, so per-shard recovery stays independent and bit-identical.
//!
//! Because every placement decision is a pure function of the index,
//! and the index is a deterministic fold of the (per-shard-serialized)
//! command history, an N-shard run is reproducible: replaying each
//! shard's WAL independently reconstructs the same N engine states a
//! clean run of the same commands produces.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::AtomicU64;
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use moma_core::exec::Parallelism;
use moma_core::{Mapping, MappingRepository, Recipe};

use crate::engine::Engine;
use crate::json::Json;

/// One shard: an engine plus its private admission counters. The
/// in-flight budgets in [`crate::server::Limits`] apply **per shard**,
/// so a hot shard saturating its write budget does not shed load for
/// traffic routed elsewhere.
pub struct Shard {
    /// The shard's engine; write lock for mutating commands, read lock
    /// for queries.
    pub engine: RwLock<Engine>,
    /// Mutating commands in flight on this shard.
    pub inflight_writes: AtomicU64,
    /// Read-only commands in flight on this shard.
    pub inflight_reads: AtomicU64,
}

/// Deterministic routing state; a pure fold of the command history.
#[derive(Default)]
struct RouteIndex {
    /// Source name → shard claimed by the first successful `match`
    /// using it as the domain.
    owner: BTreeMap<String, usize>,
    /// Source name → shards hosting a primed state over it (targets of
    /// delta fan-out).
    hosts: BTreeMap<String, BTreeSet<usize>>,
    /// Mapping name → shard it lives on.
    mappings: BTreeMap<String, usize>,
}

/// Where a `compose` must run.
pub enum ComposePlan {
    /// Both inputs live on one shard: run the ordinary recipe path
    /// there.
    Single(usize),
    /// Inputs live on different shards: gather both tables, compute on
    /// the coordinator, `install` the result on `install` (the left
    /// input's shard).
    Cross {
        left: usize,
        right: usize,
        install: usize,
    },
}

/// FNV-1a — the default placement hash for unclaimed domains. Stable
/// across runs and platforms (routing must be reproducible).
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The router: shards plus the ownership index. Lock order is strict —
/// the index lock is never held across an engine lock acquisition, and
/// multi-shard operations take engine locks in ascending shard order.
pub struct ShardRouter {
    shards: Vec<Shard>,
    index: RwLock<RouteIndex>,
}

impl ShardRouter {
    /// Wrap `engines` (one per shard) and build the ownership index
    /// from their current state — on a fresh boot the index is empty;
    /// after `--replay` it reflects exactly the placements the
    /// recovered states prove.
    pub fn new(engines: Vec<Engine>) -> ShardRouter {
        assert!(!engines.is_empty(), "a server needs at least one shard");
        let shards: Vec<Shard> = engines
            .into_iter()
            .map(|e| Shard {
                engine: RwLock::new(e),
                inflight_writes: AtomicU64::new(0),
                inflight_reads: AtomicU64::new(0),
            })
            .collect();
        let router = ShardRouter {
            shards,
            index: RwLock::new(RouteIndex::default()),
        };
        router.rebuild_index();
        router
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// A router always has at least one shard; this exists for the
    /// `len`/`is_empty` convention only.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// `true` when running unsharded (the dispatch fast path).
    pub fn is_single(&self) -> bool {
        self.shards.len() == 1
    }

    /// The `i`-th shard.
    pub fn shard(&self, i: usize) -> &Shard {
        &self.shards[i]
    }

    /// All shards, in shard order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Read-lock shard `i`'s engine; the boolean reports whether a
    /// poisoned lock was recovered (the server surfaces it as
    /// `degraded`).
    pub fn engine_read(&self, i: usize) -> (RwLockReadGuard<'_, Engine>, bool) {
        match self.shards[i].engine.read() {
            Ok(g) => (g, false),
            Err(poisoned) => (poisoned.into_inner(), true),
        }
    }

    /// Write-lock shard `i`'s engine (see [`ShardRouter::engine_read`]).
    pub fn engine_write(&self, i: usize) -> (RwLockWriteGuard<'_, Engine>, bool) {
        match self.shards[i].engine.write() {
            Ok(g) => (g, false),
            Err(poisoned) => (poisoned.into_inner(), true),
        }
    }

    /// Rebuild the ownership index from engine state (boot and
    /// recovery). Shards are scanned in ascending order, so claim
    /// resolution is deterministic; whatever shard a state recovered on
    /// is, by the routing invariant, the shard that owns it.
    pub fn rebuild_index(&self) {
        let mut idx = RouteIndex::default();
        for (i, shard) in self.shards.iter().enumerate() {
            let engine = match shard.engine.read() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            for (name, domain, range) in engine.state_endpoints() {
                idx.owner.entry(domain.clone()).or_insert(i);
                idx.hosts.entry(domain).or_default().insert(i);
                idx.hosts.entry(range).or_default().insert(i);
                idx.mappings.insert(name, i);
            }
            for name in engine.mapping_names() {
                idx.mappings.entry(name).or_insert(i);
            }
        }
        *self.index.write().unwrap_or_else(|p| p.into_inner()) = idx;
    }

    fn index_read(&self) -> RwLockReadGuard<'_, RouteIndex> {
        self.index.read().unwrap_or_else(|p| p.into_inner())
    }

    fn index_write(&self) -> RwLockWriteGuard<'_, RouteIndex> {
        self.index.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Place a `match` over `domain` × `range`. The cascade: owner of
    /// the domain, else the explicit `hint`, else the lowest shard
    /// hosting the domain, else the lowest hosting the range, else
    /// `fnv1a(domain) % N`. A hint that contradicts an existing claim
    /// is a routable error, not a silent override.
    pub fn plan_match(
        &self,
        domain: &str,
        range: &str,
        hint: Option<usize>,
    ) -> Result<usize, String> {
        if let Some(h) = hint {
            if h >= self.shards.len() {
                return Err(format!(
                    "shard hint {h} out of range (this server has {} shards)",
                    self.shards.len()
                ));
            }
        }
        let idx = self.index_read();
        if let Some(&owner) = idx.owner.get(domain) {
            if let Some(h) = hint {
                if h != owner {
                    return Err(format!(
                        "source `{domain}` is owned by shard {owner}; \
                         explicit shard {h} would split its mappings"
                    ));
                }
            }
            return Ok(owner);
        }
        if let Some(h) = hint {
            return Ok(h);
        }
        if let Some(first) = idx.hosts.get(domain).and_then(|s| s.iter().next()) {
            return Ok(*first);
        }
        if let Some(first) = idx.hosts.get(range).and_then(|s| s.iter().next()) {
            return Ok(*first);
        }
        Ok((fnv1a(domain) % self.shards.len() as u64) as usize)
    }

    /// Record a successful `match`: claim the domain for `shard`, add
    /// `shard` as a host of both sources and place the mapping.
    pub fn note_match(&self, name: &str, domain: &str, range: &str, shard: usize) {
        let mut idx = self.index_write();
        idx.owner.entry(domain.to_owned()).or_insert(shard);
        idx.hosts
            .entry(domain.to_owned())
            .or_default()
            .insert(shard);
        idx.hosts.entry(range.to_owned()).or_default().insert(shard);
        idx.mappings.insert(name.to_owned(), shard);
    }

    /// Record a mapping created by `compose`/`install` on `shard`.
    pub fn note_mapping(&self, name: &str, shard: usize) {
        self.index_write().mappings.insert(name.to_owned(), shard);
    }

    /// Target shards for a `delta` to `source`, ascending. The first
    /// element is the accounting shard; the rest receive `"repl": true`
    /// replicas. A source no shard hosts (and no claim covers) is
    /// refused — there is nothing the delta could patch, and accepting
    /// it would leave replicas diverging silently.
    pub fn plan_delta(&self, source: &str) -> Result<Vec<usize>, String> {
        let idx = self.index_read();
        if let Some(hosts) = idx.hosts.get(source) {
            if !hosts.is_empty() {
                return Ok(hosts.iter().copied().collect());
            }
        }
        if let Some(&owner) = idx.owner.get(source) {
            return Ok(vec![owner]);
        }
        Err(format!(
            "no shard hosts mappings over source `{source}`; create a mapping \
             that reads it first (deltas route by source ownership)"
        ))
    }

    /// The shard a mapping lives on, if the router knows it.
    pub fn mapping_shard(&self, name: &str) -> Option<usize> {
        self.index_read().mappings.get(name).copied()
    }

    /// All known mapping names with their shards, in name order (for
    /// routable "unknown mapping" errors).
    pub fn known_mappings(&self) -> Vec<(String, usize)> {
        self.index_read()
            .mappings
            .iter()
            .map(|(n, &s)| (n.clone(), s))
            .collect()
    }

    /// The shard whose replica of `source` is authoritative: its owner,
    /// else its lowest host, else shard 0 (an unowned source never
    /// received a delta, so every replica is still the boot image).
    pub fn source_authority(&self, source: &str) -> usize {
        let idx = self.index_read();
        if let Some(&o) = idx.owner.get(source) {
            return o;
        }
        idx.hosts
            .get(source)
            .and_then(|s| s.iter().next().copied())
            .unwrap_or(0)
    }

    /// Where a `compose` of `left` × `right` must run.
    pub fn plan_compose(&self, left: &str, right: &str) -> Result<ComposePlan, String> {
        let idx = self.index_read();
        let find = |name: &str| -> Result<usize, String> {
            idx.mappings.get(name).copied().ok_or_else(|| {
                let names: Vec<&str> = idx.mappings.keys().map(String::as_str).collect();
                format!(
                    "unknown mapping `{name}` (have: {})",
                    if names.is_empty() {
                        "none".to_owned()
                    } else {
                        names.join(", ")
                    }
                )
            })
        };
        let l = find(left)?;
        let r = find(right)?;
        if l == r {
            Ok(ComposePlan::Single(l))
        } else {
            Ok(ComposePlan::Cross {
                left: l,
                right: r,
                install: l,
            })
        }
    }
}

/// Compute a compose on the coordinator from two gathered mapping
/// tables. Runs the exact `Recipe::Compose` evaluation the single-shard
/// path uses (via a throwaway repository), so a cross-shard compose
/// produces bit-identical rows to the same compose run on one shard.
/// Arena indices are consistent across shards because every shard's
/// registry is a clone of the same boot image and arenas are
/// append-only.
pub fn compose_gathered(
    left: &Mapping,
    right: &Mapping,
    f: moma_core::ops::compose::PathCombine,
    g: moma_core::ops::compose::PathAgg,
    par: &Parallelism,
) -> Result<(Vec<(u32, u32, f64)>, Option<String>), String> {
    let repo = MappingRepository::new();
    repo.store_as("__cross_left", left.clone());
    repo.store_as("__cross_right", right.clone());
    let out = repo
        .store_derived(
            "__cross_out",
            Recipe::Compose {
                left: "__cross_left".into(),
                right: "__cross_right".into(),
                f,
                g,
            },
            par,
        )
        .map_err(|e| e.to_string())?;
    let rows = out
        .table
        .rows()
        .iter()
        .map(|c| (c.domain, c.range, c.sim))
        .collect();
    let assoc = match &out.kind {
        moma_core::MappingKind::Association(t) => Some(t.clone()),
        moma_core::MappingKind::Same => None,
    };
    Ok((rows, assoc))
}

/// Merge per-shard engine stats into the sharded `stats` response:
/// summed `commands` and `wal` aggregates (so dot-paths like
/// `commands.delta` and `wal.lag` stay meaningful), authoritative
/// per-source rows, all mappings annotated with their shard, and a
/// compact per-shard breakdown under `"shards"`.
pub fn merge_stats(router: &ShardRouter, per_shard: &[Json]) -> Json {
    let sum_field = |path: &[&str]| -> u64 {
        per_shard
            .iter()
            .map(|s| {
                let mut cur = Some(s);
                for p in path {
                    cur = cur.and_then(|c| c.get(p));
                }
                cur.and_then(Json::as_u64).unwrap_or(0)
            })
            .sum()
    };
    let commands = Json::obj(vec![
        ("match", Json::Uint(sum_field(&["commands", "match"]))),
        ("compose", Json::Uint(sum_field(&["commands", "compose"]))),
        ("delta", Json::Uint(sum_field(&["commands", "delta"]))),
        (
            "repl_delta",
            Json::Uint(sum_field(&["commands", "repl_delta"])),
        ),
    ]);
    let any_wal = per_shard
        .iter()
        .any(|s| !matches!(s.get("wal"), None | Some(Json::Null)));
    let wal = if any_wal {
        Json::obj(vec![
            ("seq", Json::Uint(sum_field(&["wal", "seq"]))),
            (
                "checkpoint_seq",
                Json::Uint(sum_field(&["wal", "checkpoint_seq"])),
            ),
            ("lag", Json::Uint(sum_field(&["wal", "lag"]))),
            ("segments", Json::Uint(sum_field(&["wal", "segments"]))),
        ])
    } else {
        Json::Null
    };

    // Authoritative source rows: each source reported from the shard
    // that owns its current replica.
    let mut sources = Vec::new();
    if let Some(Json::Arr(names)) = per_shard.first().and_then(|s| s.get("sources")).cloned() {
        for entry in &names {
            let Some(name) = entry.str_field("name") else {
                continue;
            };
            let auth = router.source_authority(name);
            let row = per_shard
                .get(auth)
                .and_then(|s| s.get("sources"))
                .and_then(Json::as_arr)
                .and_then(|arr| arr.iter().find(|e| e.str_field("name") == Some(name)))
                .cloned()
                .unwrap_or_else(|| entry.clone());
            if let Json::Obj(mut fields) = row {
                fields.push(("shard".to_owned(), Json::Uint(auth as u64)));
                sources.push(Json::Obj(fields));
            }
        }
    }

    let mut mappings = Vec::new();
    let mut shard_rows = Vec::new();
    for (i, s) in per_shard.iter().enumerate() {
        if let Some(Json::Arr(ms)) = s.get("mappings").cloned() {
            for m in ms {
                if let Json::Obj(mut fields) = m {
                    fields.push(("shard".to_owned(), Json::Uint(i as u64)));
                    mappings.push(Json::Obj(fields));
                }
            }
        }
        shard_rows.push(Json::obj(vec![
            ("shard", Json::Uint(i as u64)),
            ("commands", s.get("commands").cloned().unwrap_or(Json::Null)),
            ("wal", s.get("wal").cloned().unwrap_or(Json::Null)),
            (
                "mappings",
                Json::Uint(
                    s.get("mappings")
                        .and_then(Json::as_arr)
                        .map(|a| a.len() as u64)
                        .unwrap_or(0),
                ),
            ),
        ]));
    }

    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("commands", commands),
        ("wal", wal),
        ("sources", Json::Arr(sources)),
        ("mappings", Json::Arr(mappings)),
        (
            "full_rematch_warnings_suppressed",
            Json::Uint(sum_field(&["full_rematch_warnings_suppressed"])),
        ),
        ("shards", Json::Arr(shard_rows)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_is_stable() {
        // Routing must be reproducible across runs and platforms; pin
        // the hash so an accidental "upgrade" cannot silently re-place
        // every unclaimed domain.
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a("Publication@GS") % 4, fnv1a("Publication@GS") % 4);
        assert_ne!(fnv1a("a"), fnv1a("b"));
    }
}
