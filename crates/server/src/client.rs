//! Minimal blocking client for the serving protocol (used by
//! `moma_load`, the smoke scripts and the end-to-end tests).

use std::io;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::frame::{read_frame, write_frame};
use crate::json::Json;

/// One connection to a `moma serve` instance.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to `addr` (e.g. `127.0.0.1:7207`).
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Connect, retrying until `timeout` elapses — for scripts that
    /// race server startup.
    pub fn connect_retry(addr: &str, timeout: Duration) -> io::Result<Client> {
        let deadline = Instant::now() + timeout;
        loop {
            match Client::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    /// Send one request and read its response.
    pub fn call(&mut self, req: &Json) -> io::Result<Json> {
        write_frame(&mut self.stream, req.to_string().as_bytes())?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        let text = std::str::from_utf8(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        Json::parse(text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// [`Client::call`], but a non-`ok` response becomes an `Err` with
    /// the server's error message.
    pub fn call_ok(&mut self, req: &Json) -> io::Result<Json> {
        let resp = self.call(req)?;
        if resp.get("ok").and_then(Json::as_bool) == Some(true) {
            Ok(resp)
        } else {
            let msg = resp.str_field("error").unwrap_or("request failed");
            Err(io::Error::other(format!(
                "{msg} (request: {})",
                req.str_field("cmd").unwrap_or("?")
            )))
        }
    }

    /// Run a batch of query items (see [`crate::protocol::query_item`])
    /// in one frame, returning the per-item responses.
    pub fn batch_query(&mut self, items: Vec<Json>) -> io::Result<Vec<Json>> {
        self.batch_call(crate::protocol::batch_query_request(items))
    }

    /// Apply a batch of delta items (see [`crate::protocol::delta_item`])
    /// in one frame — the server logs them as one WAL group commit.
    pub fn batch_delta(&mut self, items: Vec<Json>) -> io::Result<Vec<Json>> {
        self.batch_call(crate::protocol::batch_delta_request(items))
    }

    /// Fetch the server's `stats`. Against a sharded server the
    /// response carries the merged aggregate view plus a per-shard
    /// breakdown under `"shards"` and the `shard_count` field.
    pub fn stats(&mut self) -> io::Result<Json> {
        self.call_ok(&crate::protocol::bare_request("stats"))
    }

    /// Query a mapping's correspondences (`limit == 0` means all rows).
    /// A sharded server routes this to the shard owning the mapping and
    /// annotates the response with its `"shard"`.
    pub fn query(&mut self, name: &str, limit: u64, min_sim: Option<f64>) -> io::Result<Json> {
        self.call_ok(&crate::protocol::query_request(name, limit, min_sim))
    }

    fn batch_call(&mut self, req: Json) -> io::Result<Vec<Json>> {
        let resp = self.call_ok(&req)?;
        // Move the per-item results out of the envelope rather than
        // cloning them — batches exist to amortize per-op overhead.
        if let Json::Obj(fields) = resp {
            for (key, value) in fields {
                if key == "results" {
                    if let Json::Arr(results) = value {
                        return Ok(results);
                    }
                    break;
                }
            }
        }
        Err(io::Error::other("batch response missing `results`"))
    }
}
