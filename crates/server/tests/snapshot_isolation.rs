//! Snapshot-isolated reads: a reader that captures a repository
//! snapshot sees one consistent point in time — never a half-applied
//! delta — and a snapshot held across later deltas keeps its pre-delta
//! contents and version stamps.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

use moma_core::exec::Parallelism;
use moma_model::{AttrDef, AttrValue, DeltaOp, LogicalSource, ObjectType, SourceRegistry};
use moma_server::{protocol, Engine, Json};

fn registry() -> SourceRegistry {
    let mut reg = SourceRegistry::new();
    for (pds, n) in [("DBLP", 12), ("ACM", 12), ("GS", 12)] {
        let mut lds = LogicalSource::new(
            pds,
            ObjectType::new("Publication"),
            vec![AttrDef::text("title")],
        );
        for i in 0..n {
            lds.insert_record(
                format!("{pds}_{i}"),
                vec![(
                    "title",
                    AttrValue::Text(format!("A study of mapping composition number {i}")),
                )],
            )
            .unwrap();
        }
        reg.register(lds).unwrap();
    }
    reg
}

/// Engine with m1: DBLP×ACM, m2: ACM×GS (both trigram, incremental) and
/// the derived c = m1 ∘ m2.
fn primed_engine() -> Engine {
    let mut e = Engine::new(registry(), Parallelism::new(2));
    for (name, d, r) in [
        ("m1", "Publication@DBLP", "Publication@ACM"),
        ("m2", "Publication@ACM", "Publication@GS"),
    ] {
        let resp = e.execute(&protocol::match_request(
            name, d, r, "title", "title", "trigram", 0.3,
        ));
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    }
    let resp = e.execute(&protocol::compose_request("c", "m1", "m2", "min", "max"));
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    e
}

fn gs_add(i: usize) -> Json {
    protocol::delta_request(
        "Publication@GS",
        &[DeltaOp::Add {
            id: format!("snap_{i}"),
            fields: vec![(
                "title".into(),
                AttrValue::Text(format!("A study of mapping composition number {i}")),
            )],
        }],
    )
}

/// Readers snapshotting concurrently with a delta writer never observe
/// a half-applied delta: in every snapshot the derived mapping's
/// recorded input versions equal the inputs' versions *in that same
/// snapshot* (the write lock covers patch + refresh as one unit), and
/// version stamps only ever advance.
#[test]
fn snapshot_mid_delta_sees_pre_or_post_delta_versions_never_a_mix() {
    let engine = Arc::new(RwLock::new(primed_engine()));
    let m2_version_at_start = engine
        .read()
        .expect("lock")
        .snapshot()
        .iter()
        .find(|e| e.name == "m2")
        .unwrap()
        .version;
    let done = Arc::new(AtomicBool::new(false));

    let mut readers = Vec::new();
    for _ in 0..4 {
        let engine = Arc::clone(&engine);
        let done = Arc::clone(&done);
        readers.push(std::thread::spawn(move || {
            let mut last_seen: Vec<(String, u64)> = Vec::new();
            let mut snapshots = 0usize;
            while !done.load(Ordering::Relaxed) {
                let snap = engine.read().expect("lock").snapshot();
                snapshots += 1;
                let version_of = |name: &str| {
                    snap.iter()
                        .find(|e| e.name == name)
                        .map(|e| e.version)
                        .expect("entry present")
                };
                for e in &snap {
                    // Dep-consistency: a derived entry's recorded input
                    // versions match this snapshot exactly — a snapshot
                    // taken mid-delta would violate this for `c` after
                    // m2 was patched but before c was refreshed.
                    for (dep, v) in &e.dep_versions {
                        assert_eq!(
                            *v,
                            version_of(dep),
                            "snapshot saw `{}` recomputed from `{dep}` v{v}, but the \
                             snapshot has `{dep}` at v{} — half-applied delta visible",
                            e.name,
                            version_of(dep),
                        );
                    }
                    // Monotonicity: versions never go backwards.
                    if let Some((_, prev)) = last_seen.iter().find(|(n, _)| *n == e.name) {
                        assert!(*prev <= e.version, "version of {} went backwards", e.name);
                    }
                }
                last_seen = snap.iter().map(|e| (e.name.clone(), e.version)).collect();
            }
            snapshots
        }));
    }

    for i in 0..25 {
        let resp = engine.write().expect("lock").execute(&gs_add(i));
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    }
    done.store(true, Ordering::Relaxed);
    let total: usize = readers.into_iter().map(|r| r.join().expect("reader")).sum();
    assert!(total > 0, "readers never snapshotted");

    // After the writer is done every delta must have landed in both m2
    // and (via refresh) the derived c.
    let engine = engine.read().expect("lock");
    let snap = engine.snapshot();
    let m2 = snap.iter().find(|e| e.name == "m2").unwrap();
    let c = snap.iter().find(|e| e.name == "c").unwrap();
    assert!(
        m2.version > m2_version_at_start,
        "25 patches must advance m2"
    );
    assert_eq!(
        c.dep_versions.iter().find(|(n, _)| n == "m2").unwrap().1,
        m2.version
    );
}

/// A snapshot captured *before* deltas keeps its contents: the `Arc`'d
/// mappings and version stamps are immutable, so a long-running reader
/// works against frozen pre-delta state while the engine moves on.
#[test]
fn held_snapshot_keeps_pre_delta_rows_and_versions() {
    let mut engine = primed_engine();
    let before = engine.snapshot();
    let saved: Vec<(String, u64, Vec<moma_table::Correspondence>)> = before
        .iter()
        .map(|e| (e.name.clone(), e.version, e.mapping.table.rows().to_vec()))
        .collect();

    for i in 0..8 {
        let resp = engine.execute(&gs_add(1000 + i));
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    }

    // The held snapshot is bit-identical to what was captured.
    for (e, (name, version, rows)) in before.iter().zip(&saved) {
        assert_eq!(&e.name, name);
        assert_eq!(
            e.version, *version,
            "held snapshot version of {name} changed"
        );
        assert_eq!(
            e.mapping.table.rows(),
            &rows[..],
            "held snapshot rows of {name} changed"
        );
    }
    // And the live state did move on (the deltas matched new GS rows).
    let after = engine.snapshot();
    let live_m2 = after.iter().find(|e| e.name == "m2").unwrap();
    let held_m2 = before.iter().find(|e| e.name == "m2").unwrap();
    assert!(live_m2.version > held_m2.version);
    assert!(
        live_m2.mapping.table.rows() != held_m2.mapping.table.rows(),
        "deltas should have changed m2's rows"
    );
}

/// The repository's own snapshot() is atomic without any outer lock:
/// concurrent direct patch/refresh cycles never yield a snapshot whose
/// derived entries claim input versions newer than the snapshot shows.
#[test]
fn repository_snapshot_is_atomic_under_direct_concurrent_patching() {
    use moma_core::ops::compose::{PathAgg, PathCombine};
    use moma_core::{MappingRepository, Recipe};
    use moma_table::MappingTable;

    let repo = Arc::new(MappingRepository::new());
    let par = Parallelism::new(2);
    let chain = |d: u32, r: u32, s: u32| {
        moma_core::Mapping::same(
            "m",
            moma_model::LdsId(d),
            moma_model::LdsId(r),
            MappingTable::from_triples((0..6).map(|i| (i, (i + s) % 6, 0.9)).collect::<Vec<_>>()),
        )
    };
    repo.store_as("left", chain(0, 1, 0));
    repo.store_as("right", chain(1, 2, 1));
    repo.store_derived(
        "derived",
        Recipe::Compose {
            left: "left".into(),
            right: "right".into(),
            f: PathCombine::Min,
            g: PathAgg::Max,
        },
        &par,
    )
    .unwrap();

    let done = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for _ in 0..3 {
        let repo = Arc::clone(&repo);
        let done = Arc::clone(&done);
        readers.push(std::thread::spawn(move || {
            while !done.load(Ordering::Relaxed) {
                let snap = repo.snapshot();
                let version_of = |name: &str| {
                    snap.iter()
                        .find(|e| e.name == name)
                        .map(|e| e.version)
                        .unwrap()
                };
                for e in &snap {
                    for (dep, v) in &e.dep_versions {
                        // The recompute ran strictly before (or within)
                        // this snapshot, so recorded input versions can
                        // trail but never lead the snapshot.
                        assert!(
                            *v <= version_of(dep),
                            "derived `{}` claims {dep} v{v} > snapshot's v{}",
                            e.name,
                            version_of(dep)
                        );
                    }
                }
            }
        }));
    }
    for s in 0..40u32 {
        repo.patch("left", chain(0, 1, s % 6));
        repo.refresh_stale(&par).unwrap();
    }
    done.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().expect("reader");
    }
    assert!(!repo.is_stale("derived"));
}
