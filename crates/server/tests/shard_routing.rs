//! Shard-routing edge cases over real TCP: unroutable deltas are
//! refused with the same error grammar the engine uses, scatter/gather
//! endpoints cope with a shard that owns nothing, a cross-shard compose
//! is bit-identical to the same compose on one shard, and a torn WAL on
//! one shard is recovered independently of its clean neighbours.

use std::fs;
use std::io::Write as _;
use std::path::Path;
use std::time::Duration;

use moma_core::exec::Parallelism;
use moma_datagen::{Scenario, WorldConfig};
use moma_model::{AttrValue, DeltaOp, SourceRegistry};
use moma_server::{protocol, spawn_sharded, Client, DurabilityPolicy, Engine, Json, Limits};

fn scenario_registry() -> SourceRegistry {
    let scenario = Scenario::generate({
        let mut cfg = WorldConfig::small();
        cfg.seed = 99;
        cfg
    });
    scenario.registry
}

/// N engines booted from identical clones of the scenario registry —
/// the invariant the CLI's `--shards` flag establishes. With a WAL
/// base, each shard gets its own `shard.<i>` log directory.
fn shard_engines(n: usize, wal_base: Option<&Path>) -> Vec<Engine> {
    (0..n)
        .map(|i| {
            let mut e = Engine::new(scenario_registry(), Parallelism::sequential());
            if let Some(base) = wal_base {
                e.wal_create(base.join(format!("shard.{i}")), DurabilityPolicy::default())
                    .expect("wal create");
            }
            e
        })
        .collect()
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("moma_shard_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Recursively read a directory into sorted (relative-path, bytes) pairs.
fn dir_contents(root: &Path) -> Vec<(String, Vec<u8>)> {
    fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, Vec<u8>)>) {
        for entry in fs::read_dir(dir).expect("read_dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .unwrap()
                    .to_string_lossy()
                    .into_owned();
                out.push((rel, fs::read(&path).expect("read file")));
            }
        }
    }
    let mut out = Vec::new();
    walk(root, root, &mut out);
    out.sort();
    out
}

fn assert_dumps_identical(a_dir: &Path, b_dir: &Path) {
    let a = dir_contents(a_dir);
    let b = dir_contents(b_dir);
    assert!(!a.is_empty());
    assert_eq!(
        a.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        b.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        "dump file sets differ"
    );
    for ((name, bytes_a), (_, bytes_b)) in a.iter().zip(&b) {
        assert_eq!(bytes_a, bytes_b, "dump file `{name}` differs");
    }
}

fn dump_to(eng: &Engine, dir: &Path) {
    let resp = eng.execute_read(&protocol::dump_request(dir.to_str().unwrap()));
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
}

fn delta_req(source: &str, attr: &str, id: &str) -> Json {
    protocol::delta_request(
        source,
        &[DeltaOp::Add {
            id: id.to_owned(),
            fields: vec![(
                attr.to_owned(),
                AttrValue::Text(format!("shard routing probe {id}")),
            )],
        }],
    )
}

fn spawn_cluster(engines: Vec<Engine>) -> (moma_server::ServerHandle, Client) {
    let handle = spawn_sharded(engines, "127.0.0.1:0", Limits::default()).expect("spawn");
    let addr = handle.addr.to_string();
    let c = Client::connect_retry(&addr, Duration::from_secs(5)).expect("connect");
    (handle, c)
}

fn error_of(resp: &Json) -> String {
    assert_eq!(
        resp.get("ok").and_then(Json::as_bool),
        Some(false),
        "expected an error frame, got: {resp}"
    );
    resp.str_field("error").unwrap_or_default().to_owned()
}

/// A delta to a source no shard hosts — or to a source that does not
/// exist at all — is refused with a routable error and the connection
/// keeps serving.
#[test]
fn unroutable_deltas_are_refused_with_routable_errors() {
    let (handle, mut c) = spawn_cluster(shard_engines(2, None));

    // Source that is not in any registry: refused naming the source.
    let r = c
        .call(&delta_req("Nope@Nowhere", "title", "x"))
        .expect("transport ok");
    assert!(
        error_of(&r).contains("unknown source `Nope@Nowhere`"),
        "unexpected error: {r}"
    );

    // Source every shard knows but no mapping reads: refused with the
    // ownership rule spelled out, not applied blindly to shard 0.
    let r = c
        .call(&delta_req("Venue@DBLP", "name", "x"))
        .expect("transport ok");
    let msg = error_of(&r);
    assert!(
        msg.contains("no shard hosts mappings over source `Venue@DBLP`"),
        "unexpected error: {msg}"
    );

    // Shard hints outside the cluster are refused up front.
    let hinted = protocol::with_shard(
        protocol::match_request(
            "m_bad",
            "Publication@DBLP",
            "Publication@ACM",
            "title",
            "title",
            "trigram",
            0.7,
        ),
        9,
    );
    let r = c.call(&hinted).expect("transport ok");
    assert!(error_of(&r).contains("out of range"), "{r}");

    // Claim Publication@DBLP on shard 0, then try to split it to 1.
    let own = protocol::with_shard(
        protocol::match_request(
            "m_own",
            "Publication@DBLP",
            "Publication@ACM",
            "title",
            "title",
            "trigram",
            0.7,
        ),
        0,
    );
    let r = c.call_ok(&own).expect("match");
    assert_eq!(r.get("shard").and_then(Json::as_u64), Some(0));
    let split = protocol::with_shard(
        protocol::match_request(
            "m_split",
            "Publication@DBLP",
            "Publication@GS",
            "title",
            "title",
            "trigram",
            0.7,
        ),
        1,
    );
    let r = c.call(&split).expect("transport ok");
    assert!(error_of(&r).contains("owned by shard 0"), "{r}");

    // A batch with one unroutable item refuses the whole batch (group
    // commit semantics: all items or none), naming the offending item —
    // even when the other item (Publication@DBLP, hosted by shard 0
    // since m_own) would route fine on its own.
    let items = vec![
        protocol::delta_item(
            "Publication@DBLP",
            &[DeltaOp::Add {
                id: "b0".into(),
                fields: vec![("title".into(), AttrValue::Text("probe".into()))],
            }],
        ),
        protocol::delta_item(
            "Venue@ACM",
            &[DeltaOp::Add {
                id: "b1".into(),
                fields: vec![("name".into(), AttrValue::Text("probe".into()))],
            }],
        ),
    ];
    let r = c
        .call(&protocol::batch_delta_request(items))
        .expect("transport ok");
    let msg = error_of(&r);
    assert!(
        msg.contains("batch_delta item 1") && msg.contains("Venue@ACM"),
        "unexpected error: {msg}"
    );

    // After the refusals the connection still serves: the now-hosted
    // source accepts a delta, routed to exactly its owning shard.
    let r = c
        .call_ok(&delta_req("Publication@DBLP", "title", "ok_0"))
        .expect("delta after refusals");
    let shards = r.get("shards").and_then(Json::as_arr).expect("shards");
    assert_eq!(shards.len(), 1);
    assert_eq!(shards[0].as_u64(), Some(0));

    handle.stop();
}

/// Scatter/gather endpoints with a shard that owns nothing: queries
/// route around it, stats still report it, and a dump includes its
/// (empty) state.
#[test]
fn scatter_gather_with_an_empty_shard() {
    let (handle, mut c) = spawn_cluster(shard_engines(3, None));

    c.call_ok(&protocol::with_shard(
        protocol::match_request(
            "m_pub",
            "Publication@DBLP",
            "Publication@ACM",
            "title",
            "title",
            "trigram",
            0.7,
        ),
        0,
    ))
    .expect("match on shard 0");
    c.call_ok(&protocol::with_shard(
        protocol::match_request(
            "m_auth",
            "Author@DBLP",
            "Author@ACM",
            "name",
            "name",
            "trigram",
            0.7,
        ),
        1,
    ))
    .expect("match on shard 1");
    // Shard 2 never receives a mapping.

    // Singleton queries route by mapping and say where they ran.
    let q = c.query("m_pub", 5, None).expect("query m_pub");
    assert_eq!(q.get("shard").and_then(Json::as_u64), Some(0));
    let q = c.query("m_auth", 5, None).expect("query m_auth");
    assert_eq!(q.get("shard").and_then(Json::as_u64), Some(1));

    // A scatter batch mixing both shards and an unknown name: per-item
    // routing, per-item errors, request order preserved.
    let results = c
        .batch_query(vec![
            protocol::query_item("m_auth", 3, None),
            protocol::query_item("ghost", 1, None),
            protocol::query_item("m_pub", 3, None),
        ])
        .expect("batch_query");
    assert_eq!(results.len(), 3);
    assert_eq!(results[0].str_field("name"), Some("m_auth"));
    assert_eq!(results[0].get("shard").and_then(Json::as_u64), Some(1));
    let msg = error_of(&results[1]);
    assert!(
        msg.contains("unknown mapping `ghost`") && msg.contains("m_auth") && msg.contains("m_pub"),
        "unexpected error: {msg}"
    );
    assert_eq!(results[2].get("shard").and_then(Json::as_u64), Some(0));

    // Stats gather includes the empty shard: aggregate counters sum the
    // active shards, the per-shard breakdown has a row for shard 2.
    let stats = c.stats().expect("stats");
    assert_eq!(stats.get("shard_count").and_then(Json::as_u64), Some(3));
    assert_eq!(
        stats
            .get("commands")
            .and_then(|c| c.get("match"))
            .and_then(Json::as_u64),
        Some(2)
    );
    let shards = stats.get("shards").and_then(Json::as_arr).expect("shards");
    assert_eq!(shards.len(), 3);
    assert_eq!(
        shards[2]
            .get("commands")
            .and_then(|c| c.get("match"))
            .and_then(Json::as_u64),
        Some(0),
        "empty shard is reported, not skipped: {stats}"
    );

    // Dump scatters to per-shard subdirectories — including the empty
    // shard — under one top-level manifest.
    let dump_dir = tmp_dir("empty_dump");
    c.call_ok(&protocol::dump_request(dump_dir.to_str().unwrap()))
        .expect("dump");
    for i in 0..3 {
        assert!(
            dump_dir.join(format!("shard.{i}/manifest.tsv")).is_file(),
            "missing shard {i} dump"
        );
    }
    let manifest = fs::read_to_string(dump_dir.join("manifest.tsv")).expect("manifest");
    assert!(manifest.starts_with("# moma shard dump manifest"));
    assert!(manifest.contains("shards\t3"), "{manifest}");

    handle.stop();
    let _ = fs::remove_dir_all(&dump_dir);
}

/// A compose whose inputs live on different shards produces rows
/// bit-identical to the same compose on a single-shard server.
#[test]
fn cross_shard_compose_matches_single_shard_bit_identically() {
    let m_left = protocol::match_request(
        "m_dg",
        "Publication@DBLP",
        "Publication@GS",
        "title",
        "title",
        "trigram",
        0.7,
    );
    let m_right = protocol::match_request(
        "m_ga",
        "Publication@GS",
        "Publication@ACM",
        "title",
        "title",
        "trigram",
        0.7,
    );
    let compose = protocol::compose_request("c_x", "m_dg", "m_ga", "min", "max");

    // Sharded run: left on shard 0, right on shard 1. The hint on
    // m_ga is legal because Publication@GS is only *hosted* by shard 0
    // (as m_dg's range), never claimed as an owned domain.
    let (handle, mut c) = spawn_cluster(shard_engines(2, None));
    c.call_ok(&protocol::with_shard(m_left.clone(), 0))
        .expect("left match");
    c.call_ok(&protocol::with_shard(m_right.clone(), 1))
        .expect("right match");
    let r = c.call_ok(&compose).expect("cross-shard compose");
    assert_eq!(r.get("cross_shard").and_then(Json::as_bool), Some(true));
    assert_eq!(r.get("left_shard").and_then(Json::as_u64), Some(0));
    assert_eq!(r.get("right_shard").and_then(Json::as_u64), Some(1));
    assert_eq!(
        r.get("shard").and_then(Json::as_u64),
        Some(0),
        "result installs on the left input's shard: {r}"
    );

    let sharded_q = c.query("c_x", 0, None).expect("query c_x");
    assert_eq!(sharded_q.get("shard").and_then(Json::as_u64), Some(0));

    // The install is counted as a compose on its shard.
    let stats = c.stats().expect("stats");
    assert_eq!(
        stats
            .get("commands")
            .and_then(|c| c.get("compose"))
            .and_then(Json::as_u64),
        Some(1)
    );
    handle.stop();

    // Single-shard reference: identical commands straight at one engine.
    let mut single = Engine::new(scenario_registry(), Parallelism::sequential());
    for req in [&m_left, &m_right, &compose] {
        let resp = single.execute(req);
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    }
    let single_q = single.execute_read(&protocol::query_request("c_x", 0, None));
    assert_eq!(
        single_q.get("ok").and_then(Json::as_bool),
        Some(true),
        "{single_q}"
    );

    assert_eq!(sharded_q.num_field("total"), single_q.num_field("total"));
    let sharded_rows = sharded_q.get("rows").expect("sharded rows");
    let single_rows = single_q.get("rows").expect("single rows");
    assert!(
        sharded_q.num_field("total").unwrap_or(0.0) >= 1.0,
        "compose must produce rows for the comparison to mean anything"
    );
    assert_eq!(
        sharded_rows.to_string(),
        single_rows.to_string(),
        "cross-shard compose rows differ from the single-shard run"
    );
}

/// Tearing one shard's WAL mid-record loses exactly that shard's tail
/// command; the other shard replays in full, and the recovered cluster
/// keeps serving with its routing index rebuilt from engine state.
#[test]
fn torn_wal_on_one_shard_recovers_independently() {
    let work = tmp_dir("torn");
    let wal_base = work.join("wal");

    let m_pub = protocol::with_shard(
        protocol::match_request(
            "m_pub",
            "Publication@DBLP",
            "Publication@ACM",
            "title",
            "title",
            "trigram",
            0.7,
        ),
        0,
    );
    let m_auth = protocol::with_shard(
        protocol::match_request(
            "m_auth",
            "Author@DBLP",
            "Author@ACM",
            "name",
            "name",
            "trigram",
            0.7,
        ),
        1,
    );
    let pub_deltas: Vec<Json> = (0..3)
        .map(|i| delta_req("Publication@DBLP", "title", &format!("pd_{i}")))
        .collect();
    let auth_deltas: Vec<Json> = (0..3)
        .map(|i| delta_req("Author@DBLP", "name", &format!("ad_{i}")))
        .collect();

    // Run the cluster: shard 0 logs m_pub + 3 deltas, shard 1 logs
    // m_auth + 3 deltas. Every delta routes to exactly one shard.
    {
        let (handle, mut c) = spawn_cluster(shard_engines(2, Some(&wal_base)));
        c.call_ok(&m_pub).expect("m_pub");
        c.call_ok(&m_auth).expect("m_auth");
        for req in pub_deltas.iter().chain(&auth_deltas) {
            let r = c.call_ok(req).expect("delta");
            let shards = r.get("shards").and_then(Json::as_arr).expect("shards");
            assert_eq!(shards.len(), 1, "single-host source must not fan out: {r}");
        }
        handle.stop();
        // Engines (and their WAL handles) dropped here: the "crash".
    }

    // Tear the final record of shard 1's log; leave shard 0 untouched.
    let seg = wal_base.join("shard.1/wal.000001.log");
    let full = fs::read(&seg).expect("wal bytes");
    let torn_at = full.len() - 7; // mid-payload of the final record
    let mut f = fs::File::create(&seg).expect("rewrite wal");
    f.write_all(&full[..torn_at]).expect("torn write");
    drop(f);

    // Per-shard recovery: shard 0 replays everything, shard 1 drops
    // exactly the torn tail — one shard's damage never bleeds into
    // another's replay.
    let mut e0 = Engine::new(scenario_registry(), Parallelism::sequential());
    let s0 = e0
        .recover(wal_base.join("shard.0"), DurabilityPolicy::default())
        .expect("recover shard 0");
    assert_eq!(s0.replayed, 4);
    assert_eq!(s0.failed, 0);
    assert_eq!(s0.dropped_bytes, 0);

    let mut e1 = Engine::new(scenario_registry(), Parallelism::sequential());
    let s1 = e1
        .recover(wal_base.join("shard.1"), DurabilityPolicy::default())
        .expect("recover shard 1");
    assert_eq!(s1.replayed, 3, "torn tail record dropped");
    assert_eq!(s1.failed, 0);
    assert!(s1.dropped_bytes > 0);
    assert!(s1.stop_reason.is_some());

    // Bit-identity per shard against clean engines executing exactly
    // the surviving command prefixes.
    let mut r0 = Engine::new(scenario_registry(), Parallelism::sequential());
    r0.execute(&m_pub);
    for req in &pub_deltas {
        assert_eq!(
            r0.execute(req).get("ok").and_then(Json::as_bool),
            Some(true)
        );
    }
    let mut r1 = Engine::new(scenario_registry(), Parallelism::sequential());
    r1.execute(&m_auth);
    for req in auth_deltas.iter().take(2) {
        assert_eq!(
            r1.execute(req).get("ok").and_then(Json::as_bool),
            Some(true)
        );
    }
    let (d0, d0_ref) = (work.join("d0"), work.join("d0_ref"));
    dump_to(&e0, &d0);
    dump_to(&r0, &d0_ref);
    assert_dumps_identical(&d0, &d0_ref);
    let (d1, d1_ref) = (work.join("d1"), work.join("d1_ref"));
    dump_to(&e1, &d1);
    dump_to(&r1, &d1_ref);
    assert_dumps_identical(&d1, &d1_ref);

    // Restart the cluster on the recovered engines: the routing index
    // is rebuilt from engine state, so reads and writes route as before.
    let (handle, mut c) = spawn_cluster(vec![e0, e1]);
    let q = c.query("m_pub", 1, None).expect("query after recovery");
    assert_eq!(q.get("shard").and_then(Json::as_u64), Some(0));
    let r = c
        .call_ok(&delta_req("Author@DBLP", "name", "ad_after"))
        .expect("delta after recovery");
    let shards = r.get("shards").and_then(Json::as_arr).expect("shards");
    assert_eq!(shards[0].as_u64(), Some(1));

    let stats = c.stats().expect("stats");
    // 3 recovered on shard 0 + 2 surviving on shard 1 + 1 new.
    assert_eq!(
        stats
            .get("commands")
            .and_then(|c| c.get("delta"))
            .and_then(Json::as_u64),
        Some(6)
    );
    assert_eq!(stats.get("shard_count").and_then(Json::as_u64), Some(2));
    handle.stop();

    let _ = fs::remove_dir_all(&work);
}
