//! Property tests for the WAL frame codec: whatever corruption a crash
//! (or a flaky disk) leaves behind, replay recovers exactly the longest
//! valid record prefix and nothing else.

use moma_server::wal::{crc32, decode_records, decode_records_from, encode_record, RECORD_HEADER};
use proptest::prelude::*;

/// Strategy: a log of `n` records with arbitrary payloads.
fn arb_log() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(0u8..=255, 0..64), 1..12)
}

fn encode_log(payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut log = Vec::new();
    for (i, p) in payloads.iter().enumerate() {
        log.extend_from_slice(&encode_record(i as u64 + 1, p));
    }
    log
}

proptest! {
    /// A clean log decodes fully, in order, bit-identically.
    #[test]
    fn clean_log_roundtrips(payloads in arb_log()) {
        let out = decode_records(&encode_log(&payloads));
        prop_assert_eq!(out.records.len(), payloads.len());
        prop_assert_eq!(out.dropped_bytes, 0);
        prop_assert!(out.stop_reason.is_none());
        for (i, (rec, p)) in out.records.iter().zip(&payloads).enumerate() {
            prop_assert_eq!(rec.seq, i as u64 + 1);
            prop_assert_eq!(&rec.payload, p);
        }
    }

    /// Truncating anywhere inside the last record (a torn tail write)
    /// loses exactly that record: every earlier record survives.
    #[test]
    fn truncated_tail_drops_only_the_torn_record(
        payloads in arb_log(),
        cut_back in 1usize..32,
    ) {
        let log = encode_log(&payloads);
        let last_len = RECORD_HEADER + payloads.last().unwrap().len();
        let cut = log.len() - cut_back.min(last_len - 1).max(1);
        let out = decode_records(&log[..cut]);
        prop_assert_eq!(out.records.len(), payloads.len() - 1);
        prop_assert!(out.stop_reason.is_some());
        prop_assert_eq!(out.valid_len + out.dropped_bytes, cut as u64);
        for (i, rec) in out.records.iter().enumerate() {
            prop_assert_eq!(&rec.payload, &payloads[i]);
        }
    }

    /// Flipping any single bit of a record's CRC-covered region stops
    /// replay at (or before) that record — corrupted data is never
    /// returned as valid.
    #[test]
    fn bit_flip_never_survives(
        payloads in arb_log(),
        victim_byte in 0usize..512,
        bit in 0u8..8,
    ) {
        let log = encode_log(&payloads);
        let mut corrupt = log.clone();
        let pos = victim_byte % corrupt.len();
        corrupt[pos] ^= 1 << bit;
        let out = decode_records(&corrupt);

        // Find which record `pos` falls in.
        let mut offset = 0usize;
        let mut victim_rec = 0usize;
        for (i, p) in payloads.iter().enumerate() {
            let next = offset + RECORD_HEADER + p.len();
            if pos < next {
                victim_rec = i;
                break;
            }
            offset = next;
        }
        // Decoding must stop exactly at the corrupted record (a 1-bit
        // flip in the length field mis-frames the CRC-covered span, and
        // any flip in crc/seq/payload fails the CRC check): the prefix
        // before it is intact, the corrupted record never appears.
        prop_assert_eq!(out.records.len(), victim_rec);
        prop_assert!(out.stop_reason.is_some());
        for (i, rec) in out.records.iter().enumerate() {
            prop_assert_eq!(&rec.payload, &payloads[i], "record {} before the flip", i);
        }
    }

    /// A duplicated sequence number (mis-spliced log) stops replay at
    /// the duplicate: records after it are untrustworthy.
    #[test]
    fn duplicate_seq_stops_replay(payloads in arb_log(), dup_at in 0usize..12) {
        let dup_at = dup_at % payloads.len();
        let mut log = Vec::new();
        for (i, p) in payloads.iter().enumerate() {
            // Records after `dup_at` repeat the previous seq.
            let seq = if i > dup_at { i as u64 } else { i as u64 + 1 };
            log.extend_from_slice(&encode_record(seq, p));
        }
        let out = decode_records(&log);
        if dup_at + 1 < payloads.len() {
            prop_assert_eq!(out.records.len(), dup_at + 1);
            let reason = out.stop_reason.unwrap();
            prop_assert!(reason.contains("sequence break"), "{}", reason);
        } else {
            prop_assert_eq!(out.records.len(), payloads.len());
        }
    }

    /// A segment that starts mid-log (records beginning at an arbitrary
    /// sequence number, as after checkpoint pruning) decodes fully with
    /// the claimed-first-seq bootstrap — and refuses to pass itself off
    /// as the start of the log when seq 1 is expected.
    #[test]
    fn suffix_segment_decodes_with_claimed_first_seq(
        payloads in arb_log(),
        base in 0u64..1_000_000,
    ) {
        let mut log = Vec::new();
        for (i, p) in payloads.iter().enumerate() {
            log.extend_from_slice(&encode_record(base + 1 + i as u64, p));
        }
        let out = decode_records_from(&log, None);
        prop_assert_eq!(out.records.len(), payloads.len());
        prop_assert!(out.stop_reason.is_none());
        prop_assert_eq!(out.records[0].seq, base + 1);
        for (i, rec) in out.records.iter().enumerate() {
            prop_assert_eq!(rec.seq, base + 1 + i as u64);
            prop_assert_eq!(&rec.payload, &payloads[i]);
        }
        let strict = decode_records_from(&log, Some(1));
        if base == 0 {
            prop_assert_eq!(strict.records.len(), payloads.len());
        } else {
            prop_assert_eq!(strict.records.len(), 0);
            prop_assert!(strict.stop_reason.is_some());
        }
    }

    /// CRC-32 detects any 1-byte change (sanity on the table-driven
    /// implementation itself).
    #[test]
    fn crc_detects_byte_changes(data in prop::collection::vec(0u8..=255, 1..128), at in 0usize..128, delta in 1u8..=255) {
        let mut changed = data.clone();
        let at = at % changed.len();
        changed[at] = changed[at].wrapping_add(delta);
        prop_assert_ne!(crc32(&data), crc32(&changed));
    }
}
