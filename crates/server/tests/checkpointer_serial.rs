//! The background auto-checkpointer is one thread, and that is an
//! invariant worth pinning: a checkpoint must never run concurrently
//! with another checkpoint or with shutdown. This test lives in its
//! own binary because it sets `MOMA_CHECKPOINT_FAULT_DELAY_MS`, which
//! is process-global — parallel tests in a shared binary would
//! inherit the slowdown.

use std::time::{Duration, Instant};

use moma_core::exec::Parallelism;
use moma_datagen::{Scenario, WorldConfig};
use moma_model::{AttrValue, DeltaOp, SourceRegistry};
use moma_server::{protocol, spawn, Client, DurabilityPolicy, Engine, Json};

fn scenario_registry() -> SourceRegistry {
    let scenario = Scenario::generate({
        let mut cfg = WorldConfig::small();
        cfg.seed = 99;
        cfg
    });
    scenario.registry
}

fn delta_req(i: usize) -> Json {
    protocol::delta_request(
        "Publication@DBLP",
        &[DeltaOp::Add {
            id: format!("ser_{i}"),
            fields: vec![(
                "title".into(),
                AttrValue::Text(format!("Serialized checkpointing part {i}")),
            )],
        }],
    )
}

fn stat_u64(c: &mut Client, path: &[&str]) -> u64 {
    let mut v = c.call(&protocol::bare_request("stats")).expect("stats");
    for key in path {
        v = v.get(key).cloned().unwrap_or(Json::Null);
    }
    v.as_u64().unwrap_or(0)
}

#[test]
fn background_checkpoints_are_serial_and_joined_on_shutdown() {
    const DELAY_MS: u64 = 300;
    // Safety: set before any server thread is spawned, removed after
    // the servers are joined; this test is alone in its binary.
    std::env::set_var("MOMA_CHECKPOINT_FAULT_DELAY_MS", DELAY_MS.to_string());

    let dir = std::env::temp_dir().join(format!("moma_ckpt_serial_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmp dir");

    // ---- never concurrent with itself -------------------------------
    // Every delta makes a checkpoint due; each publication sleeps
    // DELAY_MS inside the staging window. If two checkpoints could
    // overlap, two publications could complete closer together than
    // DELAY_MS — so the gap between observed `auto_checkpoints`
    // increments is the serialization witness.
    let mut engine = Engine::new(scenario_registry(), Parallelism::sequential());
    let policy = DurabilityPolicy {
        checkpoint_every_records: 1,
        ..DurabilityPolicy::default()
    };
    engine.wal_create(dir.join("a"), policy).expect("wal");
    let handle = spawn(engine, "127.0.0.1:0").expect("spawn");
    let mut c = Client::connect(&handle.addr.to_string()).expect("connect");
    let resp = c.call(&delta_req(0)).expect("delta");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    // By 150ms the checkpointer (100ms poll) is inside the first
    // publication's fault window; these two deltas land mid-window and
    // make a second checkpoint due the moment the first finishes — the
    // exact setup where a concurrency bug would overlap publications.
    std::thread::sleep(Duration::from_millis(150));
    for i in 1..3 {
        let resp = c.call(&delta_req(i)).expect("delta");
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    }

    let deadline = Instant::now() + Duration::from_secs(20);
    let mut seen = 0u64;
    let mut last_increment: Option<Instant> = None;
    let mut min_gap = Duration::MAX;
    while seen < 2 {
        assert!(Instant::now() < deadline, "checkpoints stalled at {seen}");
        let now_count = stat_u64(&mut c, &["auto_checkpoints"]);
        assert!(
            now_count <= seen + 1,
            "auto_checkpoints jumped {seen} -> {now_count} within one 20ms poll: \
             two checkpoints published concurrently"
        );
        if now_count > seen {
            let now = Instant::now();
            if let Some(prev) = last_increment {
                min_gap = min_gap.min(now - prev);
            }
            last_increment = Some(now);
            seen = now_count;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        min_gap >= Duration::from_millis(DELAY_MS / 2),
        "two auto checkpoints completed {min_gap:?} apart; each publication \
         holds a {DELAY_MS}ms fault window, so they overlapped"
    );
    drop(c);
    handle.stop();

    // ---- never concurrent with shutdown -----------------------------
    // Make a checkpoint due, give the background thread a moment to
    // enter the fault window, then stop. `stop` joins the checkpointer,
    // so once it returns the publication must have finished: the
    // staging dir is gone and the checkpoint it was writing is live.
    let mut engine = Engine::new(scenario_registry(), Parallelism::sequential());
    let policy = DurabilityPolicy {
        checkpoint_every_records: 1,
        ..DurabilityPolicy::default()
    };
    let wal_b = dir.join("b");
    engine.wal_create(&wal_b, policy).expect("wal");
    let handle = spawn(engine, "127.0.0.1:0").expect("spawn");
    let mut c = Client::connect(&handle.addr.to_string()).expect("connect");
    let resp = c.call(&delta_req(100)).expect("delta");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    // The checkpointer polls every 100ms; by 200ms it is inside the
    // 300ms fault window (and if it somehow isn't, joining still must
    // leave no torn staging dir behind).
    std::thread::sleep(Duration::from_millis(200));
    handle.stop();
    assert!(
        !wal_b.join("checkpoint.tmp").exists(),
        "shutdown returned while a checkpoint publication was still staged"
    );
    let published = std::fs::read_dir(&wal_b)
        .expect("wal dir")
        .filter_map(|e| e.ok())
        .any(|e| {
            let name = e.file_name();
            let name = name.to_string_lossy().into_owned();
            name.starts_with("checkpoint.") && name != "checkpoint.tmp"
        });
    assert!(
        published,
        "the in-flight checkpoint was abandoned instead of finished before shutdown"
    );

    std::env::remove_var("MOMA_CHECKPOINT_FAULT_DELAY_MS");
    let _ = std::fs::remove_dir_all(&dir);
}
