//! End-to-end test over real TCP: every endpoint answers over the frame
//! protocol, a crash that tears the WAL mid-record is recovered by
//! `--replay` into a state byte-identical to a clean run of the same
//! command prefix, and a checkpoint bounds how much of the log a
//! restart replays.

use std::fs;
use std::io::Write as _;
use std::path::Path;
use std::time::Duration;

use moma_core::exec::Parallelism;
use moma_datagen::{Scenario, WorldConfig};
use moma_model::{AttrValue, DeltaOp, SourceRegistry};
use moma_server::{
    protocol, spawn, spawn_with_limits, Client, DurabilityPolicy, Engine, Json, Limits, Wal,
};

fn scenario_registry() -> SourceRegistry {
    let scenario = Scenario::generate({
        let mut cfg = WorldConfig::small();
        cfg.seed = 99;
        cfg
    });
    scenario.registry
}

fn engine(wal: Option<&Path>) -> Engine {
    engine_with_policy(wal, DurabilityPolicy::default())
}

fn engine_with_policy(wal: Option<&Path>, policy: DurabilityPolicy) -> Engine {
    let mut e = Engine::new(scenario_registry(), Parallelism::sequential());
    if let Some(dir) = wal {
        e.wal_create(dir, policy).expect("wal create");
    }
    e
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("moma_e2e_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Recursively read a directory into sorted (relative-path, bytes) pairs.
fn dir_contents(root: &Path) -> Vec<(String, Vec<u8>)> {
    fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, Vec<u8>)>) {
        for entry in fs::read_dir(dir).expect("read_dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .unwrap()
                    .to_string_lossy()
                    .into_owned();
                out.push((rel, fs::read(&path).expect("read file")));
            }
        }
    }
    let mut out = Vec::new();
    walk(root, root, &mut out);
    out.sort();
    out
}

/// Assert two persisted dumps are byte-identical.
fn assert_dumps_identical(a_dir: &Path, b_dir: &Path) {
    let a = dir_contents(a_dir);
    let b = dir_contents(b_dir);
    assert!(!a.is_empty());
    assert_eq!(
        a.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        b.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        "dump file sets differ"
    );
    for ((name, bytes_a), (_, bytes_b)) in a.iter().zip(&b) {
        assert_eq!(bytes_a, bytes_b, "dump file `{name}` differs");
    }
}

fn dump_to(eng: &Engine, dir: &Path) {
    let resp = eng.execute_read(&protocol::dump_request(dir.to_str().unwrap()));
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
}

fn delta_req(i: usize) -> Json {
    protocol::delta_request(
        "Publication@GS",
        &[DeltaOp::Add {
            id: format!("e2e_{i}"),
            fields: vec![(
                "title".into(),
                AttrValue::Text(format!("Crash recovery for matching services part {i}")),
            )],
        }],
    )
}

/// The scripted command sequence both the crashed run and the reference
/// run execute. Returns the requests in order.
fn script() -> Vec<Json> {
    let mut reqs = vec![
        protocol::match_request(
            "m_da",
            "Publication@DBLP",
            "Publication@ACM",
            "title",
            "title",
            "trigram",
            0.7,
        ),
        protocol::match_request(
            "m_ag",
            "Publication@ACM",
            "Publication@GS",
            "title",
            "title",
            "trigram",
            0.7,
        ),
        protocol::compose_request("c_dg", "m_da", "m_ag", "min", "max"),
    ];
    for i in 0..4 {
        reqs.push(delta_req(i));
    }
    reqs
}

/// Full endpoint sweep over real TCP against a spawned server.
#[test]
fn tcp_endpoints_end_to_end() {
    let handle = spawn(engine(None), "127.0.0.1:0").expect("spawn");
    let addr = handle.addr.to_string();
    let mut c = Client::connect_retry(&addr, Duration::from_secs(5)).expect("connect");

    let pong = c.call_ok(&protocol::bare_request("ping")).expect("ping");
    assert_eq!(pong.get("ok").and_then(Json::as_bool), Some(true));

    for req in script() {
        c.call_ok(&req).expect("scripted command");
    }

    // query: snapshot-backed read with resolved instance ids.
    let q = c
        .call_ok(&protocol::query_request("c_dg", 5, None))
        .expect("query");
    assert_eq!(q.str_field("name"), Some("c_dg"));
    assert!(q.num_field("total").unwrap() >= 1.0);
    let rows = q.get("rows").and_then(Json::as_arr).expect("rows");
    assert!(rows.len() <= 5);
    for row in rows {
        let row = row.as_arr().expect("row triple");
        assert_eq!(row.len(), 3);
        assert!(row[0].as_str().is_some() && row[1].as_str().is_some());
        assert!(row[2].as_f64().is_some());
    }

    // Unknown mapping must fail without killing the connection.
    let bad = c
        .call(&protocol::query_request("nope", 1, None))
        .expect("transport ok");
    assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));

    // checkpoint: a memory-only server refuses, naming the missing WAL.
    let cp = c
        .call(&protocol::checkpoint_request())
        .expect("transport ok");
    assert_eq!(cp.get("ok").and_then(Json::as_bool), Some(false));
    assert!(
        cp.str_field("error")
            .unwrap_or("")
            .contains("write-ahead log"),
        "checkpoint refusal names the WAL: {cp}"
    );

    // stats: counters + server-layer fields.
    let stats = c.call_ok(&protocol::bare_request("stats")).expect("stats");
    let commands = stats.get("commands").expect("commands");
    assert_eq!(commands.num_field("match"), Some(2.0));
    assert_eq!(commands.num_field("compose"), Some(1.0));
    assert_eq!(commands.num_field("delta"), Some(4.0));
    assert!(stats.num_field("requests").unwrap() >= 1.0);
    assert!(stats.num_field("uptime_ms").is_some());

    // dump: persisted mapping tables + manifest on disk.
    let dump_dir = tmp_dir("dump");
    c.call_ok(&protocol::dump_request(dump_dir.to_str().unwrap()))
        .expect("dump");
    assert!(dump_dir.join("manifest.tsv").is_file());

    // A second concurrent client sees the same state.
    let mut c2 = Client::connect(&addr).expect("second client");
    let q2 = c2
        .call_ok(&protocol::query_request("c_dg", 5, None))
        .expect("query from second client");
    assert_eq!(q2.num_field("total"), q.num_field("total"));

    // shutdown: acknowledged, then the server goes away.
    let bye = c
        .call_ok(&protocol::bare_request("shutdown"))
        .expect("shutdown");
    assert_eq!(bye.get("stopping").and_then(Json::as_bool), Some(true));
    handle.stop();
    assert!(Client::connect(&addr).is_err(), "listener must be closed");
    let _ = fs::remove_dir_all(&dump_dir);
}

/// A client that dies mid-frame (header started, never finished) must
/// not block shutdown: the handler thread's mid-frame retry loop checks
/// the stop flag, and the accept loop's join of that thread returns.
#[test]
fn shutdown_completes_with_stalled_mid_frame_client() {
    let handle = spawn(engine(None), "127.0.0.1:0").expect("spawn");
    let addr = handle.addr;

    let mut stalled = std::net::TcpStream::connect(addr).expect("raw connect");
    stalled.write_all(&[0x00, 0x00]).expect("partial header");
    // Let the handler thread observe the partial header and enter the
    // mid-frame retry loop before stopping.
    std::thread::sleep(Duration::from_millis(600));

    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        handle.stop();
        let _ = tx.send(());
    });
    rx.recv_timeout(Duration::from_secs(10))
        .expect("ServerHandle::stop() must return despite a client stalled mid-frame");
    drop(stalled);
}

/// Crash-replay bit-identity: run the script with a WAL, tear the final
/// record (simulating a kill -9 mid-fsync), replay into a fresh engine,
/// and compare its full persisted dump byte-for-byte with a clean engine
/// that executed exactly the surviving command prefix.
#[test]
fn torn_wal_replay_matches_clean_run_bit_identically() {
    let work = tmp_dir("wal");
    let wal_dir = work.join("wal");

    // Crashed run: all commands logged, then the tail record torn.
    {
        let mut crashed = engine(Some(&wal_dir));
        for req in script() {
            let resp = crashed.execute(&req);
            assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
        }
        // Engine (and its WAL file handle) dropped here: the "crash".
    }
    // Default policy never rotates at this volume: one segment file.
    let seg_path = wal_dir.join("wal.000001.log");
    let full = fs::read(&seg_path).expect("wal bytes");
    let torn_at = full.len() - 7; // mid-payload of the final record
    let mut f = fs::File::create(&seg_path).expect("rewrite wal");
    f.write_all(&full[..torn_at]).expect("torn write");
    drop(f);

    // Replay: recovers every record except the torn one.
    let mut replayed = Engine::new(scenario_registry(), Parallelism::sequential());
    let summary = replayed
        .recover(&wal_dir, DurabilityPolicy::default())
        .expect("replay");
    let total = script().len();
    assert_eq!(summary.replayed, total - 1, "torn tail record dropped");
    assert_eq!(summary.checkpoint_seq, 0, "no checkpoint to restore from");
    assert_eq!(summary.skipped, 0);
    assert!(summary.dropped_bytes > 0);
    assert!(summary.stop_reason.is_some());
    assert_eq!(summary.failed, 0);
    // The WAL resumes after the last valid record.
    assert_eq!(replayed.wal_seq(), (total - 1) as u64);

    // Reference run: a fresh engine executing only the surviving prefix.
    let mut reference = Engine::new(scenario_registry(), Parallelism::sequential());
    for req in script().iter().take(total - 1) {
        let resp = reference.execute(req);
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    }

    // Byte-identical persisted state (mapping tables + manifest with
    // versions, counters and source cardinalities).
    let replay_dump = work.join("replayed");
    let reference_dump = work.join("reference");
    dump_to(&replayed, &replay_dump);
    dump_to(&reference, &reference_dump);
    assert_dumps_identical(&replay_dump, &reference_dump);

    // And the recovered engine keeps serving: one more delta succeeds
    // and lands in the resumed WAL with the next sequence number.
    let resp = replayed.execute(&delta_req(900));
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    assert_eq!(replayed.wal_seq(), total as u64);

    let _ = fs::remove_dir_all(&work);
}

/// A connection past `max_connections` gets one `busy` frame and is
/// closed — and the accept loop keeps serving afterwards (regression
/// test for the old `.expect("spawn handler thread")` abort path: any
/// failure to take on a connection must refuse that connection, not
/// kill the server).
#[test]
fn connection_cap_refuses_with_busy_and_keeps_serving() {
    let limits = Limits {
        max_connections: 1,
        ..Limits::default()
    };
    let handle = spawn_with_limits(engine(None), "127.0.0.1:0", limits).expect("spawn");
    let addr = handle.addr.to_string();

    let mut first = Client::connect_retry(&addr, Duration::from_secs(5)).expect("first client");
    first
        .call_ok(&protocol::bare_request("ping"))
        .expect("first client ping");

    // Second connection: refused with an explicit busy frame (or a
    // clean close if the refusal frame races our write).
    let mut refused = Client::connect(&addr).expect("tcp connect");
    match refused.call(&protocol::bare_request("ping")) {
        Ok(r) => {
            assert_eq!(r.get("busy").and_then(Json::as_bool), Some(true), "{r}");
            assert!(r.get("retry_after_ms").and_then(Json::as_u64).is_some());
        }
        Err(e) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::UnexpectedEof
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::BrokenPipe
            ),
            "unexpected refusal error: {e}"
        ),
    }
    drop(refused);

    // Free the slot; the accept loop must still be alive and serve a
    // new connection once the handler thread exits.
    drop(first);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let mut again = Client::connect_retry(&addr, Duration::from_secs(5)).expect("reconnect");
        match again.call(&protocol::bare_request("ping")) {
            Ok(r) if r.get("ok").and_then(Json::as_bool) == Some(true) => break,
            _ if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            other => panic!("server stopped serving after a busy refusal: {other:?}"),
        }
    }
    handle.stop();
}

/// Write-budget overload: with one write slot held by a slow writer,
/// a concurrent delta gets an explicit `overloaded` response with a
/// retry hint, reads keep answering, and a retried delta succeeds once
/// the slot frees.
#[test]
fn write_overload_answers_overloaded_and_recovers() {
    let limits = Limits {
        max_pending_writes: 1,
        retry_after_ms: 25,
        debug_commands: true,
        ..Limits::default()
    };
    let handle = spawn_with_limits(engine(None), "127.0.0.1:0", limits).expect("spawn");
    let addr = handle.addr.to_string();

    let mut c = Client::connect_retry(&addr, Duration::from_secs(5)).expect("connect");
    c.call_ok(&protocol::match_request(
        "m_ov",
        "Publication@DBLP",
        "Publication@GS",
        "title",
        "title",
        "trigram",
        0.75,
    ))
    .expect("prime matcher");

    let sleeper_addr = addr.clone();
    let sleeper = std::thread::spawn(move || {
        let mut c = Client::connect_retry(&sleeper_addr, Duration::from_secs(5)).expect("sleeper");
        let req = Json::obj(vec![
            ("cmd", Json::Str("debug_sleep_write".to_owned())),
            ("ms", Json::Uint(1500)),
        ]);
        let r = c.call(&req).expect("debug_sleep_write");
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
    });
    std::thread::sleep(Duration::from_millis(300));

    // Mutating command while the slot is held: explicit overloaded.
    let r = c.call(&delta_req(0)).expect("transport ok");
    assert_eq!(
        r.get("overloaded").and_then(Json::as_bool),
        Some(true),
        "expected overloaded, got: {r}"
    );
    assert_eq!(r.get("retry_after_ms").and_then(Json::as_u64), Some(25));

    // Reads are admitted from their own budget and see the engine.
    let q = c
        .call_ok(&protocol::query_request("m_ov", 3, None))
        .expect("read during overload");
    assert_eq!(q.str_field("name"), Some("m_ov"));

    sleeper.join().expect("sleeper thread");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let r = c.call(&delta_req(0)).expect("transport ok");
        if r.get("ok").and_then(Json::as_bool) == Some(true) {
            break;
        }
        assert_eq!(r.get("overloaded").and_then(Json::as_bool), Some(true));
        assert!(
            std::time::Instant::now() < deadline,
            "delta never admitted after overload: {r}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    let stats = c.call_ok(&protocol::bare_request("stats")).expect("stats");
    assert!(
        stats
            .get("overloaded_rejections")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            >= 1
    );
    assert_eq!(stats.get("degraded").and_then(Json::as_bool), Some(false));
    handle.stop();
}

/// A handler panic while holding the write lock answers an internal
/// error, poisons nothing permanently (the lock is recovered), and the
/// server keeps applying deltas — with `degraded: true` in stats
/// (regression test for the old `.expect("engine lock poisoned")`
/// crash chain).
#[test]
fn handler_panic_recovers_lock_and_reports_degraded() {
    let limits = Limits {
        debug_commands: true,
        ..Limits::default()
    };
    let handle = spawn_with_limits(engine(None), "127.0.0.1:0", limits).expect("spawn");
    let addr = handle.addr.to_string();
    let mut c = Client::connect_retry(&addr, Duration::from_secs(5)).expect("connect");

    let r = c
        .call(&Json::obj(vec![(
            "cmd",
            Json::Str("debug_panic".to_owned()),
        )]))
        .expect("transport survives the panic");
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));
    assert!(
        r.str_field("error")
            .unwrap_or("")
            .contains("internal error"),
        "panic answered with an internal error frame: {r}"
    );

    // The poisoned lock is recovered: the next mutating command works.
    let r = c.call(&delta_req(1)).expect("transport ok");
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
    let q = c
        .call_ok(&protocol::query_request("no_such", 1, None))
        .err()
        .map(|e| e.to_string())
        .unwrap_or_default();
    assert!(q.contains("unknown mapping"), "reads still answer: {q}");

    let stats = c.call_ok(&protocol::bare_request("stats")).expect("stats");
    assert_eq!(stats.get("degraded").and_then(Json::as_bool), Some(true));
    handle.stop();
}

/// The background checkpointer publishes an automatic checkpoint off
/// the delta path: deltas only cross the records threshold, and the
/// server-owned thread picks the work up within its poll interval.
#[test]
fn background_checkpointer_publishes_automatically() {
    let work = tmp_dir("bg_ckpt");
    let wal_dir = work.join("wal");
    let policy = DurabilityPolicy {
        checkpoint_every_records: 3,
        ..DurabilityPolicy::default()
    };
    let handle = spawn(engine_with_policy(Some(&wal_dir), policy), "127.0.0.1:0").expect("spawn");
    let addr = handle.addr.to_string();
    let mut c = Client::connect_retry(&addr, Duration::from_secs(5)).expect("connect");

    for i in 0..4 {
        c.call_ok(&delta_req(i)).expect("delta");
    }

    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let stats = loop {
        let stats = c.call_ok(&protocol::bare_request("stats")).expect("stats");
        let cp_seq = stats
            .get("wal")
            .and_then(|w| w.get("checkpoint_seq"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        if cp_seq > 0 {
            break stats;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no automatic checkpoint within 5s: {stats}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(
        stats
            .get("auto_checkpoints")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            >= 1,
        "stats counts the background checkpoint: {stats}"
    );
    handle.stop();
    let _ = fs::remove_dir_all(&work);
}

/// `batch_delta` applies item-by-item and logs one WAL group commit
/// whose replay is bit-identical to the same items sent singly.
#[test]
fn batch_delta_matches_singles_bit_identically() {
    let work = tmp_dir("batch");
    let batch_wal = work.join("wal_batch");
    let singles_wal = work.join("wal_singles");

    let items: Vec<Json> = (0..4)
        .map(|i| {
            protocol::delta_item(
                "Publication@GS",
                &[DeltaOp::Add {
                    id: format!("e2e_{i}"),
                    fields: vec![(
                        "title".into(),
                        AttrValue::Text(format!("Crash recovery for matching services part {i}")),
                    )],
                }],
            )
        })
        .collect();

    let mut batched = engine(Some(&batch_wal));
    let resp = batched.execute(&protocol::batch_delta_request(items));
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    assert_eq!(resp.get("count").and_then(Json::as_u64), Some(4));
    assert_eq!(resp.get("first_seq").and_then(Json::as_u64), Some(1));
    assert_eq!(resp.get("last_seq").and_then(Json::as_u64), Some(4));
    let results = resp.get("results").and_then(Json::as_arr).expect("results");
    assert_eq!(results.len(), 4);
    for item in results {
        assert_eq!(item.get("ok").and_then(Json::as_bool), Some(true), "{item}");
    }

    let mut singly = engine(Some(&singles_wal));
    for i in 0..4 {
        let resp = singly.execute(&delta_req(i));
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    }

    // Same live state...
    let batch_dump = work.join("dump_batch");
    let singles_dump = work.join("dump_singles");
    dump_to(&batched, &batch_dump);
    dump_to(&singly, &singles_dump);
    assert_dumps_identical(&batch_dump, &singles_dump);

    // ...same on-disk log: the group commit wrote the items as N
    // ordinary consecutive-seq delta records, byte-identical to the
    // singles run.
    let batch_scan = Wal::scan(&batch_wal).expect("scan batch wal");
    let singles_scan = Wal::scan(&singles_wal).expect("scan singles wal");
    assert_eq!(batch_scan.records.len(), 4);
    for (i, (b, s)) in batch_scan
        .records
        .iter()
        .zip(&singles_scan.records)
        .enumerate()
    {
        assert_eq!(b.seq, i as u64 + 1);
        assert_eq!(b.seq, s.seq);
        assert_eq!(b.payload, s.payload, "record {i} payload differs");
    }

    // And a replay of the group-committed log restores the same state.
    drop(batched);
    let mut replayed = Engine::new(scenario_registry(), Parallelism::sequential());
    let summary = replayed
        .recover(&batch_wal, DurabilityPolicy::default())
        .expect("recover");
    assert_eq!(summary.replayed, 4);
    assert_eq!(summary.failed, 0);
    let replay_dump = work.join("dump_replayed");
    dump_to(&replayed, &replay_dump);
    assert_dumps_identical(&replay_dump, &singles_dump);

    let _ = fs::remove_dir_all(&work);
}

/// `batch_query` answers each item with exactly the frame a singleton
/// `query` would produce, over real TCP.
#[test]
fn batch_query_matches_singleton_responses() {
    let handle = spawn(engine(None), "127.0.0.1:0").expect("spawn");
    let addr = handle.addr.to_string();
    let mut c = Client::connect_retry(&addr, Duration::from_secs(5)).expect("connect");
    for req in script() {
        c.call_ok(&req).expect("scripted command");
    }

    let items = vec![
        protocol::query_item("c_dg", 5, None),
        protocol::query_item("m_da", 0, Some(0.9)),
        protocol::query_item("no_such_mapping", 1, None),
    ];
    let batched = c.batch_query(items.clone()).expect("batch_query");
    assert_eq!(batched.len(), items.len());
    for (i, item) in items.iter().enumerate() {
        let mut single = item.clone();
        if let Json::Obj(fields) = &mut single {
            fields.insert(0, ("cmd".to_owned(), Json::Str("query".to_owned())));
        }
        let resp = c.call(&single).expect("singleton query");
        assert_eq!(
            batched[i].to_string(),
            resp.to_string(),
            "batch item {i} differs from singleton response"
        );
    }
    // The per-item error (unknown mapping) is carried in the results
    // array, not as a batch failure.
    assert_eq!(batched[2].get("ok").and_then(Json::as_bool), Some(false));
    handle.stop();
}

/// Restart after a checkpoint replays only the post-checkpoint suffix —
/// and the recovered state is still bit-identical to a clean run of the
/// whole script.
#[test]
fn restart_after_checkpoint_replays_only_the_suffix() {
    let work = tmp_dir("ckpt");
    let wal_dir = work.join("wal");
    let policy = DurabilityPolicy {
        segment_records: 2,
        ..DurabilityPolicy::default()
    };
    let reqs = script();
    let total = reqs.len();
    let prefix = 3; // checkpoint after the matchers + composition

    {
        let mut crashed = engine_with_policy(Some(&wal_dir), policy);
        for req in reqs.iter().take(prefix) {
            let resp = crashed.execute(req);
            assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
        }
        let cp = crashed.execute(&protocol::checkpoint_request());
        assert_eq!(cp.get("ok").and_then(Json::as_bool), Some(true), "{cp}");
        assert_eq!(cp.get("seq").and_then(Json::as_u64), Some(prefix as u64));
        for req in reqs.iter().skip(prefix) {
            let resp = crashed.execute(req);
            assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
        }
        // Crash: engine dropped without another checkpoint.
    }

    let mut recovered = Engine::new(scenario_registry(), Parallelism::sequential());
    let summary = recovered.recover(&wal_dir, policy).expect("recover");
    assert_eq!(summary.checkpoint_seq, prefix as u64);
    assert_eq!(summary.replayed, total - prefix);
    assert!(
        summary.replayed < total,
        "checkpoint must bound replay below the full command count"
    );
    assert_eq!(summary.skipped, 0, "covered segments were pruned");
    assert_eq!(summary.failed, 0);
    assert_eq!(recovered.wal_seq(), total as u64);

    // Clean reference run of the full script, no WAL involved.
    let mut reference = Engine::new(scenario_registry(), Parallelism::sequential());
    for req in &reqs {
        let resp = reference.execute(req);
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    }

    let recovered_dump = work.join("recovered");
    let reference_dump = work.join("reference");
    dump_to(&recovered, &recovered_dump);
    dump_to(&reference, &reference_dump);
    assert_dumps_identical(&recovered_dump, &reference_dump);

    let _ = fs::remove_dir_all(&work);
}
