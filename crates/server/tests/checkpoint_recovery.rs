//! Recovery sweep for the segmented WAL + checkpoint machinery: however
//! a crash mangles the newest segment or the newest checkpoint, startup
//! must land on a valid *prior* state — the longest surviving command
//! prefix — and the replayed count must match exactly the record suffix
//! that survived after the restored checkpoint.

use std::collections::HashMap;
use std::fs;
use std::path::Path;

use moma_core::exec::Parallelism;
use moma_model::{
    AttrDef, AttrValue, DeltaOp, LogicalSource, ObjectInstance, ObjectType, SourceRegistry,
};
use moma_server::wal::{decode_records_from, list_segment_files};
use moma_server::{protocol, DurabilityPolicy, Engine, Json};

/// A tiny hand-built 3-source world. The sweep below recovers hundreds
/// of WAL-directory copies, and every recovery re-primes the matchers —
/// the generated scenario would turn that into minutes of matching, a
/// dozen overlapping titles keep it instant without losing any of the
/// recovery semantics under test.
fn tiny_registry() -> SourceRegistry {
    let titles = [
        "Incremental object matching in dynamic integration systems",
        "A write-ahead log for mapping repositories",
        "Checkpointing bounded-restart services",
        "Composing instance correspondences across peer sources",
        "Trigram similarity for bibliographic deduplication",
        "Snapshot isolation under concurrent delta streams",
        "Segment rotation and torn-tail truncation",
        "Exact threshold pruning for TF-IDF matchers",
    ];
    let mut reg = SourceRegistry::new();
    for pds in ["DBLP", "ACM", "GS"] {
        let mut lds = LogicalSource::new(
            pds,
            ObjectType::new("Publication"),
            vec![AttrDef::text("title")],
        );
        for (i, title) in titles.iter().enumerate() {
            lds.insert(ObjectInstance::with_values(
                format!("{pds}_{i}"),
                vec![Some(AttrValue::Text((*title).to_owned()))],
            ))
            .expect("insert instance");
        }
        reg.register(lds).expect("register source");
    }
    reg
}

fn policy() -> DurabilityPolicy {
    DurabilityPolicy {
        segment_records: 2,
        ..DurabilityPolicy::default()
    }
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("moma_ckpt_rec_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn delta_req(i: usize) -> Json {
    protocol::delta_request(
        "Publication@GS",
        &[DeltaOp::Add {
            id: format!("r{i}"),
            fields: vec![("title".into(), AttrValue::Text(format!("rec {i}")))],
        }],
    )
}

/// The scripted mutating commands, in WAL-sequence order.
fn script() -> Vec<Json> {
    let mut reqs = vec![
        protocol::match_request(
            "m_da",
            "Publication@DBLP",
            "Publication@ACM",
            "title",
            "title",
            "trigram",
            0.7,
        ),
        protocol::match_request(
            "m_ag",
            "Publication@ACM",
            "Publication@GS",
            "title",
            "title",
            "trigram",
            0.7,
        ),
        protocol::compose_request("c_dg", "m_da", "m_ag", "min", "max"),
    ];
    for i in 0..4 {
        reqs.push(delta_req(i));
    }
    reqs
}

fn exec_ok(e: &mut Engine, req: &Json) {
    let resp = e.execute(req);
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
}

/// In-memory state fingerprint: durable command counters plus the full
/// (versioned) row set of every scripted mapping. Two engines with equal
/// fingerprints went through the same logical history.
fn fingerprint(e: &Engine) -> String {
    let stats = e.execute_read(&protocol::bare_request("stats"));
    let mut out = stats.get("commands").expect("stats commands").to_string();
    for name in ["m_da", "m_ag", "c_dg"] {
        out.push('\n');
        out.push_str(
            &e.execute_read(&protocol::query_request(name, 0, None))
                .to_string(),
        );
    }
    out
}

/// Fingerprint of a clean engine that executed exactly the first `n`
/// scripted commands (cached — re-matching is the expensive part).
fn reference_fingerprint(cache: &mut HashMap<usize, String>, n: usize) -> String {
    cache
        .entry(n)
        .or_insert_with(|| {
            let mut e = Engine::new(tiny_registry(), Parallelism::sequential());
            for req in script().iter().take(n) {
                exec_ok(&mut e, req);
            }
            fingerprint(&e)
        })
        .clone()
}

/// Build the crashed-server WAL directory once: 3 commands, checkpoint
/// (seq 3), 4 more deltas, no further checkpoint. With 2-record
/// segments the surviving layout is: checkpoint@3, a sealed segment
/// holding seqs 4–5, and the newest segment holding seqs 6–7.
fn build_crashed_wal(wal_dir: &Path, checkpoints: usize) -> usize {
    let mut e = Engine::new(tiny_registry(), Parallelism::sequential());
    e.wal_create(wal_dir, policy()).expect("wal create");
    let reqs = script();
    let prefix = 3;
    for req in reqs.iter().take(prefix) {
        exec_ok(&mut e, req);
    }
    exec_ok(&mut e, &protocol::checkpoint_request());
    if checkpoints > 1 {
        // Second checkpoint two deltas later: seq 5. Retention keeps
        // both, so segments are pruned only up to seq 3.
        for req in reqs.iter().skip(prefix).take(2) {
            exec_ok(&mut e, req);
        }
        exec_ok(&mut e, &protocol::checkpoint_request());
        for req in reqs.iter().skip(prefix + 2) {
            exec_ok(&mut e, req);
        }
    } else {
        for req in reqs.iter().skip(prefix) {
            exec_ok(&mut e, req);
        }
    }
    reqs.len()
}

fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).expect("mkdir dst");
    for entry in fs::read_dir(src).expect("read_dir src") {
        let entry = entry.expect("dir entry");
        let from = entry.path();
        let to = dst.join(entry.file_name());
        if from.is_dir() {
            copy_dir(&from, &to);
        } else {
            fs::copy(&from, &to).expect("copy file");
        }
    }
}

fn recover_fresh(wal_dir: &Path) -> Result<(Engine, moma_server::ReplaySummary), String> {
    let mut e = Engine::new(tiny_registry(), Parallelism::sequential());
    let summary = e.recover(wal_dir, policy())?;
    Ok((e, summary))
}

/// Truncate the newest segment at *every* byte boundary: recovery must
/// always succeed, land exactly on the longest surviving command
/// prefix, and report a replayed count equal to the surviving suffix.
#[test]
fn truncating_newest_segment_at_every_boundary_recovers_a_valid_prefix() {
    let work = tmp_dir("sweep");
    let wal_dir = work.join("wal");
    build_crashed_wal(&wal_dir, 1);

    let segments = list_segment_files(&wal_dir).expect("list segments");
    let (_, newest_path) = segments.last().expect("at least one segment");
    let newest_bytes = fs::read(newest_path).expect("newest segment bytes");
    let newest_name = newest_path.file_name().unwrap().to_owned();
    assert!(!newest_bytes.is_empty(), "newest segment holds records");

    // Records strictly before the newest segment (checkpoint covers
    // seqs 1–3; sealed segments hold the rest of the prefix).
    let older_records: usize = segments[..segments.len() - 1]
        .iter()
        .map(|(_, p)| {
            decode_records_from(&fs::read(p).expect("segment"), None)
                .records
                .len()
        })
        .sum();
    let checkpoint_seq = 3usize;

    let mut references: HashMap<usize, String> = HashMap::new();
    for cut in 0..=newest_bytes.len() {
        let scratch = work.join(format!("cut_{cut}"));
        copy_dir(&wal_dir, &scratch);
        fs::write(scratch.join(&newest_name), &newest_bytes[..cut]).expect("truncate");

        let (recovered, summary) =
            recover_fresh(&scratch).unwrap_or_else(|e| panic!("cut {cut}: recovery failed: {e}"));
        let surviving_tail = decode_records_from(&newest_bytes[..cut], None)
            .records
            .len();
        let expected_replayed = older_records + surviving_tail;
        assert_eq!(summary.checkpoint_seq, checkpoint_seq as u64, "cut {cut}");
        assert_eq!(
            summary.replayed, expected_replayed,
            "cut {cut}: replayed count must match the surviving suffix"
        );
        let prefix_commands = checkpoint_seq + expected_replayed;
        assert_eq!(
            fingerprint(&recovered),
            reference_fingerprint(&mut references, prefix_commands),
            "cut {cut}: recovered state is not the {prefix_commands}-command prefix"
        );
        fs::remove_dir_all(&scratch).expect("cleanup scratch");
    }
    let _ = fs::remove_dir_all(&work);
}

/// Damaging the newest checkpoint — corrupt MARKER, corrupt state dump,
/// or the whole directory deleted (a crash mid-publish leaves exactly
/// these shapes) — falls back to the previous checkpoint and replays
/// the longer suffix; state is still the full-script state.
#[test]
fn damaged_newest_checkpoint_falls_back_to_the_previous_one() {
    let work = tmp_dir("fallback");
    let wal_dir = work.join("wal");
    let total = build_crashed_wal(&wal_dir, 2);

    let checkpoints: Vec<_> = moma_server::checkpoint::list(&wal_dir).expect("list checkpoints");
    assert_eq!(checkpoints.len(), 2, "retention keeps two checkpoints");
    let (older, newest) = (&checkpoints[0], &checkpoints[1]);
    assert_eq!((older.seq, newest.seq), (3, 5));

    let mut references: HashMap<usize, String> = HashMap::new();
    let full = reference_fingerprint(&mut references, total);

    // Healthy baseline: newest checkpoint restores, 2 records replay.
    let (recovered, summary) = recover_fresh(&wal_dir).expect("healthy recover");
    assert_eq!((summary.checkpoint_seq, summary.replayed), (5, 2));
    assert_eq!(fingerprint(&recovered), full);

    for (tag, damage) in [("marker", 0usize), ("state", 1usize), ("deleted", 2usize)] {
        let scratch = work.join(format!("dmg_{tag}"));
        copy_dir(&wal_dir, &scratch);
        let newest_dir = scratch.join(newest.path.file_name().unwrap());
        match damage {
            0 => {
                let marker = newest_dir.join("MARKER");
                let mut bytes = fs::read(&marker).expect("marker bytes");
                bytes[0] ^= 0x40;
                fs::write(&marker, bytes).expect("corrupt marker");
            }
            1 => {
                let state = newest_dir.join("state.json");
                let mut bytes = fs::read(&state).expect("state bytes");
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x01;
                fs::write(&state, bytes).expect("corrupt state");
            }
            _ => fs::remove_dir_all(&newest_dir).expect("delete newest checkpoint"),
        }

        let (recovered, summary) =
            recover_fresh(&scratch).unwrap_or_else(|e| panic!("{tag}: recovery failed: {e}"));
        assert_eq!(
            summary.checkpoint_seq, 3,
            "{tag}: must fall back to the older checkpoint"
        );
        assert_eq!(
            summary.replayed,
            total - 3,
            "{tag}: the longer suffix replays after fallback"
        );
        assert_eq!(fingerprint(&recovered), full, "{tag}: state diverged");
        fs::remove_dir_all(&scratch).expect("cleanup scratch");
    }

    // Losing *both* checkpoints is unrecoverable (their segments were
    // pruned): recovery must refuse loudly rather than replay a hole.
    let scratch = work.join("dmg_all");
    copy_dir(&wal_dir, &scratch);
    for cp in &checkpoints {
        fs::remove_dir_all(scratch.join(cp.path.file_name().unwrap())).expect("delete checkpoint");
    }
    let err = match recover_fresh(&scratch) {
        Err(e) => e,
        Ok(_) => panic!("recovery must refuse a WAL gap"),
    };
    assert!(err.contains("gap"), "gap error names the problem: {err}");

    let _ = fs::remove_dir_all(&work);
}
