//! # moma-model — object & source data model for MOMA
//!
//! This crate implements the data model underlying the MOMA object-matching
//! framework (Thor & Rahm, CIDR 2007, Section 2.1):
//!
//! * **Physical data sources** (PDS) — e.g. `DBLP`, `ACM`, `GoogleScholar`.
//! * **Logical data sources** (LDS) — a set of object instances of one
//!   semantic object type hosted by one PDS, e.g. `Publication@DBLP`.
//! * **Object instances** — identified by an id value, carrying optional
//!   attribute values described by a per-LDS schema.
//! * **Source-mapping model** (SMM) — the registry of sources and semantic
//!   mapping types (with cardinalities) between them, cf. paper Figure 2.
//!
//! The model is deliberately schema-light: web objects may have only a few,
//! partially missing attributes. Attribute values are dynamically typed
//! ([`AttrValue`]) and stored columnar-aligned to the LDS schema so that
//! matchers can project an attribute across all instances cheaply.

pub mod attr;
pub mod cardinality;
pub mod delta;
pub mod error;
pub mod instance;
pub mod lds;
pub mod registry;
pub mod smm;

pub use attr::{AttrDef, AttrKind, AttrValue};
pub use cardinality::Cardinality;
pub use delta::{AppliedDelta, DeltaOp, SourceDelta};
pub use error::{ModelError, Result};
pub use instance::ObjectInstance;
pub use lds::{LdsId, LogicalSource};
pub use registry::SourceRegistry;
pub use smm::{AssocTypeDef, ObjectType, PhysicalSource, SourceMappingModel};
