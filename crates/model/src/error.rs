//! Error type for model-level operations.

use std::fmt;

/// Errors raised while building or querying the data model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// An LDS name was not found in the registry.
    UnknownSource(String),
    /// An object id was not found within an LDS.
    UnknownObject { lds: String, id: String },
    /// An attribute name is not part of an LDS schema.
    UnknownAttribute { lds: String, attr: String },
    /// Two sources were expected to share an object type but do not.
    TypeMismatch { left: String, right: String },
    /// An instance id was inserted twice into the same LDS.
    DuplicateId { lds: String, id: String },
    /// A value did not conform to the declared attribute kind.
    KindMismatch {
        attr: String,
        expected: String,
        got: String,
    },
    /// An association mapping type name was not found in the SMM.
    UnknownAssocType(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownSource(name) => write!(f, "unknown logical data source `{name}`"),
            ModelError::UnknownObject { lds, id } => {
                write!(f, "object `{id}` not found in LDS `{lds}`")
            }
            ModelError::UnknownAttribute { lds, attr } => {
                write!(f, "attribute `{attr}` is not in the schema of LDS `{lds}`")
            }
            ModelError::TypeMismatch { left, right } => {
                write!(f, "object type mismatch between `{left}` and `{right}`")
            }
            ModelError::DuplicateId { lds, id } => {
                write!(f, "duplicate object id `{id}` in LDS `{lds}`")
            }
            ModelError::KindMismatch {
                attr,
                expected,
                got,
            } => {
                write!(f, "attribute `{attr}` expects kind {expected}, got {got}")
            }
            ModelError::UnknownAssocType(name) => {
                write!(f, "unknown association mapping type `{name}`")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// Convenience alias used throughout `moma-model`.
pub type Result<T> = std::result::Result<T, ModelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_source() {
        let e = ModelError::UnknownSource("Publication@DBLP".into());
        assert_eq!(
            e.to_string(),
            "unknown logical data source `Publication@DBLP`"
        );
    }

    #[test]
    fn display_unknown_object() {
        let e = ModelError::UnknownObject {
            lds: "Pub@ACM".into(),
            id: "P-1".into(),
        };
        assert_eq!(e.to_string(), "object `P-1` not found in LDS `Pub@ACM`");
    }

    #[test]
    fn display_kind_mismatch() {
        let e = ModelError::KindMismatch {
            attr: "year".into(),
            expected: "Year".into(),
            got: "Text".into(),
        };
        assert!(e.to_string().contains("expects kind Year"));
    }

    #[test]
    fn error_is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(ModelError::UnknownAssocType("x".into()));
        assert!(e.to_string().contains("association"));
    }
}
