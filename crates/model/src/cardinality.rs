//! Semantic cardinalities of association mapping types.
//!
//! The usefulness of the neighborhood matcher depends on the cardinality
//! of the utilized association mapping (paper Section 4.2, Figure 10):
//! 1:n (venue→publication) gives near-perfect matches, n:1 and n:m still
//! confine the candidate space.

use std::fmt;

/// Cardinality of a semantic mapping type between two LDS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cardinality {
    /// Each domain object relates to at most one range object and vice
    /// versa — the conceptual cardinality of a clean same-mapping.
    OneToOne,
    /// One domain object relates to many range objects (e.g. venue →
    /// publications).
    OneToMany,
    /// Many domain objects relate to one range object (e.g. publication →
    /// venue).
    ManyToOne,
    /// Many-to-many (e.g. author ↔ publication).
    ManyToMany,
}

impl Cardinality {
    /// The cardinality of the inverse mapping type.
    pub fn inverse(self) -> Self {
        match self {
            Cardinality::OneToOne => Cardinality::OneToOne,
            Cardinality::OneToMany => Cardinality::ManyToOne,
            Cardinality::ManyToOne => Cardinality::OneToMany,
            Cardinality::ManyToMany => Cardinality::ManyToMany,
        }
    }

    /// Whether a single domain object may map to multiple range objects.
    pub fn domain_fans_out(self) -> bool {
        matches!(self, Cardinality::OneToMany | Cardinality::ManyToMany)
    }

    /// Whether a single range object may be reached from multiple domain
    /// objects.
    pub fn range_fans_in(self) -> bool {
        matches!(self, Cardinality::ManyToOne | Cardinality::ManyToMany)
    }
}

impl fmt::Display for Cardinality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cardinality::OneToOne => "1:1",
            Cardinality::OneToMany => "1:n",
            Cardinality::ManyToOne => "n:1",
            Cardinality::ManyToMany => "n:m",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_involution() {
        for c in [
            Cardinality::OneToOne,
            Cardinality::OneToMany,
            Cardinality::ManyToOne,
            Cardinality::ManyToMany,
        ] {
            assert_eq!(c.inverse().inverse(), c);
        }
    }

    #[test]
    fn inverse_swaps_sides() {
        assert_eq!(Cardinality::OneToMany.inverse(), Cardinality::ManyToOne);
        assert_eq!(Cardinality::ManyToOne.inverse(), Cardinality::OneToMany);
        assert_eq!(Cardinality::ManyToMany.inverse(), Cardinality::ManyToMany);
    }

    #[test]
    fn fan_predicates() {
        assert!(Cardinality::OneToMany.domain_fans_out());
        assert!(!Cardinality::OneToMany.range_fans_in());
        assert!(Cardinality::ManyToOne.range_fans_in());
        assert!(Cardinality::ManyToMany.domain_fans_out());
        assert!(Cardinality::ManyToMany.range_fans_in());
        assert!(!Cardinality::OneToOne.domain_fans_out());
    }

    #[test]
    fn display() {
        assert_eq!(Cardinality::OneToMany.to_string(), "1:n");
        assert_eq!(Cardinality::ManyToMany.to_string(), "n:m");
    }
}
