//! Registry owning all logical data sources of an integration scenario.

use std::collections::HashMap;

use crate::error::{ModelError, Result};
use crate::lds::{LdsId, LogicalSource};
use crate::smm::SourceMappingModel;

/// Owns the LDS arenas and the source-mapping model.
///
/// The registry is the single place instance data lives; mappings (in
/// `moma-core`) reference instances as `(LdsId, local index)` pairs.
#[derive(Debug, Default)]
pub struct SourceRegistry {
    sources: Vec<LogicalSource>,
    by_name: HashMap<String, LdsId>,
    /// Metadata model (physical sources + mapping types).
    pub smm: SourceMappingModel,
}

impl SourceRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an LDS; its display name (`Type@PDS`) must be unique.
    pub fn register(&mut self, lds: LogicalSource) -> Result<LdsId> {
        let name = lds.name();
        if self.by_name.contains_key(&name) {
            return Err(ModelError::DuplicateId {
                lds: name.clone(),
                id: name,
            });
        }
        let id = LdsId(self.sources.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.smm.add_logical(id, name);
        self.sources.push(lds);
        Ok(id)
    }

    /// LDS by handle.
    pub fn lds(&self, id: LdsId) -> &LogicalSource {
        &self.sources[id.index()]
    }

    /// Mutable LDS by handle.
    pub fn lds_mut(&mut self, id: LdsId) -> &mut LogicalSource {
        &mut self.sources[id.index()]
    }

    /// Resolve a display name (`Publication@DBLP`) to a handle.
    pub fn resolve(&self, name: &str) -> Result<LdsId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| ModelError::UnknownSource(name.into()))
    }

    /// Number of registered LDS.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// Iterate all `(id, lds)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (LdsId, &LogicalSource)> {
        self.sources
            .iter()
            .enumerate()
            .map(|(i, s)| (LdsId(i as u32), s))
    }

    /// Assert that two LDS share an object type (required for
    /// same-mappings), returning their handles.
    pub fn require_same_type(&self, left: &str, right: &str) -> Result<(LdsId, LdsId)> {
        let l = self.resolve(left)?;
        let r = self.resolve(right)?;
        if self.lds(l).object_type != self.lds(r).object_type {
            return Err(ModelError::TypeMismatch {
                left: left.into(),
                right: right.into(),
            });
        }
        Ok((l, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrDef;
    use crate::smm::ObjectType;

    fn registry() -> SourceRegistry {
        let mut reg = SourceRegistry::new();
        reg.register(LogicalSource::new(
            "DBLP",
            ObjectType::new("Publication"),
            vec![AttrDef::text("title")],
        ))
        .unwrap();
        reg.register(LogicalSource::new(
            "ACM",
            ObjectType::new("Publication"),
            vec![AttrDef::text("title")],
        ))
        .unwrap();
        reg.register(LogicalSource::new(
            "DBLP",
            ObjectType::new("Author"),
            vec![AttrDef::text("name")],
        ))
        .unwrap();
        reg
    }

    #[test]
    fn register_and_resolve() {
        let reg = registry();
        assert_eq!(reg.len(), 3);
        let id = reg.resolve("Publication@ACM").unwrap();
        assert_eq!(reg.lds(id).pds, "ACM");
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut reg = registry();
        let err = reg
            .register(LogicalSource::new(
                "DBLP",
                ObjectType::new("Publication"),
                vec![],
            ))
            .unwrap_err();
        assert!(matches!(err, ModelError::DuplicateId { .. }));
    }

    #[test]
    fn unknown_name_errors() {
        let reg = registry();
        assert!(matches!(
            reg.resolve("Venue@DBLP"),
            Err(ModelError::UnknownSource(_))
        ));
    }

    #[test]
    fn same_type_check() {
        let reg = registry();
        assert!(reg
            .require_same_type("Publication@DBLP", "Publication@ACM")
            .is_ok());
        let err = reg
            .require_same_type("Publication@DBLP", "Author@DBLP")
            .unwrap_err();
        assert!(matches!(err, ModelError::TypeMismatch { .. }));
    }

    #[test]
    fn smm_tracks_logical_sources() {
        let reg = registry();
        assert_eq!(reg.smm.logical_sources().len(), 3);
    }

    #[test]
    fn iter_order_matches_ids() {
        let reg = registry();
        for (id, lds) in reg.iter() {
            assert_eq!(reg.lds(id).name(), lds.name());
        }
    }
}
