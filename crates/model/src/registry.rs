//! Registry owning all logical data sources of an integration scenario.

use std::collections::HashMap;

use crate::delta::{AppliedDelta, DeltaOp, SourceDelta};
use crate::error::{ModelError, Result};
use crate::instance::ObjectInstance;
use crate::lds::{LdsId, LogicalSource};
use crate::smm::SourceMappingModel;

/// Owns the LDS arenas and the source-mapping model.
///
/// The registry is the single place instance data lives; mappings (in
/// `moma-core`) reference instances as `(LdsId, local index)` pairs.
#[derive(Debug, Default, Clone)]
pub struct SourceRegistry {
    sources: Vec<LogicalSource>,
    by_name: HashMap<String, LdsId>,
    /// Metadata model (physical sources + mapping types).
    pub smm: SourceMappingModel,
}

impl SourceRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an LDS; its display name (`Type@PDS`) must be unique.
    pub fn register(&mut self, lds: LogicalSource) -> Result<LdsId> {
        let name = lds.name();
        if self.by_name.contains_key(&name) {
            return Err(ModelError::DuplicateId {
                lds: name.clone(),
                id: name,
            });
        }
        let id = LdsId(self.sources.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.smm.add_logical(id, name);
        self.sources.push(lds);
        Ok(id)
    }

    /// LDS by handle.
    pub fn lds(&self, id: LdsId) -> &LogicalSource {
        &self.sources[id.index()]
    }

    /// Mutable LDS by handle.
    pub fn lds_mut(&mut self, id: LdsId) -> &mut LogicalSource {
        &mut self.sources[id.index()]
    }

    /// Resolve a display name (`Publication@DBLP`) to a handle.
    pub fn resolve(&self, name: &str) -> Result<LdsId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| ModelError::UnknownSource(name.into()))
    }

    /// Number of registered LDS.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// Iterate all `(id, lds)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (LdsId, &LogicalSource)> {
        self.sources
            .iter()
            .enumerate()
            .map(|(i, s)| (LdsId(i as u32), s))
    }

    /// Apply a [`SourceDelta`] to its LDS, returning the touched arena
    /// indexes.
    ///
    /// Semantics (see [`crate::delta`] module docs): adds error on
    /// duplicate ids, removals and updates of unknown / already-removed
    /// ids are counted in [`AppliedDelta::skipped`], and updates against
    /// an unknown attribute or with a wrongly-kinded value are typed
    /// errors. On error the operations applied so far remain applied
    /// (deltas are not transactional).
    pub fn apply_delta(&mut self, delta: &SourceDelta) -> Result<AppliedDelta> {
        if delta.lds.index() >= self.sources.len() {
            return Err(ModelError::UnknownSource(format!("LdsId({})", delta.lds.0)));
        }
        let lds = &mut self.sources[delta.lds.index()];
        let mut applied = AppliedDelta {
            lds: delta.lds,
            ..Default::default()
        };
        for op in &delta.ops {
            match op {
                DeltaOp::Add { id, fields } => {
                    let mut inst = ObjectInstance::new(id.clone(), lds.schema.len());
                    for (name, value) in fields {
                        let slot = lds.attr_slot(name)?;
                        let expected = lds.schema[slot].kind;
                        if value.kind() != expected {
                            return Err(ModelError::KindMismatch {
                                attr: name.clone(),
                                expected: expected.to_string(),
                                got: value.kind().to_string(),
                            });
                        }
                        inst.set(slot, value.clone());
                    }
                    applied.added.push(lds.insert(inst)?);
                }
                DeltaOp::Remove { id } => match lds.remove(id) {
                    Some(idx) => applied.removed.push(idx),
                    None => applied.skipped += 1,
                },
                DeltaOp::Update { id, attr, value } => {
                    match lds.update_attr(id, attr, value.clone())? {
                        Some(idx) => applied.updated.push((idx, attr.clone())),
                        None => applied.skipped += 1,
                    }
                }
            }
        }
        Ok(applied)
    }

    /// Assert that two LDS share an object type (required for
    /// same-mappings), returning their handles.
    pub fn require_same_type(&self, left: &str, right: &str) -> Result<(LdsId, LdsId)> {
        let l = self.resolve(left)?;
        let r = self.resolve(right)?;
        if self.lds(l).object_type != self.lds(r).object_type {
            return Err(ModelError::TypeMismatch {
                left: left.into(),
                right: right.into(),
            });
        }
        Ok((l, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrDef;
    use crate::smm::ObjectType;

    fn registry() -> SourceRegistry {
        let mut reg = SourceRegistry::new();
        reg.register(LogicalSource::new(
            "DBLP",
            ObjectType::new("Publication"),
            vec![AttrDef::text("title")],
        ))
        .unwrap();
        reg.register(LogicalSource::new(
            "ACM",
            ObjectType::new("Publication"),
            vec![AttrDef::text("title")],
        ))
        .unwrap();
        reg.register(LogicalSource::new(
            "DBLP",
            ObjectType::new("Author"),
            vec![AttrDef::text("name")],
        ))
        .unwrap();
        reg
    }

    #[test]
    fn register_and_resolve() {
        let reg = registry();
        assert_eq!(reg.len(), 3);
        let id = reg.resolve("Publication@ACM").unwrap();
        assert_eq!(reg.lds(id).pds, "ACM");
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut reg = registry();
        let err = reg
            .register(LogicalSource::new(
                "DBLP",
                ObjectType::new("Publication"),
                vec![],
            ))
            .unwrap_err();
        assert!(matches!(err, ModelError::DuplicateId { .. }));
    }

    #[test]
    fn unknown_name_errors() {
        let reg = registry();
        assert!(matches!(
            reg.resolve("Venue@DBLP"),
            Err(ModelError::UnknownSource(_))
        ));
    }

    #[test]
    fn same_type_check() {
        let reg = registry();
        assert!(reg
            .require_same_type("Publication@DBLP", "Publication@ACM")
            .is_ok());
        let err = reg
            .require_same_type("Publication@DBLP", "Author@DBLP")
            .unwrap_err();
        assert!(matches!(err, ModelError::TypeMismatch { .. }));
    }

    #[test]
    fn apply_delta_resolves_indexes() {
        let mut reg = registry();
        let pubs = reg.resolve("Publication@DBLP").unwrap();
        reg.lds_mut(pubs)
            .insert_record("p0", vec![("title", "Old Title".into())])
            .unwrap();
        reg.lds_mut(pubs).insert_record("p1", vec![]).unwrap();
        let delta = SourceDelta::new(pubs)
            .add("p2", vec![("title".into(), "Fresh".into())])
            .update("p0", "title", Some("New Title".into()))
            .remove("p1")
            .remove("p1") // duplicate: skipped
            .update("ghost", "title", None); // unknown: skipped
        let applied = reg.apply_delta(&delta).unwrap();
        assert_eq!(applied.lds, pubs);
        assert_eq!(applied.added, vec![2]);
        assert_eq!(applied.removed, vec![1]);
        assert_eq!(applied.updated, vec![(0, "title".to_owned())]);
        assert_eq!(applied.skipped, 2);
        let lds = reg.lds(pubs);
        assert_eq!(lds.live_len(), 2);
        assert_eq!(
            lds.attr_of(0, "title").unwrap().unwrap().as_text(),
            Some("New Title")
        );
        assert_eq!(lds.index_of("p2"), Some(2));
    }

    #[test]
    fn apply_delta_typed_errors() {
        let mut reg = registry();
        let pubs = reg.resolve("Publication@DBLP").unwrap();
        reg.lds_mut(pubs).insert_record("p0", vec![]).unwrap();
        // Unknown source handle.
        assert!(reg.apply_delta(&SourceDelta::new(LdsId(99))).is_err());
        // Duplicate add id.
        let err = reg
            .apply_delta(&SourceDelta::new(pubs).add("p0", vec![]))
            .unwrap_err();
        assert!(matches!(err, ModelError::DuplicateId { .. }));
        // Unknown attribute in an add.
        let err = reg
            .apply_delta(&SourceDelta::new(pubs).add("p9", vec![("nope".into(), "x".into())]))
            .unwrap_err();
        assert!(matches!(err, ModelError::UnknownAttribute { .. }));
    }

    #[test]
    fn registry_clone_is_deep() {
        let mut reg = registry();
        let pubs = reg.resolve("Publication@DBLP").unwrap();
        reg.lds_mut(pubs).insert_record("p0", vec![]).unwrap();
        let mut copy = reg.clone();
        copy.apply_delta(&SourceDelta::new(pubs).remove("p0"))
            .unwrap();
        assert_eq!(copy.lds(pubs).live_len(), 0);
        assert_eq!(reg.lds(pubs).live_len(), 1);
    }

    #[test]
    fn smm_tracks_logical_sources() {
        let reg = registry();
        assert_eq!(reg.smm.logical_sources().len(), 3);
    }

    #[test]
    fn iter_order_matches_ids() {
        let reg = registry();
        for (id, lds) in reg.iter() {
            assert_eq!(reg.lds(id).name(), lds.name());
        }
    }
}
