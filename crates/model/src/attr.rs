//! Attribute values and schema definitions.
//!
//! MOMA matches *real, dirty data* which "may not have a rich schema"
//! (paper Section 1). Attributes are therefore dynamically typed and
//! optional: every instance stores `Option<AttrValue>` per schema slot.

use std::fmt;

/// The dynamic kind of an attribute, declared in an LDS schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrKind {
    /// Free text, e.g. a publication title.
    Text,
    /// A list of text values, e.g. an author-name list.
    TextList,
    /// Integer quantity, e.g. a citation count.
    Int,
    /// A calendar year, e.g. the publication year.
    Year,
    /// Floating point quantity.
    Real,
}

impl fmt::Display for AttrKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttrKind::Text => "Text",
            AttrKind::TextList => "TextList",
            AttrKind::Int => "Int",
            AttrKind::Year => "Year",
            AttrKind::Real => "Real",
        };
        f.write_str(s)
    }
}

/// A dynamically typed attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Free text.
    Text(String),
    /// List of text values (kept in source order).
    TextList(Vec<String>),
    /// Integer quantity.
    Int(i64),
    /// Calendar year.
    Year(u16),
    /// Floating point quantity.
    Real(f64),
}

impl AttrValue {
    /// The kind corresponding to this value.
    pub fn kind(&self) -> AttrKind {
        match self {
            AttrValue::Text(_) => AttrKind::Text,
            AttrValue::TextList(_) => AttrKind::TextList,
            AttrValue::Int(_) => AttrKind::Int,
            AttrValue::Year(_) => AttrKind::Year,
            AttrValue::Real(_) => AttrKind::Real,
        }
    }

    /// Borrow as text if this is a [`AttrValue::Text`].
    pub fn as_text(&self) -> Option<&str> {
        match self {
            AttrValue::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as a text list if this is a [`AttrValue::TextList`].
    pub fn as_text_list(&self) -> Option<&[String]> {
        match self {
            AttrValue::TextList(v) => Some(v),
            _ => None,
        }
    }

    /// Return the year if this is a [`AttrValue::Year`].
    pub fn as_year(&self) -> Option<u16> {
        match self {
            AttrValue::Year(y) => Some(*y),
            _ => None,
        }
    }

    /// Return the integer if this is an [`AttrValue::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            AttrValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Render the value as a plain string for similarity computation.
    ///
    /// Text lists are joined with `", "` (the representation attribute
    /// matchers see when matching e.g. whole author lists); numbers use
    /// their canonical decimal form.
    pub fn to_match_string(&self) -> String {
        match self {
            AttrValue::Text(s) => s.clone(),
            AttrValue::TextList(v) => v.join(", "),
            AttrValue::Int(i) => i.to_string(),
            AttrValue::Year(y) => y.to_string(),
            AttrValue::Real(r) => format!("{r}"),
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_match_string())
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::Text(s.to_owned())
    }
}

impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::Text(s)
    }
}

impl From<i64> for AttrValue {
    fn from(i: i64) -> Self {
        AttrValue::Int(i)
    }
}

impl From<u16> for AttrValue {
    fn from(y: u16) -> Self {
        AttrValue::Year(y)
    }
}

impl From<Vec<String>> for AttrValue {
    fn from(v: Vec<String>) -> Self {
        AttrValue::TextList(v)
    }
}

/// Schema entry: an attribute name plus its declared kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDef {
    /// Attribute name as used in match workflows, e.g. `"title"`.
    pub name: String,
    /// Declared kind.
    pub kind: AttrKind,
}

impl AttrDef {
    /// Create a new attribute definition.
    pub fn new(name: impl Into<String>, kind: AttrKind) -> Self {
        Self {
            name: name.into(),
            kind,
        }
    }

    /// Shorthand for a [`AttrKind::Text`] attribute.
    pub fn text(name: impl Into<String>) -> Self {
        Self::new(name, AttrKind::Text)
    }

    /// Shorthand for a [`AttrKind::TextList`] attribute.
    pub fn text_list(name: impl Into<String>) -> Self {
        Self::new(name, AttrKind::TextList)
    }

    /// Shorthand for a [`AttrKind::Year`] attribute.
    pub fn year(name: impl Into<String>) -> Self {
        Self::new(name, AttrKind::Year)
    }

    /// Shorthand for an [`AttrKind::Int`] attribute.
    pub fn int(name: impl Into<String>) -> Self {
        Self::new(name, AttrKind::Int)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_kinds_roundtrip() {
        assert_eq!(AttrValue::Text("x".into()).kind(), AttrKind::Text);
        assert_eq!(AttrValue::TextList(vec![]).kind(), AttrKind::TextList);
        assert_eq!(AttrValue::Int(3).kind(), AttrKind::Int);
        assert_eq!(AttrValue::Year(2001).kind(), AttrKind::Year);
        assert_eq!(AttrValue::Real(0.5).kind(), AttrKind::Real);
    }

    #[test]
    fn accessors() {
        assert_eq!(AttrValue::Text("a".into()).as_text(), Some("a"));
        assert_eq!(AttrValue::Year(1999).as_year(), Some(1999));
        assert_eq!(AttrValue::Int(7).as_int(), Some(7));
        assert_eq!(AttrValue::Text("a".into()).as_year(), None);
        let l = AttrValue::TextList(vec!["x".into(), "y".into()]);
        assert_eq!(l.as_text_list().unwrap().len(), 2);
    }

    #[test]
    fn match_string_joins_lists() {
        let v = AttrValue::TextList(vec!["A. Thor".into(), "E. Rahm".into()]);
        assert_eq!(v.to_match_string(), "A. Thor, E. Rahm");
    }

    #[test]
    fn match_string_numbers() {
        assert_eq!(AttrValue::Year(2001).to_match_string(), "2001");
        assert_eq!(AttrValue::Int(-3).to_match_string(), "-3");
        assert_eq!(AttrValue::Real(1.5).to_match_string(), "1.5");
    }

    #[test]
    fn from_impls() {
        assert_eq!(AttrValue::from("t"), AttrValue::Text("t".into()));
        assert_eq!(AttrValue::from(2000u16), AttrValue::Year(2000));
        assert_eq!(AttrValue::from(5i64), AttrValue::Int(5));
    }

    #[test]
    fn attr_def_shorthands() {
        assert_eq!(AttrDef::text("title").kind, AttrKind::Text);
        assert_eq!(AttrDef::year("year").kind, AttrKind::Year);
        assert_eq!(AttrDef::int("citations").kind, AttrKind::Int);
        assert_eq!(AttrDef::text_list("authors").kind, AttrKind::TextList);
    }

    #[test]
    fn display_kind() {
        assert_eq!(AttrKind::TextList.to_string(), "TextList");
    }
}
