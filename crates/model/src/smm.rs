//! The source-mapping model (SMM), paper Figure 2.
//!
//! An SMM enumerates physical sources, logical sources and the *semantic
//! mapping types* between them ("publications of author", "venue of
//! publication", "co-authors", …) together with their cardinalities.
//! Instance-level mapping *data* lives in `moma-core`'s repository; the
//! SMM is the metadata layer describing which mappings may exist.

use std::fmt;

use crate::cardinality::Cardinality;
use crate::lds::LdsId;

/// Semantic object type of an LDS, e.g. `Publication`, `Author`, `Venue`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ObjectType(String);

impl ObjectType {
    /// Create a type from its name.
    pub fn new(name: impl Into<String>) -> Self {
        Self(name.into())
    }

    /// Type name as string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ObjectType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ObjectType {
    fn from(s: &str) -> Self {
        ObjectType::new(s)
    }
}

/// A physical data source such as `DBLP` or `GoogleScholar`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhysicalSource {
    /// Source name.
    pub name: String,
    /// Whether the source can be downloaded completely (DBLP) or only
    /// queried for subsets (ACM DL, Google Scholar) — paper Section 2.1.
    pub fully_downloadable: bool,
}

impl PhysicalSource {
    /// A completely downloadable source.
    pub fn downloadable(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            fully_downloadable: true,
        }
    }

    /// A query-only web source.
    pub fn query_only(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            fully_downloadable: false,
        }
    }
}

/// Declaration of an association mapping type between two LDS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssocTypeDef {
    /// Mapping type name, e.g. `VenuePub@DBLP`.
    pub name: String,
    /// Domain LDS.
    pub domain: LdsId,
    /// Range LDS.
    pub range: LdsId,
    /// Semantic cardinality.
    pub cardinality: Cardinality,
    /// Name of the inverse mapping type, if declared.
    pub inverse: Option<String>,
}

/// The source-mapping model: physical sources, logical sources, and
/// association mapping types (paper Figure 2).
#[derive(Debug, Clone, Default)]
pub struct SourceMappingModel {
    physical: Vec<PhysicalSource>,
    /// `(LdsId, display name)` pairs; instance data is owned by the
    /// [`crate::SourceRegistry`].
    logical: Vec<(LdsId, String)>,
    assoc_types: Vec<AssocTypeDef>,
}

impl SourceMappingModel {
    /// Empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a physical source; idempotent by name.
    pub fn add_physical(&mut self, pds: PhysicalSource) {
        if !self.physical.iter().any(|p| p.name == pds.name) {
            self.physical.push(pds);
        }
    }

    /// Register an LDS handle under its display name.
    pub fn add_logical(&mut self, id: LdsId, name: impl Into<String>) {
        self.logical.push((id, name.into()));
    }

    /// Declare an association mapping type.
    pub fn add_assoc_type(&mut self, def: AssocTypeDef) {
        self.assoc_types.push(def);
    }

    /// All physical sources.
    pub fn physical_sources(&self) -> &[PhysicalSource] {
        &self.physical
    }

    /// All logical sources (id, name).
    pub fn logical_sources(&self) -> &[(LdsId, String)] {
        &self.logical
    }

    /// All declared association mapping types.
    pub fn assoc_types(&self) -> &[AssocTypeDef] {
        &self.assoc_types
    }

    /// Look up an association type by name.
    pub fn assoc_type(&self, name: &str) -> Option<&AssocTypeDef> {
        self.assoc_types.iter().find(|t| t.name == name)
    }

    /// Number of possible same-mappings between LDS of equal object type,
    /// given a per-LDS object-type lookup.
    ///
    /// The paper notes (Section 2.1) that for its bibliographic SMM "there
    /// may be up to 8 same-mappings (3 for publications, 3 for authors, 2
    /// for venues)": each unordered pair of same-typed LDS admits one.
    pub fn possible_same_mappings<'a>(&self, type_of: impl Fn(LdsId) -> &'a ObjectType) -> usize {
        let mut count = 0;
        for (i, (a, _)) in self.logical.iter().enumerate() {
            for (b, _) in self.logical.iter().skip(i + 1) {
                if type_of(*a) == type_of(*b) {
                    count += 1;
                }
            }
        }
        count
    }

    /// Render the SMM as an ASCII diagram (sources grouped per PDS, then
    /// mapping types), mirroring Figure 2 of the paper.
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        out.push_str("Source-Mapping Model\n====================\n");
        for pds in &self.physical {
            let access = if pds.fully_downloadable {
                "downloadable"
            } else {
                "query-only"
            };
            out.push_str(&format!("PDS {} ({access})\n", pds.name));
            for (_, name) in self
                .logical
                .iter()
                .filter(|(_, n)| n.ends_with(&format!("@{}", pds.name)))
            {
                out.push_str(&format!("  LDS {name}\n"));
            }
        }
        if !self.assoc_types.is_empty() {
            out.push_str("Association mapping types:\n");
            for t in &self.assoc_types {
                let dom = self.lds_name(t.domain);
                let ran = self.lds_name(t.range);
                out.push_str(&format!(
                    "  {} : {dom} -> {ran}  [{}]",
                    t.name, t.cardinality
                ));
                if let Some(inv) = &t.inverse {
                    out.push_str(&format!("  (inverse: {inv})"));
                }
                out.push('\n');
            }
        }
        out
    }

    fn lds_name(&self, id: LdsId) -> &str {
        self.logical
            .iter()
            .find(|(i, _)| *i == id)
            .map(|(_, n)| n.as_str())
            .unwrap_or("?")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> (SourceMappingModel, Vec<ObjectType>) {
        let mut smm = SourceMappingModel::new();
        smm.add_physical(PhysicalSource::downloadable("DBLP"));
        smm.add_physical(PhysicalSource::query_only("ACM"));
        smm.add_physical(PhysicalSource::query_only("GoogleScholar"));
        // LDS ids 0..5: Pub@DBLP, Author@DBLP, Venue@DBLP, Pub@ACM,
        // Author@ACM, Venue@ACM; 6: Pub@GS.
        let names = [
            "Publication@DBLP",
            "Author@DBLP",
            "Venue@DBLP",
            "Publication@ACM",
            "Author@ACM",
            "Venue@ACM",
            "Publication@GoogleScholar",
        ];
        for (i, n) in names.iter().enumerate() {
            smm.add_logical(LdsId(i as u32), *n);
        }
        let types = vec![
            ObjectType::new("Publication"),
            ObjectType::new("Author"),
            ObjectType::new("Venue"),
            ObjectType::new("Publication"),
            ObjectType::new("Author"),
            ObjectType::new("Venue"),
            ObjectType::new("Publication"),
        ];
        (smm, types)
    }

    #[test]
    fn paper_example_eight_same_mappings() {
        // Section 2.1: up to 8 same-mappings (3 publications, 3 authors via
        // only 2 author LDS -> 1, 2 venues -> 1)... The paper counts 3 pub
        // + 3 author + 2 venue = 8 with a GS author source implied; with
        // our 7 LDS (no Author@GS / Venue@GS) it is 3 + 1 + 1 = 5.
        let (smm, types) = model();
        let n = smm.possible_same_mappings(|id| &types[id.index()]);
        assert_eq!(n, 5);
    }

    #[test]
    fn assoc_type_lookup() {
        let (mut smm, _) = model();
        smm.add_assoc_type(AssocTypeDef {
            name: "VenuePub@DBLP".into(),
            domain: LdsId(2),
            range: LdsId(0),
            cardinality: Cardinality::OneToMany,
            inverse: Some("PubVenue@DBLP".into()),
        });
        let t = smm.assoc_type("VenuePub@DBLP").unwrap();
        assert_eq!(t.cardinality, Cardinality::OneToMany);
        assert!(smm.assoc_type("nope").is_none());
    }

    #[test]
    fn physical_idempotent() {
        let (mut smm, _) = model();
        let before = smm.physical_sources().len();
        smm.add_physical(PhysicalSource::downloadable("DBLP"));
        assert_eq!(smm.physical_sources().len(), before);
    }

    #[test]
    fn render_mentions_everything() {
        let (mut smm, _) = model();
        smm.add_assoc_type(AssocTypeDef {
            name: "CoAuthor@DBLP".into(),
            domain: LdsId(1),
            range: LdsId(1),
            cardinality: Cardinality::ManyToMany,
            inverse: None,
        });
        let s = smm.render_ascii();
        assert!(s.contains("PDS DBLP (downloadable)"));
        assert!(s.contains("PDS GoogleScholar (query-only)"));
        assert!(s.contains("LDS Publication@DBLP"));
        assert!(s.contains("CoAuthor@DBLP : Author@DBLP -> Author@DBLP  [n:m]"));
    }

    #[test]
    fn object_type_display() {
        assert_eq!(ObjectType::new("Venue").to_string(), "Venue");
        assert_eq!(ObjectType::from("Author").as_str(), "Author");
    }
}
