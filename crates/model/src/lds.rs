//! Logical data sources (LDS).

use std::collections::HashMap;

use crate::attr::{AttrDef, AttrValue};
use crate::error::{ModelError, Result};
use crate::instance::ObjectInstance;
use crate::smm::ObjectType;

/// Dense handle for a logical data source inside a [`crate::SourceRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct LdsId(pub u32);

impl LdsId {
    /// Index form for vector addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A logical data source: all instances of one object type at one
/// physical source, e.g. `Publication@DBLP`.
///
/// Instances live in a dense arena; the local index (`u32`) of an instance
/// is what mapping tables store, making correspondences cheap 12-byte rows
/// (cf. `moma-table`). String ids resolve through a hash index.
///
/// Removal is tombstone-based ([`LogicalSource::remove`]): the arena slot
/// survives — so every `u32` index held by existing mapping tables stays
/// valid — but tombstoned instances no longer appear in
/// [`LogicalSource::iter`] / [`LogicalSource::project`] output. [`len`]
/// therefore reports the *arena* length (the index addressing bound),
/// while [`live_len`] counts only non-tombstoned instances.
///
/// [`len`]: LogicalSource::len
/// [`live_len`]: LogicalSource::live_len
#[derive(Debug, Clone)]
pub struct LogicalSource {
    /// Name of the owning physical data source, e.g. `DBLP`.
    pub pds: String,
    /// Semantic object type, e.g. `Publication`.
    pub object_type: ObjectType,
    /// Attribute schema; instances align values to these slots.
    pub schema: Vec<AttrDef>,
    instances: Vec<ObjectInstance>,
    id_index: HashMap<String, u32>,
    /// Tombstone flags aligned to `instances`; `true` = removed.
    dead: Vec<bool>,
    /// Number of `true` entries in `dead`.
    dead_count: usize,
}

impl LogicalSource {
    /// Create an empty LDS.
    pub fn new(pds: impl Into<String>, object_type: ObjectType, schema: Vec<AttrDef>) -> Self {
        Self {
            pds: pds.into(),
            object_type,
            schema,
            instances: Vec::new(),
            id_index: HashMap::new(),
            dead: Vec::new(),
            dead_count: 0,
        }
    }

    /// Canonical display name `Type@PDS`, as used in the paper (Figure 1).
    pub fn name(&self) -> String {
        format!("{}@{}", self.object_type.as_str(), self.pds)
    }

    /// Arena length: number of instances ever inserted, *including*
    /// tombstoned ones. Every valid local index is `< len()`.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Number of live (non-tombstoned) instances.
    pub fn live_len(&self) -> usize {
        self.instances.len() - self.dead_count
    }

    /// Whether the LDS holds no instances (live or tombstoned).
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Whether the instance at `index` exists and is not tombstoned.
    pub fn is_live(&self, index: u32) -> bool {
        let i = index as usize;
        i < self.instances.len() && !self.dead[i]
    }

    /// Schema slot index of attribute `name`.
    pub fn attr_slot(&self, name: &str) -> Result<usize> {
        self.schema
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| ModelError::UnknownAttribute {
                lds: self.name(),
                attr: name.into(),
            })
    }

    /// Insert a new instance; returns its local index.
    ///
    /// Fails with [`ModelError::DuplicateId`] if the id already exists.
    pub fn insert(&mut self, instance: ObjectInstance) -> Result<u32> {
        if self.id_index.contains_key(&instance.id) {
            return Err(ModelError::DuplicateId {
                lds: self.name(),
                id: instance.id,
            });
        }
        let idx = self.instances.len() as u32;
        self.id_index.insert(instance.id.clone(), idx);
        self.instances.push(instance);
        self.dead.push(false);
        Ok(idx)
    }

    /// Tombstone the instance with source id `id`, returning its local
    /// index, or `None` if the id is unknown (possibly already removed —
    /// removal also drops the id from the lookup index, freeing the id
    /// for a later re-add as a brand-new instance).
    pub fn remove(&mut self, id: &str) -> Option<u32> {
        let idx = self.id_index.remove(id)?;
        debug_assert!(!self.dead[idx as usize], "id_index pointed at tombstone");
        self.dead[idx as usize] = true;
        self.dead_count += 1;
        Some(idx)
    }

    /// Replace (`Some`) or clear (`None`) attribute `attr` of the live
    /// instance with source id `id`, returning its local index. Unknown
    /// ids return `Ok(None)`; an unknown attribute or a value of the
    /// wrong kind is a typed error.
    pub fn update_attr(
        &mut self,
        id: &str,
        attr: &str,
        value: Option<AttrValue>,
    ) -> Result<Option<u32>> {
        let slot = self.attr_slot(attr)?;
        if let Some(v) = &value {
            let expected = self.schema[slot].kind;
            if v.kind() != expected {
                return Err(ModelError::KindMismatch {
                    attr: attr.into(),
                    expected: expected.to_string(),
                    got: v.kind().to_string(),
                });
            }
        }
        let Some(&idx) = self.id_index.get(id) else {
            return Ok(None);
        };
        let inst = &mut self.instances[idx as usize];
        match value {
            Some(v) => inst.set(slot, v),
            None => {
                if (slot) < inst.values.len() {
                    inst.values[slot] = None;
                }
            }
        }
        Ok(Some(idx))
    }

    /// Build an instance from `(id, values)` pairs keyed by attribute name
    /// and insert it.
    pub fn insert_record(
        &mut self,
        id: impl Into<String>,
        fields: Vec<(&str, AttrValue)>,
    ) -> Result<u32> {
        let mut inst = ObjectInstance::new(id, self.schema.len());
        for (name, value) in fields {
            let slot = self.attr_slot(name)?;
            let expected = self.schema[slot].kind;
            if value.kind() != expected {
                return Err(ModelError::KindMismatch {
                    attr: name.into(),
                    expected: expected.to_string(),
                    got: value.kind().to_string(),
                });
            }
            inst.set(slot, value);
        }
        self.insert(inst)
    }

    /// Instance by local index. Tombstoned instances are still returned
    /// (their arena data survives removal so that old mapping rows can be
    /// resolved); use [`LogicalSource::is_live`] to distinguish.
    pub fn get(&self, index: u32) -> Option<&ObjectInstance> {
        self.instances.get(index as usize)
    }

    /// Mutable instance by local index.
    pub fn get_mut(&mut self, index: u32) -> Option<&mut ObjectInstance> {
        self.instances.get_mut(index as usize)
    }

    /// Local index of the instance with source id `id`.
    pub fn index_of(&self, id: &str) -> Option<u32> {
        self.id_index.get(id).copied()
    }

    /// Instance by source id.
    pub fn by_id(&self, id: &str) -> Option<&ObjectInstance> {
        self.index_of(id).and_then(|i| self.get(i))
    }

    /// Iterate `(local_index, instance)` over *live* instances;
    /// tombstoned slots are skipped (indexes may therefore be sparse).
    pub fn iter(&self) -> impl Iterator<Item = (u32, &ObjectInstance)> {
        self.instances
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.dead[*i])
            .map(|(i, inst)| (i as u32, inst))
    }

    /// Project one attribute across all instances: `(index, value)` for
    /// every instance where the attribute is present.
    pub fn project(&self, attr: &str) -> Result<Vec<(u32, &AttrValue)>> {
        let slot = self.attr_slot(attr)?;
        Ok(self
            .iter()
            .filter_map(|(i, inst)| inst.value(slot).map(|v| (i, v)))
            .collect())
    }

    /// Attribute value of one instance by attribute name.
    pub fn attr_of(&self, index: u32, attr: &str) -> Result<Option<&AttrValue>> {
        let slot = self.attr_slot(attr)?;
        Ok(self.get(index).and_then(|inst| inst.value(slot)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrDef;

    fn pub_lds() -> LogicalSource {
        LogicalSource::new(
            "DBLP",
            ObjectType::new("Publication"),
            vec![AttrDef::text("title"), AttrDef::year("year")],
        )
    }

    #[test]
    fn name_formats_type_at_pds() {
        assert_eq!(pub_lds().name(), "Publication@DBLP");
    }

    #[test]
    fn insert_and_lookup() {
        let mut lds = pub_lds();
        let idx = lds
            .insert_record(
                "conf/VLDB/X01",
                vec![("title", "Cupid".into()), ("year", 2001u16.into())],
            )
            .unwrap();
        assert_eq!(idx, 0);
        assert_eq!(lds.len(), 1);
        assert_eq!(lds.index_of("conf/VLDB/X01"), Some(0));
        let inst = lds.by_id("conf/VLDB/X01").unwrap();
        assert_eq!(inst.value(0).unwrap().as_text(), Some("Cupid"));
        assert_eq!(
            lds.attr_of(0, "year").unwrap().unwrap().as_year(),
            Some(2001)
        );
    }

    #[test]
    fn duplicate_id_rejected() {
        let mut lds = pub_lds();
        lds.insert_record("a", vec![]).unwrap();
        let err = lds.insert_record("a", vec![]).unwrap_err();
        assert!(matches!(err, ModelError::DuplicateId { .. }));
    }

    #[test]
    fn unknown_attribute_rejected() {
        let mut lds = pub_lds();
        let err = lds
            .insert_record("a", vec![("venue", "VLDB".into())])
            .unwrap_err();
        assert!(matches!(err, ModelError::UnknownAttribute { .. }));
    }

    #[test]
    fn kind_mismatch_rejected() {
        let mut lds = pub_lds();
        let err = lds
            .insert_record("a", vec![("year", "2001".into())])
            .unwrap_err();
        assert!(matches!(err, ModelError::KindMismatch { .. }));
    }

    #[test]
    fn project_skips_missing() {
        let mut lds = pub_lds();
        lds.insert_record("a", vec![("title", "T1".into())])
            .unwrap();
        lds.insert_record("b", vec![("year", 2002u16.into())])
            .unwrap();
        lds.insert_record("c", vec![("title", "T3".into())])
            .unwrap();
        let titles = lds.project("title").unwrap();
        assert_eq!(titles.len(), 2);
        assert_eq!(titles[0].0, 0);
        assert_eq!(titles[1].0, 2);
    }

    #[test]
    fn remove_tombstones_but_preserves_arena() {
        let mut lds = pub_lds();
        for id in ["a", "b", "c"] {
            lds.insert_record(id, vec![("title", format!("T{id}").into())])
                .unwrap();
        }
        assert_eq!(lds.remove("b"), Some(1));
        // Unknown / already-removed ids are a no-op.
        assert_eq!(lds.remove("b"), None);
        assert_eq!(lds.remove("ghost"), None);
        assert_eq!(lds.len(), 3);
        assert_eq!(lds.live_len(), 2);
        assert!(lds.is_live(0) && !lds.is_live(1) && lds.is_live(2));
        assert!(!lds.is_live(99));
        // Arena data survives; lookup does not.
        assert_eq!(lds.get(1).unwrap().id, "b");
        assert_eq!(lds.index_of("b"), None);
        // iter/project skip the tombstone.
        let idxs: Vec<u32> = lds.iter().map(|(i, _)| i).collect();
        assert_eq!(idxs, vec![0, 2]);
        assert_eq!(lds.project("title").unwrap().len(), 2);
        // The id can be re-added as a brand-new instance.
        assert_eq!(lds.insert_record("b", vec![]).unwrap(), 3);
        assert_eq!(lds.live_len(), 3);
    }

    #[test]
    fn update_attr_replaces_and_clears() {
        let mut lds = pub_lds();
        lds.insert_record("a", vec![("title", "Old".into())])
            .unwrap();
        assert_eq!(
            lds.update_attr("a", "title", Some("New".into())).unwrap(),
            Some(0)
        );
        assert_eq!(
            lds.attr_of(0, "title").unwrap().unwrap().as_text(),
            Some("New")
        );
        assert_eq!(lds.update_attr("a", "year", None).unwrap(), Some(0));
        assert!(lds.attr_of(0, "year").unwrap().is_none());
        // Unknown id: Ok(None); removed id: Ok(None) too.
        assert_eq!(lds.update_attr("ghost", "title", None).unwrap(), None);
        lds.remove("a");
        assert_eq!(lds.update_attr("a", "title", None).unwrap(), None);
        // Unknown attribute and kind mismatch are typed errors.
        assert!(matches!(
            lds.update_attr("a", "venue", None),
            Err(ModelError::UnknownAttribute { .. })
        ));
        assert!(matches!(
            lds.update_attr("a", "year", Some("2001".into())),
            Err(ModelError::KindMismatch { .. })
        ));
    }

    #[test]
    fn iter_yields_dense_indexes() {
        let mut lds = pub_lds();
        for id in ["a", "b", "c"] {
            lds.insert_record(id, vec![]).unwrap();
        }
        let idxs: Vec<u32> = lds.iter().map(|(i, _)| i).collect();
        assert_eq!(idxs, vec![0, 1, 2]);
    }
}
