//! Logical data sources (LDS).

use std::collections::HashMap;

use crate::attr::{AttrDef, AttrValue};
use crate::error::{ModelError, Result};
use crate::instance::ObjectInstance;
use crate::smm::ObjectType;

/// Dense handle for a logical data source inside a [`crate::SourceRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LdsId(pub u32);

impl LdsId {
    /// Index form for vector addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A logical data source: all instances of one object type at one
/// physical source, e.g. `Publication@DBLP`.
///
/// Instances live in a dense arena; the local index (`u32`) of an instance
/// is what mapping tables store, making correspondences cheap 12-byte rows
/// (cf. `moma-table`). String ids resolve through a hash index.
#[derive(Debug, Clone)]
pub struct LogicalSource {
    /// Name of the owning physical data source, e.g. `DBLP`.
    pub pds: String,
    /// Semantic object type, e.g. `Publication`.
    pub object_type: ObjectType,
    /// Attribute schema; instances align values to these slots.
    pub schema: Vec<AttrDef>,
    instances: Vec<ObjectInstance>,
    id_index: HashMap<String, u32>,
}

impl LogicalSource {
    /// Create an empty LDS.
    pub fn new(pds: impl Into<String>, object_type: ObjectType, schema: Vec<AttrDef>) -> Self {
        Self {
            pds: pds.into(),
            object_type,
            schema,
            instances: Vec::new(),
            id_index: HashMap::new(),
        }
    }

    /// Canonical display name `Type@PDS`, as used in the paper (Figure 1).
    pub fn name(&self) -> String {
        format!("{}@{}", self.object_type.as_str(), self.pds)
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Whether the LDS holds no instances.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Schema slot index of attribute `name`.
    pub fn attr_slot(&self, name: &str) -> Result<usize> {
        self.schema
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| ModelError::UnknownAttribute {
                lds: self.name(),
                attr: name.into(),
            })
    }

    /// Insert a new instance; returns its local index.
    ///
    /// Fails with [`ModelError::DuplicateId`] if the id already exists.
    pub fn insert(&mut self, instance: ObjectInstance) -> Result<u32> {
        if self.id_index.contains_key(&instance.id) {
            return Err(ModelError::DuplicateId {
                lds: self.name(),
                id: instance.id,
            });
        }
        let idx = self.instances.len() as u32;
        self.id_index.insert(instance.id.clone(), idx);
        self.instances.push(instance);
        Ok(idx)
    }

    /// Build an instance from `(id, values)` pairs keyed by attribute name
    /// and insert it.
    pub fn insert_record(
        &mut self,
        id: impl Into<String>,
        fields: Vec<(&str, AttrValue)>,
    ) -> Result<u32> {
        let mut inst = ObjectInstance::new(id, self.schema.len());
        for (name, value) in fields {
            let slot = self.attr_slot(name)?;
            let expected = self.schema[slot].kind;
            if value.kind() != expected {
                return Err(ModelError::KindMismatch {
                    attr: name.into(),
                    expected: expected.to_string(),
                    got: value.kind().to_string(),
                });
            }
            inst.set(slot, value);
        }
        self.insert(inst)
    }

    /// Instance by local index.
    pub fn get(&self, index: u32) -> Option<&ObjectInstance> {
        self.instances.get(index as usize)
    }

    /// Mutable instance by local index.
    pub fn get_mut(&mut self, index: u32) -> Option<&mut ObjectInstance> {
        self.instances.get_mut(index as usize)
    }

    /// Local index of the instance with source id `id`.
    pub fn index_of(&self, id: &str) -> Option<u32> {
        self.id_index.get(id).copied()
    }

    /// Instance by source id.
    pub fn by_id(&self, id: &str) -> Option<&ObjectInstance> {
        self.index_of(id).and_then(|i| self.get(i))
    }

    /// Iterate `(local_index, instance)`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &ObjectInstance)> {
        self.instances
            .iter()
            .enumerate()
            .map(|(i, inst)| (i as u32, inst))
    }

    /// Project one attribute across all instances: `(index, value)` for
    /// every instance where the attribute is present.
    pub fn project(&self, attr: &str) -> Result<Vec<(u32, &AttrValue)>> {
        let slot = self.attr_slot(attr)?;
        Ok(self
            .iter()
            .filter_map(|(i, inst)| inst.value(slot).map(|v| (i, v)))
            .collect())
    }

    /// Attribute value of one instance by attribute name.
    pub fn attr_of(&self, index: u32, attr: &str) -> Result<Option<&AttrValue>> {
        let slot = self.attr_slot(attr)?;
        Ok(self.get(index).and_then(|inst| inst.value(slot)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrDef;

    fn pub_lds() -> LogicalSource {
        LogicalSource::new(
            "DBLP",
            ObjectType::new("Publication"),
            vec![AttrDef::text("title"), AttrDef::year("year")],
        )
    }

    #[test]
    fn name_formats_type_at_pds() {
        assert_eq!(pub_lds().name(), "Publication@DBLP");
    }

    #[test]
    fn insert_and_lookup() {
        let mut lds = pub_lds();
        let idx = lds
            .insert_record(
                "conf/VLDB/X01",
                vec![("title", "Cupid".into()), ("year", 2001u16.into())],
            )
            .unwrap();
        assert_eq!(idx, 0);
        assert_eq!(lds.len(), 1);
        assert_eq!(lds.index_of("conf/VLDB/X01"), Some(0));
        let inst = lds.by_id("conf/VLDB/X01").unwrap();
        assert_eq!(inst.value(0).unwrap().as_text(), Some("Cupid"));
        assert_eq!(
            lds.attr_of(0, "year").unwrap().unwrap().as_year(),
            Some(2001)
        );
    }

    #[test]
    fn duplicate_id_rejected() {
        let mut lds = pub_lds();
        lds.insert_record("a", vec![]).unwrap();
        let err = lds.insert_record("a", vec![]).unwrap_err();
        assert!(matches!(err, ModelError::DuplicateId { .. }));
    }

    #[test]
    fn unknown_attribute_rejected() {
        let mut lds = pub_lds();
        let err = lds
            .insert_record("a", vec![("venue", "VLDB".into())])
            .unwrap_err();
        assert!(matches!(err, ModelError::UnknownAttribute { .. }));
    }

    #[test]
    fn kind_mismatch_rejected() {
        let mut lds = pub_lds();
        let err = lds
            .insert_record("a", vec![("year", "2001".into())])
            .unwrap_err();
        assert!(matches!(err, ModelError::KindMismatch { .. }));
    }

    #[test]
    fn project_skips_missing() {
        let mut lds = pub_lds();
        lds.insert_record("a", vec![("title", "T1".into())])
            .unwrap();
        lds.insert_record("b", vec![("year", 2002u16.into())])
            .unwrap();
        lds.insert_record("c", vec![("title", "T3".into())])
            .unwrap();
        let titles = lds.project("title").unwrap();
        assert_eq!(titles.len(), 2);
        assert_eq!(titles[0].0, 0);
        assert_eq!(titles[1].0, 2);
    }

    #[test]
    fn iter_yields_dense_indexes() {
        let mut lds = pub_lds();
        for id in ["a", "b", "c"] {
            lds.insert_record(id, vec![]).unwrap();
        }
        let idxs: Vec<u32> = lds.iter().map(|(i, _)| i).collect();
        assert_eq!(idxs, vec![0, 1, 2]);
    }
}
